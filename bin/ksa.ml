(* ksa — command-line front end to the k-set agreement reproduction.

   Subcommands:
     experiments    run the E1–E9 reproduction harness
     border         print the solvability-border tables
     simulate       run one algorithm under one adversary, print the run
     explore        exhaustive schedule-space search (optionally multicore)
     fuzz           random schedule search with counterexample shrinking
     screen         Theorem-1 screening of an algorithm
     paste          execute the Lemma-12 pasting construction
     independence   T-independence check of an algorithm *)

open Cmdliner
module Sim = Ksa_sim
module Core = Ksa_core
module Algo = Ksa_algo
module Fd = Ksa_fd
module Rng = Ksa_prim.Rng
module Metrics = Ksa_prim.Metrics
module Clock = Ksa_prim.Clock
module Backoff = Ksa_prim.Backoff
module Checkpoint = Ksa_sim.Checkpoint
module Svc = Ksa_svc

(* ---------- graceful shutdown ---------- *)

(* SIGINT/SIGTERM raise this flag; the campaign drivers poll it
   through their Checkpoint controller, flush a final checkpoint, and
   return a truncated verdict — at which point the command notices the
   flag, writes --stats-json, prints the resume command and exits
   130.  Nothing happens inside the handler itself beyond the atomic
   store. *)
let shutdown = Atomic.make false

let install_signal_handlers () =
  let handle _ = Atomic.set shutdown true in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle handle) with _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let resume_hint ~checkpoint =
  match checkpoint with
  | None -> ()
  | Some path ->
      let argv = Array.to_list Sys.argv in
      let has_resume =
        List.exists
          (fun a ->
            a = "--resume"
            || (String.length a > 9 && String.sub a 0 9 = "--resume="))
          argv
      in
      let cmd =
        String.concat " "
          (if has_resume then argv else argv @ [ "--resume"; path ])
      in
      Printf.eprintf "ksa: interrupted — resume with:\n  %s\n%!" cmd

(* --checkpoint-every SPEC: "2s"/"0.5s" = seconds, a plain integer =
   work items (configs or trials) between writes *)
let parse_every s =
  let s = String.trim s in
  let n = String.length s in
  if n > 1 && (s.[n - 1] = 's' || s.[n - 1] = 'S') then
    match float_of_string_opt (String.sub s 0 (n - 1)) with
    | Some sec when sec > 0. ->
        Ok { Checkpoint.default_policy with Checkpoint.every_seconds = sec }
    | _ -> Error (Printf.sprintf "bad --checkpoint-every %S" s)
  else
    match int_of_string_opt s with
    | Some k when k > 0 ->
        Ok { Checkpoint.every_items = k; every_seconds = infinity }
    | _ -> Error (Printf.sprintf "bad --checkpoint-every %S" s)

(* Load and validate a checkpoint for --resume (the validation itself
   now lives in Ksa_svc.Task, shared with the campaign daemon).  By
   default any problem — the file is corrupt, belongs to another
   campaign kind, was written under different parameters, or its
   interner dump conflicts — is a warning followed by a fresh
   campaign, never a crash.  With --strict-resume a silent fresh
   start is exactly what must not happen: the named reason goes to
   stderr and the process exits 5. *)
let load_resume ?(strict = false) ~path ~kind ~fingerprint () =
  match Svc.Task.load_resume ~path ~kind ~fingerprint with
  | Ok t -> Some t
  | Error reason ->
      if strict then begin
        Printf.eprintf "ksa: cannot resume (strict): %s\n%!" reason;
        exit 5
      end
      else begin
        Printf.eprintf "ksa: %s — starting a fresh campaign\n%!" reason;
        None
      end

(* ---------- shared argument parsing ---------- *)

let algo_conv ~l ~wait_for = function
  | "kset-flp" ->
      let module K = Algo.Kset_flp.Make (struct
        let l = l
      end) in
      Ok (module K : Sim.Algorithm.S)
  | "naive-min" ->
      let module N = Algo.Naive_min.Make (struct
        let wait_for = wait_for
      end) in
      Ok (module N : Sim.Algorithm.S)
  | "trivial" -> Ok (module Algo.Trivial.A : Sim.Algorithm.S)
  | "synod" -> Ok (module Algo.Synod.A : Sim.Algorithm.S)
  | other -> Error (Printf.sprintf "unknown algorithm %S" other)

let groups_of_string s =
  (* "0,1|2,3,4" -> [[0;1];[2;3;4]] *)
  String.split_on_char '|' s
  |> List.map (fun part ->
         String.split_on_char ',' part
         |> List.filter (fun x -> String.trim x <> "")
         |> List.map (fun x -> int_of_string (String.trim x)))

let model_conv =
  let parse s =
    match Sim.Fault_model.of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Sim.Fault_model.pp)

let model_arg =
  Arg.(
    value
    & opt model_conv Sim.Fault_model.Crash
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Fault model: $(b,crash) (the default; failures come from \
           --crash-budget / --max-crashes / --dead), $(b,byzantine[:T]) (up \
           to T corrupted processes whose pending messages may be forged \
           per-receiver — equivocation allowed; T defaults to 1 and \
           overrides the crash budget), or $(b,mobile[:T]) (no permanent \
           faults; each round a fresh set of at most T processes has its \
           outgoing messages omitted).")

let n_arg =
  Arg.(value & opt int 6 & info [ "n"; "size" ] ~docv:"N" ~doc:"System size.")

let f_arg =
  Arg.(value & opt int 2 & info [ "f"; "faults" ] ~docv:"F" ~doc:"Failure budget.")

let k_arg =
  Arg.(value & opt int 2 & info [ "k"; "kset" ] ~docv:"K" ~doc:"Agreement parameter k.")

let l_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "l"; "wait-quorum" ] ~docv:"L" ~doc:"Protocol parameter L (default n-f).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let algo_arg =
  Arg.(
    value
    & opt string "kset-flp"
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"Algorithm: kset-flp, naive-min, trivial, or synod.")

let wait_arg =
  Arg.(
    value & opt int 2
    & info [ "wait-for" ] ~docv:"W" ~doc:"naive-min wait-for parameter.")

let groups_arg ~doc =
  Arg.(value & opt (some string) None & info [ "groups" ] ~docv:"GROUPS" ~doc)

(* synod needs a (Sigma, Omega) oracle *)
let synod_oracle ~pattern ~seed =
  let leader =
    match Sim.Failure_pattern.correct pattern with
    | p :: _ -> p
    | [] -> 0
  in
  let sigma = Fd.Sigma.blocks ~k:1 ~pattern ~stab:6 ~horizon:60 () in
  let omega =
    Fd.Omega.gen
      ~chaos:
        (Fd.Omega.random_chaos
           ~rng:(Rng.create ~seed:(seed + 99))
           ~n:(Sim.Failure_pattern.n pattern)
           ~k:1)
      ~k:1 ~pattern ~leaders:[ leader ] ~tgst:6 ~horizon:60 ()
  in
  Fd.History.oracle (Fd.History.combine sigma omega)

(* ---------- experiments ---------- *)

let experiments only =
  let ppf = Format.std_formatter in
  let run1 id f = if only = [] || List.mem id only then ignore (f ppf) in
  run1 "E1" (Core.Experiments.e1_theorem2 ?n_max:None);
  run1 "E2" (Core.Experiments.e2_theorem8 ?n_max:None ?seeds:None);
  run1 "E3" (Core.Experiments.e3_protocol_cost ?sizes:None ?seeds:None);
  run1 "E4" (Core.Experiments.e4_graph_lemmas ?samples:None ?n:None);
  run1 "E5" (Core.Experiments.e5_theorem10 ?n_max:None);
  run1 "E6" (Core.Experiments.e6_coverage ?n_max:None);
  run1 "E7" (Core.Experiments.e7_lemma9 ?samples:None);
  run1 "E8" Core.Experiments.e8_screening;
  run1 "E9" Core.Experiments.e9_independence;
  run1 "E10" (Core.Experiments.e10_round_models ?seeds:None);
  run1 "E11" (Core.Experiments.e11_fd_implementation ?seeds:None);
  run1 "E12" Core.Experiments.e12_flp_gap;
  run1 "E13" (Core.Experiments.e13_shared_memory ?seeds:None);
  run1 "E14" (Core.Experiments.e14_fault_models ?max_configs:None);
  0

let only_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "only" ] ~docv:"IDS" ~doc:"Comma-separated experiment ids (E1..E9).")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the reproduction harness (E1-E9).")
    Term.(const experiments $ only_arg)

(* ---------- border ---------- *)

let border n =
  let ppf = Format.std_formatter in
  Format.fprintf ppf "Theorem 8 (f initial crashes): solvable iff kn > (k+1)f@.";
  Format.fprintf ppf "     ";
  for k = 1 to n - 1 do
    Format.fprintf ppf "k=%-2d " k
  done;
  Format.fprintf ppf "@.";
  for f = 1 to n - 1 do
    Format.fprintf ppf "f=%-2d " f;
    for k = 1 to n - 1 do
      Format.fprintf ppf " %s   "
        (if Core.Border.theorem8_solvable ~n ~f ~k then "S" else ".")
    done;
    Format.fprintf ppf "@."
  done;
  Format.fprintf ppf
    "@.Theorem 2 (one live crash): impossible iff k(n-f) < n ('X')@.";
  for f = 1 to n - 1 do
    Format.fprintf ppf "f=%-2d " f;
    for k = 1 to n - 1 do
      Format.fprintf ppf " %s   "
        (if Core.Border.theorem2_impossible ~n ~f ~k then "X" else ".")
    done;
    Format.fprintf ppf "@."
  done;
  Format.fprintf ppf
    "@.(Sigma_k,Omega_k) (Cor. 13): solvable iff k=1 or k=n-1@.     ";
  for k = 1 to n - 1 do
    Format.fprintf ppf "%s "
      (if Core.Border.corollary13_solvable ~n ~k then "S" else "X")
  done;
  Format.fprintf ppf "@.";
  0

let border_cmd =
  Cmd.v
    (Cmd.info "border" ~doc:"Print the solvability borders for a given n.")
    Term.(const border $ n_arg)

(* ---------- simulate ---------- *)

let simulate algo_name n f l wait_for seed adversary dead save_schedule
    replay verbose check_model =
  let l = Option.value l ~default:(max 1 (n - f)) in
  match algo_conv ~l ~wait_for algo_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok (module A) ->
      let module E = Sim.Engine.Make (A) in
      let pattern = Sim.Failure_pattern.initial_dead ~n ~dead in
      let rng = Rng.create ~seed in
      let adv =
        match replay with
        | Some path -> (
            match Sim.Trace_io.load_schedule ~path () with
            | Ok descs -> Ok (Sim.Replay.sequential [ descs ])
            | Error e -> Error ("replay: " ^ e))
        | None -> (
            match adversary with
            | "fair" -> Ok (Sim.Adversary.fair ~rng)
            | "round-robin" -> Ok (Sim.Adversary.round_robin ())
            | "lossy" -> Ok (Sim.Adversary.fair_lossy ~rng ~p_defer:0.5)
            | s when String.length s > 10 && String.sub s 0 10 = "partition:" ->
                let groups =
                  groups_of_string (String.sub s 10 (String.length s - 10))
                in
                Ok (Sim.Adversary.partition ~groups ())
            | s when String.length s > 5 && String.sub s 0 5 = "solo:" ->
                let groups =
                  groups_of_string (String.sub s 5 (String.length s - 5))
                in
                Ok (Sim.Adversary.sequential_solo ~groups)
            | other -> Error ("unknown adversary " ^ other))
      in
      (match adv with
      | Error e ->
          prerr_endline e;
          1
      | Ok adv ->
          let fd =
            if A.uses_fd then Some (synod_oracle ~pattern ~seed) else None
          in
          let run =
            E.run ?fd ~n ~inputs:(Sim.Value.distinct_inputs n) ~pattern adv
          in
          Format.printf "%a@." Sim.Run.pp_summary run;
          if verbose then Sim.Trace_io.pp_events Format.std_formatter run;
          if check_model then begin
            let admissible =
              Sim.Model_check.admissible_models run ~phi:n ~delta:(2 * n)
            in
            Format.printf
              "DDS cube (Φ=%d, Δ=%d): admissible in %d/32 models@." n (2 * n)
              (List.length admissible);
            List.iter
              (fun m -> Format.printf "  %a@." Sim.Model.pp m)
              admissible
          end;
          (match save_schedule with
          | Some path -> (
              match
                Sim.Trace_io.save_schedule ~path
                  (Sim.Trace_io.schedule_of_run run)
              with
              | Ok () ->
                  Format.printf "schedule saved to %s@." path;
                  0
              | Error e ->
                  Printf.eprintf "ksa: %s\n%!" e;
                  1)
          | None -> 0))

let adversary_arg =
  Arg.(
    value
    & opt string "fair"
    & info [ "adversary" ] ~docv:"ADV"
        ~doc:
          "Adversary: fair, round-robin, lossy, partition:0,1|2,3 or \
           solo:0|1|2,3.")

let dead_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "dead" ] ~docv:"PIDS" ~doc:"Initially dead processes.")

let save_schedule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-schedule" ] ~docv:"FILE"
        ~doc:"Write the run's schedule (replayable) to FILE.")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay a schedule saved with --save-schedule instead of using \
              an adversary.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Dump the full event log.")

let check_model_arg =
  Arg.(
    value & flag
    & info [ "check-model" ]
        ~doc:
          "Report which of the 32 Dolev-Dwork-Stockmeyer models admit the \
           run (with Φ = n and Δ = 2n for the synchronous choices).")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one algorithm under one adversary.")
    Term.(
      const simulate $ algo_arg $ n_arg $ f_arg $ l_arg $ wait_arg $ seed_arg
      $ adversary_arg $ dead_arg $ save_schedule_arg $ replay_arg
      $ verbose_arg $ check_model_arg)

(* ---------- explore ---------- *)

(* [--progress]: a sampler domain prints a throughput line on stderr
   roughly once a second until the search returns.  It only reads the
   process-global metrics counters — no coupling to the explorer. *)
let with_progress enabled f =
  if not enabled then f ()
  else begin
    let stop = Atomic.make false in
    let sampler =
      Domain.spawn (fun () ->
          let admitted = Metrics.counter "explore.admitted" in
          let dedup = Metrics.counter "explore.dedup.hits" in
          let terminals = Metrics.counter "explore.terminals" in
          let hits = Metrics.counter "sim.memo.hits" in
          let misses = Metrics.counter "sim.memo.misses" in
          let orbit = Metrics.counter "explore.orbit_hits" in
          let sleep = Metrics.counter "explore.sleep_pruned" in
          let readmit = Metrics.counter "explore.sleep_readmitted" in
          (* park at 100ms between stop-flag checks; no cpu_relax phase
             — this domain is pure bookkeeping *)
          let sp = Backoff.Spin.make ~relax:0 ~floor:0.1 ~cap:0.1 () in
          let rec loop last_n last_t =
            if Atomic.get stop then ()
            else begin
              Backoff.Spin.wait sp;
              let elapsed = Clock.elapsed_s ~since:last_t in
              if elapsed < 1.0 then loop last_n last_t
              else begin
                let n = Metrics.value admitted in
                let h = Metrics.value hits and m = Metrics.value misses in
                let memo_pct =
                  if h + m = 0 then 0.
                  else 100. *. float_of_int h /. float_of_int (h + m)
                in
                (* running reduction ratio: arrivals collapsed per
                   distinct admitted configuration — sleep-digest
                   re-admissions of an already-seen configuration are
                   not distinct, so they come out of the denominator;
                   only meaningful (and only nonzero) under
                   --reduction *)
                let reduction_note =
                  let o = Metrics.value orbit and s = Metrics.value sleep in
                  let distinct = n - Metrics.value readmit in
                  if o + s = 0 || distinct <= 0 then ""
                  else
                    Printf.sprintf ", reduction x%.2f"
                      (float_of_int (n + o + s) /. float_of_int distinct)
                in
                Printf.eprintf
                  "progress: %d configs (%.0f/s), %d dedup hits, %d \
                   terminals, memo %.0f%% hit%s\n\
                   %!"
                  n
                  (float_of_int (n - last_n) /. elapsed)
                  (Metrics.value dedup) (Metrics.value terminals) memo_pct
                  reduction_note;
                loop n (Clock.now_ns ())
              end
            end
          in
          loop (Metrics.value admitted) (Clock.now_ns ()))
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Domain.join sampler)
      f
  end

let explore algo_name n k l wait_for dead crash_budget model policy reduction
    domains max_configs drop_on_crash stats_json progress checkpoint
    checkpoint_every resume strict_resume =
  (* the campaign itself is a library-level task now (shared with the
     daemon); the CLI keeps argument parsing, printing and the exit
     mapping *)
  let spec =
    Svc.Task.Explore
      {
        Svc.Task.e_algo = algo_name;
        e_n = n;
        e_k = k;
        e_l = l;
        e_wait = wait_for;
        e_dead = dead;
        e_crash_budget = crash_budget;
        e_model = model;
        e_policy = policy;
        e_reduction = reduction;
        e_max_configs = max_configs;
        e_drop = drop_on_crash;
      }
  in
  let kind = Svc.Task.kind spec in
  let fingerprint = Svc.Task.fingerprint spec in
  let domains =
    match domains with
    | Some d -> d
    | None -> Sim.Explorer.default_domains ()
  in
  let ck_policy =
    match checkpoint_every with
    | None -> Checkpoint.default_policy
    | Some s -> (
        match parse_every s with
        | Ok p -> p
        | Error e ->
            prerr_endline e;
            exit 1)
  in
  let sink =
    Option.map
      (fun path -> { Checkpoint.path; kind; fingerprint; policy = ck_policy })
      checkpoint
  in
  let resumed =
    Option.bind resume (fun path ->
        load_resume ~strict:strict_resume ~path ~kind ~fingerprint ())
  in
  install_signal_handlers ();
  let ckpt =
    Checkpoint.ctl ?sink
      ~interrupt:(fun () -> Atomic.get shutdown)
      ~ledger:(match resumed with Some t -> Checkpoint.ledger t | None -> [])
      ()
  in
  let resume = Option.map Checkpoint.payload resumed in
  let domains =
    if resume <> None && domains > 1 then begin
      Printf.eprintf
        "ksa: resuming on the sequential driver (checkpoints are \
         sequential-format; verdicts are driver-independent)\n\
         %!";
      1
    end
    else domains
  in
  let pp_stats ppf (s : Sim.Explorer.stats) =
    Format.fprintf ppf "%d configs visited, %d terminal runs%s"
      s.Sim.Explorer.configs_visited s.Sim.Explorer.terminal_runs
      (if s.Sim.Explorer.budget_exhausted then " (budget exhausted)" else "")
  in
  (* returns 1 when the stats file could not be written *)
  let write_stats () =
    match stats_json with
    | None -> 0
    | Some path -> (
        match Metrics.write_json ~path (Metrics.snapshot ()) with
        | Ok () ->
            Format.eprintf "stats written to %s@." path;
            0
        | Error e ->
            Printf.eprintf "ksa: %s\n%!" e;
            1)
  in
  let code =
    with_progress progress (fun () ->
        match Svc.Task.run ~domains ~ckpt ?resume spec with
        | Error e ->
            prerr_endline e;
            1
        | Ok (Svc.Task.Explored outcome) -> (
            match outcome with
            | Sim.Explorer.Safe stats when stats.Sim.Explorer.budget_exhausted
              ->
                (* no violation in the explored prefix, but the prefix
                   is not the space: refuse the optimistic verdict *)
                Format.printf
                  "INDETERMINATE: no violation in the explored prefix, but \
                   the budget truncated the search — %a@."
                  pp_stats stats;
                4
            | Sim.Explorer.Safe stats ->
                Format.printf "SAFE: %a@." pp_stats stats;
                0
            | Sim.Explorer.Violation { reason; depth; _ } ->
                Format.printf "VIOLATION at depth %d: %s@." depth reason;
                2)
        | Ok (Svc.Task.Crash_explored outcome) -> (
            match outcome with
            | Sim.Explorer.All_paths_decide stats ->
                Format.printf "ALL PATHS DECIDE: %a@." pp_stats stats;
                0
            | Sim.Explorer.Safety_violation { reason; _ } ->
                Format.printf "VIOLATION: %s@." reason;
                2
            | Sim.Explorer.Stuck { crashed; undecided_correct; stats } ->
                Format.printf "STUCK: crashes {%s} strand {%s} undecided — %a@."
                  (String.concat ","
                     (List.map (Printf.sprintf "p%d") crashed))
                  (String.concat ","
                     (List.map (Printf.sprintf "p%d") undecided_correct))
                  pp_stats stats;
                3
            | Sim.Explorer.Indeterminate stats ->
                Format.printf
                  "INDETERMINATE: the budget truncated the search before the \
                   reachable graph closed — %a@."
                  pp_stats stats;
                4)
        | Ok (Svc.Task.Fuzzed _ | Svc.Task.Probed _) ->
            (* an Explore spec cannot produce these *)
            assert false)
  in
  let stats_code = write_stats () in
  if Atomic.get shutdown then begin
    resume_hint ~checkpoint;
    130
  end
  else if stats_code <> 0 then stats_code
  else code

let crash_budget_arg =
  Arg.(
    value & opt int 0
    & info [ "crash-budget" ] ~docv:"B"
        ~doc:
          "Adversarial crashes at any point (0 = schedule/delivery \
           nondeterminism only).")

let policy_arg =
  Arg.(
    value
    & opt string "per-sender"
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Delivery policy: per-sender, empty-or-all, or all-subsets.")

let reduction_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("none", Sim.Canon.No_reduction);
             ("sym", Sim.Canon.Symmetry);
             ("sym+por", Sim.Canon.Symmetry_por);
           ])
        Sim.Canon.No_reduction
    & info [ "reduction" ] ~docv:"MODE"
        ~doc:
          "State-space reduction: $(b,none) (exact interned keys), $(b,sym) \
           (dedup on canonical orbit keys under permutations of crashed \
           processes), or $(b,sym+por) (orbit keys plus DPOR sleep sets over \
           delivery actions; sleep sets apply to the crash-free explorer \
           only).  Verdicts and reachable decision values are invariant \
           across modes; visited-configuration counts are not.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the parallel driver (default: KSA_DOMAINS or \
           the recommended domain count; 1 = sequential). Workers share \
           one dedup table and steal work, so any D admits the same \
           configurations; use up to the physical core count — beyond \
           it extra domains only add GC synchronisation.")

let max_configs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-configs" ] ~docv:"M"
        ~doc:"Stop after exploring M configurations.")

let drop_on_crash_arg =
  Arg.(
    value & flag
    & info [ "drop-on-crash" ]
        ~doc:
          "Also explore dropping each crashed process's pending messages \
           (last-step omission).")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write a JSON snapshot of the instrumentation counters (configs \
           visited, terminals, memo hits, interner occupancy, ...) to FILE \
           after the search.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a configs/sec progress line to stderr about once a second \
           while the search runs.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically write a crash-safe campaign checkpoint to FILE \
           (atomic rename, CRC-framed).  On SIGINT/SIGTERM a final \
           checkpoint is flushed and the exit code is 130; resume with \
           --resume FILE.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-every" ] ~docv:"SPEC"
        ~doc:
          "Checkpoint cadence: '2s' or '0.5s' for seconds, a plain integer \
           for work items (configs or trials) between writes.  Default: 5s.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume the campaign from a checkpoint written by --checkpoint.  \
           The resumed campaign reports verdict and stats identical to an \
           uninterrupted run.  A corrupt or mismatched checkpoint falls \
           back to a fresh campaign with a warning.")

let strict_resume_arg =
  Arg.(
    value & flag
    & info [ "strict-resume" ]
        ~doc:
          "Refuse to run when --resume names a checkpoint that cannot be \
           resumed (missing, corrupt, wrong kind, or written under \
           different campaign parameters): print the reason and exit 5 \
           instead of warning and starting a fresh campaign.  Scripted \
           campaigns should set this — a silent fresh start hides lost \
           progress.")

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively explore the schedule space, checking k-agreement on \
          every reachable configuration.  Exits 2 on a safety violation, 3 \
          on an FLP-style stuck configuration, and 4 when the configuration \
          budget truncated the search (the verdict is then indeterminate: \
          nothing is claimed about unexplored configurations).")
    Term.(
      const explore $ algo_arg $ n_arg $ k_arg $ l_arg $ wait_arg $ dead_arg
      $ crash_budget_arg $ model_arg $ policy_arg $ reduction_arg
      $ domains_arg
      $ max_configs_arg $ drop_on_crash_arg $ stats_json_arg $ progress_arg
      $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ strict_resume_arg)

(* ---------- fuzz ---------- *)

let fuzz algo_name n k l wait_for seed trials max_steps max_crashes dead
    model weights_name require_termination coverage domains stats_json
    save_schedule replay_path max_seconds checkpoint checkpoint_every resume
    strict_resume =
  let stop =
    match max_seconds with
    | None -> None
    | Some s ->
        (* monotonic: a wall-clock step (NTP, DST) must not end or
           extend the campaign *)
        let start = Clock.now_ns () in
        Some (fun () -> Clock.elapsed_s ~since:start > s)
  in
  (* returns 1 when the stats file could not be written *)
  let write_stats () =
    match stats_json with
    | None -> 0
    | Some path -> (
        match Metrics.write_json ~path (Metrics.snapshot ()) with
        | Ok () ->
            Format.eprintf "stats written to %s@." path;
            0
        | Error e ->
            Printf.eprintf "ksa: %s\n%!" e;
            1)
  in
  let code =
    match replay_path with
    | Some path -> (
        (* replay is a one-shot CLI affair, not a campaign: it keeps
           the direct driver path *)
        let l = Option.value l ~default:(max 1 (n - 1)) in
        match algo_conv ~l ~wait_for algo_name with
        | Error e ->
            prerr_endline e;
            1
        | Ok (module A) -> (
            let module F = Sim.Fuzz.Make (A) in
            let weights =
              match weights_name with
              | "fair" -> Sim.Fuzz.fair_weights
              | "mixed" -> Sim.Fuzz.default_weights
              | w ->
                  Printf.eprintf
                    "unknown weights %S (expected fair or mixed)\n" w;
                  exit 1
            in
            let cfg =
              {
                (Sim.Fuzz.default_config ~k ~n ()) with
                Sim.Fuzz.pattern = Sim.Failure_pattern.initial_dead ~n ~dead;
                weights;
                max_crashes;
                max_steps;
                properties =
                  ([ Sim.Fuzz.K_agreement k; Sim.Fuzz.Validity ]
                  @ if require_termination then [ Sim.Fuzz.Termination ]
                    else []);
                stop;
                model;
                coverage;
              }
            in
            (* a schedule recorded under another model is refused, not
               silently replayed under this one *)
            match Sim.Trace_io.load_schedule ~expect:model ~path () with
            | Error e ->
                prerr_endline e;
                1
            | Ok sched -> (
                let run = F.replay_schedule cfg sched in
                match F.check_run cfg run with
                | Some (prop, reason) ->
                    Format.printf "VIOLATION (%s): %s@."
                      (Sim.Fuzz.property_name prop)
                      reason;
                    2
                | None ->
                    Format.printf "CLEAN: replaying %d steps violates nothing@."
                      (List.length sched);
                    0)))
    | None -> (
        let spec =
          Svc.Task.Fuzz
            {
              Svc.Task.f_algo = algo_name;
              f_n = n;
              f_k = k;
              f_l = l;
              f_wait = wait_for;
              f_dead = dead;
              f_seed = seed;
              f_trials = trials;
              f_max_steps = max_steps;
              f_max_crashes = max_crashes;
              f_weights = weights_name;
              f_termination = require_termination;
              f_coverage = coverage;
              f_model = model;
            }
        in
        let kind = Svc.Task.kind spec in
        let fingerprint = Svc.Task.fingerprint spec in
        let domains =
          match domains with
          | Some d -> d
          | None -> Sim.Explorer.default_domains ()
        in
        let ck_policy =
          match checkpoint_every with
          | None -> Checkpoint.default_policy
          | Some s -> (
              match parse_every s with
              | Ok p -> p
              | Error e ->
                  prerr_endline e;
                  exit 1)
        in
        let sink =
          Option.map
            (fun path ->
              { Checkpoint.path; kind; fingerprint; policy = ck_policy })
            checkpoint
        in
        let resumed =
          Option.bind resume (fun path ->
              load_resume ~strict:strict_resume ~path ~kind ~fingerprint ())
        in
        install_signal_handlers ();
        let ckpt =
          Checkpoint.ctl ?sink
            ~interrupt:(fun () -> Atomic.get shutdown)
            ~ledger:
              (match resumed with Some t -> Checkpoint.ledger t | None -> [])
            ()
        in
        (* the full payload, not just the trial index: a coverage
           campaign's corpus rides in it *)
        let resume_payload = Option.map Checkpoint.payload resumed in
        let report_coverage () =
          if coverage then
            Format.printf
              "coverage: %d state ids, %d transition pairs, corpus %d@."
              (Metrics.gauge_value (Metrics.gauge "fuzz.cov.ids"))
              (Metrics.gauge_value (Metrics.gauge "fuzz.cov.pairs"))
              (Metrics.gauge_value (Metrics.gauge "fuzz.cov.corpus"))
        in
        match Svc.Task.run ~domains ?stop ~ckpt ?resume:resume_payload spec with
        | Error e ->
            prerr_endline e;
            1
        | Ok (Svc.Task.Fuzzed outcome) -> (
            match outcome with
            | Sim.Fuzz.Violation_found v -> (
                Format.printf "VIOLATION at trial %d (%s): %s@."
                  v.Sim.Fuzz.trial v.Sim.Fuzz.property v.Sim.Fuzz.reason;
                report_coverage ();
                Format.printf
                  "schedule: %d steps, shrunk to %d (1-minimal, %d candidate \
                   replays)@."
                  (List.length v.Sim.Fuzz.schedule)
                  (List.length v.Sim.Fuzz.shrunk)
                  v.Sim.Fuzz.shrink_candidates;
                match save_schedule with
                | Some path -> (
                    match
                      Sim.Trace_io.save_schedule ~model ~path v.Sim.Fuzz.shrunk
                    with
                    | Ok () ->
                        Format.printf "shrunk schedule written to %s@." path;
                        2
                    | Error e ->
                        Printf.eprintf "ksa: %s\n%!" e;
                        1)
                | None -> 2)
            | Sim.Fuzz.Clean { trials } ->
                Format.printf "CLEAN: %d trials, no violation@." trials;
                report_coverage ();
                0
            | Sim.Fuzz.Budget_exhausted { trials } ->
                Format.printf
                  "BUDGET EXHAUSTED: no violation in the %d trials that ran \
                   before the budget@."
                  trials;
                report_coverage ();
                4)
        | Ok (Svc.Task.Explored _ | Svc.Task.Crash_explored _ | Svc.Task.Probed _)
          ->
            (* a Fuzz spec cannot produce these *)
            assert false)
  in
  let stats_code = write_stats () in
  if Atomic.get shutdown then begin
    resume_hint ~checkpoint;
    130
  end
  else if stats_code <> 0 then stats_code
  else code

let trials_arg =
  Arg.(
    value & opt int 1000
    & info [ "trials" ] ~docv:"T" ~doc:"Number of random schedules to try.")

let max_steps_arg =
  Arg.(
    value & opt int 200
    & info [ "max-steps" ] ~docv:"S" ~doc:"Per-trial step budget.")

let max_crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "max-crashes" ] ~docv:"C"
        ~doc:
          "Per trial, draw up to C random crash times on top of the base \
           failure pattern.")

let weights_arg =
  Arg.(
    value
    & opt string "mixed"
    & info [ "weights" ] ~docv:"W"
        ~doc:
          "Action weighting: 'mixed' (partial/empty deliveries and \
           crash-drops) or 'fair' (deliver-all steps only).")

let require_termination_arg =
  Arg.(
    value & flag
    & info [ "require-termination" ]
        ~doc:
          "Also flag runs that exhaust the step budget with a correct \
           process undecided (use with fair weights).")

let coverage_arg =
  Arg.(
    value & flag
    & info [ "coverage" ]
        ~doc:
          "Coverage-guided (greybox) generation: track which interned state \
           ids and state transitions each trial reaches, keep a corpus of \
           schedules that lit new coverage, and mutate corpus entries \
           instead of always sampling fresh schedules.  Deterministic for a \
           fixed seed, like blind mode; the corpus rides the checkpoint, so \
           kill/resume campaigns keep their learned coverage.")

let max_seconds_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-seconds" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget; ends the campaign early with exit 4 after \
           flushing a final checkpoint when --checkpoint is set — an expiry \
           preserves exactly the progress a SIGINT would (note: which \
           trials ran is then timing-dependent).")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Random schedule search with counterexample shrinking: drive the \
          algorithm through seeded random adversary actions (optionally \
          coverage-guided with --coverage), check k-agreement/validity (and \
          optionally termination), and on violation shrink the schedule to \
          a 1-minimal replayable counterexample.  Exits 2 on a violation, 0 \
          when all trials are clean, and 4 when --max-seconds cut the \
          campaign short.  With --replay FILE, re-runs a saved schedule and \
          reports its verdict instead of fuzzing.")
    Term.(
      const fuzz $ algo_arg $ n_arg $ k_arg $ l_arg $ wait_arg $ seed_arg
      $ trials_arg $ max_steps_arg $ max_crashes_arg $ dead_arg $ model_arg
      $ weights_arg $ require_termination_arg $ coverage_arg $ domains_arg
      $ stats_json_arg $ save_schedule_arg $ replay_arg $ max_seconds_arg
      $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ strict_resume_arg)

(* ---------- screen ---------- *)

let screen algo_name n f k l wait_for model exhaustive_c =
  let l = Option.value l ~default:(max 1 (n - f)) in
  match algo_conv ~l ~wait_for algo_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok (module A) ->
      let partition =
        match Core.Partitioning.theorem2 ~n ~f ~k with
        | Some p -> p
        | None ->
            (* outside Theorem 2's region: use k-1 singleton groups *)
            Core.Partitioning.make ~n
              ~groups:(List.init (k - 1) (fun i -> [ i ]))
      in
      Format.printf "partition: %a@." Core.Partitioning.pp partition;
      let report =
        Core.Theorem1.evaluate ~exhaustive_c ~subsystem_crash_budget:1
          (module A) ~partition
      in
      Format.printf "%a@." Core.Theorem1.pp_report report;
      (match report.Core.Theorem1.portfolio.Core.Theorem1.witness with
      | Some w ->
          Format.printf "witness (%s): %a@." w.Core.Theorem1.adversary
            Sim.Run.pp_summary w.Core.Theorem1.run
      | None -> ());
      let theorem1_caught =
        report.Core.Theorem1.verdict = `Not_a_kset_algorithm
      in
      (* model-aware leg: under a non-crash model, also sweep the whole
         schedule/corruption space within the model's budget — Theorem 1
         witnesses are crash constructions and cannot see forged or
         omitted messages *)
      let model_caught =
        match model with
        | Sim.Fault_model.Crash -> false
        | m -> (
            let module Ex = Sim.Explorer.Make (A) in
            let check decisions =
              let distinct =
                List.sort_uniq Sim.Value.compare
                  (List.map (fun (_, v, _) -> v) decisions)
              in
              if List.length distinct > k then
                Some
                  (Printf.sprintf "%d distinct decisions exceed k=%d"
                     (List.length distinct) k)
              else None
            in
            match
              Ex.explore_with_crashes ~model:m ~max_configs:2_000_000 ~n
                ~inputs:(Sim.Value.distinct_inputs n)
                ~crash_budget:(Sim.Fault_model.budget m) ~check ()
            with
            | Sim.Explorer.Safety_violation { reason; _ } ->
                Format.printf "%s sweep: VIOLATION %s@."
                  (Sim.Fault_model.to_string m) reason;
                true
            | Sim.Explorer.Indeterminate _ ->
                Format.printf "%s sweep: indeterminate (budget)@."
                  (Sim.Fault_model.to_string m);
                false
            | Sim.Explorer.All_paths_decide _ | Sim.Explorer.Stuck _ ->
                Format.printf "%s sweep: no safety violation@."
                  (Sim.Fault_model.to_string m);
                false)
      in
      if theorem1_caught || model_caught then 2 else 0

let exhaustive_c_arg =
  Arg.(
    value & flag
    & info [ "exhaustive-c" ]
        ~doc:
          "Corroborate condition (C) constructively: exhaustively search \
           the restricted subsystem \xe2\x9f\xa8D\xcc\x84\xe2\x9f\xa9 for an FLP-style trap.")

let screen_cmd =
  Cmd.v
    (Cmd.info "screen"
       ~doc:
         "Theorem-1 screening: search for (dec-D) witnesses.  Exits 2 when \
          the algorithm is caught.")
    Term.(
      const screen $ algo_arg $ n_arg $ f_arg $ k_arg $ l_arg $ wait_arg
      $ model_arg $ exhaustive_c_arg)

(* ---------- paste ---------- *)

let paste algo_name groups_str l wait_for =
  let groups =
    match groups_str with
    | Some s -> groups_of_string s
    | None -> [ [ 0 ]; [ 1 ]; [ 2; 3; 4 ] ]
  in
  let n = List.length (List.concat groups) in
  let l = Option.value l ~default:(max 1 (n / List.length groups)) in
  match algo_conv ~l ~wait_for algo_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok (module A) -> (
      match Core.Pasting.lemma12 (module A) ~groups with
      | Error e ->
          Format.printf "construction failed: %s@." e;
          1
      | Ok r ->
          Format.printf "pasted run: %a@." Sim.Run.pp_summary r.Core.Pasting.pasted;
          Format.printf "distinct decisions: %d (k = %d groups)@."
            r.Core.Pasting.distinct_decisions (List.length groups);
          Format.printf "per-group indistinguishability: %s@."
            (String.concat " "
               (List.map string_of_bool r.Core.Pasting.per_group_indistinguishable));
          (match r.Core.Pasting.definition7 with
          | Some (Ok ()) -> Format.printf "pasted history: Definition 7 ok@."
          | Some (Error e) -> Format.printf "pasted history: %s@." e
          | None -> ());
          (match r.Core.Pasting.lemma9 with
          | Some (Ok ()) -> Format.printf "pasted history: Lemma 9 ok@."
          | Some (Error e) -> Format.printf "lemma 9: %s@." e
          | None -> ());
          0)

let paste_cmd =
  Cmd.v
    (Cmd.info "paste"
       ~doc:"Execute the Lemma-12 pasting construction over a partition.")
    Term.(
      const paste $ algo_arg
      $ groups_arg ~doc:"Partition, e.g. '0|1|2,3,4'."
      $ l_arg $ wait_arg)

(* ---------- independence ---------- *)

let independence algo_name n l wait_for family =
  match algo_conv ~l:(Option.value l ~default:2) ~wait_for algo_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok (module A) ->
      let fam =
        match family with
        | "wait-free" -> Core.Independence.wait_free_family ~n
        | "singletons" -> Core.Independence.obstruction_free_family ~n
        | s when String.length s > 2 && String.sub s 0 2 = "f=" ->
            let f = int_of_string (String.sub s 2 (String.length s - 2)) in
            Core.Independence.f_resilient_family ~n ~f
        | _ -> Core.Independence.wait_free_family ~n
      in
      let verdicts =
        Core.Independence.check_family ~max_steps:20_000 (module A) ~n ~family:fam
      in
      List.iter
        (fun v ->
          Format.printf "{%s}: %s@."
            (String.concat " " (List.map string_of_int v.Core.Independence.set))
            (if v.Core.Independence.independent then "independent" else "dependent"))
        verdicts;
      let all = List.for_all (fun v -> v.Core.Independence.independent) verdicts in
      Format.printf "T-independence %s@." (if all then "holds" else "fails");
      0

let family_arg =
  Arg.(
    value
    & opt string "wait-free"
    & info [ "family" ] ~docv:"FAM"
        ~doc:"Set family: wait-free, singletons, or f=<int>.")

let independence_cmd =
  Cmd.v
    (Cmd.info "independence" ~doc:"Check T-independence of an algorithm.")
    Term.(const independence $ algo_arg $ n_arg $ l_arg $ wait_arg $ family_arg)

(* ---------- ho ---------- *)

let ho algo_name n rounds assignment_str =
  let module MF = Ksa_ho.Min_flood.Make (struct
    let rounds = 4
  end) in
  let algo =
    match algo_name with
    | "min-flood" -> Ok (module MF : Ksa_ho.Ho_algorithm.S)
    | "uniform-voting" -> Ok (module Ksa_ho.Uniform_voting.A : Ksa_ho.Ho_algorithm.S)
    | "last-voting" -> Ok (module Ksa_ho.Last_voting.A : Ksa_ho.Ho_algorithm.S)
    | other -> Error (Printf.sprintf "unknown HO algorithm %S" other)
  in
  let assignment =
    match assignment_str with
    | "complete" -> Ok (Ksa_ho.Assignment.complete ~n)
    | s when String.length s > 10 && String.sub s 0 10 = "partition:" ->
        let groups = groups_of_string (String.sub s 10 (String.length s - 10)) in
        Ok (Ksa_ho.Assignment.partitioned ~n ~groups ())
    | s when String.length s > 9 && String.sub s 0 9 = "majority:" -> (
        match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
        | Some seed ->
            Ok
              (Ksa_ho.Assignment.random ~rng:(Rng.create ~seed) ~n
                 ~min_size:((n / 2) + 1) ())
        | None -> Error "majority:<seed> expected")
    | other -> Error (Printf.sprintf "unknown assignment %S" other)
  in
  match (algo, assignment) with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      1
  | Ok (module A), Ok assignment ->
      let module E = Ksa_ho.Engine.Make (A) in
      let o =
        E.run ~n ~inputs:(Sim.Value.distinct_inputs n) ~assignment ~rounds ()
      in
      Format.printf "%s over %d rounds: decisions={%s} distinct=%d@." A.name
        o.E.rounds_run
        (String.concat ", "
           (List.map
              (fun (p, v, r) -> Printf.sprintf "p%d=%d@r%d" p v r)
              o.E.decisions))
        (E.distinct_decisions o);
      0

let rounds_arg =
  Arg.(value & opt int 12 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to run.")

let assignment_arg =
  Arg.(
    value
    & opt string "complete"
    & info [ "assignment" ] ~docv:"HO"
        ~doc:"HO assignment: complete, partition:0,1|2,3, or majority:<seed>.")

let ho_algo_arg =
  Arg.(
    value
    & opt string "uniform-voting"
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"HO algorithm: min-flood, uniform-voting, or last-voting.")

let ho_cmd =
  Cmd.v
    (Cmd.info "ho" ~doc:"Run a Heard-Of round-model algorithm.")
    Term.(const ho $ ho_algo_arg $ n_arg $ rounds_arg $ assignment_arg)

(* ---------- serve: the campaign daemon ---------- *)

let serve dir listen retry_base retry_cap retries seed deadline domains
    checkpoint_every exit_when_idle verbose =
  let ck_policy =
    match checkpoint_every with
    | None -> Checkpoint.default_policy
    | Some s -> (
        match parse_every s with
        | Ok p -> p
        | Error e ->
            prerr_endline e;
            exit 1)
  in
  let cfg =
    {
      (Svc.Daemon.default_cfg ~dir) with
      Svc.Daemon.addr = listen;
      retry =
        { Backoff.default_retry with Backoff.base = retry_base;
          cap = retry_cap };
      retry_max = retries;
      seed;
      deadline;
      domains;
      exit_when_idle;
      ckpt_policy = ck_policy;
      verbose;
    }
  in
  Svc.Daemon.serve cfg

let serve_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Campaign directory (created if missing).  Holds one durable \
           record and one checkpoint file per job; a restarted daemon \
           pointed at the same directory adopts interrupted jobs and \
           resumes them.")

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Serve the job API on $(b,unix:)PATH or $(b,tcp:)HOST:PORT.  \
           Without it the daemon just runs the jobs already in the \
           directory (pair with --exit-when-idle for batch mode).")

let retry_base_arg =
  Arg.(
    value & opt float 0.5
    & info [ "retry-base" ] ~docv:"SEC"
        ~doc:"First retry backoff delay, seconds.")

let retry_cap_arg =
  Arg.(
    value & opt float 30.0
    & info [ "retry-cap" ] ~docv:"SEC"
        ~doc:"Upper bound on the exponential retry backoff, seconds.")

let retries_arg =
  Arg.(
    value & opt int 3
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Failed attempts allowed per job before it is marked dead \
           (overridable per job at submission).")

let serve_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Root seed for the deterministic retry jitter: two daemons with \
           the same seed produce the same backoff schedule.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SEC"
        ~doc:
          "Default per-job wall-clock budget.  Expiry checkpoints the job \
           and requeues it resumable instead of discarding its progress.")

let serve_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains per job.  1 (the default) keeps every job on the \
           resumable sequential drivers; resumed jobs always run \
           sequentially regardless.")

let exit_when_idle_arg =
  Arg.(
    value & flag
    & info [ "exit-when-idle" ]
        ~doc:
          "Exit 0 once no job is queued, retrying, or running — batch mode \
           for scripts and benchmarks.")

let serve_verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose" ] ~doc:"Log job transitions to stderr.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-tolerant campaign daemon: a durable job queue of \
          explore/fuzz campaigns with capped-exponential retry, per-job \
          deadlines that checkpoint-and-requeue, SIGTERM drain, and \
          kill-safe restart (every job transition is an atomic durable \
          write; interrupted jobs resume from their checkpoints with \
          bit-identical verdicts).")
    Term.(
      const serve $ serve_dir_arg $ listen_arg $ retry_base_arg
      $ retry_cap_arg $ retries_arg $ serve_seed_arg $ deadline_arg
      $ serve_domains_arg $ checkpoint_every_arg $ exit_when_idle_arg
      $ serve_verbose_arg)

(* ---------- job: the daemon's HTTP client ---------- *)

let job_addr_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "addr" ] ~docv:"ADDR"
        ~doc:"The daemon's --listen address (unix:PATH or tcp:HOST:PORT).")

let job_id_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Job id.")

(* every client verb funnels through here: transport errors exit 1 *)
let job_call ~addr ~meth ~path ?body () =
  match Svc.Http.request ~addr ~meth ~path ?body () with
  | Error e ->
      Printf.eprintf "ksa: %s\n%!" e;
      exit 1
  | Ok (status, body) -> (status, body)

let job_submit addr spec_str deadline retries =
  match Svc.Json.parse spec_str with
  | Error e ->
      Printf.eprintf "ksa: bad spec: %s\n%!" e;
      1
  | Ok spec_json -> (
      (* validate locally first: a bad spec should not need a daemon
         round-trip to be diagnosed *)
      match Svc.Task.spec_of_json spec_json with
      | Error e ->
          Printf.eprintf "ksa: bad spec: %s\n%!" e;
          1
      | Ok _ -> (
          let body =
            Svc.Json.to_string
              (Svc.Json.Obj
                 ([ ("spec", spec_json) ]
                 @ (match deadline with
                   | None -> []
                   | Some d -> [ ("deadline", Svc.Json.Float d) ])
                 @
                 match retries with
                 | None -> []
                 | Some r -> [ ("retries", Svc.Json.Int r) ]))
          in
          match job_call ~addr ~meth:"POST" ~path:"/jobs" ~body () with
          | 201, reply -> (
              match
                Result.bind (Svc.Json.parse reply) (fun j ->
                    match Option.bind (Svc.Json.mem "id" j) Svc.Json.get_int
                    with
                    | Some id -> Ok id
                    | None -> Error "no id in reply")
              with
              | Ok id ->
                  (* just the id: scripts capture it for wait/status *)
                  print_endline (string_of_int id);
                  0
              | Error e ->
                  Printf.eprintf "ksa: bad reply: %s\n%!" e;
                  1)
          | status, reply ->
              Printf.eprintf "ksa: submit failed (%d): %s\n%!" status reply;
              1))

let job_list addr =
  match job_call ~addr ~meth:"GET" ~path:"/jobs" () with
  | 200, body ->
      print_endline body;
      0
  | status, body ->
      Printf.eprintf "ksa: list failed (%d): %s\n%!" status body;
      1

let job_status addr id =
  match job_call ~addr ~meth:"GET" ~path:(Printf.sprintf "/jobs/%d" id) () with
  | 200, body ->
      print_endline body;
      0
  | 404, _ ->
      Printf.eprintf "ksa: no such job %d\n%!" id;
      1
  | status, body ->
      Printf.eprintf "ksa: status failed (%d): %s\n%!" status body;
      1

let job_wait addr id timeout =
  let start = Clock.now_ns () in
  let path = Printf.sprintf "/jobs/%d" id in
  let rec poll () =
    match job_call ~addr ~meth:"GET" ~path () with
    | 404, _ ->
        Printf.eprintf "ksa: no such job %d\n%!" id;
        1
    | 200, body -> (
        let state =
          Result.bind (Svc.Json.parse body) Svc.Jobstore.job_of_json
          |> Result.map (fun j -> j.Svc.Jobstore.state)
        in
        match state with
        | Error e ->
            Printf.eprintf "ksa: bad reply: %s\n%!" e;
            1
        | Ok Svc.Jobstore.Done ->
            print_endline body;
            0
        | Ok Svc.Jobstore.Dead ->
            print_endline body;
            1
        | Ok _ ->
            if Clock.elapsed_s ~since:start > timeout then begin
              Printf.eprintf "ksa: timed out waiting for job %d\n%!" id;
              4
            end
            else begin
              Unix.sleepf 0.2;
              poll ()
            end)
    | status, body ->
        Printf.eprintf "ksa: wait failed (%d): %s\n%!" status body;
        1
  in
  poll ()

let job_cancel addr id =
  match
    job_call ~addr ~meth:"DELETE" ~path:(Printf.sprintf "/jobs/%d" id) ()
  with
  | (200 | 202), body ->
      print_endline body;
      0
  | 404, _ ->
      Printf.eprintf "ksa: no such job %d\n%!" id;
      1
  | status, body ->
      Printf.eprintf "ksa: cancel failed (%d): %s\n%!" status body;
      1

let job_drain addr =
  match job_call ~addr ~meth:"POST" ~path:"/drain" () with
  | 202, body ->
      print_endline body;
      0
  | status, body ->
      Printf.eprintf "ksa: drain failed (%d): %s\n%!" status body;
      1

let job_cmd =
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "The job spec as JSON, e.g. \
             '{\"task\":\"explore\",\"algo\":\"kset-flp\",\"n\":4,\"k\":2}' \
             or '{\"task\":\"fuzz\",\"n\":5,\"k\":2,\"trials\":500}'.  \
             Absent fields take the CLI defaults.")
  in
  let submit_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:"Per-job wall-clock budget (overrides the daemon default).")
  in
  let submit_retries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget (overrides the daemon default).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 60.0
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:"Give up (exit 4) after SEC seconds.")
  in
  Cmd.group
    (Cmd.info "job"
       ~doc:
         "Talk to a running campaign daemon: submit, inspect, await, and \
          cancel jobs over its HTTP API.")
    [
      Cmd.v
        (Cmd.info "submit"
           ~doc:
             "Submit a job; prints the assigned job id to stdout on \
              acceptance.")
        Term.(
          const job_submit $ job_addr_arg $ spec_arg $ submit_deadline_arg
          $ submit_retries_arg);
      Cmd.v
        (Cmd.info "list" ~doc:"Print all job records as JSON.")
        Term.(const job_list $ job_addr_arg);
      Cmd.v
        (Cmd.info "status" ~doc:"Print one job record as JSON.")
        Term.(const job_status $ job_addr_arg $ job_id_arg);
      Cmd.v
        (Cmd.info "wait"
           ~doc:
             "Poll until the job is done (exit 0) or dead (exit 1), \
              printing its final record; exit 4 on timeout.")
        Term.(const job_wait $ job_addr_arg $ job_id_arg $ timeout_arg);
      Cmd.v
        (Cmd.info "cancel"
           ~doc:
             "Cancel a job.  A queued or retrying job dies immediately; a \
              running job is interrupted through its checkpoint controller.")
        Term.(const job_cancel $ job_addr_arg $ job_id_arg);
      Cmd.v
        (Cmd.info "drain"
           ~doc:
             "Ask the daemon to drain: finish checkpointing the running \
              job, requeue it resumable, persist everything, and exit 0.")
        Term.(const job_drain $ job_addr_arg);
    ]

let main_cmd =
  Cmd.group
    (Cmd.info "ksa" ~version:"1.0.0"
       ~doc:
         "Executable companion to 'Easy Impossibility Proofs for k-Set \
          Agreement in Message Passing Systems'.")
    [
      experiments_cmd;
      border_cmd;
      simulate_cmd;
      explore_cmd;
      fuzz_cmd;
      screen_cmd;
      paste_cmd;
      independence_cmd;
      ho_cmd;
      serve_cmd;
      job_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
