module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

type op_spec = Write_input | Write_value of Value.t | Read_of of Pid.t

let write_then_read_all ~n ~me =
  ignore me;
  [ Write_input ]
  @ List.init n (fun q -> Read_of q)
  @ [ Write_value (1000 + me) ]
  @ List.init n (fun q -> Read_of q)

module Make (S : sig
  val script : n:int -> me:Pid.t -> op_spec list
  val write_back : bool
end) =
struct
  type message =
    | WReq of int * int * Value.t  (** opid, ts, value; register = sender's *)
    | WAck of int
    | RReq of int * Pid.t  (** opid, owner *)
    | RResp of int * int * Value.t
    | WBReq of int * Pid.t * int * Value.t
    | WBAck of int

  type logged = {
    kind : Register.kind;
    owner : Pid.t;
    ts : int;
    value : Value.t;
    invoked_step : int;
    responded_step : int;
  }

  type phase =
    | Idle
    | WWait of { opid : int; acks : int; ts : int; value : Value.t; invoked : int }
    | RWait of {
        opid : int;
        owner : Pid.t;
        resps : (int * Value.t) list;
        invoked : int;
      }
    | WBWait of {
        opid : int;
        owner : Pid.t;
        ts : int;
        value : Value.t;
        acks : int;
        invoked : int;
      }

  type state = {
    n : int;
    me : Pid.t;
    input : Value.t;
    store : (int * Value.t) Pid.Map.t;
    script : op_spec list;
    phase : phase;
    own_ts : int;
    steps : int;
    next_opid : int;
    log : logged list; (* reversed *)
    decided : bool;
  }

  let name = if S.write_back then "abd" else "abd-weak"
  let uses_fd = false

  let init ~n ~me ~input =
    let store =
      List.fold_left
        (fun acc q -> Pid.Map.add q (0, -1) acc)
        Pid.Map.empty (Pid.universe n)
    in
    {
      n;
      me;
      input;
      store;
      script = S.script ~n ~me;
      phase = Idle;
      own_ts = 0;
      steps = 0;
      next_opid = 0;
      log = [];
      decided = false;
    }

  let majority st = (st.n / 2) + 1
  let others st = List.filter (fun q -> not (Pid.equal q st.me)) (List.init st.n Fun.id)
  let broadcast st msg = List.map (fun q -> (q, msg)) (others st)

  (* store is a balanced map; the op log is genuinely ordered *)
  let canon (st : state) = st
  let canon_message (m : message) = m
  let forge_pool ~n:_ ~values:_ = []

  let update_store st owner (ts, v) =
    let cur_ts, _ = Pid.Map.find owner st.store in
    if ts > cur_ts then { st with store = Pid.Map.add owner (ts, v) st.store }
    else st

  (* replica side: react to one message, maybe producing a reply *)
  let replica st (src, msg) =
    match msg with
    | WReq (opid, ts, v) -> (update_store st src (ts, v), [ (src, WAck opid) ])
    | RReq (opid, owner) ->
        let ts, v = Pid.Map.find owner st.store in
        (st, [ (src, RResp (opid, ts, v)) ])
    | WBReq (opid, owner, ts, v) ->
        (update_store st owner (ts, v), [ (src, WBAck opid) ])
    | WAck opid -> (
        match st.phase with
        | WWait w when w.opid = opid ->
            ({ st with phase = WWait { w with acks = w.acks + 1 } }, [])
        | _ -> (st, []))
    | RResp (opid, ts, v) -> (
        match st.phase with
        | RWait r when r.opid = opid ->
            ({ st with phase = RWait { r with resps = (ts, v) :: r.resps } }, [])
        | _ -> (st, []))
    | WBAck opid -> (
        match st.phase with
        | WBWait w when w.opid = opid ->
            ({ st with phase = WBWait { w with acks = w.acks + 1 } }, [])
        | _ -> (st, []))

  (* client side: complete the current phase if its quorum is in *)
  let complete st =
    match st.phase with
    | WWait w when w.acks >= majority st ->
        let entry =
          {
            kind = Register.Write;
            owner = st.me;
            ts = w.ts;
            value = w.value;
            invoked_step = w.invoked;
            responded_step = st.steps;
          }
        in
        ({ st with phase = Idle; log = entry :: st.log }, [])
    | RWait r when List.length r.resps >= majority st ->
        let ts, v =
          List.fold_left
            (fun (bts, bv) (ts, v) -> if ts > bts then (ts, v) else (bts, bv))
            (List.hd r.resps) (List.tl r.resps)
        in
        let st = update_store st r.owner (ts, v) in
        if S.write_back then
          (* write-back phase: install the chosen pair at a majority *)
          let st =
            {
              st with
              phase =
                WBWait
                  { opid = r.opid; owner = r.owner; ts; value = v; acks = 1; invoked = r.invoked };
            }
          in
          (st, broadcast st (WBReq (r.opid, r.owner, ts, v)))
        else
          (* weak variant: return immediately — regular, not atomic *)
          let entry =
            {
              kind = Register.Read;
              owner = r.owner;
              ts;
              value = v;
              invoked_step = r.invoked;
              responded_step = st.steps;
            }
          in
          ({ st with phase = Idle; log = entry :: st.log }, [])
    | WBWait w when w.acks >= majority st ->
        let entry =
          {
            kind = Register.Read;
            owner = w.owner;
            ts = w.ts;
            value = w.value;
            invoked_step = w.invoked;
            responded_step = st.steps;
          }
        in
        ({ st with phase = Idle; log = entry :: st.log }, [])
    | WWait _ | RWait _ | WBWait _ | Idle -> (st, [])

  (* client side: start the next scripted operation *)
  let start st =
    match (st.phase, st.script) with
    | Idle, spec :: rest -> (
        let st = { st with script = rest; next_opid = st.next_opid + 1 } in
        let opid = st.next_opid in
        match spec with
        | Write_input | Write_value _ ->
            let v =
              match spec with
              | Write_value v -> v
              | Write_input | Read_of _ -> st.input
            in
            let ts = st.own_ts + 1 in
            let st = { st with own_ts = ts } in
            let st = update_store st st.me (ts, v) in
            let st =
              { st with phase = WWait { opid; acks = 1; ts; value = v; invoked = st.steps } }
            in
            (st, broadcast st (WReq (opid, ts, v)))
        | Read_of owner ->
            let own_pair = Pid.Map.find owner st.store in
            let st =
              {
                st with
                phase = RWait { opid; owner; resps = [ own_pair ]; invoked = st.steps };
              }
            in
            (st, broadcast st (RReq (opid, owner))))
    | (Idle | WWait _ | RWait _ | WBWait _), _ -> (st, [])

  let step st ~received ~fd =
    ignore fd;
    let st = { st with steps = st.steps + 1 } in
    let st, replies =
      List.fold_left
        (fun (st, acc) incoming ->
          let st, out = replica st incoming in
          (st, acc @ out))
        (st, []) received
    in
    let st, wb_sends = complete st in
    let st, op_sends = start st in
    let decision =
      if st.phase = Idle && st.script = [] && not st.decided then Some st.input
      else None
    in
    let st =
      match decision with Some _ -> { st with decided = true } | None -> st
    in
    (st, replies @ wb_sends @ op_sends, decision)

  let completed_ops st = List.length st.log

  let ops_of run ~state_of =
    let n = run.Ksa_sim.Run.n in
    List.concat_map
      (fun p ->
        let events = Array.of_list (Ksa_sim.Run.steps_of run p) in
        let time_of_step i =
          if i >= 1 && i <= Array.length events then
            (events.(i - 1) : Ksa_sim.Event.t).time
          else -1
        in
        let st = state_of p in
        let completed =
          List.rev_map
            (fun l ->
              {
                Register.kind = l.kind;
                client = p;
                owner = l.owner;
                ts = l.ts;
                value = l.value;
                invoked = time_of_step l.invoked_step;
                responded = time_of_step l.responded_step;
              })
            st.log
        in
        (* a write still in flight (writer slow or crashed mid-write)
           may already be visible to readers: emit it as a pending
           operation that never responds *)
        let pending =
          match st.phase with
          | WWait w ->
              [
                {
                  Register.kind = Register.Write;
                  client = p;
                  owner = p;
                  ts = w.ts;
                  value = w.value;
                  invoked = time_of_step w.invoked;
                  responded = max_int;
                };
              ]
          | Idle | RWait _ | WBWait _ -> []
        in
        completed @ pending)
      (Pid.universe n)

  let pp_phase ppf = function
    | Idle -> Format.pp_print_string ppf "idle"
    | WWait w -> Format.fprintf ppf "w%d(%d acks)" w.opid w.acks
    | RWait r -> Format.fprintf ppf "r%d(%d resps)" r.opid (List.length r.resps)
    | WBWait w -> Format.fprintf ppf "wb%d(%d acks)" w.opid w.acks

  let pp_state ppf st =
    Format.fprintf ppf "{%a %a ops=%d}" Pid.pp st.me pp_phase st.phase
      (completed_ops st)

  let pp_message ppf = function
    | WReq (o, ts, v) -> Format.fprintf ppf "wreq(%d,%d,%a)" o ts Value.pp v
    | WAck o -> Format.fprintf ppf "wack(%d)" o
    | RReq (o, owner) -> Format.fprintf ppf "rreq(%d,%a)" o Pid.pp owner
    | RResp (o, ts, v) -> Format.fprintf ppf "rresp(%d,%d,%a)" o ts Value.pp v
    | WBReq (o, owner, ts, v) ->
        Format.fprintf ppf "wbreq(%d,%a,%d,%a)" o Pid.pp owner ts Value.pp v
    | WBAck o -> Format.fprintf ppf "wback(%d)" o
end
