external monotonic_ns : unit -> int64 = "ksa_clock_monotonic_ns"

let now_ns () = Int64.to_int (monotonic_ns ())
let elapsed_s ~since = float_of_int (now_ns () - since) *. 1e-9
let wall_s = Unix.gettimeofday
