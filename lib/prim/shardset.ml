(* Sharded concurrent insert-only string->int map.  See the .mli for
   the layout and the soundness argument of the optimistic read. *)

type shard = {
  lock : Mutex.t;
  (* [keys]/[vals] are replaced wholesale on resize (the old arrays
     are never written again), so an optimistic reader that loaded
     [keys] once probes a coherent — possibly stale — snapshot. *)
  mutable keys : string array;
  mutable vals : int array;
  mutable count : int;
  mutable limit : int;  (* resize watermark: 7/10 of capacity *)
}

type t = {
  shards : shard array;
  shard_bits : int;
  c_collisions : Metrics.counter;
  c_resizes : Metrics.counter;
  g_occupancy : Metrics.gauge;
  g_capacity : Metrics.gauge;
  g_shard_max : Metrics.gauge;
  g_shard_min : Metrics.gauge;
}

type admission = Found of int | Admitted of int | Rejected

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = 64) ?(capacity = 65_536) ~name () =
  let nshards = pow2_at_least (max 1 shards) 1 in
  let per_shard = pow2_at_least (max 16 (capacity / nshards)) 16 in
  let mk _ =
    {
      lock = Mutex.create ();
      keys = Array.make per_shard "";
      vals = Array.make per_shard 0;
      count = 0;
      limit = per_shard * 7 / 10;
    }
  in
  let rec bits_of n acc = if n <= 1 then acc else bits_of (n lsr 1) (acc + 1) in
  {
    shards = Array.init nshards mk;
    shard_bits = bits_of nshards 0;
    c_collisions = Metrics.counter (Printf.sprintf "shardset.%s.collisions" name);
    c_resizes = Metrics.counter (Printf.sprintf "shardset.%s.resizes" name);
    g_occupancy = Metrics.gauge (Printf.sprintf "shardset.%s.occupancy" name);
    g_capacity = Metrics.gauge (Printf.sprintf "shardset.%s.capacity" name);
    g_shard_max =
      Metrics.gauge (Printf.sprintf "shardset.%s.shard.occupancy.max" name);
    g_shard_min =
      Metrics.gauge (Printf.sprintf "shardset.%s.shard.occupancy.min" name);
  }

(* [Hashtbl.hash] mixes the whole string (the traversal limit only
   bounds structured values), which the packed configuration keys
   need: two configs can differ only deep into the key. *)
let[@inline] hash_of key = Hashtbl.hash (key : string)
let[@inline] shard_of t h = Array.unsafe_get t.shards (h land (Array.length t.shards - 1))

(* Probe [keys] from the hash's home slot.  [`Empty (slot, steps)] is
   where an insert would land; [`Wrapped] can only happen on a stale
   or concurrently-mutated snapshot (under the lock the load factor
   guarantees an empty slot) and sends the caller to the locked
   path. *)
let probe keys key start =
  let cap = Array.length keys in
  let m = cap - 1 in
  let rec go i steps =
    if steps > cap then `Wrapped
    else
      let j = i land m in
      let k = Array.unsafe_get keys j in
      if String.length k = 0 then `Empty (j, steps)
      else if String.equal k key then `Found j
      else go (i + 1) (steps + 1)
  in
  go start 0

(* caller holds [s.lock] *)
let resize t s start_of =
  let old_keys = s.keys and old_vals = s.vals in
  let cap = 2 * Array.length old_keys in
  let keys = Array.make cap "" and vals = Array.make cap 0 in
  Array.iteri
    (fun i k ->
      if String.length k <> 0 then
        match probe keys k (start_of k) with
        | `Empty (j, _) ->
            keys.(j) <- k;
            vals.(j) <- old_vals.(i)
        | `Found _ | `Wrapped -> assert false)
    old_keys;
  s.keys <- keys;
  s.vals <- vals;
  s.limit <- cap * 7 / 10;
  Metrics.incr t.c_resizes

let admit t key ~ticket =
  if String.length key = 0 then
    invalid_arg "Shardset.admit: the empty key is reserved";
  let h = hash_of key in
  let s = shard_of t h in
  let start = h lsr t.shard_bits in
  Mutex.lock s.lock;
  let result =
    match probe s.keys key start with
    | `Found j -> Found s.vals.(j)
    | `Wrapped -> assert false (* load factor < 1 under the lock *)
    | `Empty (j, steps) -> (
        match ticket () with
        | None -> Rejected
        | Some v ->
            if steps > 0 then Metrics.add t.c_collisions steps;
            (* value before key: a racy reader that observes the key
               observes a fully-initialised slot *)
            s.vals.(j) <- v;
            s.keys.(j) <- key;
            s.count <- s.count + 1;
            if s.count > s.limit then resize t s (fun k -> hash_of k lsr t.shard_bits);
            Admitted v)
  in
  Mutex.unlock s.lock;
  result

let add t key v =
  match admit t key ~ticket:(fun () -> Some v) with
  | Admitted _ -> true
  | Found _ -> false
  | Rejected -> assert false

let find t key =
  if String.length key = 0 then None
  else begin
    let h = hash_of key in
    let s = shard_of t h in
    Mutex.lock s.lock;
    let r =
      match probe s.keys key (h lsr t.shard_bits) with
      | `Found j -> Some s.vals.(j)
      | `Empty _ | `Wrapped -> None
    in
    Mutex.unlock s.lock;
    r
  end

let mem t key =
  if String.length key = 0 then false
  else begin
    let h = hash_of key in
    let s = shard_of t h in
    (* optimistic: one load of the published table, no lock.  A hit is
       definitive (insert-only); a miss may be stale, so confirm. *)
    match probe s.keys key (h lsr t.shard_bits) with
    | `Found _ -> true
    | `Empty _ | `Wrapped -> find t key <> None
  end

let length t =
  Array.fold_left (fun acc s -> acc + s.count) 0 t.shards

let iter f t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () ->
          Array.iteri
            (fun i k -> if String.length k <> 0 then f k s.vals.(i))
            s.keys))
    t.shards

let publish_metrics t =
  let occ = ref 0 and cap = ref 0 in
  let mx = ref 0 and mn = ref max_int in
  Array.iter
    (fun s ->
      occ := !occ + s.count;
      cap := !cap + Array.length s.keys;
      if s.count > !mx then mx := s.count;
      if s.count < !mn then mn := s.count)
    t.shards;
  Metrics.gauge_set t.g_occupancy !occ;
  Metrics.gauge_set t.g_capacity !cap;
  Metrics.gauge_set t.g_shard_max !mx;
  Metrics.gauge_set t.g_shard_min (if !mn = max_int then 0 else !mn)
