(* Crash-safe file writes and self-validating record framing.

   Campaign state must survive SIGKILL at any instant, so every write
   goes through the classic atomic dance: write a sibling temp file,
   fsync it, rename over the target, then fsync the directory so the
   rename itself is durable.  A reader therefore sees either the old
   complete file or the new complete file, never a torn one.

   Framing adds a second line of defence for the cases rename cannot
   help with (a checkpoint from a different build, a file damaged at
   rest, a partial copy): a fixed magic, a format version, the payload
   length and a CRC-32 of the payload.  Every reader-side anomaly is a
   clean [Error] naming the path — never an exception, never a
   silently half-read state. *)

(* ---------- CRC-32 (IEEE 802.3, reflected, table-driven) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 ?(init = 0) s =
  let table = Lazy.force crc_table in
  let c = ref (init lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---------- atomic writes ---------- *)

let with_errors ~path f =
  try Ok (f ()) with
  | Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | Sys_error msg -> Error msg
  | Out_of_memory -> raise Out_of_memory

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

(* the Faultsim-instrumented data write: a [Torn n] plan truncates the
   write to [n] bytes and then simulates process death — the partial
   tmp file is left behind exactly as a real crash would leave it *)
let write_data fd s =
  match Faultsim.clip "durable.write" ~len:(String.length s) with
  | None -> write_all fd s
  | Some n ->
      write_all fd (String.sub s 0 n);
      Faultsim.torn_crash "durable.write"

(* fsync on a directory fd is how POSIX makes a rename durable; some
   filesystems refuse it (EINVAL), which at worst re-opens the small
   window the fsync was closing, so the refusal is not an error. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Every failure-prone step is bracketed by a Faultsim point so the
   crash-point sweep in the test suite can enumerate and fail each one
   in turn: the old-complete-or-new-complete contract is proven, not
   assumed.  Disarmed, each hook is one atomic load. *)
let write_atomic ~path data =
  let tmp = path ^ ".tmp" in
  let res =
    with_errors ~path (fun () ->
        Faultsim.point "durable.open";
        let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            write_data fd data;
            Faultsim.point "durable.fsync";
            Unix.fsync fd);
        Faultsim.point "durable.rename";
        Unix.rename tmp path;
        Faultsim.point "durable.after-rename";
        fsync_dir (Filename.dirname path))
  in
  (match res with
  | Ok () -> ()
  | Error _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
  res

let read_file ~path =
  with_errors ~path (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

(* ---------- framed records ---------- *)

(* magic[8] | version u32 LE | payload length u64 LE | crc32 u32 LE
   | payload bytes *)

let header_len = 24
let magic_len = 8

let write_framed ~path ~magic ~version payload =
  if String.length magic <> magic_len then
    invalid_arg "Durable.write_framed: magic must be exactly 8 bytes";
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version);
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (crc32 payload));
  Buffer.add_string b payload;
  write_atomic ~path (Buffer.contents b)

let read_framed ~path ~magic =
  if String.length magic <> magic_len then
    invalid_arg "Durable.read_framed: magic must be exactly 8 bytes";
  match read_file ~path with
  | Error _ as e -> e
  | Ok raw ->
      let fail fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt in
      if String.length raw < header_len then
        fail "truncated record (%d bytes, need a %d-byte header)"
          (String.length raw) header_len
      else if String.sub raw 0 magic_len <> magic then
        fail "bad magic (not a %s file)" (String.trim magic)
      else
        let version =
          Int32.to_int (String.get_int32_le raw magic_len) land 0xFFFFFFFF
        in
        let len = Int64.to_int (String.get_int64_le raw (magic_len + 4)) in
        let crc =
          Int32.to_int (String.get_int32_le raw (magic_len + 12))
          land 0xFFFFFFFF
        in
        if len < 0 || String.length raw - header_len < len then
          fail "truncated record (payload says %d bytes, %d present)" len
            (String.length raw - header_len)
        else if String.length raw - header_len > len then
          fail "trailing garbage after %d-byte payload" len
        else
          let payload = String.sub raw header_len len in
          let actual = crc32 payload in
          if actual <> crc then
            fail "CRC mismatch (stored %08x, computed %08x)" crc actual
          else Ok (version, payload)
