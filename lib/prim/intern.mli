(** Global structural interning of values to dense integer ids.

    A registry maps values to small integers such that two values
    receive the same id {e iff} they are structurally equal — the
    table resolves generic-hash collisions with structural equality,
    so id equality is exact, never "up to hash collision".  Interned
    ids are the currency of the unified trace layer: every substrate
    (the asynchronous engine, the Heard-Of engine) interns local
    states into the same registry, which makes ids comparable across
    engine functor instances, across substrates, and across domains
    (the registry is mutex-protected).

    The registry is intentionally type-agnostic: values of different
    types that happen to share a runtime representation receive the
    same id.  This mirrors the equality that [Marshal]-based
    fingerprints used to provide, and is harmless for the trace
    layer, which only ever compares ids of values produced by the
    same (or structurally compatible) state machines.

    Requirements on interned values (the same ones [Marshal] imposed):
    they must be immutable, acyclic, closure-free data.  Interning
    retains one representative per distinct value for the lifetime of
    the program. *)

type t
(** An interning registry. *)

val create : ?name:string -> ?size:int -> unit -> t
(** A fresh registry ([size] is the initial table capacity).  When
    [name] is given, the registry's occupancy is published as the
    {!Metrics} probe ["<name>.size"], so snapshots report table
    growth without touching the interning hot path. *)

val id : t -> 'a -> int
(** [id t v] is the dense id of [v] in [t], allocating the next id on
    first sight.  Ids count up from 0 in first-interning order.
    Thread-safe. *)

val count : t -> int
(** Number of distinct values interned so far. *)

val watermark : t -> int
(** A lock-free monotone lower bound on {!count}: the highest id
    watermark published so far.  Because it is read without taking the
    registry mutex it may lag concurrent interning, but it never
    overshoots and never decreases — exactly what callers need for
    cheap capacity hints (e.g. sizing a coverage bitmap over state
    ids) without touching the interning hot path. *)

val dump : t -> Obj.t array
(** The current id assignment, as an array whose index [i] holds the
    value interned under id [i].  Together with {!restore} this makes
    registries checkpointable: interned ids appear inside engine
    configurations and dedup keys, so a campaign snapshot must carry
    the assignment that produced it. *)

val restore : t -> Obj.t array -> (unit, string) result
(** Re-establish a dumped assignment.  Succeeds when the registry is
    a prefix-consistent extension point for the dump: each dumped
    value is either already interned under its dumped id (in-process
    resume) or absent with exactly that id next to be assigned
    (fresh-process resume).  Any conflicting assignment yields
    [Error] — proceeding would let equal ids denote different
    values.  Values interned after a successful restore extend the
    dumped id space as usual. *)

val states : t
(** The shared registry for local {e states} of simulated processes —
    used by {!Ksa_sim.Engine}, {!Ksa_ho.Engine} and anything else
    producing {!Ksa_sim.Trace.t} values, so that state ids agree
    across substrates. *)

val payloads : t
(** The shared registry for message {e payloads} (kept separate from
    {!states} so both id spaces stay dense). *)
