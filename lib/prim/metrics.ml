(* Process-global instrument registry.  Registration (cold) takes a
   mutex; counting (hot) is sharded atomics only.  Shard count is a
   power of two so the domain-id fold is one [land]. *)

let shards = 8

type counter = int Atomic.t array
type gauge = int Atomic.t
type timer = { ns : counter; calls : counter }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Timer of timer
  | Probe of (unit -> int) ref

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let make_counter () = Array.init shards (fun _ -> Atomic.make 0)

(* [Domain.self] is a cheap TLS read; ids are assigned densely enough
   that folding them over a power-of-two shard count spreads
   concurrent explorer domains across distinct cache lines. *)
let slot () = (Domain.self () :> int) land (shards - 1)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Timer _ -> "timer"
  | Probe _ -> "probe"

let register name make select =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> (
          match select existing with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S is already a %s" name
                   (kind_name existing)))
      | None ->
          let i = make () in
          Hashtbl.add registry name i;
          match select i with Some v -> v | None -> assert false)

let counter name =
  register name
    (fun () -> Counter (make_counter ()))
    (function Counter c -> Some c | _ -> None)

let incr (c : counter) = Atomic.incr c.(slot ())
let add (c : counter) k = ignore (Atomic.fetch_and_add c.(slot ()) k)
let value (c : counter) = Array.fold_left (fun s a -> s + Atomic.get a) 0 c

let gauge name =
  register name
    (fun () -> Gauge (Atomic.make 0))
    (function Gauge g -> Some g | _ -> None)

let gauge_set (g : gauge) v = Atomic.set g v

let rec gauge_max (g : gauge) v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then gauge_max g v

let gauge_value (g : gauge) = Atomic.get g

let timer name =
  register name
    (fun () -> Timer { ns = make_counter (); calls = make_counter () })
    (function Timer t -> Some t | _ -> None)

(* monotonic, so phase timings cannot be bent by NTP steps *)
let now_ns = Clock.now_ns

let time t f =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      add t.ns (now_ns () - t0);
      incr t.calls)
    f

let timer_ns t = value t.ns
let timer_calls t = value t.calls

let probe name f =
  ignore
    (register name
       (fun () -> Probe (ref f))
       (function
         | Probe r ->
             r := f;
             Some ()
         | _ -> None))

type snapshot = (string * int) list

let snapshot () =
  let rows =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name i acc ->
            match i with
            | Counter c -> (name, value c) :: acc
            | Gauge g -> (name, gauge_value g) :: acc
            | Timer t ->
                (name ^ ".ns", timer_ns t)
                :: (name ^ ".calls", timer_calls t)
                :: acc
            | Probe r -> (name, !r ()) :: acc)
          registry [])
  in
  List.sort compare rows

let delta ~before ~after =
  List.map
    (fun (name, v) ->
      let v0 = match List.assoc_opt name before with Some v0 -> v0 | None -> 0 in
      (name, v - v0))
    after

let to_json snap =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  let total = List.length snap in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "  %S: %d%s\n" name v (if i = total - 1 then "" else ",")))
    snap;
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_json ~path snap = Durable.write_atomic ~path (to_json snap)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> Array.iter (fun a -> Atomic.set a 0) c
          | Gauge g -> Atomic.set g 0
          | Timer { ns; calls } ->
              Array.iter (fun a -> Atomic.set a 0) ns;
              Array.iter (fun a -> Atomic.set a 0) calls
          | Probe _ -> ())
        registry)
