(** Deterministic pseudo-random number generation (splitmix64).

    Every source of randomness in this repository flows through this
    module so that runs, schedules, failure-detector histories and
    generated graphs are exactly reproducible from an integer seed.
    Reproducibility is load-bearing: the run-pasting surgery of
    Lemmas 11 and 12 re-executes previously observed runs, which is
    only sound when runs are a pure function of their seed and
    parameters. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t

val copy : t -> t
(** Independent clone with identical future output. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val split_at : t -> int -> t
(** [split_at t i] is the [i]-th child of [t]'s current state, without
    advancing [t]: the generator [split] would return on its [i+1]-th
    consecutive call.  Children at distinct indices are mutually
    independent, so workers can derive the stream for any trial index
    directly — the key to exact sequential/parallel fuzzing parity.
    @raise Invalid_argument if [i] is negative. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a nonempty list.
    @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (Fisher–Yates). *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [k] distinct elements of [xs] uniformly,
    in arbitrary order.  @raise Invalid_argument if [k] exceeds
    [List.length xs] or is negative. *)
