type t = { lock : Mutex.t; tbl : (Obj.t, int) Hashtbl.t }

let create ?(size = 4096) () =
  { lock = Mutex.create (); tbl = Hashtbl.create size }

(* The table is keyed by the runtime representation; [Hashtbl]'s
   generic hash and structural equality on [Obj.t] behave exactly as
   they would on the original typed values, so lookups are structural
   and collisions are resolved exactly. *)
let id t v =
  let r = Obj.repr v in
  Mutex.lock t.lock;
  let id =
    match Hashtbl.find_opt t.tbl r with
    | Some id -> id
    | None ->
        let id = Hashtbl.length t.tbl in
        Hashtbl.add t.tbl r id;
        id
  in
  Mutex.unlock t.lock;
  id

let count t =
  Mutex.lock t.lock;
  let c = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  c

let states = create ()
let payloads = create ()
