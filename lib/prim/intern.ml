type t = { lock : Mutex.t; tbl : (Obj.t, int) Hashtbl.t }

let create ?name ?(size = 4096) () =
  let t = { lock = Mutex.create (); tbl = Hashtbl.create size } in
  (match name with
  | Some name -> Metrics.probe (name ^ ".size") (fun () -> Hashtbl.length t.tbl)
  | None -> ());
  t

(* Every table access runs under the mutex with [Fun.protect]: the
   registries are process-global, so an exception escaping with the
   lock held (an out-of-memory allocation inside [Hashtbl.add], an
   async exception) would deadlock every other domain forever. *)
let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The table is keyed by the runtime representation; [Hashtbl]'s
   generic hash and structural equality on [Obj.t] behave exactly as
   they would on the original typed values, so lookups are structural
   and collisions are resolved exactly. *)
let id t v =
  let r = Obj.repr v in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl r with
      | Some id -> id
      | None ->
          let id = Hashtbl.length t.tbl in
          Hashtbl.add t.tbl r id;
          id)

let count t = with_lock t (fun () -> Hashtbl.length t.tbl)

let states = create ~name:"intern.states" ()
let payloads = create ~name:"intern.payloads" ()
