type t = { lock : Mutex.t; tbl : (Obj.t, int) Hashtbl.t; mutable hi : int }

let create ?name ?(size = 4096) () =
  let t = { lock = Mutex.create (); tbl = Hashtbl.create size; hi = 0 } in
  (match name with
  | Some name -> Metrics.probe (name ^ ".size") (fun () -> Hashtbl.length t.tbl)
  | None -> ());
  t

(* Every table access runs under the mutex with [Fun.protect]: the
   registries are process-global, so an exception escaping with the
   lock held (an out-of-memory allocation inside [Hashtbl.add], an
   async exception) would deadlock every other domain forever. *)
let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The table is keyed by the runtime representation; [Hashtbl]'s
   generic hash and structural equality on [Obj.t] behave exactly as
   they would on the original typed values, so lookups are structural
   and collisions are resolved exactly. *)
let id t v =
  let r = Obj.repr v in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl r with
      | Some id -> id
      | None ->
          let id = Hashtbl.length t.tbl in
          Hashtbl.add t.tbl r id;
          t.hi <- id + 1;
          id)

let count t = with_lock t (fun () -> Hashtbl.length t.tbl)

(* [hi] is written only under the mutex and only ever grows; a plain
   read therefore observes some recent value — a monotone lower bound
   on the id count, which is all capacity hints need.  Immediate ints
   are read atomically on every OCaml platform, so there is no torn
   read to worry about. *)
let watermark t = t.hi

(* Checkpointing support.  Interned ids are embedded in engine
   configurations and dedup keys, so a campaign snapshot is only
   meaningful together with the id assignment that produced it.
   [dump] captures the assignment as an id-ordered array; [restore]
   re-establishes it, either into a fresh registry (cross-process
   resume: ids are re-assigned in dump order, reproducing them
   exactly) or into the registry that produced the dump (in-process
   resume: every value is already present under its dumped id).  Any
   other overlap means the checkpoint and this process interned
   values in different orders — ids in the snapshot would silently
   alias different values, so it is rejected. *)

let dump t =
  with_lock t (fun () ->
      let a = Array.make (Hashtbl.length t.tbl) (Obj.repr 0) in
      Hashtbl.iter (fun v id -> a.(id) <- v) t.tbl;
      a)

let restore t dumped =
  with_lock t (fun () ->
      let n = Array.length dumped in
      let rec go i =
        if i >= n then Ok ()
        else
          let v = dumped.(i) in
          match Hashtbl.find_opt t.tbl v with
          | Some id when id = i -> go (i + 1)
          | Some id ->
              Error
                (Printf.sprintf
                   "interner mismatch: dumped id %d is live id %d" i id)
          | None ->
              if Hashtbl.length t.tbl = i then (
                Hashtbl.add t.tbl v i;
                t.hi <- i + 1;
                go (i + 1))
              else
                Error
                  (Printf.sprintf
                     "interner mismatch: cannot graft dumped id %d into a \
                      table of %d entries"
                     i (Hashtbl.length t.tbl))
      in
      go 0)

let states = create ~name:"intern.states" ()
let payloads = create ~name:"intern.payloads" ()
