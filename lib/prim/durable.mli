(** Crash-safe file writes and self-validating record framing.

    The write side guarantees atomic replacement: data lands in a
    sibling temp file, is fsynced, renamed over the target, and the
    directory is fsynced, so a reader — including one starting after
    a SIGKILL or power loss mid-write — sees either the previous
    complete file or the new complete file, never a torn mixture.

    The framed-record layer adds integrity to content: an 8-byte
    magic, a format version, the payload length, and a CRC-32 of the
    payload.  Truncation, bit rot and format drift all surface as a
    clean [Error] naming the offending path; no function here raises
    on I/O or corruption. *)

val crc32 : ?init:int -> string -> int
(** CRC-32 (IEEE 802.3, the zlib polynomial) of a string, as an
    unsigned 32-bit value in an [int].  [init] chains checksums
    across chunks. *)

val write_atomic : path:string -> string -> (unit, string) result
(** [write_atomic ~path data] atomically replaces [path] with [data]
    (temp file + fsync + rename + directory fsync).  On failure the
    temp file is removed and the [Error] message names the path;
    [path] itself is never left half-written. *)

val read_file : path:string -> (string, string) result
(** The whole contents of [path], or an [Error] naming it. *)

val write_framed :
  path:string -> magic:string -> version:int -> string -> (unit, string) result
(** Atomically write a framed record: [magic] (exactly 8 bytes —
    anything else is an [Invalid_argument]), [version], payload
    length and payload CRC-32, then the payload. *)

val read_framed :
  path:string -> magic:string -> (int * string, string) result
(** Read a framed record back as [(version, payload)].  Missing
    file, short header, wrong magic, truncated or over-long payload,
    and CRC mismatch each yield a descriptive [Error] naming the
    path.  Version interpretation is the caller's job: an
    unsupported version must be rejected there. *)
