(** Sharded concurrent insert-only map over packed string keys.

    The dedup structure of the parallel explorers: every domain admits
    configurations against {e one} shared table instead of a private
    copy, so a configuration reached from two sides of the schedule
    space is expanded exactly once.  Keys are the explorer's packed
    configuration keys — non-empty strings compared bytewise — and the
    payload is the node's dense id.  Under a symmetry reduction the
    admitted keys are {e orbit} keys ({!Ksa_sim.Canon}): one key per
    equivalence class of configurations rather than per configuration,
    possibly extended with a sleep-set digest.  Nothing here changes —
    the table is agnostic to what a key denotes, and tickets stay
    dense either way — but consumers must not assume one key maps to
    one concrete configuration.

    Layout: a power-of-two number of shards selected by the low bits
    of the key hash; each shard is an open-addressed (linear-probe)
    table guarded by its own mutex, kept under a fixed load factor and
    doubled in place under that lock when full.  With the default 64
    shards, eight explorer domains collide on a shard lock only a few
    percent of the time, and the critical section is a handful of
    probes — the structure is bound by memory bandwidth, not locking.
    Deletion is not supported (the explorers only ever admit), which
    is what makes the concurrent membership answers stable: a key seen
    present stays present.

    {!mem} additionally has an optimistic lock-free fast path: it
    probes a published table snapshot without taking the shard lock
    and only falls back to the locked (authoritative) probe on a miss.
    This is sound precisely because the structure is insert-only and a
    slot's value is written before its key is published — a racy read
    that finds the key found a completed insert.

    Instrumentation, via {!Metrics}: counters
    [shardset.<name>.collisions] (insert probe displacements) and
    [shardset.<name>.resizes] tick live; occupancy series are
    published as gauges by {!publish_metrics} at quiescent points
    (gauges, not probes, so a benchmark's per-subject
    [Metrics.reset]/delta discipline sees non-negative values). *)

type t

val create : ?shards:int -> ?capacity:int -> name:string -> unit -> t
(** [create ~name ()] makes an empty map.  [shards] (default 64) is
    rounded up to a power of two; [capacity] (default 65_536) is the
    initial total slot count, divided across shards.  [name] prefixes
    the metrics series; instruments are shared across instances of the
    same name. *)

type admission =
  | Found of int  (** Key already present, with its value. *)
  | Admitted of int  (** Key inserted; the value is the granted ticket. *)
  | Rejected  (** The ticket source declined — key not inserted. *)

val admit : t -> string -> ticket:(unit -> int option) -> admission
(** [admit t key ~ticket] is the explorers' check-then-admit step,
    atomic under the key's shard lock: if [key] is present, [Found]
    its value without consuming a ticket; otherwise call [ticket ()]
    and either insert the returned value ([Admitted]) or leave the map
    unchanged ([Rejected] on [None]).  Atomicity is what makes budget
    accounting exact — two domains racing on the same key cannot both
    consume a ticket for it.  [ticket] runs under the shard lock: it
    must be quick and must not touch this map.  Raises
    [Invalid_argument] on the empty key (reserved as the empty-slot
    sentinel). *)

val add : t -> string -> int -> bool
(** [add t key v] inserts [key -> v] if absent; [true] iff this call
    inserted.  ([admit] with an always-granting ticket.) *)

val mem : t -> string -> bool
(** Membership.  Lock-free when the answer is [true]; a miss confirms
    under the shard lock before answering [false]. *)

val find : t -> string -> int option
(** The value bound to the key, if present.  Takes the shard lock. *)

val length : t -> int
(** Number of keys.  Exact only at quiescence (sums per-shard counts
    without stopping concurrent inserts). *)

val iter : (string -> int -> unit) -> t -> unit
(** Iterate all bindings, shard by shard under each shard's lock.
    [f] must not reenter this map.  Consistent at quiescence; a
    concurrent insert may or may not be visited. *)

val publish_metrics : t -> unit
(** Publish occupancy gauges: [shardset.<name>.occupancy] (total
    keys), [.capacity] (total slots), and the per-shard balance
    watermarks [.shard.occupancy.max] / [.shard.occupancy.min].
    Call at quiescent points (end of a run, inside a
    pause-the-world). *)
