(* Retry backoff and idle-wait pacing.

   The retry side is arithmetic only — no clock, no sleeping — so the
   daemon can schedule "not before now + delay" without this module
   ever observing time, and tests can assert exact schedules.  The
   jitter draw comes from the caller's Rng: determinism is preserved
   end to end, which is the repo-wide contract every other source of
   randomness already honours. *)

type policy = {
  base : float;
  cap : float;
  multiplier : float;
  jitter : float;
}

let default_retry = { base = 0.5; cap = 30.0; multiplier = 2.0; jitter = 0.5 }

let delay ?rng policy ~attempt =
  if attempt < 0 then invalid_arg "Backoff.delay: negative attempt";
  if policy.base <= 0. then invalid_arg "Backoff.delay: non-positive base";
  (* iterate rather than [**]: float exponentiation of large attempts
     overflows to infinity, and the cap makes further growth moot *)
  let d = ref policy.base in
  (let i = ref 0 in
   while !i < attempt && !d < policy.cap do
     d := !d *. policy.multiplier;
     incr i
   done);
  let d = Float.min policy.cap !d in
  match rng with
  | None -> d
  | Some rng ->
      let j = Float.max 0. (Float.min 1. policy.jitter) in
      d *. (1. -. (j *. Rng.float rng))

module Spin = struct
  type t = {
    relax : int;
    floor : float;
    cap : float;
    mutable calls : int;
  }

  let make ?(relax = 32) ?(floor = 1e-5) ?(cap = 5e-4) () =
    { relax; floor; cap; calls = 0 }

  let wait t =
    let c = t.calls in
    t.calls <- c + 1;
    if c < t.relax then Domain.cpu_relax ()
    else Unix.sleepf (Float.min t.cap (t.floor *. float_of_int (c + 1)))

  let reset t = t.calls <- 0
end
