(** Deterministic fault injection for the durability layer.

    {!Durable} (and everything built on it — checkpoints, the campaign
    job store) claims that a crash at {e any} instant leaves readers an
    old-complete or new-complete file, never a torn one.  A claim over
    "any instant" needs an enumerator: this module instruments every
    failure-prone point inside the write path with a named hook, lets a
    test {e record} the sequence of points one clean write traverses,
    and then {e arm} each point in turn with a simulated failure:

    {ul
    {- [Crash] — the process dies here: the hook raises {!Crashed},
       which nothing in the write path catches, abandoning the write
       exactly as [kill -9] would (temp files included).}
    {- [Errno e] — the syscall fails (ENOSPC, EIO, ...): the hook
       raises [Unix.Unix_error], which {!Durable} converts into its
       ordinary [Error] result — the recoverable-failure path retries
       ride on.}
    {- [Torn n] — the data write stops after [n] bytes and then the
       process dies: the torn-write case rename-based atomicity exists
       to mask, and CRC framing must catch when it is not masked.}}

    Injection is process-global and off by default; the disarmed hook
    is one atomic load.  Tests that arm faults must disarm them
    ([reset]) before leaving — the harness runs suites in one process.
    Not meant to be armed from concurrent domains. *)

exception Crashed of string
(** Simulated process death at the named point.  Never raised unless
    a [Crash] or [Torn] plan is armed. *)

type outcome =
  | Crash  (** Die at this point. *)
  | Errno of Unix.error  (** This syscall fails with the given errno. *)
  | Torn of int
      (** Write only the first [n] bytes, then die.  Only meaningful
          at data-write points; at other points it behaves like
          [Crash]. *)

val arm : ?point:string -> nth:int -> outcome -> unit
(** Arm one failure: the [nth] (1-based) subsequent hit of [point] —
    or of {e any} point when [point] is omitted — suffers [outcome].
    Replaces any previously armed plan and zeroes the hit counter.
    @raise Invalid_argument if [nth < 1]. *)

val reset : unit -> unit
(** Disarm, stop recording, clear the trace and counters. *)

val record : unit -> unit
(** Start recording hook hits (clearing any previous trace): after a
    clean write, {!trace} lists every point traversed, in order — the
    enumeration a crash-point sweep iterates over. *)

val trace : unit -> string list
(** Points hit since {!record}, oldest first. *)

val hits : unit -> int
(** Hook hits since the last {!arm}/{!reset}. *)

(**/**)

(* Hooks for the instrumented write path — not for test code. *)

val point : string -> unit
(** Count (and record) a hit of [point]; raise per the armed plan. *)

val clip : string -> len:int -> int option
(** The data-write hook: like {!point}, but when the armed plan for
    this hit is [Torn n], returns [Some (min n len)] instead of
    raising — the caller writes that many bytes and then calls
    {!torn_crash}. *)

val torn_crash : string -> 'a
(** Raise {!Crashed} for the torn write at [point]. *)
