(* Deterministic fault injection for the durability layer.

   All state sits behind one mutex and one atomic [enabled] flag.  The
   production path pays a single atomic load per hook; everything else
   only runs while a test has armed a plan or turned recording on. *)

exception Crashed of string

type outcome = Crash | Errno of Unix.error | Torn of int

type plan = {
  p_point : string option; (* None = any point matches *)
  p_outcome : outcome;
  mutable countdown : int; (* fires when it reaches 0 *)
}

let enabled = Atomic.make false
let lock = Mutex.create ()
let armed : plan option ref = ref None
let recording = ref false
let tr : string list ref = ref [] (* newest first *)
let hit_count = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let refresh_enabled () =
  Atomic.set enabled (!armed <> None || !recording)

let arm ?point ~nth outcome =
  if nth < 1 then invalid_arg "Faultsim.arm: nth must be >= 1";
  locked (fun () ->
      armed := Some { p_point = point; p_outcome = outcome; countdown = nth };
      hit_count := 0;
      refresh_enabled ())

let reset () =
  locked (fun () ->
      armed := None;
      recording := false;
      tr := [];
      hit_count := 0;
      refresh_enabled ())

let record () =
  locked (fun () ->
      recording := true;
      tr := [];
      refresh_enabled ())

let trace () = locked (fun () -> List.rev !tr)
let hits () = locked (fun () -> !hit_count)

(* Returns the outcome due at this hit, [None] otherwise; counting
   and recording happen here for both hooks. *)
let note point =
  locked (fun () ->
      incr hit_count;
      if !recording then tr := point :: !tr;
      match !armed with
      | None -> None
      | Some p ->
          let matches =
            match p.p_point with None -> true | Some q -> String.equal q point
          in
          if not matches then None
          else begin
            p.countdown <- p.countdown - 1;
            if p.countdown = 0 then Some p.p_outcome else None
          end)

let fire point = function
  | Crash | Torn _ -> raise (Crashed point)
  | Errno e -> raise (Unix.Unix_error (e, point, ""))

let point p =
  if Atomic.get enabled then
    match note p with None -> () | Some o -> fire p o

let clip p ~len =
  if not (Atomic.get enabled) then None
  else
    match note p with
    | None -> None
    | Some (Torn n) -> Some (min n (max 0 len))
    | Some o -> fire p o

let torn_crash p = raise (Crashed p)
