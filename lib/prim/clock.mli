(** Time sources, split by purpose.

    Deadlines, budgets and phase timers must use the monotonic clock:
    it cannot jump when NTP steps the wall clock, so a [--max-seconds]
    budget measured against it is always the duration the user asked
    for.  Wall time remains available, but only for human-facing
    timestamps (log lines, report headers) where "what time is it"
    matters more than "how long did it take". *)

val now_ns : unit -> int
(** Monotonic nanoseconds since an arbitrary epoch (boot, typically).
    Only differences are meaningful; the value is never negative in
    practice and fits an OCaml [int] on 64-bit platforms for ~292
    years of uptime. *)

val elapsed_s : since:int -> float
(** Seconds elapsed since a previous {!now_ns} reading. *)

val wall_s : unit -> float
(** Wall-clock seconds since the Unix epoch
    ([Unix.gettimeofday]) — human-facing timestamps only. *)
