(** Lock-free instrumentation for the exploration stack.

    A process-global registry of named instruments:

    - {e counters} — monotonic event counts (configurations admitted,
      memo hits, …).  Increments are wait-free: each counter is
      sharded over a small array of atomics indexed by the calling
      domain, so hot-path increments from concurrent explorer domains
      never contend on one cache line; reads sum the shards.
    - {e gauges} — last-written or high-watermark values (frontier
      peak, configs-visited of the last completed exploration, …).
    - {e timers} — accumulated monotonic-clock nanoseconds (see
      {!Clock.now_ns}) plus a call count, for coarse phase timing
      (screening portfolio, explorer workers); derive throughput as
      [counter / (timer_ns / 1e9)].
    - {e probes} — lazy gauges: a named closure evaluated only at
      snapshot time, used for occupancy of structures that already
      know their size (the interner tables).

    Instruments are created once (typically at module initialisation)
    and looked up by name: creating an instrument with an existing
    name returns the existing one, so independent modules can share a
    series.  Creation takes a mutex; {e use} of counters, gauges and
    timers is lock-free.

    Everything is always on.  The per-event cost is one or two
    sharded atomic increments, measured in EXPERIMENTS.md at well
    under the noise floor of the bench subjects. *)

type counter
type gauge
type timer

val counter : string -> counter
(** The counter registered under this name (created at zero on first
    use).  Raises [Invalid_argument] if the name is already bound to
    a different instrument kind. *)

val incr : counter -> unit
(** Add one.  Wait-free. *)

val add : counter -> int -> unit
(** Add an arbitrary (possibly large) delta.  Wait-free. *)

val value : counter -> int
(** Sum of all shards — a consistent-enough read for reporting: each
    shard is read atomically, concurrent increments may or may not be
    included. *)

val gauge : string -> gauge
val gauge_set : gauge -> int -> unit
val gauge_max : gauge -> int -> unit
(** [gauge_max g v] raises the gauge to [v] if [v] is larger — a
    lock-free high-watermark (CAS loop, no-op fast path once
    saturated). *)

val gauge_value : gauge -> int

val timer : string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its monotonic duration into the
    timer (exceptions still accumulate the partial duration). *)

val timer_ns : timer -> int
(** Accumulated nanoseconds. *)

val timer_calls : timer -> int

val probe : string -> (unit -> int) -> unit
(** Register a lazy gauge evaluated at {!snapshot} time.  Re-registering
    a name replaces the closure. *)

type snapshot = (string * int) list
(** Name-sorted instrument values.  Timers appear twice, as
    ["<name>.ns"] and ["<name>.calls"]. *)

val snapshot : unit -> snapshot

val delta : before:snapshot -> after:snapshot -> snapshot
(** Per-name [after - before] (names missing from [before] count as
    zero).  Meaningful for counters and timers; gauges and probes
    subtract like everything else — interpret those with care. *)

val to_json : snapshot -> string
(** One flat JSON object, names as keys, values as integers. *)

val write_json : path:string -> snapshot -> (unit, string) result
(** Atomically write the snapshot as JSON via {!Durable.write_atomic};
    an unwritable path is an [Error] naming it, never an exception. *)

val reset : unit -> unit
(** Zero every counter, gauge and timer (probes are left alone: they
    reflect external state).  Test-harness affordance; concurrent
    increments during a reset may survive it. *)
