/* Monotonic clock for deadlines and phase timers.

   OCaml 5.1's Unix library exposes gettimeofday but not
   clock_gettime, and wall time is the wrong instrument for budgets:
   an NTP step mid-campaign would stretch or collapse every
   --max-seconds deadline.  CLOCK_MONOTONIC is immune to clock
   slews and steps (it only pauses across suspend, which is fine for
   a batch campaign). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ksa_clock_monotonic_ns(value unit)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return caml_copy_int64((int64_t) ts.tv_sec * 1000000000 + ts.tv_nsec);
}
