type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next64 t in
  { state = mix s }

let split_at t i =
  if i < 0 then invalid_arg "Rng.split_at: negative index";
  let s = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix (mix s) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: nonpositive bound";
  let mask = Int64.shift_right_logical (next64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let bits = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let sample t k xs =
  let len = List.length xs in
  if k < 0 || k > len then invalid_arg "Rng.sample";
  let shuffled = shuffle t xs in
  List.filteri (fun i _ -> i < k) shuffled
