(** Retry backoff and idle-wait pacing.

    Two related facilities that were previously re-implemented ad hoc
    wherever a loop had to wait:

    {ul
    {- {e Retry backoff} — the delay before re-attempting an operation
       that just failed (a campaign job, a flaky write).  Delays grow
       exponentially from [base] by [multiplier] up to [cap], and are
       jittered {e deterministically}: the jitter factor is drawn from
       a caller-supplied {!Rng.t}, so a retry schedule is a pure
       function of (policy, seed, attempt) — reproducible campaigns
       stay reproducible even through their failure handling.}
    {- {e Spin waiters} ({!Spin}) — the poll pacing of a loop that is
       waiting for another domain (work to steal, a checkpoint to come
       due, a counter to move).  A waiter relaxes the CPU for a few
       iterations, then sleeps for linearly growing slices capped at
       [cap], and is [reset] whenever the awaited event arrives so the
       next wait starts responsive again.}} *)

type policy = {
  base : float;  (** First retry delay, seconds (> 0). *)
  cap : float;  (** Upper bound on any delay, seconds. *)
  multiplier : float;  (** Exponential growth factor (>= 1). *)
  jitter : float;
      (** Fraction of the delay randomized away, in [0, 1]: the
          jittered delay is [d * (1 - jitter * u)] for a uniform
          [u] in [0, 1) — full delay at [jitter = 0], anywhere down
          to [(1 - jitter) * d] otherwise.  Jitter decorrelates
          retry storms without ever {e lengthening} a delay past the
          deterministic envelope. *)
}

val default_retry : policy
(** [{ base = 0.5; cap = 30.0; multiplier = 2.0; jitter = 0.5 }] —
    the campaign daemon's job-retry policy. *)

val delay : ?rng:Rng.t -> policy -> attempt:int -> float
(** [delay ?rng policy ~attempt] is the pause before retry number
    [attempt] (0-based: [attempt = 0] follows the first failure):
    [min cap (base * multiplier^attempt)], jittered by [rng] when
    given ([policy.jitter] is ignored otherwise).  Consumes exactly
    one draw from [rng], so schedules derived from split generators
    are independent.  @raise Invalid_argument on a negative
    [attempt] or a non-positive [base]. *)

(** Poll pacing for cross-domain wait loops. *)
module Spin : sig
  type t

  val make : ?relax:int -> ?floor:float -> ?cap:float -> unit -> t
  (** A fresh waiter: the first [relax] calls to {!wait} issue
      [Domain.cpu_relax] (default 32), subsequent calls sleep
      [min cap (floor * calls)] seconds (defaults: [floor] 1e-5,
      [cap] 5e-4) — short enough to stay responsive, long enough
      that a parked domain stops starving working ones of cores.
      [relax = 0] makes every wait a sleep, for pure polling loops
      with no latency-critical wake-up. *)

  val wait : t -> unit
  (** Relax or sleep once, advancing the waiter. *)

  val reset : t -> unit
  (** The awaited event happened: start the next wait sequence from
      the responsive end again. *)
end
