(* Reduction layer: symmetry orbit keys and DPOR delivery actions.

   This module is pure integer/array arithmetic — it knows nothing
   about any particular algorithm.  The engine feeds it the interned
   per-pid rows of a configuration (state id, decided value, crashed
   bit) plus the packed pending triples, and gets back the
   orbit-representative core that the reduced {!Engine.key} serializes,
   together with the witnessing permutation.  The explorer uses
   {!Action} to name delivery transitions by content so sleep sets
   survive message-id renumbering, work-stealing handoff and
   checkpoint resume. *)

type reduction = No_reduction | Symmetry | Symmetry_por

let reduction_to_string = function
  | No_reduction -> "none"
  | Symmetry -> "sym"
  | Symmetry_por -> "sym+por"

let reduction_of_string = function
  | "none" -> Ok No_reduction
  | "sym" -> Ok Symmetry
  | "sym+por" -> Ok Symmetry_por
  | s ->
      Error
        (Printf.sprintf "unknown reduction %S (expected none, sym, or sym+por)"
           s)

let all_reductions = [ No_reduction; Symmetry; Symmetry_por ]

(* ---- packed pending triples ----

   A pending message packs into a single int: src in bits 51..61, dst
   in bits 40..50, payload id in bits 0..39.  The widths are far
   beyond any explorable system (n < 2048; 2^40 distinct payloads
   would not fit in memory), and packed triples sort and compare as
   plain ints.  The packing lives here because both the engine's key
   builder and the reduction layer take triples apart. *)

let pack_triple src dst pl = (src lsl 51) lor (dst lsl 40) lor pl
let payload_mask = (1 lsl 40) - 1
let triple_src t = t lsr 51
let triple_dst t = (t lsr 40) land 0x7ff
let triple_payload t = t land payload_mask

(* (src, payload) with the destination dropped: the content signature
   of one delivered message, used by delivery actions whose receiver
   is already named by the stepping pid *)
let triple_content t = ((t lsr 51) lsl 40) lor (t land payload_mask)

(* ---- little-endian int serialization, shared with Engine.key ---- *)

let put b pos i =
  Bytes.set_int64_le b !pos (Int64.of_int i);
  pos := !pos + 8

(* ---- delivery actions for the DPOR sleep sets ----

   A transition of the crash-free explorer is "pid steps, delivering
   this batch".  Pid-distinctness alone is NOT an independence
   relation for the policy-restricted transition system the explorer
   searches: under [Per_sender] and [Empty_or_all] the choices offered
   to a process are whole current buckets of its inbox, so when action
   [a] sends a message to [b.pid], the batch [b] delivered is no
   longer offered after [a] — only the grown bucket is — and the
   interleaving a·b that sleep-set coverage relies on does not exist
   in the restricted tree.  Two transitions therefore commute exactly
   when (i) their stepping pids differ (a step mutates only the
   stepper's own row and delivers only from the stepper's own inbox),
   and (ii) neither sends a message to the other's stepper (so both
   inboxes — and with them the offered batch sets under every
   delivery policy — are untouched by the other action).  Condition
   (ii) is decidable from the [sends] destination mask recorded when
   the action was executed: a step is a pure function of (local
   state, delivered contents), both of which are unchanged along any
   path of independent actions, so the recorded mask stays exact
   wherever the sleep set travels. *)
module Action = struct
  type t = {
    pid : int;  (** the stepping process *)
    deliveries : int list;
        (** sorted [triple_content] signatures of the delivered batch *)
    sends : int;
        (** bitmask of the destination pids of the messages this
            action's execution sends — recorded from the produced
            configuration.  [0] until the action has been executed;
            identity ({!equal}/{!compare}) never looks at it, because
            at a fixed configuration (pid, deliveries) determine the
            sends. *)
  }

  let make ~pid ~deliveries ~sends =
    { pid; deliveries = List.sort compare deliveries; sends }

  let with_sends a sends = { a with sends }
  let equal a b = a.pid = b.pid && a.deliveries = b.deliveries

  let compare a b =
    Stdlib.compare (a.pid, a.deliveries) (b.pid, b.deliveries)

  let independent a b =
    a.pid <> b.pid
    && a.sends land (1 lsl b.pid) = 0
    && b.sends land (1 lsl a.pid) = 0

  (* Exact serialization of a sleep set, appended to the dedup key
     when sleep sets are active ("sleep-in-key").  Sleep sets combined
     with state caching are only sound if a state re-reached with a
     sleep set that is not a superset of the stored one is re-explored;
     folding the (canonically sorted) sleep set into the key is the
     conservative way to get that, at the price of admitting one
     configuration once per distinct sleep set. *)
  let digest actions =
    let actions = List.sort_uniq compare actions in
    let size =
      List.fold_left (fun acc a -> acc + 3 + List.length a.deliveries) 1 actions
    in
    let b = Bytes.create (8 * size) in
    let pos = ref 0 in
    put b pos (List.length actions);
    List.iter
      (fun a ->
        put b pos a.pid;
        put b pos a.sends;
        put b pos (List.length a.deliveries);
        List.iter (put b pos) a.deliveries)
      actions;
    Bytes.unsafe_to_string b
end

(* ---- process-permutation symmetry ----

   The interned rows of a configuration under a crashed-set mask.
   [decided] keeps every output ever written, including by crashed
   processes: the k-agreement oracle counts them. *)
type rows = {
  n : int;
  crashed : int;  (** bitmask of crashed pids *)
  state_ids : int array;  (** interned local-state id per pid *)
  decided : int option array;  (** decided value per pid *)
  triples : int array;  (** packed (src, dst, payload) triples, any order *)
}

(* Which pids can be relabelled without changing any future behaviour?

   Live pids cannot: local states embed [me], so relabelling a live
   pid changes the messages it will send and the decisions it will
   take.  A crashed pid's local state is inert (it never steps again),
   and a pending message {e to} a crashed pid can never be delivered
   — but a pending message {e from} a crashed pid to a live one is
   still observable (it can be delivered, or dropped under last-step
   omission), so its sender's identity is load-bearing.  The movable
   set is therefore: crashed pids with no retained (live-destination)
   pending triple naming them as source.  Only their decided outputs
   remain observable, and the oracle is pid-invariant over those. *)
let movable rows =
  let src_mask = ref 0 in
  Array.iter
    (fun t ->
      if rows.crashed land (1 lsl triple_dst t) = 0 then
        src_mask := !src_mask lor (1 lsl triple_src t))
    rows.triples;
  List.filter
    (fun p ->
      rows.crashed land (1 lsl p) <> 0 && !src_mask land (1 lsl p) = 0)
    (List.init rows.n Fun.id)

type canonical = {
  retained : int array;
      (** sorted pending triples with a live destination; triples to
          crashed processes are inert and elided *)
  row_ids : int array;
      (** per-pid state id, with crashed pids' inert states elided to
          [-1] *)
  fixed_decided : (int * int) list;
      (** (pid, value) outputs of non-movable pids, pid-ascending *)
  movable_decided : int list;
      (** sorted value multiset of the movable pids' outputs — the
          orbit representative forgets {e which} movable pid wrote
          {e which} value *)
  movable_pids : int list;  (** the movable pids, ascending *)
  perm : int array;
      (** witnessing permutation: [perm.(p)] is the pid slot [p]
          occupies in the orbit representative.  Identity outside the
          movable set. *)
}

(* relabel every pid [p] as [perm.(p)] — used to state and test the
   orbit properties, and to apply the witness *)
let permute_rows perm rows =
  let inv = Array.make rows.n 0 in
  Array.iteri (fun p q -> inv.(q) <- p) perm;
  {
    rows with
    crashed =
      List.fold_left
        (fun m p ->
          if rows.crashed land (1 lsl p) <> 0 then m lor (1 lsl perm.(p))
          else m)
        0
        (List.init rows.n Fun.id);
    state_ids = Array.init rows.n (fun q -> rows.state_ids.(inv.(q)));
    decided = Array.init rows.n (fun q -> rows.decided.(inv.(q)));
    triples =
      Array.map
        (fun t ->
          pack_triple perm.(triple_src t) perm.(triple_dst t)
            (triple_payload t))
        rows.triples;
  }

let canonicalize rows =
  let retained =
    Array.of_list
      (List.filter
         (fun t -> rows.crashed land (1 lsl triple_dst t) = 0)
         (Array.to_list rows.triples))
  in
  Array.sort (fun (a : int) b -> compare a b) retained;
  let movable_pids = movable rows in
  let is_movable =
    let m = List.fold_left (fun acc p -> acc lor (1 lsl p)) 0 movable_pids in
    fun p -> m land (1 lsl p) <> 0
  in
  let row_ids =
    Array.init rows.n (fun p ->
        if rows.crashed land (1 lsl p) <> 0 then -1 else rows.state_ids.(p))
  in
  let fixed_decided =
    List.filter_map
      (fun p ->
        match rows.decided.(p) with
        | Some v when not (is_movable p) -> Some (p, v)
        | Some _ | None -> None)
      (List.init rows.n Fun.id)
  in
  let movable_decided =
    List.sort compare
      (List.filter_map (fun p -> rows.decided.(p)) movable_pids)
  in
  (* witness: reorder the movable pids so their contents (decided
     value first, undecided last) land in sorted order over the
     movable slots taken in pid order.  [List.sort] is stable, so
     ties (all-undecided movables) leave the identity. *)
  let perm = Array.init rows.n Fun.id in
  let ranked =
    List.sort compare
      (List.map
         (fun p ->
           (( (match rows.decided.(p) with Some v -> (0, v) | None -> (1, 0)),
              p ),
            p))
         movable_pids)
  in
  List.iter2
    (fun slot (_, p) -> perm.(p) <- slot)
    movable_pids ranked;
  { retained; row_ids; fixed_decided; movable_decided; movable_pids; perm }

let canonical_equal a b =
  a.retained = b.retained && a.row_ids = b.row_ids
  && a.fixed_decided = b.fixed_decided
  && a.movable_decided = b.movable_decided
  && a.movable_pids = b.movable_pids

(* serialize the canonical core (the reduced key body, minus whatever
   the caller prepends).  Exact little-endian int sequence, same
   discipline as the unreduced key: equality iff the canonical cores
   are structurally equal. *)
let serialize ~crashed c =
  let n = Array.length c.row_ids in
  let nf = List.length c.fixed_decided in
  let nm = List.length c.movable_decided in
  let nt = Array.length c.retained in
  (* tag; crashed; row ids; |fixed|; (pid, value) pairs; |movable
     values|; values; |retained|; retained triples.  The -1 tag keeps
     reduced keys disjoint from unreduced ones, whose first int is a
     non-negative crashed mask. *)
  let b = Bytes.create (8 * (5 + n + (2 * nf) + nm + nt)) in
  let pos = ref 0 in
  put b pos (-1);
  put b pos crashed;
  Array.iter (put b pos) c.row_ids;
  put b pos nf;
  List.iter
    (fun (p, v) ->
      put b pos p;
      put b pos v)
    c.fixed_decided;
  put b pos nm;
  List.iter (put b pos) c.movable_decided;
  put b pos nt;
  Array.iter (put b pos) c.retained;
  Bytes.unsafe_to_string b
