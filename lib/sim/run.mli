(** Completed (finite prefix of a) run, with the analyses the paper's
    run-level predicates need.

    A run in the paper is an infinite configuration sequence; we work
    with finite prefixes that are {e decision-complete} (every correct
    process has decided) whenever the adversary and algorithm permit.
    All properties of interest (validity, k-agreement, the (dec-D) and
    (dec-D̄) predicates, indistinguishability until decision) are
    prefix-checkable. *)

type status =
  | All_correct_decided  (** Decision-complete prefix. *)
  | Halted_by_adversary
  | Hit_step_budget
      (** The step budget ran out first — for a terminating algorithm
          under a fair adversary this indicates non-termination. *)
  | No_enabled_process  (** Every process crashed. *)

type t = {
  status : status;
  n : int;
  inputs : Value.t array;
  pattern : Failure_pattern.t;
  events : Event.t list;  (** Chronological. *)
  trace : Trace.t;
      (** The per-process interned state-id sequences of the run —
          the substrate-neutral object Definitions 2 and 3 evaluate
          over (see {!Ksa_core.Indist}).  Step rows are empty for
          runs produced in exploration mode, which skips the log. *)
  decisions : (Pid.t * Value.t * int) list;
      (** (process, value, decision time), sorted by pid; includes
          decisions of processes that later crashed — k-agreement is
          uniform. *)
  forges : (int * int) list;
      (** (message id, forge-pool index) of every Byzantine forge
          applied during the run, in chronological order; [[]] for
          crash-model runs.  {!Replay.project} consults it so a
          projected schedule re-emits the forgeries the run saw. *)
}

val decision_of : t -> Pid.t -> Value.t option

val decided_values : t -> Value.t list
(** Distinct decided values, sorted. *)

val distinct_decisions : t -> int

val all_correct_decided : t -> bool

val decision_time : t -> Pid.t -> int option

val last_decision_time : t -> Pid.t list -> int option
(** Latest decision time among the given processes ([None] if one of
    them never decided). *)

val received_before_decision : t -> Pid.t -> Pid.Set.t
(** Senders from which the process received at least one message
    strictly before (not in the same step as) completing its
    decision step.  Receipt {e in} the deciding step counts as before
    decision (the step atomically receives, then decides). *)

val receives_nothing_from_until :
  t -> Pid.t -> from:Pid.t list -> until:int -> bool
(** [receives_nothing_from_until run p ~from ~until] holds iff [p]
    receives no message sent by a process in [from] in any step with
    time ≤ [until] — the quantitative core of (dec-D̄). *)

val steps_of : t -> Pid.t -> Event.t list
(** The events of one process, chronological. *)

val step_count : t -> int

val message_count : t -> int
(** Total messages sent. *)

val pp_summary : Format.formatter -> t -> unit
