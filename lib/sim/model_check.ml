let check_process_sync phi run =
  let events = Array.of_list run.Run.events in
  let total = Array.length events in
  let n = run.Run.n in
  let pattern = run.Run.pattern in
  let violations = ref [] in
  (* sliding window: per-pid occurrence counts maintained
     incrementally, O(total·n) instead of O(total·phi·n) rescans *)
  let counts = Array.make n 0 in
  if total >= phi then
    for i = 0 to phi - 2 do
      counts.(events.(i).Event.pid) <- counts.(events.(i).Event.pid) + 1
    done;
  for start = 0 to total - phi do
    let last = events.(start + phi - 1).Event.pid in
    counts.(last) <- counts.(last) + 1;
    let window_end_time = events.(start + phi - 1).Event.time in
    for p = 0 to n - 1 do
      let required =
        match Failure_pattern.crash_time pattern p with
        | None -> true
        | Some ct -> ct >= window_end_time
      in
      if required && counts.(p) = 0 then
        violations :=
          Printf.sprintf
            "processes: p%d takes no step in the Φ=%d window ending at t%d" p
            phi window_end_time
          :: !violations
    done;
    let first = events.(start).Event.pid in
    counts.(first) <- counts.(first) - 1
  done;
  List.rev !violations

let check_comm_sync delta run =
  let end_time =
    List.fold_left (fun _ (ev : Event.t) -> ev.time) 0 run.Run.events
  in
  let delivered_at = Hashtbl.create 64 in
  List.iter
    (fun (ev : Event.t) ->
      List.iter (fun (id, _src) -> Hashtbl.replace delivered_at id ev.time) ev.delivered)
    run.Run.events;
  let violations = ref [] in
  List.iter
    (fun (ev : Event.t) ->
      List.iter
        (fun (id, dst) ->
          match Hashtbl.find_opt delivered_at id with
          | Some t when t > ev.time + delta ->
              violations :=
                Printf.sprintf
                  "communication: message #%d took %d > Δ=%d steps" id
                  (t - ev.time) delta
                :: !violations
          | Some _ -> ()
          | None ->
              let deadline = ev.time + delta in
              if
                deadline <= end_time
                && not (Failure_pattern.is_crashed run.Run.pattern dst ~time:deadline)
              then
                violations :=
                  Printf.sprintf
                    "communication: message #%d to live p%d still undelivered \
                     at its Δ-deadline t%d"
                    id dst deadline
                  :: !violations)
        ev.sent)
    run.Run.events;
  List.rev !violations

let check_fifo run =
  (* per channel: the chronological delivery sequence must be a prefix
     of the send sequence (ids are assigned in send order) *)
  let sends = Hashtbl.create 64 in
  let deliveries = Hashtbl.create 64 in
  let push tbl key v =
    let l = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (v :: l)
  in
  List.iter
    (fun (ev : Event.t) ->
      List.iter (fun (id, dst) -> push sends (ev.pid, dst) id) ev.sent;
      List.iter (fun (id, src) -> push deliveries (src, ev.pid) id) ev.delivered)
    run.Run.events;
  Hashtbl.fold
    (fun (src, dst) rev_delivered acc ->
      let delivered = List.rev rev_delivered in
      let sent =
        List.sort compare
          (Option.value ~default:[] (Hashtbl.find_opt sends (src, dst)))
      in
      let prefix = Ksa_prim.Listx.take (List.length delivered) sent in
      if delivered <> prefix then
        Printf.sprintf "order: channel p%d→p%d delivered out of FIFO order" src
          dst
        :: acc
      else acc)
    deliveries []

let check_transmission t run =
  let violations = ref [] in
  List.iter
    (fun (ev : Event.t) ->
      match t with
      | Model.Unicast ->
          if List.length ev.sent > 1 then
            violations :=
              Printf.sprintf "transmission: p%d sent %d messages in one step at t%d"
                ev.pid (List.length ev.sent) ev.time
              :: !violations
      | Model.Broadcast ->
          if ev.sent <> [] then begin
            let recipients = List.sort_uniq compare (List.map snd ev.sent) in
            let others =
              List.filter (fun p -> p <> ev.pid) (Pid.universe run.Run.n)
            in
            if recipients <> others then
              violations :=
                Printf.sprintf
                  "transmission: p%d's sends at t%d are not a broadcast" ev.pid
                  ev.time
                :: !violations
          end)
    run.Run.events;
  List.rev !violations

let check_atomicity run =
  List.filter_map
    (fun (ev : Event.t) ->
      if ev.delivered <> [] && ev.sent <> [] then
        Some
          (Printf.sprintf
             "atomicity: p%d both received and sent in the step at t%d" ev.pid
             ev.time)
      else None)
    run.Run.events

let violations (m : Model.t) run =
  let v1 =
    match m.Model.processes with
    | Model.Async_processes -> []
    | Model.Sync_processes phi -> check_process_sync phi run
  in
  let v2 =
    match m.Model.communication with
    | Model.Async_comm -> []
    | Model.Sync_comm delta -> check_comm_sync delta run
  in
  let v3 = match m.Model.order with Model.Unordered -> [] | Model.Fifo -> check_fifo run in
  let v4 = check_transmission m.Model.transmission run in
  let v5 =
    match m.Model.atomicity with
    | Model.Atomic_receive_send -> []
    | Model.Separate -> check_atomicity run
  in
  v1 @ v2 @ v3 @ v4 @ v5

let check m run =
  match violations m run with [] -> Ok () | v :: _ -> Error v

let admissible_models run ~phi ~delta =
  let opts_p = [ Model.Async_processes; Model.Sync_processes phi ] in
  let opts_c = [ Model.Async_comm; Model.Sync_comm delta ] in
  let opts_o = [ Model.Unordered; Model.Fifo ] in
  let opts_t = [ Model.Unicast; Model.Broadcast ] in
  let opts_a = [ Model.Separate; Model.Atomic_receive_send ] in
  List.concat_map
    (fun processes ->
      List.concat_map
        (fun communication ->
          List.concat_map
            (fun order ->
              List.concat_map
                (fun transmission ->
                  List.filter_map
                    (fun atomicity ->
                      let m =
                        {
                          Model.processes;
                          communication;
                          order;
                          transmission;
                          atomicity;
                          fd = Model.No_fd;
                        }
                      in
                      if violations m run = [] then Some m else None)
                    opts_a)
                opts_t)
            opts_o)
        opts_c)
    opts_p
