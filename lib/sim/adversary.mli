(** Adversaries: the scheduler side of the model.

    In the paper, asynchrony is quantified adversarially — an
    impossibility proof exhibits a scheduler that delays messages and
    orders steps so as to produce a bad run.  Here an adversary is a
    (possibly stateful) function from an observation of the current
    configuration to the next scheduling action.  The engine validates
    every action against the failure pattern and the buffer contents,
    so adversaries cannot cheat (schedule crashed processes, deliver
    non-existent messages, or drop messages whose sender is still
    alive).

    The strategies below are exactly the constructions the paper's
    proofs use: fair schedules for possibility results, partition /
    solo-order schedules for Theorem 2, Theorem 8's border case and
    Lemma 12. *)

type pending = { id : int; src : Pid.t; dst : Pid.t; sent_at : int }
(** Metadata of an undelivered message (payload hidden). *)

type obs = {
  time : int;  (** Time of the last executed step (0 initially). *)
  n : int;
  pending : pending list;  (** Undelivered messages, in sending order. *)
  decided : (Pid.t * Value.t) list;  (** Decisions so far, sorted by pid. *)
  pattern : Failure_pattern.t;
  steps_taken : Pid.t -> int;
}

type action =
  | Step of { pid : Pid.t; deliver : int list }
      (** Process [pid] takes a step, receiving exactly the pending
          messages with the given ids (each must be addressed to
          [pid]). *)
  | Drop of int list
      (** Remove pending messages whose senders have already crashed:
          the "omit sending to a subset of receivers in the very last
          step" allowance of the model, realized as a retroactive
          drop. *)
  | Forge of { id : int; alt : int }
      (** Replace the payload of pending message [id] with entry
          [alt] of the algorithm's forge pool
          ({!Algorithm.S.forge_pool}) — the Byzantine adversary's
          move.  Forging one pending message at a time is exactly
          per-receiver corruption, so equivocation (different
          receivers seeing different payloads from the same sender in
          the same round) needs no extra machinery.  The engine does
          not gate this on the failure pattern; budget discipline
          (only corrupted senders, at most [t] of them) is the
          generating adversary's obligation and is pinned by the
          qcheck properties in test/test_byzantine.ml. *)
  | Halt  (** End the run (the adversary stops scheduling). *)

type t = { describe : string; next : obs -> action }
(** A (stateful) adversary.  [next] is called repeatedly until it
    returns [Halt], the engine's step budget runs out, or no process
    can be scheduled. *)

val alive : obs -> Pid.t list
(** Processes allowed to take the next step (not yet crashed at time
    [obs.time + 1]). *)

val undecided_alive : obs -> Pid.t list

val all_correct_decided : obs -> bool

val pending_for : ?allow:(Pid.t -> Pid.t -> bool) -> obs -> Pid.t -> int list
(** Ids of pending messages addressed to a process, optionally
    filtered by an [allow src dst] predicate. *)

val droppable : ?victims:(Pid.t -> bool) -> obs -> int list
(** Ids of pending messages the engine would accept in a {!Drop}:
    those whose sender is already crashed at [obs.time], optionally
    restricted to senders satisfying [victims]. *)

val forgeable : ?victims:(Pid.t -> bool) -> obs -> int list
(** Ids of pending messages a Byzantine adversary may {!Forge}.
    Corruption rides the failure pattern (a corrupted process subsumes
    a crashed one), so this is exactly {!droppable}: pending sends of
    already-corrupted processes. *)

(** {1 Fair strategies (possibility side)} *)

val fair : rng:Ksa_prim.Rng.t -> t
(** Uniformly random alive process each step; delivers {e all} its
    pending messages.  Keeps stepping decided processes (they may
    help others), halts once every correct process has decided and no
    message remains for an alive process. *)

val round_robin : unit -> t
(** Cycles through alive processes in id order, delivering all
    pending messages — the canonical "synchronous processes" schedule
    of Section V (lock-step speeds, asynchronous communication). *)

val fair_lossy : rng:Ksa_prim.Rng.t -> p_defer:float -> t
(** Like [fair] but each pending message is independently withheld
    with probability [p_defer] at each delivery opportunity
    (still delivered eventually with probability 1): exercises
    out-of-order, delayed communication. *)

(** {1 Partitioning strategies (impossibility side)} *)

val partition : groups:Pid.t list list -> ?release:(obs -> bool) -> unit -> t
(** Round-robin over alive processes, but a message crossing between
    two (disjoint) groups is withheld while [release obs] is false
    (default: while some alive group member is undecided — i.e.
    "until every correct process has decided", the run shape used
    throughout Sections V and VII).  Processes not in any group are
    treated as one implicit extra group.  After release, behaves like
    [round_robin]. *)

val sequential_solo : groups:Pid.t list list -> t
(** Lemma 12's construction: run group 1 in isolation (its members
    receive only from group 1) until all its alive members decide,
    then group 2, etc.  After the last group, all withheld cross-group
    messages are released and scheduling becomes round-robin.
    With singleton groups this realizes the Section V observation
    that wait-freedom lets every process decide solo. *)

val eventually_lockstep : rng:Ksa_prim.Rng.t -> gst:int -> p_defer:float -> t
(** Partial synchrony with a global stabilization time: before step
    [gst] behaves like {!fair_lossy} (arbitrary speeds and delays);
    from [gst] on, round-robin with full delivery — i.e. the run's
    suffix is admissible for synchronous processes (Φ = n) and
    Δ-bounded communication.  The schedule never halts on its own
    before all correct processes decide, so it also drives
    non-terminating protocols (e.g. heartbeat-based failure-detector
    implementations) under a step budget. *)

val crash_after_decision : inner:t -> victims:Pid.t list -> t
(** Wraps [inner], but drops all undelivered messages {e from} each
    victim as soon as that victim is crashed per the pattern — the
    standard way to make a crashed partition invisible. *)
