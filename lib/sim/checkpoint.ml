(* Campaign checkpoints.

   A checkpoint file is one Durable framed record whose payload
   marshals six fields: the campaign kind, a parameter fingerprint,
   the worker-error ledger, dumps of both global interner registries,
   and an opaque driver payload (the driver's own marshalled state).

   The interner dumps are the subtle part: engine configurations and
   dedup keys embed interned state/payload ids, so a driver snapshot
   is only meaningful under the id assignment that produced it.
   [restore_interners] re-establishes that assignment before the
   driver unmarshals its payload — exactly reproducing it in a fresh
   process, and verifying it is already in force when resuming within
   the process that wrote the checkpoint.

   Verdicts and stats are invariant under id renumbering (ids never
   leave the process), so internal consistency is all resume needs:
   a resumed campaign reports bit-identical results to an
   uninterrupted one. *)

module Metrics = Ksa_prim.Metrics
module Durable = Ksa_prim.Durable
module Intern = Ksa_prim.Intern
module Clock = Ksa_prim.Clock

let magic = "KSACKPT1"

(* v2: driver payloads carry the reduction mode (and, in [explore]
   snapshots, per-item DPOR sleep sets).  v3: [Canon.Action.t] gained
   the [sends] destination mask and [explore] snapshots gained the
   terminal/bare dedup tables.  v4: [fuzz] payloads changed from a
   bare watermark integer to a record that also carries the greybox
   coverage state (bitmap, transition pairs, corpus, unfolded
   updates).  Older files unmarshal into the wrong shapes, so they
   are rejected by the version check and the CLI falls back to a
   fresh campaign. *)
let version = 4

let m_written = Metrics.counter "campaign.checkpoints.written"
let m_loaded = Metrics.counter "campaign.checkpoints.loaded"
let m_bytes = Metrics.counter "campaign.checkpoint.bytes"
let m_worker_failures = Metrics.counter "campaign.worker.failures"
let m_requeues = Metrics.counter "campaign.requeues"
let t_write = Metrics.timer "campaign.checkpoint.write"

type policy = { every_items : int; every_seconds : float }

let default_policy = { every_items = max_int; every_seconds = 5.0 }

type sink = {
  path : string;
  kind : string;
  fingerprint : string;
  policy : policy;
}

type ledger_entry = { worker : int; error : string; requeued : int }

type t = {
  ck_kind : string;
  ck_fingerprint : string;
  ck_ledger : ledger_entry list;
  ck_states : Obj.t array;
  ck_payloads : Obj.t array;
  ck_payload : string;
}

let kind t = t.ck_kind
let fingerprint t = t.ck_fingerprint
let ledger t = t.ck_ledger
let payload t = t.ck_payload

let load ~path =
  match Durable.read_framed ~path ~magic with
  | Error _ as e -> e
  | Ok (v, _) when v <> version ->
      Error
        (Printf.sprintf "%s: unsupported checkpoint version %d (want %d)" path
           v version)
  | Ok (_, body) -> (
      match
        (Marshal.from_string body 0
          : string
            * string
            * ledger_entry list
            * Obj.t array
            * Obj.t array
            * string)
      with
      | kind, fp, ledger, states, payloads, payload ->
          Metrics.incr m_loaded;
          Ok
            {
              ck_kind = kind;
              ck_fingerprint = fp;
              ck_ledger = ledger;
              ck_states = states;
              ck_payloads = payloads;
              ck_payload = payload;
            }
      | exception _ -> Error (path ^ ": undecodable checkpoint body"))

let restore_interners t =
  match Intern.restore Intern.states t.ck_states with
  | Error _ as e -> e
  | Ok () -> Intern.restore Intern.payloads t.ck_payloads

(* ---------- the write-side controller ---------- *)

(* One [ctl] accompanies one campaign.  It owns the periodicity
   decision ([tick] vs [flush]), the latched interrupt poll, and the
   worker-error ledger, all mutex-protected: the parallel drivers
   call in from a ticker domain and from worker supervision. *)
type ctl = {
  sink : sink option;
  interrupt : (unit -> bool) option;
  lock : Mutex.t;
  mutable latched : bool;
  mutable entries : ledger_entry list; (* newest first *)
  mutable last_ns : int;
  mutable last_items : int;
}

let ctl ?sink ?interrupt ?(ledger = []) () =
  {
    sink;
    interrupt;
    lock = Mutex.create ();
    latched = false;
    entries = List.rev ledger;
    last_ns = Clock.now_ns ();
    last_items = 0;
  }

let with_lock c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let interrupted c =
  match c.interrupt with
  | None -> false
  | Some f ->
      with_lock c (fun () ->
          if not c.latched then c.latched <- f ();
          c.latched)

let engaged c = c.sink <> None || c.interrupt <> None

let note_failure c ~worker ~error ~requeued =
  Metrics.incr m_worker_failures;
  Metrics.add m_requeues requeued;
  with_lock c (fun () ->
      c.entries <- { worker; error; requeued } :: c.entries)

let ledger_of c = with_lock c (fun () -> List.rev c.entries)

let write_now c sink snap =
  let body =
    Metrics.time t_write (fun () ->
        let payload = snap () in
        Marshal.to_string
          ( sink.kind,
            sink.fingerprint,
            List.rev c.entries,
            Intern.dump Intern.states,
            Intern.dump Intern.payloads,
            payload )
          [])
  in
  match Durable.write_framed ~path:sink.path ~magic ~version body with
  | Ok () ->
      Metrics.incr m_written;
      Metrics.add m_bytes (String.length body)
  | Error msg ->
      (* a failing checkpoint must not abort the campaign it exists
         to protect; the operator sees why resume will be stale *)
      Printf.eprintf "ksa: checkpoint not written: %s\n%!" msg

let due c ~items =
  match c.sink with
  | None -> false
  | Some sink ->
      with_lock c (fun () ->
          items - c.last_items >= sink.policy.every_items
          || Clock.elapsed_s ~since:c.last_ns >= sink.policy.every_seconds)

let tick c ~items snap =
  match c.sink with
  | None -> ()
  | Some sink ->
      with_lock c (fun () ->
          if
            items - c.last_items >= sink.policy.every_items
            || Clock.elapsed_s ~since:c.last_ns >= sink.policy.every_seconds
          then begin
            write_now c sink snap;
            c.last_ns <- Clock.now_ns ();
            c.last_items <- items
          end)

let flush c snap =
  match c.sink with
  | None -> ()
  | Some sink ->
      with_lock c (fun () ->
          write_now c sink snap;
          c.last_ns <- Clock.now_ns ();
          c.last_items <- 0)
