module Metrics = Ksa_prim.Metrics
module Backoff = Ksa_prim.Backoff

type delivery_policy = Empty_or_all | Per_sender | All_subsets

type stats = {
  configs_visited : int;
  terminal_runs : int;
  budget_exhausted : bool;
}

type outcome =
  | Safe of stats
  | Violation of { decisions : (Pid.t * Value.t * int) list; reason : string; depth : int }

type resilient_outcome =
  | All_paths_decide of stats
  | Safety_violation of {
      decisions : (Pid.t * Value.t * int) list;
      reason : string;
    }
  | Stuck of {
      crashed : Pid.t list;
      undecided_correct : Pid.t list;
      stats : stats;
    }
  | Indeterminate of stats

(* Crashed sets travel as int bitmasks.  Top level (not per functor
   instance): pure bit arithmetic, also exercised directly by the
   test suite. *)
module Mask = struct
  let mem mask p = mask land (1 lsl p) <> 0
  let add mask p = mask lor (1 lsl p)
  let to_list ~n mask = List.filter (mem mask) (Pid.universe n)

  (* Kernighan's loop: one iteration per set bit, no allocation —
     this sits on the crash-successor hot path. *)
  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go mask 0
end

(* ---- instrumentation (process-global, shared by all drivers) ----

   Live counters tick during the search and feed progress reporting;
   in the parallel drivers admission is exactly-once (dedup check and
   ticket draw are fused under the shard lock of the shared table),
   so [explore.admitted] counts each configuration once.  Counters
   are process-global and accumulate across runs; the authoritative
   per-run figures are published as gauges from the final [stats]
   record at completion. *)
let m_admitted = Metrics.counter "explore.admitted"
let m_dedup = Metrics.counter "explore.dedup.hits"
let m_terminals = Metrics.counter "explore.terminals"
let m_domains = Metrics.counter "explore.domains.spawned"
let m_truncations = Metrics.counter "explore.budget.truncations"
let m_steals = Metrics.counter "explore.steals"
let m_spills = Metrics.counter "explore.spills"

(* Reduction instrumentation.  [orbit_hits] counts dedup hits taken
   while a symmetry reduction is active — an upper bound on orbit
   identifications: encounters collapsed onto an already-admitted
   representative, whether by genuine orbit identification or by plain
   revisiting (the two are not separable at the table; under sym+por
   the admission key includes the sleep digest, so a hit means the
   same configuration AND the same sleep set).  [sleep_pruned] counts
   delivery transitions skipped by a DPOR sleep set before any
   successor was built.  [sleep_readmit] counts sym+por admissions of
   a configuration whose bare orbit key was already admitted under a
   different sleep digest ("sleep-in-key" fragmentation) — subtract it
   from [admitted] to recover distinct configurations.  [noop_pruned]
   counts empty-delivery successors skipped because they provably
   reproduce the parent key (self-loops in the keyed graph). *)
let m_orbit = Metrics.counter "explore.orbit_hits"
let m_sleep_pruned = Metrics.counter "explore.sleep_pruned"
let m_sleep_readmit = Metrics.counter "explore.sleep_readmitted"
let m_noop_pruned = Metrics.counter "explore.noop_pruned"
let g_frontier_peak = Metrics.gauge "explore.frontier.peak"
let g_depth_peak = Metrics.gauge "explore.depth.peak"
let g_max_configs = Metrics.gauge "explore.budget.max_configs"
let g_visited = Metrics.gauge "explore.configs_visited"
let g_terminal_runs = Metrics.gauge "explore.terminal_runs"
let g_exhausted = Metrics.gauge "explore.budget_exhausted"
let t_worker = Metrics.timer "explore.worker"

let record_run_stats (s : stats) =
  Metrics.gauge_set g_visited s.configs_visited;
  Metrics.gauge_set g_terminal_runs s.terminal_runs;
  Metrics.gauge_set g_exhausted (if s.budget_exhausted then 1 else 0)

let default_domains () =
  match Sys.getenv_opt "KSA_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | Some _ | None -> 1)
  | None -> Domain.recommended_domain_count ()

(* ---- pause-the-world coordination for the parallel drivers ----

   A checkpoint must capture a consistent cut of every worker's
   private state.  Workers poll a request flag at their drain-loop
   safepoints (between node expansions — never mid-node); on request
   each publishes a deep snapshot into its slot and parks on a
   condition until released.  The coordinator waits until every live
   worker is parked (workers that already finished have published a
   final snapshot on exit), merges the slots, writes, and releases.
   With no sink and no interrupt poll the request flag stays false
   and the safepoint is one relaxed atomic read per node. *)
module Pause = struct
  type 'a t = {
    req : bool Atomic.t;
    m : Mutex.t;
    parked_cond : Condition.t;
    resume_cond : Condition.t;
    mutable parked : int;
    mutable active : int;
    slots : 'a option array;
  }

  let create n =
    {
      req = Atomic.make false;
      m = Mutex.create ();
      parked_cond = Condition.create ();
      resume_cond = Condition.create ();
      parked = 0;
      active = n;
      slots = Array.make n None;
    }

  (* worker safepoint: park (publishing a snapshot) while a pause is
     requested.  [None] is the supervised re-run path: no pause
     machinery, the coordinator is gone by then. *)
  let point p i snap =
    match p with
    | None -> ()
    | Some p ->
        if Atomic.get p.req then begin
          Mutex.lock p.m;
          p.slots.(i) <- Some (snap ());
          p.parked <- p.parked + 1;
          Condition.signal p.parked_cond;
          while Atomic.get p.req do
            Condition.wait p.resume_cond p.m
          done;
          p.parked <- p.parked - 1;
          Mutex.unlock p.m
        end

  (* worker exit: leave a final snapshot so later checkpoints still
     cover this worker's share of the space *)
  let exit p i snap =
    match p with
    | None -> ()
    | Some p ->
        Mutex.lock p.m;
        p.slots.(i) <- Some (snap ());
        p.active <- p.active - 1;
        Condition.signal p.parked_cond;
        Mutex.unlock p.m

  (* coordinator: stop the world, run [f] over the slots, release *)
  let with_world p f =
    Mutex.lock p.m;
    Atomic.set p.req true;
    while p.parked < p.active do
      Condition.wait p.parked_cond p.m
    done;
    Fun.protect
      ~finally:(fun () ->
        Atomic.set p.req false;
        Condition.broadcast p.resume_cond;
        Mutex.unlock p.m)
      (fun () -> f p.slots)
end

(* The checkpoint/interrupt coordinator of a parallel driver: a small
   ticker domain.  When a periodic write is due it stops the world,
   merges the worker slots into a sequential-format payload and
   writes it; when the campaign is interrupted it writes a final
   checkpoint the same way, then raises the driver's stop flag (via
   [on_interrupt]) and retires. *)
let spawn_coordinator ~ckpt ~pause ~items ~merge ~on_interrupt =
  if not (Checkpoint.engaged ckpt) then None
  else
    let quit = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          (* poll pacing: ramp from 0.5ms to 5ms between checks, reset
             after every world-stop so the next write lands promptly *)
          let sp = Backoff.Spin.make ~relax:0 ~floor:5e-4 ~cap:5e-3 () in
          let rec loop () =
            if not (Atomic.get quit) then begin
              Backoff.Spin.wait sp;
              let intr = Checkpoint.interrupted ckpt in
              if intr || Checkpoint.due ckpt ~items:(items ()) then begin
                Pause.with_world pause (fun slots ->
                    let payload = lazy (merge slots) in
                    if intr then
                      Checkpoint.flush ckpt (fun () -> Lazy.force payload)
                    else
                      Checkpoint.tick ckpt ~items:(items ()) (fun () ->
                          Lazy.force payload));
                Backoff.Spin.reset sp
              end;
              if intr then begin
                on_interrupt ();
                Atomic.set quit true
              end;
              loop ()
            end
          in
          loop ())
    in
    Some (quit, d)

let stop_coordinator = function
  | None -> ()
  | Some (quit, d) ->
      Atomic.set quit true;
      Domain.join d

module Shardset = Ksa_prim.Shardset

(* ---- batched work-stealing frontier for the parallel drivers ----

   One pool per worker: a mutex-guarded queue of item {e batches} with
   an atomic item-count mirror, so dry workers can scan every pool
   without touching foreign locks.  Each worker keeps a private LIFO
   stack as its working set (depth-first, cache-hot) and spills the
   {e oldest} half — the shallow, bushy end of the frontier — into its
   own pool as one batch when the stack grows and its pool has run
   dry; thieves take half a victim's batches at a time, amortising
   cross-domain traffic over whole batches.

   Termination is an idle-count protocol.  A worker that finds its
   stack, its own pool and every victim empty parks itself in [idle]
   and waits (with backoff) for one of: work appearing in some pool,
   the driver's stop flag, or completion.  Completion holds exactly
   when every live worker is idle and every pool is empty — items
   live only in non-idle workers' private stacks or in pools, so that
   state has no producer left.  The completion test reads the idle
   count {e before} the pool sizes, and a re-activating worker leaves
   [idle] {e before} it removes anything from a pool, so a racing
   observer sees either the smaller idle count or the not-yet-empty
   pool — never a spurious completion. *)
module Wspool = struct
  type 'a t = {
    queues : (int * 'a list) Queue.t array;
    locks : Mutex.t array;
    sizes : int Atomic.t array;
    idle : int Atomic.t;
    live : int Atomic.t;
    finished : bool Atomic.t;
  }

  let create ~workers =
    {
      queues = Array.init workers (fun _ -> Queue.create ());
      locks = Array.init workers (fun _ -> Mutex.create ());
      sizes = Array.init workers (fun _ -> Atomic.make 0);
      idle = Atomic.make 0;
      live = Atomic.make workers;
      finished = Atomic.make false;
    }

  let locked t i f =
    Mutex.lock t.locks.(i);
    Fun.protect ~finally:(fun () -> Mutex.unlock t.locks.(i)) f

  let push_batch t i ~count items =
    if count > 0 then
      locked t i (fun () ->
          Queue.add (count, items) t.queues.(i);
          Atomic.set t.sizes.(i) (Atomic.get t.sizes.(i) + count))

  let pop_batch t i =
    if Atomic.get t.sizes.(i) = 0 then None
    else
      locked t i (fun () ->
          match Queue.take_opt t.queues.(i) with
          | None -> None
          | Some (c, items) ->
              Atomic.set t.sizes.(i) (Atomic.get t.sizes.(i) - c);
              Some (c, items))

  let own_pending t i = Atomic.get t.sizes.(i)
  let pending t = Array.fold_left (fun acc s -> acc + Atomic.get s) 0 t.sizes

  (* Take half the victim's batches: the oldest becomes the thief's
     working set, the rest are re-homed into the thief's own pool
     (after the victim's lock is released — locks never nest). *)
  let steal t i =
    let workers = Array.length t.queues in
    let rec scan d =
      if d >= workers then None
      else
        let v = (i + d) mod workers in
        if Atomic.get t.sizes.(v) = 0 then scan (d + 1)
        else
          let stolen =
            locked t v (fun () ->
                let take = (Queue.length t.queues.(v) + 1) / 2 in
                let acc = ref [] and n = ref 0 in
                for _ = 1 to take do
                  match Queue.take_opt t.queues.(v) with
                  | Some (c, items) ->
                      acc := (c, items) :: !acc;
                      n := !n + c
                  | None -> ()
                done;
                Atomic.set t.sizes.(v) (Atomic.get t.sizes.(v) - !n);
                List.rev !acc)
          in
          match stolen with
          | [] -> scan (d + 1)
          | (c, items) :: rest ->
              List.iter (fun (c', b) -> push_batch t i ~count:c' b) rest;
              Metrics.incr m_steals;
              Some (c, items)
    in
    scan 1

  (* non-destructive: every queued item, for the checkpoint cut *)
  let iter_pending t f =
    Array.iteri
      (fun i _ ->
        locked t i (fun () ->
            Queue.iter (fun (_, items) -> List.iter f items) t.queues.(i)))
      t.queues

  (* round-robin the initial items into small batches so even the
     first steals move real work *)
  let seed t items =
    let workers = Array.length t.queues in
    let batch = ref [] and blen = ref 0 and w = ref 0 in
    let flush () =
      if !blen > 0 then begin
        push_batch t !w ~count:!blen !batch;
        w := (!w + 1) mod workers;
        batch := [];
        blen := 0
      end
    in
    List.iter
      (fun it ->
        batch := it :: !batch;
        incr blen;
        if !blen >= 8 then flush ())
      items;
    flush ()

  (* a worker dying of a non-verdict exception leaves the live set *)
  let retire t = Atomic.decr t.live

  (* the post-join rescue drains leftovers with one fresh worker *)
  let reset_for_rescue t =
    Atomic.set t.finished false;
    Atomic.set t.idle 0;
    Atomic.set t.live 1

  (* Next batch for worker [i], or [None] when the search is complete
     or [stopped].  [safepoint] keeps the pause-the-world protocol
     responsive while idling (an idle worker's stack is empty, so its
     published snapshot is trivially consistent).  Backoff starts with
     [cpu_relax] and falls back to short sleeps so idle workers do not
     starve working domains of cores. *)
  let acquire t i ~safepoint ~stopped =
    let try_take () =
      match pop_batch t i with Some _ as r -> r | None -> steal t i
    in
    match try_take () with
    | Some _ as r -> r
    | None ->
        Atomic.incr t.idle;
        let sp = Backoff.Spin.make () in
        let rec wait () =
          safepoint ();
          if stopped () || Atomic.get t.finished then begin
            Atomic.decr t.idle;
            None
          end
          else if pending t > 0 then begin
            Atomic.decr t.idle;
            match try_take () with
            | Some _ as r -> r
            | None ->
                Atomic.incr t.idle;
                Backoff.Spin.reset sp;
                wait ()
          end
          else if Atomic.get t.idle >= Atomic.get t.live && pending t = 0
          then begin
            Atomic.set t.finished true;
            Atomic.decr t.idle;
            None
          end
          else begin
            Backoff.Spin.wait sp;
            wait ()
          end
        in
        wait ()
end

(* ---- write-once dense-id record store shared across domains ----

   Records are indexed by the global dense ids the admission tickets
   hand out.  Storage is chunked: a top-level vector of lazily
   CAS-installed chunks, widened by publishing a larger vector that
   aliases the same chunk cells (readers holding the old vector still
   reach every chunk they can index).  Each slot is written exactly
   once, by the domain that expands that node; the plain writes are
   made visible to readers by the synchronisation that precedes every
   read — a worker join, or a pause-the-world with all workers parked
   on the pause mutex. *)
module Nodestore = struct
  let chunk_bits = 13
  let chunk_size = 1 lsl chunk_bits

  type 'r t = {
    top : 'r array option Atomic.t array Atomic.t;
    grow : Mutex.t;
    empty : 'r;
  }

  let create ~empty =
    {
      top = Atomic.make (Array.init 16 (fun _ -> Atomic.make None));
      grow = Mutex.create ();
      empty;
    }

  let rec cell t c =
    let top = Atomic.get t.top in
    if c < Array.length top then top.(c)
    else begin
      Mutex.lock t.grow;
      let top = Atomic.get t.top in
      if c >= Array.length top then begin
        let n = ref (Array.length top) in
        while c >= !n do
          n := !n * 2
        done;
        let wider =
          Array.init !n (fun i ->
              if i < Array.length top then top.(i) else Atomic.make None)
        in
        Atomic.set t.top wider
      end;
      Mutex.unlock t.grow;
      cell t c
    end

  let chunk t c =
    let cell = cell t c in
    match Atomic.get cell with
    | Some a -> a
    | None ->
        let a = Array.make chunk_size t.empty in
        if Atomic.compare_and_set cell None (Some a) then a
        else (match Atomic.get cell with Some a -> a | None -> assert false)

  let set t i r = (chunk t (i lsr chunk_bits)).(i land (chunk_size - 1)) <- r

  (* unwritten slots read as [empty] — for the explorers that means
     "admitted but not yet expanded" *)
  let get t i =
    let c = i lsr chunk_bits in
    let top = Atomic.get t.top in
    if c >= Array.length top then t.empty
    else
      match Atomic.get top.(c) with
      | None -> t.empty
      | Some a -> a.(i land (chunk_size - 1))
end

(* spill once the private stack holds this many items (handing off
   the oldest half) *)
let spill_at = 64

(* first [k] elements kept, the rest handed off; [k] is at most
   [spill_at], so non-tail recursion is fine *)
let rec split_at k l =
  if k = 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: tl ->
        let a, b = split_at (k - 1) tl in
        (x :: a, b)

module Make (A : Algorithm.S) = struct
  module E = Engine.Make (A)

  exception Found of (Pid.t * Value.t * int) list * string * int

  (* All 2^|xs| sublists, built with rev_append/rev_map only: linear
     in the size of the output, no quadratic [acc @ ...] rebuilding. *)
  let subsets xs =
    List.fold_left
      (fun acc x -> List.rev_append (List.rev_map (fun s -> x :: s) acc) acc)
      [ [] ] xs

  (* Delivery choices for a process whose buffer holds [mine]
     ((id, src) pairs in sending order): lists of message ids.
     Single pass over the buffer for every policy. *)
  let choices policy mine =
    match policy with
    | Empty_or_all -> (
        match mine with [] -> [ [] ] | _ -> [ []; List.map fst mine ])
    | Per_sender ->
        let buckets : (Pid.t, int list ref) Hashtbl.t = Hashtbl.create 8 in
        let senders = ref [] in
        List.iter
          (fun (id, src) ->
            match Hashtbl.find_opt buckets src with
            | Some l -> l := id :: !l
            | None ->
                Hashtbl.add buckets src (ref [ id ]);
                senders := src :: !senders)
          mine;
        let senders = List.rev !senders in
        let per_sender =
          List.map (fun s -> List.rev !(Hashtbl.find buckets s)) senders
        in
        let all =
          match senders with
          | _ :: _ :: _ -> [ List.map fst mine ]
          | _ -> []
        in
        ([] :: per_sender) @ all
    | All_subsets -> subsets (List.map fst mine)

  let require_explorable ~n ~pattern =
    if A.uses_fd then
      invalid_arg "Explorer: algorithms with failure detectors are unsupported";
    if
      List.exists
        (fun p ->
          match Failure_pattern.crash_time pattern p with
          | Some t when t > 0 -> true
          | Some _ | None -> false)
        (Pid.universe n)
    then invalid_arg "Explorer: only initial crashes are supported"

  (* Successors of a non-terminal configuration under [policy]: every
     (stepper, delivery-choice) pair.  [steppers] is constant over the
     whole search because only initial crashes are admitted. *)
  let schedule_successors ~policy ~pattern ~steppers config k =
    List.iter
      (fun pid ->
        let mine = E.inbox config pid in
        List.iter
          (fun deliver ->
            match E.apply ~pattern config (Adversary.Step { pid; deliver }) with
            | Some config' -> k config'
            | None -> assert false)
          (choices policy mine))
      steppers

  let action_of config pid deliver =
    Canon.Action.make ~pid
      ~deliveries:(E.delivery_signature config deliver)
      ~sends:0

  (* DPOR expansion (Godefroid-style sleep sets) for the crash-free
     explorer.  Actions in [sleep] arrive provably covered: they were
     explored from an earlier sibling of this node, and every action
     executed on the path in between commutes with them
     ({!Canon.Action.independent}: distinct stepping pids, and neither
     action sends to the other's stepper — so along the path the slept
     action's pid kept its local state, its inbox, and therefore its
     offered batches under every delivery policy), so the interleaving
     they would start is a permutation of one already scheduled.  We
     skip them outright.  Each executed successor inherits the sleep
     set plus its already-executed earlier siblings — filtered down to
     the actions that commute with the executed one, whose send mask
     is read off the produced configuration (dependent actions wake
     up; in particular any slept action whose pid just received a
     send, since its offered batches changed).  Skipped (slept)
     siblings propagate through the inherited set, not through
     [executed]: they were never explored {e here}, only at the
     ancestor that put them to sleep.

     The always-offered empty delivery is special-cased: when it
     provably reproduces the parent key (the stepper is settled — no
     state change, no observable send), the successor is a self-loop
     in the keyed graph and is not scheduled at all.  Without this,
     every settled stepper re-admits the configuration once per
     distinct reachable sleep digest ("sleep-in-key" fragmentation).
     Dropping a self-loop prunes no states: the child {e is} the
     parent, and this very node explores everything outside its own
     sleep set while slept actions are covered at ancestors.

     Sleep sets prune {e transitions}, never states: every reachable
     configuration is still reached (along the representative
     interleaving), so the decision-value oracle, terminal detection
     and violation checks are untouched.  The crash drivers do not use
     this — their Stuck classification is a property of the full
     transition graph, which edge-pruning would distort. *)
  let schedule_successors_sleep ~reduction ~policy ~pattern ~steppers ~sleep
      ~parent_key config k =
    let executed = ref [] in
    List.iter
      (fun pid ->
        let mine = E.inbox config pid in
        List.iter
          (fun deliver ->
            let act = action_of config pid deliver in
            if List.exists (Canon.Action.equal act) sleep then
              Metrics.incr m_sleep_pruned
            else
              match
                E.apply ~pattern config (Adversary.Step { pid; deliver })
              with
              | None -> assert false
              | Some config' ->
                  if
                    deliver = []
                    && E.key_equal (E.key ~reduction config') parent_key
                  then Metrics.incr m_noop_pruned
                  else begin
                    let act =
                      Canon.Action.with_sends act
                        (E.sends_between config config')
                    in
                    let child_sleep =
                      List.filter
                        (Canon.Action.independent act)
                        (List.rev_append !executed sleep)
                    in
                    k config' child_sleep;
                    executed := act :: !executed
                  end)
          (choices policy mine))
      steppers

  (* the dedup key of an [explore] work item: the (possibly orbit)
     configuration key [bare], plus — when sleep sets are active — the
     exact serialized sleep set, so a configuration re-reached under a
     different sleep set is re-expanded rather than wrongly deduped
     against a run that pruned differently *)
  let admission_key ~reduction bare sleep =
    match (reduction : Canon.reduction) with
    | Symmetry_por -> bare ^ Canon.Action.digest sleep
    | No_reduction | Symmetry -> bare

  (* ---- sequential exhaustive exploration ---- *)

  (* Checkpoint payload of an [explore] campaign: the reduction mode,
     the dedup table, the counted-terminal and admitted bare-key
     tables (so resumed runs keep terminal counting and the
     fragmentation metric exactly-once per configuration), the
     counters, and the stack of {e candidate} (configuration, depth,
     sleep set) items — popped but not yet admitted, so resume
     re-applies dedup and the budget exactly as the uninterrupted run
     would have.  The parallel driver merges its worker states into
     this same format, and every resume continues on the sequential
     driver.  A payload written under a different reduction mode
     describes a different search — warn and start fresh, like a
     corrupt checkpoint. *)
  type explore_snap =
    Canon.reduction
    * (E.key, unit) Hashtbl.t
    * (E.key, unit) Hashtbl.t
    * (E.key, unit) Hashtbl.t
    * int
    * int
    * bool
    * (E.config * int * Canon.Action.t list) list

  let warn_reduction_mismatch ~want ~got =
    Printf.eprintf
      "ksa: checkpoint was written under --reduction %s, not %s — starting a \
       fresh campaign\n\
       %!"
      (Canon.reduction_to_string got)
      (Canon.reduction_to_string want)

  (* Same policy for the fault model: a payload written under a
     different --model describes a different search. *)
  let warn_model_mismatch ~want ~got =
    Printf.eprintf
      "ksa: checkpoint was written under --model %s, not %s — starting a \
       fresh campaign\n\
       %!"
      got
      (Fault_model.to_string want)

  let explore ?(reduction = Canon.No_reduction) ?(max_depth = 200)
      ?(max_configs = 2_000_000) ?(policy = Per_sender)
      ?(on_terminal = fun _ -> ()) ?(ckpt = Checkpoint.ctl ()) ?resume ~n
      ~inputs ~pattern ~check () =
    require_explorable ~n ~pattern;
    Metrics.gauge_set g_max_configs max_configs;
    let fresh () =
      ( Hashtbl.create 65_536,
        Hashtbl.create 1_024,
        Hashtbl.create 4_096,
        0,
        0,
        false,
        [ (E.init_explore ~reduction ~n ~inputs (), 0, []) ] )
    in
    let seen, term_seen, bare_seen, visited0, terminals0, exhausted0, stack0 =
      match resume with
      | Some payload ->
          let mode, seen, tm, br, v, t, e, st =
            (Marshal.from_string payload 0 : explore_snap)
          in
          if mode <> reduction then begin
            warn_reduction_mismatch ~want:reduction ~got:mode;
            fresh ()
          end
          else (seen, tm, br, v, t, e, st)
      | None -> fresh ()
    in
    let visited = ref visited0 in
    let terminals = ref terminals0 in
    let exhausted = ref exhausted0 in
    let interrupted = ref false in
    let stack = ref stack0 in
    let snap () =
      Marshal.to_string
        (( reduction,
           seen,
           term_seen,
           bare_seen,
           !visited,
           !terminals,
           !exhausted,
           !stack )
          : explore_snap)
        []
    in
    let correct = Failure_pattern.correct pattern in
    (* Admission is clamped at the budget {e before} a configuration
       is counted (matching the dense-id [visit] of the crash
       drivers): [configs_visited] never overshoots [max_configs],
       and [budget_exhausted] is set only when an unseen reachable
       configuration was actually turned away.  The stack pops
       candidates in exactly the order the recursive formulation
       visited them (successors are pushed in reverse generation
       order), so verdicts, depths and stats are unchanged. *)
    let rec loop () =
      match !stack with
      | [] -> ()
      | _ when Checkpoint.interrupted ckpt ->
          Checkpoint.flush ckpt snap;
          interrupted := true
      | (config, depth, sleep) :: rest ->
          stack := rest;
          let bare = E.key ~reduction config in
          let key = admission_key ~reduction bare sleep in
          if Hashtbl.mem seen key then begin
            Metrics.incr m_dedup;
            if reduction <> Canon.No_reduction then Metrics.incr m_orbit
          end
          else if !visited >= max_configs then begin
            exhausted := true;
            Metrics.incr m_truncations
          end
          else begin
            Hashtbl.add seen key ();
            (match reduction with
            | Canon.Symmetry_por ->
                if Hashtbl.mem bare_seen bare then Metrics.incr m_sleep_readmit
                else Hashtbl.add bare_seen bare ()
            | Canon.No_reduction | Canon.Symmetry -> ());
            incr visited;
            Metrics.incr m_admitted;
            Metrics.gauge_max g_depth_peak depth;
            let decisions = E.decisions config in
            (match check decisions with
            | Some reason -> raise (Found (decisions, reason, depth))
            | None -> ());
            let done_ =
              List.for_all (fun p -> E.decision_of config p <> None) correct
            in
            if done_ then begin
              (* terminals are keyed by the bare configuration key:
                 under sym+por the same terminal configuration can be
                 admitted once per distinct sleep digest, but it is
                 one terminal state, counted (and reported) once *)
              if not (Hashtbl.mem term_seen bare) then begin
                Hashtbl.add term_seen bare ();
                incr terminals;
                Metrics.incr m_terminals;
                on_terminal decisions
              end
            end
            else if depth >= max_depth then exhausted := true
            else begin
              let succs = ref [] in
              (match reduction with
              | Canon.Symmetry_por ->
                  schedule_successors_sleep ~reduction ~policy ~pattern
                    ~steppers:correct ~sleep ~parent_key:bare config
                    (fun config' sleep' ->
                      succs := (config', depth + 1, sleep') :: !succs)
              | Canon.No_reduction | Canon.Symmetry ->
                  schedule_successors ~policy ~pattern ~steppers:correct config
                    (fun config' -> succs := (config', depth + 1, []) :: !succs));
              stack := List.rev_append !succs !stack
            end;
            Checkpoint.tick ckpt ~items:!visited snap
          end;
          loop ()
    in
    match loop () with
    | () ->
        if !interrupted then exhausted := true;
        let stats =
          {
            configs_visited = !visited;
            terminal_runs = !terminals;
            budget_exhausted = !exhausted;
          }
        in
        record_run_stats stats;
        Safe stats
    | exception Found (decisions, reason, depth) ->
        Violation { decisions; reason; depth }

  (* ---- parallel exhaustive exploration ----

     Every domain admits configurations against one shared {!Shardset}
     table with one ticket-clamped admission counter, so each
     reachable configuration is admitted and expanded exactly once:
     the visited set — and with it verdict and stats — equals the
     sequential driver's whenever no budget truncates, and parallelism
     buys wall-clock instead of duplicated work.  The frontier flows
     through a {!Wspool}: private LIFO stacks, batched spills, and
     half-the-batches stealing with idle-count termination.  [check]
     runs concurrently and must be thread-safe. *)
  let explore_par ?(reduction = Canon.No_reduction) ?domains
      ?(max_depth = 200) ?(max_configs = 2_000_000) ?(policy = Per_sender)
      ?(on_terminal = fun _ -> ()) ?(ckpt = Checkpoint.ctl ()) ~n ~inputs
      ~pattern ~check () =
    require_explorable ~n ~pattern;
    Metrics.gauge_set g_max_configs max_configs;
    let domains =
      max 1 (match domains with Some d -> d | None -> default_domains ())
    in
    let correct = Failure_pattern.correct pattern in
    let seen = Shardset.create ~name:"explore.dedup" () in
    (* terminal configurations and admitted bare keys, both keyed by
       the bare (sleep-free) configuration key: under sym+por one
       configuration can be admitted once per distinct sleep digest,
       but it is one terminal state / one distinct configuration.
       [term_set] makes terminal counting and [on_terminal] fire once
       per configuration (this also absorbs orphan re-expansions);
       [bare_set] feeds the sleep-readmission counter. *)
    let term_set = Shardset.create ~name:"explore.terminal" () in
    let bare_set = Shardset.create ~name:"explore.bare" () in
    (* Keys admitted to the shared table whose expansion a dying
       worker cut short: the ticket stands and the in-flight item goes
       back to the pool, but its successors were never generated.
       Whoever re-processes the item hits [Found] in the table;
       membership here tells them to expand it anyway instead of
       dropping it as a duplicate — without this the dead worker's
       whole subtree would be silently lost while the run still
       reported [Safe].  Touched only on the failure path, so a
       mutex-guarded table is plenty. *)
    let orphans : (E.key, unit) Hashtbl.t = Hashtbl.create 8 in
    let orphans_lock = Mutex.create () in
    (* [orphan_take] sits on the dedup-hit hot path, so the common
       all-workers-healthy case must stay lock-free: [orphans_n] is a
       conservative size mirror, and a re-processor of an orphaned
       item always observes its increment (the handoff through the
       pool mutex orders [orphan_add] before the re-process). *)
    let orphans_n = Atomic.make 0 in
    let orphan_add key =
      Mutex.lock orphans_lock;
      if not (Hashtbl.mem orphans key) then begin
        Hashtbl.replace orphans key ();
        Atomic.incr orphans_n
      end;
      Mutex.unlock orphans_lock
    in
    let orphan_take key =
      Atomic.get orphans_n > 0
      && begin
           Mutex.lock orphans_lock;
           let hit = Hashtbl.mem orphans key in
           if hit then begin
             Hashtbl.remove orphans key;
             Atomic.decr orphans_n
           end;
           Mutex.unlock orphans_lock;
           hit
         end
    in
    let orphan_keys () =
      Mutex.lock orphans_lock;
      let keys = Hashtbl.fold (fun k () acc -> k :: acc) orphans [] in
      Mutex.unlock orphans_lock;
      keys
    in
    let global_count = Atomic.make 0 in
    let terminals_n = Atomic.make 0 in
    let stop = Atomic.make false in
    let interrupted = ref false in
    let pause = Pause.create domains in
    let pool : (E.config * int * Canon.Action.t list) Wspool.t =
      Wspool.create ~workers:domains
    in
    Wspool.seed pool [ (E.init_explore ~reduction ~n ~inputs (), 0, []) ];
    (* the ticket clamp, now fused with the dedup check under the
       shard lock: a ticket is only drawn for a genuinely-new key, so
       tickets below the budget are dense and issued exactly once
       (refunds only happen at or above the budget) — [configs_visited]
       is exact even under domain races *)
    let ticket () =
      let tk = Atomic.fetch_and_add global_count 1 in
      if tk >= max_configs then begin
        Atomic.decr global_count;
        None
      end
      else Some tk
    in
    let worker ~pause i () =
      Metrics.incr m_domains;
      let local = ref [] and local_len = ref 0 in
      let exhausted = ref false in
      let terminals_here = ref [] in
      let violation = ref None in
      let error = ref None in
      let spilled = ref 0 in
      let snap () = (!local, !exhausted) in
      let safepoint () = Pause.point pause i snap in
      let stopped () = Atomic.get stop in
      let maybe_spill () =
        if !local_len >= spill_at && Wspool.own_pending pool i = 0 then begin
          let keep = !local_len / 2 in
          let kept, handed = split_at keep !local in
          let count = !local_len - keep in
          local := kept;
          local_len := keep;
          Wspool.push_batch pool i ~count handed;
          Metrics.incr m_spills;
          Metrics.gauge_max g_frontier_peak (keep + Wspool.pending pool)
        end
      in
      let process (config, depth, sleep) =
        let bare = E.key ~reduction config in
        let key = admission_key ~reduction bare sleep in
        (* expansion of an already-admitted configuration; a
           non-verdict exception escaping from here (a user [check]
           raising, say) leaves the admission behind, so the key is
           marked orphaned before the handler in [drain] re-pushes the
           item — the re-processor must expand despite the dedup hit *)
        let expand () =
          try
            Metrics.gauge_max g_depth_peak depth;
            let decisions = E.decisions config in
            (match check decisions with
            | Some reason -> raise (Found (decisions, reason, depth))
            | None -> ());
            let done_ =
              List.for_all (fun p -> E.decision_of config p <> None) correct
            in
            if done_ then begin
              if Shardset.add term_set bare 0 then begin
                Atomic.incr terminals_n;
                terminals_here := decisions :: !terminals_here;
                Metrics.incr m_terminals
              end
            end
            else if depth >= max_depth then exhausted := true
            else begin
              (match reduction with
              | Canon.Symmetry_por ->
                  schedule_successors_sleep ~reduction ~policy ~pattern
                    ~steppers:correct ~sleep ~parent_key:bare config
                    (fun config' sleep' ->
                      local := (config', depth + 1, sleep') :: !local;
                      incr local_len)
              | Canon.No_reduction | Canon.Symmetry ->
                  schedule_successors ~policy ~pattern ~steppers:correct config
                    (fun config' ->
                      local := (config', depth + 1, []) :: !local;
                      incr local_len));
              maybe_spill ()
            end
          with
          | Found _ as e -> raise e
          | e ->
              orphan_add key;
              raise e
        in
        match Shardset.admit seen key ~ticket with
        | Shardset.Found _ ->
            if orphan_take key then expand ()
            else begin
              Metrics.incr m_dedup;
              if reduction <> Canon.No_reduction then Metrics.incr m_orbit
            end
        | Shardset.Rejected ->
            exhausted := true;
            Metrics.incr m_truncations
        | Shardset.Admitted _ ->
            Metrics.incr m_admitted;
            (match reduction with
            | Canon.Symmetry_por ->
                if not (Shardset.add bare_set bare 0) then
                  Metrics.incr m_sleep_readmit
            | Canon.No_reduction | Canon.Symmetry -> ());
            expand ()
      in
      let rec drain () =
        safepoint ();
        if not (stopped ()) then
          match !local with
          | item :: rest ->
              local := rest;
              decr local_len;
              (try process item
               with e ->
                 (match e with
                 | Found _ -> ()
                 | _ ->
                     (* non-verdict failure: keep the in-flight item
                        so nothing is lost when we hand off below *)
                     local := item :: !local;
                     incr local_len);
                 raise e);
              drain ()
          | [] -> (
              match Wspool.acquire pool i ~safepoint ~stopped with
              | Some (count, batch) ->
                  local := batch;
                  local_len := count;
                  drain ()
              | None -> ())
      in
      (try Metrics.time t_worker drain with
      | Found (decisions, reason, depth) ->
          violation := Some (decisions, reason, depth);
          Atomic.set stop true
      | e ->
          error := Some (Printexc.to_string e);
          (* die visibly but not wastefully: everything this worker
             still owns goes back to the shared pool, where survivors
             (or the post-join rescue) pick it up; the in-flight item
             whose admission already landed is marked in [orphans], so
             its re-processor expands it instead of deduping it away *)
          (try
             if !local_len > 0 then begin
               Wspool.push_batch pool i ~count:!local_len !local;
               spilled := !local_len;
               local := [];
               local_len := 0
             end
           with _ -> ());
          Wspool.retire pool);
      Pause.exit pause i snap;
      (!terminals_here, !exhausted, !violation, !spilled, !error)
    in
    (* merge the pause-the-world cut into a sequential-format
       checkpoint payload: the shared table is the seen set, and every
       pending candidate sits either in a parked worker's published
       stack or in a pool.  Resume continues on [explore]. *)
    let merge slots =
      let seen_m : (E.key, unit) Hashtbl.t =
        Hashtbl.create (2 * Shardset.length seen + 16)
      in
      Shardset.iter (fun k _ -> Hashtbl.replace seen_m k ()) seen;
      let term_m : (E.key, unit) Hashtbl.t =
        Hashtbl.create (2 * Shardset.length term_set + 16)
      in
      Shardset.iter (fun k _ -> Hashtbl.replace term_m k ()) term_set;
      let bare_m : (E.key, unit) Hashtbl.t =
        Hashtbl.create (2 * Shardset.length bare_set + 16)
      in
      Shardset.iter (fun k _ -> Hashtbl.replace bare_m k ()) bare_set;
      (* a pending orphan (admitted, expansion cut short by a worker
         failure, not yet re-expanded) must read as unvisited in the
         sequential format: drop its key so resume re-admits and
         expands it, and return its ticket so [configs_visited] stays
         exact after the re-admission *)
      let orphaned = orphan_keys () in
      List.iter (fun k -> Hashtbl.remove seen_m k) orphaned;
      let stack = ref [] in
      let ex = ref false in
      Array.iter
        (function
          | None -> ()
          | Some (items, exh) ->
              stack := List.rev_append items !stack;
              if exh then ex := true)
        slots;
      Wspool.iter_pending pool (fun it -> stack := it :: !stack);
      Marshal.to_string
        (( reduction,
           seen_m,
           term_m,
           bare_m,
           Atomic.get global_count - List.length orphaned,
           Atomic.get terminals_n,
           !ex,
           !stack )
          : explore_snap)
        []
    in
    let coordinator =
      spawn_coordinator ~ckpt ~pause
        ~items:(fun () -> Atomic.get global_count)
        ~merge
        ~on_interrupt:(fun () ->
          interrupted := true;
          Atomic.set stop true)
    in
    let handles =
      List.init domains (fun i -> Domain.spawn (worker ~pause:(Some pause) i))
    in
    let joined = List.map Domain.join handles in
    stop_coordinator coordinator;
    (* supervision: a dead worker already handed its share back to the
       pool, so its admissions stand and no ticket is refunded.  Log
       each failure; if dead workers' items outlived every survivor,
       drain the leftovers with one rescue worker in this domain.  A
       rescue that dies too is a systematic fault — surface it. *)
    List.iteri
      (fun i (_, _, _, spilled, err) ->
        match err with
        | Some error ->
            Checkpoint.note_failure ckpt ~worker:i ~error ~requeued:spilled
        | None -> ())
      joined;
    let had_errors =
      List.exists (fun (_, _, _, _, e) -> e <> None) joined
    in
    let rescued =
      if had_errors && (not (Atomic.get stop)) && Wspool.pending pool > 0
      then begin
        Wspool.reset_for_rescue pool;
        let ((_, _, _, _, rerr) as r) = worker ~pause:None 0 () in
        (match rerr with
        | Some err2 ->
            failwith
              (Printf.sprintf "explorer rescue worker failed twice: %s" err2)
        | None -> ());
        [ r ]
      end
      else []
    in
    let results = joined @ rescued in
    Shardset.publish_metrics seen;
    let violation =
      List.fold_left
        (fun best (_, _, v, _, _) ->
          match (best, v) with
          | None, v -> v
          | Some _, None -> best
          | Some (_, _, db), Some (_, _, dv) -> if dv < db then v else best)
        None results
    in
    match violation with
    | Some (decisions, reason, depth) -> Violation { decisions; reason; depth }
    | None ->
        let exhausted = ref !interrupted in
        List.iter
          (fun (terms, ex, _, _, _) ->
            if ex then exhausted := true;
            List.iter on_terminal terms)
          results;
        let stats =
          {
            configs_visited = Atomic.get global_count;
            terminal_runs = Atomic.get terminals_n;
            budget_exhausted = !exhausted;
          }
        in
        record_run_stats stats;
        Safe stats

  (* ---- crash-adversarial exploration ---- *)

  exception Unsafe of (Pid.t * Value.t * int) list * string

  (* The crashed set travels as a bitmask folded into the node key;
     node identities and graph edges are dense ints, never strings. *)
  let mask_mem = Mask.mem
  let mask_add = Mask.add
  let mask_to_list = Mask.to_list
  let popcount = Mask.popcount

  type node_rec = {
    succs : int list;
    complete : bool;
    mask : int;
    undecided : Pid.t list;
  }

  (* Per-node expansion, shared by the sequential and parallel
     drivers: decisions check, completeness, and the successor
     (config, mask) pairs.

     The fault model dispatches here and only here:

     - [Crash]: the baseline — the mask is the crashed set, growing
       within the budget, each new crash optionally paired with a
       drop of the victim's in-flight messages.
     - [Byzantine t]: the mask is the {e corrupted} set, grown by the
       same machinery with budget [t] (a corrupted process subsumes a
       crashed one: it may stop, its messages may be dropped), {e
       plus} forge successors — every pending message of a corrupted
       sender may have its payload replaced by any forge-pool entry.
       Byzantine behaviours are therefore a superset of crash
       behaviours at equal budget, and at budget 0 (no mask growth,
       hence no forgeable sender) the graph is bit-identical to the
       crash graph — both pinned by test/test_byzantine.ml.
     - [Mobile t]: nobody ever crashes (the mask never grows beyond
       the initially-dead base), but for [t >= 1] any sender's
       in-flight messages may be transiently omitted ([E.omit],
       ungated).  One omission per expansion suffices: the async
       interleaving composes single-sender omissions across steps
       into every faulty-set trajectory with at most [t] faulty
       processes per round, so the successor structure is the same
       for every [t >= 1].  At [t = 0] the graph coincides with the
       budget-0 crash graph. *)
  let expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
      ~model ~forge_alts ~pattern_of ~check config mask =
    let decisions = E.decisions config in
    (match check decisions with
    | Some reason -> raise (Unsafe (decisions, reason))
    | None -> ());
    let budget = Fault_model.budget_or ~crash_budget model in
    let alive = List.filter (fun p -> not (mask_mem mask p)) (Pid.universe n) in
    let is_complete =
      List.for_all (fun p -> E.decision_of config p <> None) alive
    in
    let undecided =
      List.filter (fun p -> E.decision_of config p = None) alive
    in
    let succs = ref [] in
    if not is_complete then begin
      let pattern = pattern_of mask in
      List.iter
        (fun pid ->
          let mine = E.inbox config pid in
          List.iter
            (fun deliver ->
              match
                E.apply ~pattern config (Adversary.Step { pid; deliver })
              with
              | Some config' -> succs := (config', mask) :: !succs
              | None -> assert false)
            (choices policy mine))
        alive;
      (* one pass over the pending multiset buckets messages by sender
         for the drop-on-crash / omission successors *)
      let by_src_of () =
        let a = Array.make n [] in
        List.iter
          (fun (e : A.message Envelope.t) -> a.(e.src) <- e.id :: a.(e.src))
          (E.pending config);
        a
      in
      (match model with
      | Fault_model.Crash | Fault_model.Byzantine _ ->
          if popcount mask - popcount base_mask < budget then begin
            let by_src = if drop_on_crash then by_src_of () else [||] in
            List.iter
              (fun victim ->
                let mask' = mask_add mask victim in
                succs := (config, mask') :: !succs;
                if drop_on_crash && by_src.(victim) <> [] then
                  match
                    E.apply ~pattern:(pattern_of mask') config
                      (Adversary.Drop by_src.(victim))
                  with
                  | Some config' -> succs := (config', mask') :: !succs
                  | None -> assert false)
              alive
          end
      | Fault_model.Mobile t ->
          if t > 0 then begin
            let by_src = by_src_of () in
            for s = 0 to n - 1 do
              if by_src.(s) <> [] then
                succs := (E.omit config by_src.(s), mask) :: !succs
            done
          end);
      (match model with
      | Fault_model.Byzantine _ when forge_alts > 0 ->
          List.iter
            (fun (e : A.message Envelope.t) ->
              if mask_mem mask e.src then
                for alt = 0 to forge_alts - 1 do
                  match
                    E.apply ~pattern config
                      (Adversary.Forge { id = e.id; alt })
                  with
                  | Some config' -> succs := (config', mask) :: !succs
                  | None -> assert false
                done)
            (E.pending config)
      | Fault_model.Byzantine _ | Fault_model.Crash | Fault_model.Mobile _ ->
          ())
    end;
    (is_complete, mask, undecided, !succs)

  (* Backwards reachability from the complete nodes over the int-id
     graph; [None] when every node can still reach completion.  The
     reported witness is the minimum over (mask, undecided) of all
     stuck nodes, so sequential and parallel drivers — which discover
     nodes in different orders — return the same one. *)
  let classify_graph ~count ~(recs : node_rec array) =
    let preds = Array.make count [] in
    let completes = ref [] in
    for id = 0 to count - 1 do
      if recs.(id).complete then completes := id :: !completes;
      List.iter (fun s -> preds.(s) <- id :: preds.(s)) recs.(id).succs
    done;
    let can_decide = Array.make count false in
    let rec mark_all = function
      | [] -> ()
      | id :: rest ->
          if can_decide.(id) then mark_all rest
          else begin
            can_decide.(id) <- true;
            mark_all (List.rev_append preds.(id) rest)
          end
    in
    mark_all !completes;
    let stuck = ref None in
    for id = 0 to count - 1 do
      if not can_decide.(id) then begin
        let w = (recs.(id).mask, recs.(id).undecided) in
        match !stuck with
        | Some best when compare best w <= 0 -> ()
        | Some _ | None -> stuck := Some w
      end
    done;
    !stuck

  let check_crash_explorable ~n ~initially_dead =
    if A.uses_fd then
      invalid_arg "Explorer: algorithms with failure detectors are unsupported";
    if n > Sys.int_size - 2 then
      invalid_arg "Explorer: system too large for crash-set bitmasks";
    List.iter
      (fun p ->
        if not (Pid.valid ~n p) then
          invalid_arg "Explorer: initially_dead pid out of range")
      initially_dead

  let base_mask_of initially_dead =
    List.fold_left mask_add 0 initially_dead

  (* memoised initial-dead failure patterns, one per crashed-set mask *)
  let make_pattern_of ~n =
    let patterns : (int, Failure_pattern.t) Hashtbl.t = Hashtbl.create 64 in
    fun mask ->
      match Hashtbl.find_opt patterns mask with
      | Some p -> p
      | None ->
          let p =
            Failure_pattern.initial_dead ~n ~dead:(mask_to_list ~n mask)
          in
          Hashtbl.add patterns mask p;
          p

  (* Checkpoint payload of a crash campaign: the reduction mode, the
     fault-model tag, the key→id table, the expanded prefix of the
     node-record graph, the counters, and the worklist of
     admitted-but-unexpanded nodes.  The parallel driver merges its
     per-worker graphs into this same format (global dense ids
     re-assigned at merge time), and resume always continues on the
     sequential driver.  Mode or model mismatch on resume warns and
     starts fresh.

     The crash drivers use the orbit keys of the symmetry modes but
     never sleep sets ([Symmetry_por] behaves like [Symmetry] here):
     the Stuck classification is backward reachability over the full
     transition graph, and sleep sets prune edges. *)
  type crash_snap =
    Canon.reduction
    * string (* Fault_model.to_string of the campaign's model *)
    * (E.key, int) Hashtbl.t
    * node_rec array
    * int
    * int
    * bool
    * (int * E.config * int) list

  let empty_rec = { succs = []; complete = false; mask = 0; undecided = [] }

  let explore_with_crashes ?(reduction = Canon.No_reduction)
      ?(model = Fault_model.Crash) ?(max_configs = 300_000)
      ?(policy = Per_sender) ?(drop_on_crash = true) ?(initially_dead = [])
      ?(ckpt = Checkpoint.ctl ()) ?resume ~n ~inputs ~crash_budget ~check () =
    check_crash_explorable ~n ~initially_dead;
    Metrics.gauge_set g_max_configs max_configs;
    let base_mask = base_mask_of initially_dead in
    let pattern_of = make_pattern_of ~n in
    let model_tag = Fault_model.to_string model in
    let forge_alts =
      match model with
      | Fault_model.Byzantine _ -> List.length (E.forge_pool ~n ~inputs)
      | Fault_model.Crash | Fault_model.Mobile _ -> 0
    in
    let fresh_crash () =
      (Hashtbl.create 65_536, Array.make 1024 empty_rec, 0, 0, false, [])
    in
    let resume, (ids, recs0, count0, terminals0, exhausted0, worklist0) =
      match resume with
      | Some payload ->
          let mode, mtag, ids, recs0, count0, t0, e0, wl0 =
            (Marshal.from_string payload 0 : crash_snap)
          in
          if mode <> reduction then begin
            warn_reduction_mismatch ~want:reduction ~got:mode;
            (None, fresh_crash ())
          end
          else if mtag <> model_tag then begin
            warn_model_mismatch ~want:model ~got:mtag;
            (None, fresh_crash ())
          end
          else (Some payload, (ids, recs0, count0, t0, e0, wl0))
      | None -> (None, fresh_crash ())
    in
    let recs =
      ref (if Array.length recs0 = 0 then Array.make 1024 empty_rec else recs0)
    in
    let count = ref count0 in
    let terminals = ref terminals0 in
    let exhausted = ref exhausted0 in
    let interrupted = ref false in
    let worklist = ref worklist0 in
    let wl_len = ref (List.length worklist0) in
    (* discovery: assign a dense id the first time a node is seen and
       queue it for expansion; [None] once the budget is exhausted *)
    let visit config mask =
      let key = E.key ~crashed:mask ~reduction config in
      match Hashtbl.find_opt ids key with
      | Some id ->
          Metrics.incr m_dedup;
          if reduction <> Canon.No_reduction then Metrics.incr m_orbit;
          Some id
      | None ->
          if !count >= max_configs then begin
            exhausted := true;
            Metrics.incr m_truncations;
            None
          end
          else begin
            let id = !count in
            incr count;
            Metrics.incr m_admitted;
            Hashtbl.add ids key id;
            if id >= Array.length !recs then begin
              let bigger =
                Array.make (2 * Array.length !recs)
                  { succs = []; complete = false; mask = 0; undecided = [] }
              in
              Array.blit !recs 0 bigger 0 (Array.length !recs);
              recs := bigger
            end;
            worklist := (id, config, mask) :: !worklist;
            incr wl_len;
            Metrics.gauge_max g_frontier_peak !wl_len;
            Some id
          end
    in
    let expand (id, config, mask) =
      let is_complete, mask, undecided, succ_pairs =
        expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
          ~model ~forge_alts ~pattern_of ~check config mask
      in
      if is_complete then begin
        incr terminals;
        Metrics.incr m_terminals
      end;
      let succs =
        List.filter_map (fun (c, m) -> visit c m) succ_pairs
      in
      !recs.(id) <- { succs; complete = is_complete; mask; undecided }
    in
    let snap () =
      Marshal.to_string
        (( reduction,
           model_tag,
           ids,
           Array.sub !recs 0 !count,
           !count,
           !terminals,
           !exhausted,
           !worklist )
          : crash_snap)
        []
    in
    let enumerate () =
      if resume = None then
        ignore (visit (E.init_explore ~reduction ~n ~inputs ()) base_mask);
      let rec drain () =
        match !worklist with
        | [] -> ()
        | _ when Checkpoint.interrupted ckpt ->
            Checkpoint.flush ckpt snap;
            interrupted := true
        | node :: rest ->
            worklist := rest;
            decr wl_len;
            expand node;
            Checkpoint.tick ckpt ~items:!count snap;
            drain ()
      in
      drain ()
    in
    match enumerate () with
    | exception Unsafe (decisions, reason) ->
        Safety_violation { decisions; reason }
    | () ->
        if !interrupted then exhausted := true;
        let stats =
          {
            configs_visited = !count;
            terminal_runs = !terminals;
            budget_exhausted = !exhausted;
          }
        in
        record_run_stats stats;
        (* A truncated graph cannot be classified: stuck-ness is a
           property of {e all} continuations, and unexpanded frontier
           nodes would read as stuck while truly-stuck nodes may hide
           beyond the cut.  Say so instead of claiming the optimistic
           verdict. *)
        if !exhausted then Indeterminate stats
        else
          match classify_graph ~count:!count ~recs:!recs with
          | Some (mask, undecided_correct) ->
              Stuck
                {
                  crashed = mask_to_list ~n mask;
                  undecided_correct;
                  stats;
                }
          | None -> All_paths_decide stats

  (* Parallel crash-adversarial exploration over shared state: one
     {!Shardset} key table, one ticket counter, one write-once
     {!Nodestore} of node records.  A node's global dense id {e is}
     its admission ticket (the root, expanded inline, is id 0), so
     graph edges are globally meaningful the moment they are made and
     the merge needs no id translation at all — the classified graph
     is byte-for-byte the sequential one's modulo discovery order,
     which {!classify_graph}'s minimum-witness rule already
     normalises.  The frontier flows through a {!Wspool} exactly as in
     [explore_par].  Outcomes match [explore_with_crashes] whenever
     the budget does not truncate.  [check] must be thread-safe. *)
  let explore_with_crashes_par ?(reduction = Canon.No_reduction)
      ?(model = Fault_model.Crash) ?domains ?(max_configs = 300_000)
      ?(policy = Per_sender) ?(drop_on_crash = true) ?(initially_dead = [])
      ?(ckpt = Checkpoint.ctl ()) ~n ~inputs ~crash_budget ~check () =
    check_crash_explorable ~n ~initially_dead;
    Metrics.gauge_set g_max_configs max_configs;
    if max_configs < 1 then begin
      (* the sequential driver's clamp admits nothing on a degenerate
         budget — not even the root is visited or expanded; mirror it
         exactly instead of expanding the root before accounting *)
      Metrics.incr m_truncations;
      let stats =
        { configs_visited = 0; terminal_runs = 0; budget_exhausted = true }
      in
      record_run_stats stats;
      Indeterminate stats
    end
    else
    let domains =
      max 1 (match domains with Some d -> d | None -> default_domains ())
    in
    let base_mask = base_mask_of initially_dead in
    let model_tag = Fault_model.to_string model in
    let forge_alts =
      match model with
      | Fault_model.Byzantine _ -> List.length (E.forge_pool ~n ~inputs)
      | Fault_model.Crash | Fault_model.Mobile _ -> 0
    in
    let root = E.init_explore ~reduction ~n ~inputs () in
    let pattern_of0 = make_pattern_of ~n in
    match
      expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
        ~model ~forge_alts ~pattern_of:pattern_of0 ~check root base_mask
    with
    | exception Unsafe (decisions, reason) ->
        Safety_violation { decisions; reason }
    | root_complete, root_mask, root_undecided, root_succs ->
        let seen = Shardset.create ~name:"explore.dedup" () in
        let recs : node_rec Nodestore.t = Nodestore.create ~empty:empty_rec in
        let global_count = Atomic.make 1 (* the root *) in
        let terminals_n = Atomic.make (if root_complete then 1 else 0) in
        Metrics.incr m_admitted;
        if root_complete then Metrics.incr m_terminals;
        ignore (Shardset.add seen (E.key ~crashed:root_mask ~reduction root) 0);
        let stop = Atomic.make false in
        let interrupted = ref false in
        let exhausted0 = ref false in
        let ticket () =
          let tk = Atomic.fetch_and_add global_count 1 in
          if tk >= max_configs then begin
            Atomic.decr global_count;
            None
          end
          else Some tk
        in
        let pause = Pause.create domains in
        let pool : (int * E.config * int) Wspool.t =
          Wspool.create ~workers:domains
        in
        (* admit the root's successors inline and seed the pools *)
        let seed = ref [] in
        let root_succ_ids =
          List.filter_map
            (fun (c, m) ->
              let key = E.key ~crashed:m ~reduction c in
              match Shardset.admit seen key ~ticket with
              | Shardset.Found id ->
                  Metrics.incr m_dedup;
                  if reduction <> Canon.No_reduction then Metrics.incr m_orbit;
                  Some id
              | Shardset.Rejected ->
                  exhausted0 := true;
                  Metrics.incr m_truncations;
                  None
              | Shardset.Admitted id ->
                  Metrics.incr m_admitted;
                  seed := (id, c, m) :: !seed;
                  Some id)
            root_succs
        in
        Nodestore.set recs 0
          {
            succs = root_succ_ids;
            complete = root_complete;
            mask = root_mask;
            undecided = root_undecided;
          };
        Wspool.seed pool (List.rev !seed);
        let worker ~pause i () =
          Metrics.incr m_domains;
          let pattern_of = make_pattern_of ~n in
          let local = ref [] and local_len = ref 0 in
          let exhausted = ref false in
          let violation = ref None in
          let error = ref None in
          let spilled = ref 0 in
          let snap () = (!local, !exhausted) in
          let safepoint () = Pause.point pause i snap in
          let stopped () = Atomic.get stop in
          let maybe_spill () =
            if !local_len >= spill_at && Wspool.own_pending pool i = 0
            then begin
              let keep = !local_len / 2 in
              let kept, handed = split_at keep !local in
              let count = !local_len - keep in
              local := kept;
              local_len := keep;
              Wspool.push_batch pool i ~count handed;
              Metrics.incr m_spills;
              Metrics.gauge_max g_frontier_peak (keep + Wspool.pending pool)
            end
          in
          let visit config mask =
            let key = E.key ~crashed:mask ~reduction config in
            match Shardset.admit seen key ~ticket with
            | Shardset.Found id ->
                Metrics.incr m_dedup;
                if reduction <> Canon.No_reduction then Metrics.incr m_orbit;
                Some id
            | Shardset.Rejected ->
                exhausted := true;
                Metrics.incr m_truncations;
                None
            | Shardset.Admitted id ->
                Metrics.incr m_admitted;
                local := (id, config, mask) :: !local;
                incr local_len;
                Some id
          in
          let process (id, config, mask) =
            let is_complete, mask, undecided, succ_pairs =
              expand_crash_node ~n ~policy ~drop_on_crash ~base_mask
                ~crash_budget ~model ~forge_alts ~pattern_of ~check config mask
            in
            let succs = List.filter_map (fun (c, m) -> visit c m) succ_pairs in
            (* supervision can re-expand a node whose first expansion
               died mid-flight (re-pushed in-flight item): count its
               terminal only on the store's first write, so
               [terminal_runs] is idempotent per id.  [empty_rec] is a
               physical sentinel no expanded record ever aliases, and
               only one domain can hold id at a time (handoff through
               the pool orders the re-expansion after the death). *)
            let first_write = Nodestore.get recs id == empty_rec in
            Nodestore.set recs id
              { succs; complete = is_complete; mask; undecided };
            if is_complete && first_write then begin
              Atomic.incr terminals_n;
              Metrics.incr m_terminals
            end;
            maybe_spill ()
          in
          let rec drain () =
            safepoint ();
            if not (stopped ()) then
              match !local with
              | item :: rest ->
                  local := rest;
                  decr local_len;
                  (try process item
                   with e ->
                     (match e with
                     | Unsafe _ -> ()
                     | _ ->
                         local := item :: !local;
                         incr local_len);
                     raise e);
                  drain ()
              | [] -> (
                  match Wspool.acquire pool i ~safepoint ~stopped with
                  | Some (count, batch) ->
                      local := batch;
                      local_len := count;
                      drain ()
                  | None -> ())
          in
          (try Metrics.time t_worker drain with
          | Unsafe (decisions, reason) ->
              violation := Some (decisions, reason);
              Atomic.set stop true
          | e ->
              error := Some (Printexc.to_string e);
              (try
                 if !local_len > 0 then begin
                   Wspool.push_batch pool i ~count:!local_len !local;
                   spilled := !local_len;
                   local := [];
                   local_len := 0
                 end
               with _ -> ());
              Wspool.retire pool);
          Pause.exit pause i snap;
          (!exhausted, !violation, !spilled, !error)
        in
        (* pause-the-world cut to the sequential checkpoint format:
           the shared table gives key→id, the store gives the expanded
           record prefix (unexpanded ids read as [empty_rec], exactly
           the sequential driver's convention), and the worklist is
           the union of parked stacks and pools.  Resume continues on
           [explore_with_crashes]. *)
        let merge slots =
          let gids : (E.key, int) Hashtbl.t =
            Hashtbl.create (2 * Shardset.length seen + 16)
          in
          Shardset.iter (fun k id -> Hashtbl.replace gids k id) seen;
          let count = Atomic.get global_count in
          let recs_a = Array.init count (Nodestore.get recs) in
          let wl = ref [] in
          let ex = ref !exhausted0 in
          Array.iter
            (function
              | None -> ()
              | Some (items, exh) ->
                  wl := List.rev_append items !wl;
                  if exh then ex := true)
            slots;
          Wspool.iter_pending pool (fun it -> wl := it :: !wl);
          Marshal.to_string
            (( reduction,
               model_tag,
               gids,
               recs_a,
               count,
               Atomic.get terminals_n,
               !ex,
               !wl )
              : crash_snap)
            []
        in
        let coordinator =
          spawn_coordinator ~ckpt ~pause
            ~items:(fun () -> Atomic.get global_count)
            ~merge
            ~on_interrupt:(fun () ->
              interrupted := true;
              Atomic.set stop true)
        in
        let handles =
          List.init domains (fun i ->
              Domain.spawn (worker ~pause:(Some pause) i))
        in
        let joined = List.map Domain.join handles in
        stop_coordinator coordinator;
        (* supervision: as in [explore_par] — failures are logged, the
           dead worker's items are already back in the pool, and a
           single rescue worker drains anything every survivor
           missed *)
        List.iteri
          (fun i (_, _, spilled, err) ->
            match err with
            | Some error ->
                Checkpoint.note_failure ckpt ~worker:i ~error ~requeued:spilled
            | None -> ())
          joined;
        let had_errors = List.exists (fun (_, _, _, e) -> e <> None) joined in
        let rescued =
          if had_errors && (not (Atomic.get stop)) && Wspool.pending pool > 0
          then begin
            Wspool.reset_for_rescue pool;
            let ((_, _, _, rerr) as r) = worker ~pause:None 0 () in
            (match rerr with
            | Some err2 ->
                failwith
                  (Printf.sprintf "explorer rescue worker failed twice: %s"
                     err2)
            | None -> ());
            [ r ]
          end
          else []
        in
        let results = joined @ rescued in
        Shardset.publish_metrics seen;
        let violation = List.find_map (fun (_, v, _, _) -> v) results in
        (match violation with
        | Some (decisions, reason) -> Safety_violation { decisions; reason }
        | None ->
            let exhausted = ref (!exhausted0 || !interrupted) in
            List.iter
              (fun (ex, _, _, _) -> if ex then exhausted := true)
              results;
            let count = Atomic.get global_count in
            let stats =
              {
                configs_visited = count;
                terminal_runs = Atomic.get terminals_n;
                budget_exhausted = !exhausted;
              }
            in
            record_run_stats stats;
            (* same honesty rule as the sequential driver: a truncated
               graph admits no all-paths-decide claim *)
            if !exhausted then Indeterminate stats
            else
              let recs_a = Array.init count (Nodestore.get recs) in
              match classify_graph ~count ~recs:recs_a with
              | Some (mask, undecided_correct) ->
                  Stuck
                    {
                      crashed = mask_to_list ~n mask;
                      undecided_correct;
                      stats;
                    }
              | None -> All_paths_decide stats)

  let reachable_decision_values ?(reduction = Canon.No_reduction)
      ?(model = Fault_model.Crash) ?(max_configs = 300_000)
      ?(policy = Per_sender) ~n ~inputs ~crash_budget () =
    let seen = ref [] in
    let note decisions =
      List.iter
        (fun (_, v, _) -> if not (List.mem v !seen) then seen := v :: !seen)
        decisions
    in
    (match
       explore_with_crashes ~reduction ~model ~max_configs ~policy ~n ~inputs
         ~crash_budget
         ~check:(fun decisions ->
           note decisions;
           None)
         ()
     with
    | All_paths_decide _ | Stuck _ | Indeterminate _ -> ()
    | Safety_violation _ -> ());
    List.sort compare !seen

  let reachable_decision_values_par ?(reduction = Canon.No_reduction)
      ?(model = Fault_model.Crash) ?domains ?(max_configs = 300_000)
      ?(policy = Per_sender) ~n ~inputs ~crash_budget () =
    (* [check] runs concurrently on several domains: the accumulator
       is mutex-protected.  Parity with the sequential driver follows
       from [explore_with_crashes_par] enumerating the same reachable
       node set (asserted in test/test_explore.ml). *)
    let lock = Mutex.create () in
    let seen = ref [] in
    let note decisions =
      Mutex.lock lock;
      List.iter
        (fun (_, v, _) -> if not (List.mem v !seen) then seen := v :: !seen)
        decisions;
      Mutex.unlock lock
    in
    (match
       explore_with_crashes_par ~reduction ~model ?domains ~max_configs
         ~policy ~n ~inputs ~crash_budget
         ~check:(fun decisions ->
           note decisions;
           None)
         ()
     with
    | All_paths_decide _ | Stuck _ | Indeterminate _ -> ()
    | Safety_violation _ -> ());
    List.sort compare !seen
end
