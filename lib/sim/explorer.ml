module Metrics = Ksa_prim.Metrics

type delivery_policy = Empty_or_all | Per_sender | All_subsets

type stats = {
  configs_visited : int;
  terminal_runs : int;
  budget_exhausted : bool;
}

type outcome =
  | Safe of stats
  | Violation of { decisions : (Pid.t * Value.t * int) list; reason : string; depth : int }

type resilient_outcome =
  | All_paths_decide of stats
  | Safety_violation of {
      decisions : (Pid.t * Value.t * int) list;
      reason : string;
    }
  | Stuck of {
      crashed : Pid.t list;
      undecided_correct : Pid.t list;
      stats : stats;
    }
  | Indeterminate of stats

(* Crashed sets travel as int bitmasks.  Top level (not per functor
   instance): pure bit arithmetic, also exercised directly by the
   test suite. *)
module Mask = struct
  let mem mask p = mask land (1 lsl p) <> 0
  let add mask p = mask lor (1 lsl p)
  let to_list ~n mask = List.filter (mem mask) (Pid.universe n)

  (* Kernighan's loop: one iteration per set bit, no allocation —
     this sits on the crash-successor hot path. *)
  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go mask 0
end

(* ---- instrumentation (process-global, shared by all drivers) ----

   Live counters tick during the search and feed progress reporting;
   in the parallel drivers [explore.admitted] includes configurations
   admitted by two domains before the merge deduplicates them, so the
   authoritative per-run figures are published as gauges from the
   final [stats] record at completion. *)
let m_admitted = Metrics.counter "explore.admitted"
let m_dedup = Metrics.counter "explore.dedup.hits"
let m_terminals = Metrics.counter "explore.terminals"
let m_domains = Metrics.counter "explore.domains.spawned"
let m_truncations = Metrics.counter "explore.budget.truncations"
let g_frontier_peak = Metrics.gauge "explore.frontier.peak"
let g_depth_peak = Metrics.gauge "explore.depth.peak"
let g_max_configs = Metrics.gauge "explore.budget.max_configs"
let g_visited = Metrics.gauge "explore.configs_visited"
let g_terminal_runs = Metrics.gauge "explore.terminal_runs"
let g_exhausted = Metrics.gauge "explore.budget_exhausted"
let t_worker = Metrics.timer "explore.worker"

let record_run_stats (s : stats) =
  Metrics.gauge_set g_visited s.configs_visited;
  Metrics.gauge_set g_terminal_runs s.terminal_runs;
  Metrics.gauge_set g_exhausted (if s.budget_exhausted then 1 else 0)

let default_domains () =
  match Sys.getenv_opt "KSA_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | Some _ | None -> 1)
  | None -> Domain.recommended_domain_count ()

module Make (A : Algorithm.S) = struct
  module E = Engine.Make (A)

  exception Found of (Pid.t * Value.t * int) list * string * int

  (* All 2^|xs| sublists, built with rev_append/rev_map only: linear
     in the size of the output, no quadratic [acc @ ...] rebuilding. *)
  let subsets xs =
    List.fold_left
      (fun acc x -> List.rev_append (List.rev_map (fun s -> x :: s) acc) acc)
      [ [] ] xs

  (* Delivery choices for a process whose buffer holds [mine]
     ((id, src) pairs in sending order): lists of message ids.
     Single pass over the buffer for every policy. *)
  let choices policy mine =
    match policy with
    | Empty_or_all -> (
        match mine with [] -> [ [] ] | _ -> [ []; List.map fst mine ])
    | Per_sender ->
        let buckets : (Pid.t, int list ref) Hashtbl.t = Hashtbl.create 8 in
        let senders = ref [] in
        List.iter
          (fun (id, src) ->
            match Hashtbl.find_opt buckets src with
            | Some l -> l := id :: !l
            | None ->
                Hashtbl.add buckets src (ref [ id ]);
                senders := src :: !senders)
          mine;
        let senders = List.rev !senders in
        let per_sender =
          List.map (fun s -> List.rev !(Hashtbl.find buckets s)) senders
        in
        let all =
          match senders with
          | _ :: _ :: _ -> [ List.map fst mine ]
          | _ -> []
        in
        ([] :: per_sender) @ all
    | All_subsets -> subsets (List.map fst mine)

  let require_explorable ~n ~pattern =
    if A.uses_fd then
      invalid_arg "Explorer: algorithms with failure detectors are unsupported";
    if
      List.exists
        (fun p ->
          match Failure_pattern.crash_time pattern p with
          | Some t when t > 0 -> true
          | Some _ | None -> false)
        (Pid.universe n)
    then invalid_arg "Explorer: only initial crashes are supported"

  (* Successors of a non-terminal configuration under [policy]: every
     (stepper, delivery-choice) pair.  [steppers] is constant over the
     whole search because only initial crashes are admitted. *)
  let schedule_successors ~policy ~pattern ~steppers config k =
    List.iter
      (fun pid ->
        let mine = E.inbox config pid in
        List.iter
          (fun deliver ->
            match E.apply ~pattern config (Adversary.Step { pid; deliver }) with
            | Some config' -> k config'
            | None -> assert false)
          (choices policy mine))
      steppers

  (* ---- sequential exhaustive exploration ---- *)

  let explore ?(max_depth = 200) ?(max_configs = 2_000_000)
      ?(policy = Per_sender) ?(on_terminal = fun _ -> ()) ~n ~inputs ~pattern
      ~check () =
    require_explorable ~n ~pattern;
    Metrics.gauge_set g_max_configs max_configs;
    let seen : (E.key, unit) Hashtbl.t = Hashtbl.create 65_536 in
    let visited = ref 0 in
    let terminals = ref 0 in
    let exhausted = ref false in
    let correct = Failure_pattern.correct pattern in
    (* Admission is clamped at the budget {e before} a configuration
       is counted (matching the dense-id [visit] of the crash
       drivers): [configs_visited] never overshoots [max_configs],
       and [budget_exhausted] is set only when an unseen reachable
       configuration was actually turned away. *)
    let rec dfs config depth =
      let key = E.key config in
      if Hashtbl.mem seen key then Metrics.incr m_dedup
      else if !visited >= max_configs then begin
        exhausted := true;
        Metrics.incr m_truncations
      end
      else begin
        Hashtbl.add seen key ();
        incr visited;
        Metrics.incr m_admitted;
        Metrics.gauge_max g_depth_peak depth;
        let decisions = E.decisions config in
        (match check decisions with
        | Some reason -> raise (Found (decisions, reason, depth))
        | None -> ());
        let done_ =
          List.for_all (fun p -> E.decision_of config p <> None) correct
        in
        if done_ then begin
          incr terminals;
          Metrics.incr m_terminals;
          on_terminal decisions
        end
        else if depth >= max_depth then exhausted := true
        else
          schedule_successors ~policy ~pattern ~steppers:correct config
            (fun config' -> dfs config' (depth + 1))
      end
    in
    match dfs (E.init_explore ~n ~inputs) 0 with
    | () ->
        let stats =
          {
            configs_visited = !visited;
            terminal_runs = !terminals;
            budget_exhausted = !exhausted;
          }
        in
        record_run_stats stats;
        Safe stats
    | exception Found (decisions, reason, depth) ->
        Violation { decisions; reason; depth }

  (* ---- parallel exhaustive exploration ---- *)

  (* Fans the first levels of the DFS across domains.  The visited set
     of a complete DFS is exactly the set of reachable configurations,
     so per-domain searches with private seen-tables merged by key
     union return the same stats and verdict as [explore] whenever no
     budget truncates the search (configuration keys are content-based
     and therefore comparable across domains).  [check] runs
     concurrently and must be thread-safe. *)
  let explore_par ?domains ?(max_depth = 200) ?(max_configs = 2_000_000)
      ?(policy = Per_sender) ?(on_terminal = fun _ -> ()) ~n ~inputs ~pattern
      ~check () =
    require_explorable ~n ~pattern;
    Metrics.gauge_set g_max_configs max_configs;
    let domains =
      max 1 (match domains with Some d -> d | None -> default_domains ())
    in
    let correct = Failure_pattern.correct pattern in
    let steppers = correct in
    (* breadth-first prefix: expand until the frontier is wide enough
       to keep every domain busy *)
    let target_frontier = domains * 8 in
    let seen0 : (E.key, unit) Hashtbl.t = Hashtbl.create 1024 in
    let terminals0 : (E.key, (Pid.t * Value.t * int) list) Hashtbl.t =
      Hashtbl.create 64
    in
    let exhausted0 = ref false in
    let frontier = Queue.create () in
    Queue.add (E.init_explore ~n ~inputs, 0) frontier;
    let prefix_violation = ref None in
    (* expand BFS nodes until wide enough (or done, or a violation) *)
    (try
       while
         !prefix_violation = None
         && Queue.length frontier < target_frontier
         && not (Queue.is_empty frontier)
       do
         let config, depth = Queue.pop frontier in
         let key = E.key config in
         if Hashtbl.mem seen0 key then Metrics.incr m_dedup
         else if Hashtbl.length seen0 >= max_configs then begin
           (* budget spent inside the prefix: drop the remaining
              frontier — everything from here on is truncated *)
           exhausted0 := true;
           Metrics.incr m_truncations;
           Queue.clear frontier
         end
         else begin
           Hashtbl.add seen0 key ();
           Metrics.incr m_admitted;
           Metrics.gauge_max g_depth_peak depth;
           let decisions = E.decisions config in
           (match check decisions with
           | Some reason -> raise (Found (decisions, reason, depth))
           | None -> ());
           let done_ =
             List.for_all (fun p -> E.decision_of config p <> None) correct
           in
           if done_ then begin
             Hashtbl.replace terminals0 key decisions;
             Metrics.incr m_terminals
           end
           else if depth >= max_depth then exhausted0 := true
           else
             schedule_successors ~policy ~pattern ~steppers config
               (fun config' -> Queue.add (config', depth + 1) frontier);
           Metrics.gauge_max g_frontier_peak (Queue.length frontier)
         end
       done
     with Found (decisions, reason, depth) ->
       prefix_violation := Some (decisions, reason, depth));
    match !prefix_violation with
    | Some (decisions, reason, depth) -> Violation { decisions; reason; depth }
    | None ->
        let frontier_items = List.of_seq (Queue.to_seq frontier) in
        let visited0 = Hashtbl.length seen0 in
        let buckets = Array.make domains [] in
        List.iteri
          (fun i item ->
            buckets.(i mod domains) <- item :: buckets.(i mod domains))
          frontier_items;
        let global_count = Atomic.make visited0 in
        let stop = Atomic.make false in
        let worker bucket () =
          Metrics.incr m_domains;
          let seen : (E.key, unit) Hashtbl.t = Hashtbl.create 65_536 in
          let terminals : (E.key, (Pid.t * Value.t * int) list) Hashtbl.t =
            Hashtbl.create 1024
          in
          let exhausted = ref false in
          let violation = ref None in
          let rec dfs config depth =
            if not (Atomic.get stop) then begin
              let key = E.key config in
              if Hashtbl.mem seen key || Hashtbl.mem seen0 key then
                Metrics.incr m_dedup
              else begin
                (* a fetch-and-add ticket clamps the global admission
                   count at the budget even under domain races (losers
                   hand their ticket back) *)
                let ticket = Atomic.fetch_and_add global_count 1 in
                if ticket >= max_configs then begin
                  Atomic.decr global_count;
                  exhausted := true;
                  Metrics.incr m_truncations
                end
                else begin
                  Hashtbl.add seen key ();
                  Metrics.incr m_admitted;
                  Metrics.gauge_max g_depth_peak depth;
                  let decisions = E.decisions config in
                  (match check decisions with
                  | Some reason -> raise (Found (decisions, reason, depth))
                  | None -> ());
                  let done_ =
                    List.for_all
                      (fun p -> E.decision_of config p <> None)
                      correct
                  in
                  if done_ then begin
                    Hashtbl.replace terminals key decisions;
                    Metrics.incr m_terminals
                  end
                  else if depth >= max_depth then exhausted := true
                  else
                    schedule_successors ~policy ~pattern ~steppers config
                      (fun config' -> dfs config' (depth + 1))
                end
              end
            end
          in
          (try
             Metrics.time t_worker (fun () ->
                 List.iter (fun (config, depth) -> dfs config depth) bucket)
           with Found (decisions, reason, depth) ->
             violation := Some (decisions, reason, depth);
             Atomic.set stop true);
          (seen, terminals, !exhausted, !violation)
        in
        let handles =
          Array.to_list
            (Array.map (fun bucket -> Domain.spawn (worker bucket)) buckets)
        in
        let results = List.map Domain.join handles in
        let violation =
          List.fold_left
            (fun best (_, _, _, v) ->
              match (best, v) with
              | None, v -> v
              | Some _, None -> best
              | Some (_, _, db), Some (_, _, dv) ->
                  if dv < db then v else best)
            None results
        in
        (match violation with
        | Some (decisions, reason, depth) ->
            Violation { decisions; reason; depth }
        | None ->
            let union : (E.key, unit) Hashtbl.t =
              Hashtbl.create (max 1024 (2 * visited0))
            in
            let all_terminals :
                (E.key, (Pid.t * Value.t * int) list) Hashtbl.t =
              Hashtbl.create 1024
            in
            Hashtbl.iter (fun k ds -> Hashtbl.replace all_terminals k ds)
              terminals0;
            let exhausted = ref !exhausted0 in
            List.iter
              (fun (seen, terminals, ex, _) ->
                if ex then exhausted := true;
                Hashtbl.iter (fun k () -> Hashtbl.replace union k ()) seen;
                Hashtbl.iter
                  (fun k ds -> Hashtbl.replace all_terminals k ds)
                  terminals)
              results;
            Hashtbl.iter (fun _ ds -> on_terminal ds) all_terminals;
            let stats =
              {
                configs_visited = visited0 + Hashtbl.length union;
                terminal_runs = Hashtbl.length all_terminals;
                budget_exhausted = !exhausted;
              }
            in
            record_run_stats stats;
            Safe stats)

  (* ---- crash-adversarial exploration ---- *)

  exception Unsafe of (Pid.t * Value.t * int) list * string

  (* The crashed set travels as a bitmask folded into the node key;
     node identities and graph edges are dense ints, never strings. *)
  let mask_mem = Mask.mem
  let mask_add = Mask.add
  let mask_to_list = Mask.to_list
  let popcount = Mask.popcount

  type node_rec = {
    succs : int list;
    complete : bool;
    mask : int;
    undecided : Pid.t list;
  }

  (* Per-node expansion, shared by the sequential and parallel
     drivers: decisions check, completeness, and the successor
     (config, mask) pairs. *)
  let expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
      ~pattern_of ~check config mask =
    let decisions = E.decisions config in
    (match check decisions with
    | Some reason -> raise (Unsafe (decisions, reason))
    | None -> ());
    let alive = List.filter (fun p -> not (mask_mem mask p)) (Pid.universe n) in
    let is_complete =
      List.for_all (fun p -> E.decision_of config p <> None) alive
    in
    let undecided =
      List.filter (fun p -> E.decision_of config p = None) alive
    in
    let succs = ref [] in
    if not is_complete then begin
      let pattern = pattern_of mask in
      List.iter
        (fun pid ->
          let mine = E.inbox config pid in
          List.iter
            (fun deliver ->
              match
                E.apply ~pattern config (Adversary.Step { pid; deliver })
              with
              | Some config' -> succs := (config', mask) :: !succs
              | None -> assert false)
            (choices policy mine))
        alive;
      if popcount mask - popcount base_mask < crash_budget then begin
        (* one pass over the pending multiset buckets messages by
           sender for the drop-on-crash successors *)
        let by_src =
          if drop_on_crash then begin
            let a = Array.make n [] in
            List.iter
              (fun (e : A.message Envelope.t) -> a.(e.src) <- e.id :: a.(e.src))
              (E.pending config);
            a
          end
          else [||]
        in
        List.iter
          (fun victim ->
            let mask' = mask_add mask victim in
            succs := (config, mask') :: !succs;
            if drop_on_crash && by_src.(victim) <> [] then
              match
                E.apply ~pattern:(pattern_of mask') config
                  (Adversary.Drop by_src.(victim))
              with
              | Some config' -> succs := (config', mask') :: !succs
              | None -> assert false)
          alive
      end
    end;
    (is_complete, mask, undecided, !succs)

  (* Backwards reachability from the complete nodes over the int-id
     graph; [None] when every node can still reach completion.  The
     reported witness is the minimum over (mask, undecided) of all
     stuck nodes, so sequential and parallel drivers — which discover
     nodes in different orders — return the same one. *)
  let classify_graph ~count ~(recs : node_rec array) =
    let preds = Array.make count [] in
    let completes = ref [] in
    for id = 0 to count - 1 do
      if recs.(id).complete then completes := id :: !completes;
      List.iter (fun s -> preds.(s) <- id :: preds.(s)) recs.(id).succs
    done;
    let can_decide = Array.make count false in
    let rec mark_all = function
      | [] -> ()
      | id :: rest ->
          if can_decide.(id) then mark_all rest
          else begin
            can_decide.(id) <- true;
            mark_all (List.rev_append preds.(id) rest)
          end
    in
    mark_all !completes;
    let stuck = ref None in
    for id = 0 to count - 1 do
      if not can_decide.(id) then begin
        let w = (recs.(id).mask, recs.(id).undecided) in
        match !stuck with
        | Some best when compare best w <= 0 -> ()
        | Some _ | None -> stuck := Some w
      end
    done;
    !stuck

  let check_crash_explorable ~n ~initially_dead =
    if A.uses_fd then
      invalid_arg "Explorer: algorithms with failure detectors are unsupported";
    if n > Sys.int_size - 2 then
      invalid_arg "Explorer: system too large for crash-set bitmasks";
    List.iter
      (fun p ->
        if not (Pid.valid ~n p) then
          invalid_arg "Explorer: initially_dead pid out of range")
      initially_dead

  let base_mask_of initially_dead =
    List.fold_left mask_add 0 initially_dead

  (* memoised initial-dead failure patterns, one per crashed-set mask *)
  let make_pattern_of ~n =
    let patterns : (int, Failure_pattern.t) Hashtbl.t = Hashtbl.create 64 in
    fun mask ->
      match Hashtbl.find_opt patterns mask with
      | Some p -> p
      | None ->
          let p =
            Failure_pattern.initial_dead ~n ~dead:(mask_to_list ~n mask)
          in
          Hashtbl.add patterns mask p;
          p

  let explore_with_crashes ?(max_configs = 300_000) ?(policy = Per_sender)
      ?(drop_on_crash = true) ?(initially_dead = []) ~n ~inputs ~crash_budget
      ~check () =
    check_crash_explorable ~n ~initially_dead;
    Metrics.gauge_set g_max_configs max_configs;
    let base_mask = base_mask_of initially_dead in
    let pattern_of = make_pattern_of ~n in
    let ids : (E.key, int) Hashtbl.t = Hashtbl.create 65_536 in
    let recs =
      ref
        (Array.make 1024
           { succs = []; complete = false; mask = 0; undecided = [] })
    in
    let count = ref 0 in
    let terminals = ref 0 in
    let exhausted = ref false in
    let worklist = ref [] in
    let wl_len = ref 0 in
    (* discovery: assign a dense id the first time a node is seen and
       queue it for expansion; [None] once the budget is exhausted *)
    let visit config mask =
      let key = E.key ~extra:mask config in
      match Hashtbl.find_opt ids key with
      | Some id ->
          Metrics.incr m_dedup;
          Some id
      | None ->
          if !count >= max_configs then begin
            exhausted := true;
            Metrics.incr m_truncations;
            None
          end
          else begin
            let id = !count in
            incr count;
            Metrics.incr m_admitted;
            Hashtbl.add ids key id;
            if id >= Array.length !recs then begin
              let bigger =
                Array.make (2 * Array.length !recs)
                  { succs = []; complete = false; mask = 0; undecided = [] }
              in
              Array.blit !recs 0 bigger 0 (Array.length !recs);
              recs := bigger
            end;
            worklist := (id, config, mask) :: !worklist;
            incr wl_len;
            Metrics.gauge_max g_frontier_peak !wl_len;
            Some id
          end
    in
    let expand (id, config, mask) =
      let is_complete, mask, undecided, succ_pairs =
        expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
          ~pattern_of ~check config mask
      in
      if is_complete then begin
        incr terminals;
        Metrics.incr m_terminals
      end;
      let succs =
        List.filter_map (fun (c, m) -> visit c m) succ_pairs
      in
      !recs.(id) <- { succs; complete = is_complete; mask; undecided }
    in
    let enumerate () =
      ignore (visit (E.init_explore ~n ~inputs) base_mask);
      let rec drain () =
        match !worklist with
        | [] -> ()
        | node :: rest ->
            worklist := rest;
            decr wl_len;
            expand node;
            drain ()
      in
      drain ()
    in
    match enumerate () with
    | exception Unsafe (decisions, reason) ->
        Safety_violation { decisions; reason }
    | () ->
        let stats =
          {
            configs_visited = !count;
            terminal_runs = !terminals;
            budget_exhausted = !exhausted;
          }
        in
        record_run_stats stats;
        (* A truncated graph cannot be classified: stuck-ness is a
           property of {e all} continuations, and unexpanded frontier
           nodes would read as stuck while truly-stuck nodes may hide
           beyond the cut.  Say so instead of claiming the optimistic
           verdict. *)
        if !exhausted then Indeterminate stats
        else
          match classify_graph ~count:!count ~recs:!recs with
          | Some (mask, undecided_correct) ->
              Stuck
                {
                  crashed = mask_to_list ~n mask;
                  undecided_correct;
                  stats;
                }
          | None -> All_paths_decide stats

  (* Parallel crash-adversarial exploration: the root's successors —
     in particular the distinct crash-pattern subtrees — are fanned
     across domains, each enumerating with a private table; the merged
     graph (dense global ids, identical expansion determinism) is then
     classified exactly like the sequential one.  Outcomes match
     [explore_with_crashes] whenever the budget does not truncate. *)
  let explore_with_crashes_par ?domains ?(max_configs = 300_000)
      ?(policy = Per_sender) ?(drop_on_crash = true) ?(initially_dead = [])
      ~n ~inputs ~crash_budget ~check () =
    check_crash_explorable ~n ~initially_dead;
    Metrics.gauge_set g_max_configs max_configs;
    let domains =
      max 1 (match domains with Some d -> d | None -> default_domains ())
    in
    let base_mask = base_mask_of initially_dead in
    let root = E.init_explore ~n ~inputs in
    let pattern_of0 = make_pattern_of ~n in
    match
      expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
        ~pattern_of:pattern_of0 ~check root base_mask
    with
    | exception Unsafe (decisions, reason) ->
        Safety_violation { decisions; reason }
    | root_complete, root_mask, root_undecided, root_succs ->
        let buckets = Array.make domains [] in
        List.iteri
          (fun i s -> buckets.(i mod domains) <- s :: buckets.(i mod domains))
          root_succs;
        let global_count = Atomic.make 1 in
        Metrics.incr m_admitted (* the root, expanded inline *);
        let stop = Atomic.make false in
        let worker bucket () =
          Metrics.incr m_domains;
          (* per-domain enumeration: local dense ids, merged later *)
          let pattern_of = make_pattern_of ~n in
          let ids : (E.key, int) Hashtbl.t = Hashtbl.create 65_536 in
          let keys = ref (Array.make 1024 "") in
          let recs =
            ref
              (Array.make 1024
                 { succs = []; complete = false; mask = 0; undecided = [] })
          in
          let count = ref 0 in
          let exhausted = ref false in
          let worklist = ref [] in
          let wl_len = ref 0 in
          let visit config mask =
            let key = E.key ~extra:mask config in
            match Hashtbl.find_opt ids key with
            | Some id ->
                Metrics.incr m_dedup;
                Some id
            | None ->
                (* ticket clamp: the global admission count never
                   exceeds [max_configs], even under domain races *)
                let ticket = Atomic.fetch_and_add global_count 1 in
                if ticket >= max_configs then begin
                  Atomic.decr global_count;
                  exhausted := true;
                  Metrics.incr m_truncations;
                  None
                end
                else begin
                  Metrics.incr m_admitted;
                  let id = !count in
                  incr count;
                  Hashtbl.add ids key id;
                  if id >= Array.length !recs then begin
                    let bigger =
                      Array.make (2 * Array.length !recs)
                        { succs = []; complete = false; mask = 0; undecided = [] }
                    in
                    Array.blit !recs 0 bigger 0 (Array.length !recs);
                    recs := bigger;
                    let bigger_k = Array.make (2 * Array.length !keys) "" in
                    Array.blit !keys 0 bigger_k 0 (Array.length !keys);
                    keys := bigger_k
                  end;
                  !keys.(id) <- key;
                  worklist := (id, config, mask) :: !worklist;
                  incr wl_len;
                  Metrics.gauge_max g_frontier_peak !wl_len;
                  Some id
                end
          in
          let violation = ref None in
          (try
             Metrics.time t_worker (fun () ->
                 List.iter (fun (c, m) -> ignore (visit c m)) bucket;
                 let rec drain () =
                   if not (Atomic.get stop) then
                     match !worklist with
                     | [] -> ()
                     | (id, config, mask) :: rest ->
                         worklist := rest;
                         decr wl_len;
                         let is_complete, mask, undecided, succ_pairs =
                           expand_crash_node ~n ~policy ~drop_on_crash
                             ~base_mask ~crash_budget ~pattern_of ~check config
                             mask
                         in
                         if is_complete then Metrics.incr m_terminals;
                         let succs =
                           List.filter_map (fun (c, m) -> visit c m) succ_pairs
                         in
                         !recs.(id) <-
                           { succs; complete = is_complete; mask; undecided };
                         drain ()
                 in
                 drain ())
           with Unsafe (decisions, reason) ->
             violation := Some (decisions, reason);
             Atomic.set stop true);
          ( Array.sub !keys 0 !count,
            Array.sub !recs 0 !count,
            !exhausted,
            !violation )
        in
        let handles =
          Array.to_list
            (Array.map (fun bucket -> Domain.spawn (worker bucket)) buckets)
        in
        let results = List.map Domain.join handles in
        let violation =
          List.find_map (fun (_, _, _, v) -> v) results
        in
        (match violation with
        | Some (decisions, reason) -> Safety_violation { decisions; reason }
        | None ->
            (* merge: global dense ids over the union of per-domain
               graphs; duplicated nodes expand identically, so the
               first copy wins *)
            let gids : (E.key, int) Hashtbl.t = Hashtbl.create 65_536 in
            let gcount = ref 0 in
            let exhausted = ref false in
            let root_key = E.key ~extra:root_mask root in
            Hashtbl.add gids root_key 0;
            incr gcount;
            List.iter
              (fun ((keys : E.key array), _, ex, _) ->
                if ex then exhausted := true;
                Array.iter
                  (fun key ->
                    if not (Hashtbl.mem gids key) then begin
                      Hashtbl.add gids key !gcount;
                      incr gcount
                    end)
                  keys)
              results;
            let count = !gcount in
            let recs =
              Array.make count
                { succs = []; complete = false; mask = 0; undecided = [] }
            in
            let filled = Array.make count false in
            let terminals = ref 0 in
            List.iter
              (fun ((keys : E.key array), (local : node_rec array), _, _) ->
                Array.iteri
                  (fun lid key ->
                    let gid = Hashtbl.find gids key in
                    if not filled.(gid) then begin
                      filled.(gid) <- true;
                      let r = local.(lid) in
                      recs.(gid) <-
                        {
                          r with
                          succs =
                            List.map
                              (fun s ->
                                (* succ ids are local to the same domain *)
                                Hashtbl.find gids keys.(s))
                              r.succs;
                        };
                      if r.complete then incr terminals
                    end)
                  keys)
              results;
            (* the root, expanded inline above *)
            let root_succ_ids =
              List.filter_map
                (fun (c, m) ->
                  Hashtbl.find_opt gids (E.key ~extra:m c))
                root_succs
            in
            filled.(0) <- true;
            recs.(0) <-
              {
                succs = root_succ_ids;
                complete = root_complete;
                mask = root_mask;
                undecided = root_undecided;
              };
            if root_complete then incr terminals;
            let stats =
              {
                configs_visited = count;
                terminal_runs = !terminals;
                budget_exhausted = !exhausted;
              }
            in
            record_run_stats stats;
            (* same honesty rule as the sequential driver: a truncated
               graph admits no all-paths-decide claim *)
            if !exhausted then Indeterminate stats
            else
              match classify_graph ~count ~recs with
              | Some (mask, undecided_correct) ->
                  Stuck
                    {
                      crashed = mask_to_list ~n mask;
                      undecided_correct;
                      stats;
                    }
              | None -> All_paths_decide stats)

  let reachable_decision_values ?(max_configs = 300_000) ?(policy = Per_sender)
      ~n ~inputs ~crash_budget () =
    let seen = ref [] in
    let note decisions =
      List.iter
        (fun (_, v, _) -> if not (List.mem v !seen) then seen := v :: !seen)
        decisions
    in
    (match
       explore_with_crashes ~max_configs ~policy ~n ~inputs ~crash_budget
         ~check:(fun decisions ->
           note decisions;
           None)
         ()
     with
    | All_paths_decide _ | Stuck _ | Indeterminate _ -> ()
    | Safety_violation _ -> ());
    List.sort compare !seen

  let reachable_decision_values_par ?domains ?(max_configs = 300_000)
      ?(policy = Per_sender) ~n ~inputs ~crash_budget () =
    (* [check] runs concurrently on several domains: the accumulator
       is mutex-protected.  Parity with the sequential driver follows
       from [explore_with_crashes_par] enumerating the same reachable
       node set (asserted in test/test_explore.ml). *)
    let lock = Mutex.create () in
    let seen = ref [] in
    let note decisions =
      Mutex.lock lock;
      List.iter
        (fun (_, v, _) -> if not (List.mem v !seen) then seen := v :: !seen)
        decisions;
      Mutex.unlock lock
    in
    (match
       explore_with_crashes_par ?domains ~max_configs ~policy ~n ~inputs
         ~crash_budget
         ~check:(fun decisions ->
           note decisions;
           None)
         ()
     with
    | All_paths_decide _ | Stuck _ | Indeterminate _ -> ()
    | Safety_violation _ -> ());
    List.sort compare !seen
end
