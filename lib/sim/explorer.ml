module Metrics = Ksa_prim.Metrics

type delivery_policy = Empty_or_all | Per_sender | All_subsets

type stats = {
  configs_visited : int;
  terminal_runs : int;
  budget_exhausted : bool;
}

type outcome =
  | Safe of stats
  | Violation of { decisions : (Pid.t * Value.t * int) list; reason : string; depth : int }

type resilient_outcome =
  | All_paths_decide of stats
  | Safety_violation of {
      decisions : (Pid.t * Value.t * int) list;
      reason : string;
    }
  | Stuck of {
      crashed : Pid.t list;
      undecided_correct : Pid.t list;
      stats : stats;
    }
  | Indeterminate of stats

(* Crashed sets travel as int bitmasks.  Top level (not per functor
   instance): pure bit arithmetic, also exercised directly by the
   test suite. *)
module Mask = struct
  let mem mask p = mask land (1 lsl p) <> 0
  let add mask p = mask lor (1 lsl p)
  let to_list ~n mask = List.filter (mem mask) (Pid.universe n)

  (* Kernighan's loop: one iteration per set bit, no allocation —
     this sits on the crash-successor hot path. *)
  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go mask 0
end

(* ---- instrumentation (process-global, shared by all drivers) ----

   Live counters tick during the search and feed progress reporting;
   in the parallel drivers [explore.admitted] includes configurations
   admitted by two domains before the merge deduplicates them, so the
   authoritative per-run figures are published as gauges from the
   final [stats] record at completion. *)
let m_admitted = Metrics.counter "explore.admitted"
let m_dedup = Metrics.counter "explore.dedup.hits"
let m_terminals = Metrics.counter "explore.terminals"
let m_domains = Metrics.counter "explore.domains.spawned"
let m_truncations = Metrics.counter "explore.budget.truncations"
let g_frontier_peak = Metrics.gauge "explore.frontier.peak"
let g_depth_peak = Metrics.gauge "explore.depth.peak"
let g_max_configs = Metrics.gauge "explore.budget.max_configs"
let g_visited = Metrics.gauge "explore.configs_visited"
let g_terminal_runs = Metrics.gauge "explore.terminal_runs"
let g_exhausted = Metrics.gauge "explore.budget_exhausted"
let t_worker = Metrics.timer "explore.worker"

let record_run_stats (s : stats) =
  Metrics.gauge_set g_visited s.configs_visited;
  Metrics.gauge_set g_terminal_runs s.terminal_runs;
  Metrics.gauge_set g_exhausted (if s.budget_exhausted then 1 else 0)

let default_domains () =
  match Sys.getenv_opt "KSA_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | Some _ | None -> 1)
  | None -> Domain.recommended_domain_count ()

(* ---- pause-the-world coordination for the parallel drivers ----

   A checkpoint must capture a consistent cut of every worker's
   private state.  Workers poll a request flag at their drain-loop
   safepoints (between node expansions — never mid-node); on request
   each publishes a deep snapshot into its slot and parks on a
   condition until released.  The coordinator waits until every live
   worker is parked (workers that already finished have published a
   final snapshot on exit), merges the slots, writes, and releases.
   With no sink and no interrupt poll the request flag stays false
   and the safepoint is one relaxed atomic read per node. *)
module Pause = struct
  type 'a t = {
    req : bool Atomic.t;
    m : Mutex.t;
    parked_cond : Condition.t;
    resume_cond : Condition.t;
    mutable parked : int;
    mutable active : int;
    slots : 'a option array;
  }

  let create n =
    {
      req = Atomic.make false;
      m = Mutex.create ();
      parked_cond = Condition.create ();
      resume_cond = Condition.create ();
      parked = 0;
      active = n;
      slots = Array.make n None;
    }

  (* worker safepoint: park (publishing a snapshot) while a pause is
     requested.  [None] is the supervised re-run path: no pause
     machinery, the coordinator is gone by then. *)
  let point p i snap =
    match p with
    | None -> ()
    | Some p ->
        if Atomic.get p.req then begin
          Mutex.lock p.m;
          p.slots.(i) <- Some (snap ());
          p.parked <- p.parked + 1;
          Condition.signal p.parked_cond;
          while Atomic.get p.req do
            Condition.wait p.resume_cond p.m
          done;
          p.parked <- p.parked - 1;
          Mutex.unlock p.m
        end

  (* worker exit: leave a final snapshot so later checkpoints still
     cover this worker's share of the space *)
  let exit p i snap =
    match p with
    | None -> ()
    | Some p ->
        Mutex.lock p.m;
        p.slots.(i) <- Some (snap ());
        p.active <- p.active - 1;
        Condition.signal p.parked_cond;
        Mutex.unlock p.m

  (* coordinator: stop the world, run [f] over the slots, release *)
  let with_world p f =
    Mutex.lock p.m;
    Atomic.set p.req true;
    while p.parked < p.active do
      Condition.wait p.parked_cond p.m
    done;
    Fun.protect
      ~finally:(fun () ->
        Atomic.set p.req false;
        Condition.broadcast p.resume_cond;
        Mutex.unlock p.m)
      (fun () -> f p.slots)
end

(* The checkpoint/interrupt coordinator of a parallel driver: a small
   ticker domain.  When a periodic write is due it stops the world,
   merges the worker slots into a sequential-format payload and
   writes it; when the campaign is interrupted it writes a final
   checkpoint the same way, then raises the driver's stop flag (via
   [on_interrupt]) and retires. *)
let spawn_coordinator ~ckpt ~pause ~items ~merge ~on_interrupt =
  if not (Checkpoint.engaged ckpt) then None
  else
    let quit = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          let rec loop () =
            if not (Atomic.get quit) then begin
              Unix.sleepf 0.005;
              let intr = Checkpoint.interrupted ckpt in
              if intr || Checkpoint.due ckpt ~items:(items ()) then
                Pause.with_world pause (fun slots ->
                    let payload = lazy (merge slots) in
                    if intr then
                      Checkpoint.flush ckpt (fun () -> Lazy.force payload)
                    else
                      Checkpoint.tick ckpt ~items:(items ()) (fun () ->
                          Lazy.force payload));
              if intr then begin
                on_interrupt ();
                Atomic.set quit true
              end;
              loop ()
            end
          in
          loop ())
    in
    Some (quit, d)

let stop_coordinator = function
  | None -> ()
  | Some (quit, d) ->
      Atomic.set quit true;
      Domain.join d

module Make (A : Algorithm.S) = struct
  module E = Engine.Make (A)

  exception Found of (Pid.t * Value.t * int) list * string * int

  (* All 2^|xs| sublists, built with rev_append/rev_map only: linear
     in the size of the output, no quadratic [acc @ ...] rebuilding. *)
  let subsets xs =
    List.fold_left
      (fun acc x -> List.rev_append (List.rev_map (fun s -> x :: s) acc) acc)
      [ [] ] xs

  (* Delivery choices for a process whose buffer holds [mine]
     ((id, src) pairs in sending order): lists of message ids.
     Single pass over the buffer for every policy. *)
  let choices policy mine =
    match policy with
    | Empty_or_all -> (
        match mine with [] -> [ [] ] | _ -> [ []; List.map fst mine ])
    | Per_sender ->
        let buckets : (Pid.t, int list ref) Hashtbl.t = Hashtbl.create 8 in
        let senders = ref [] in
        List.iter
          (fun (id, src) ->
            match Hashtbl.find_opt buckets src with
            | Some l -> l := id :: !l
            | None ->
                Hashtbl.add buckets src (ref [ id ]);
                senders := src :: !senders)
          mine;
        let senders = List.rev !senders in
        let per_sender =
          List.map (fun s -> List.rev !(Hashtbl.find buckets s)) senders
        in
        let all =
          match senders with
          | _ :: _ :: _ -> [ List.map fst mine ]
          | _ -> []
        in
        ([] :: per_sender) @ all
    | All_subsets -> subsets (List.map fst mine)

  let require_explorable ~n ~pattern =
    if A.uses_fd then
      invalid_arg "Explorer: algorithms with failure detectors are unsupported";
    if
      List.exists
        (fun p ->
          match Failure_pattern.crash_time pattern p with
          | Some t when t > 0 -> true
          | Some _ | None -> false)
        (Pid.universe n)
    then invalid_arg "Explorer: only initial crashes are supported"

  (* Successors of a non-terminal configuration under [policy]: every
     (stepper, delivery-choice) pair.  [steppers] is constant over the
     whole search because only initial crashes are admitted. *)
  let schedule_successors ~policy ~pattern ~steppers config k =
    List.iter
      (fun pid ->
        let mine = E.inbox config pid in
        List.iter
          (fun deliver ->
            match E.apply ~pattern config (Adversary.Step { pid; deliver }) with
            | Some config' -> k config'
            | None -> assert false)
          (choices policy mine))
      steppers

  (* ---- sequential exhaustive exploration ---- *)

  (* Checkpoint payload of an [explore] campaign: the dedup table,
     the counters, and the stack of {e candidate} configurations —
     popped but not yet admitted, so resume re-applies dedup and the
     budget exactly as the uninterrupted run would have.  The
     parallel driver merges its worker states into this same format,
     and every resume continues on the sequential driver. *)
  type explore_snap =
    (E.key, unit) Hashtbl.t * int * int * bool * (E.config * int) list

  let explore ?(max_depth = 200) ?(max_configs = 2_000_000)
      ?(policy = Per_sender) ?(on_terminal = fun _ -> ())
      ?(ckpt = Checkpoint.ctl ()) ?resume ~n ~inputs ~pattern ~check () =
    require_explorable ~n ~pattern;
    Metrics.gauge_set g_max_configs max_configs;
    let seen, visited0, terminals0, exhausted0, stack0 =
      match resume with
      | Some payload -> (Marshal.from_string payload 0 : explore_snap)
      | None -> (Hashtbl.create 65_536, 0, 0, false, [])
    in
    let visited = ref visited0 in
    let terminals = ref terminals0 in
    let exhausted = ref exhausted0 in
    let interrupted = ref false in
    let stack =
      ref (match resume with Some _ -> stack0 | None -> [ (E.init_explore ~n ~inputs, 0) ])
    in
    let snap () =
      Marshal.to_string
        ((seen, !visited, !terminals, !exhausted, !stack) : explore_snap)
        []
    in
    let correct = Failure_pattern.correct pattern in
    (* Admission is clamped at the budget {e before} a configuration
       is counted (matching the dense-id [visit] of the crash
       drivers): [configs_visited] never overshoots [max_configs],
       and [budget_exhausted] is set only when an unseen reachable
       configuration was actually turned away.  The stack pops
       candidates in exactly the order the recursive formulation
       visited them (successors are pushed in reverse generation
       order), so verdicts, depths and stats are unchanged. *)
    let rec loop () =
      match !stack with
      | [] -> ()
      | _ when Checkpoint.interrupted ckpt ->
          Checkpoint.flush ckpt snap;
          interrupted := true
      | (config, depth) :: rest ->
          stack := rest;
          let key = E.key config in
          if Hashtbl.mem seen key then Metrics.incr m_dedup
          else if !visited >= max_configs then begin
            exhausted := true;
            Metrics.incr m_truncations
          end
          else begin
            Hashtbl.add seen key ();
            incr visited;
            Metrics.incr m_admitted;
            Metrics.gauge_max g_depth_peak depth;
            let decisions = E.decisions config in
            (match check decisions with
            | Some reason -> raise (Found (decisions, reason, depth))
            | None -> ());
            let done_ =
              List.for_all (fun p -> E.decision_of config p <> None) correct
            in
            if done_ then begin
              incr terminals;
              Metrics.incr m_terminals;
              on_terminal decisions
            end
            else if depth >= max_depth then exhausted := true
            else begin
              let succs = ref [] in
              schedule_successors ~policy ~pattern ~steppers:correct config
                (fun config' -> succs := (config', depth + 1) :: !succs);
              stack := List.rev_append !succs !stack
            end;
            Checkpoint.tick ckpt ~items:!visited snap
          end;
          loop ()
    in
    match loop () with
    | () ->
        if !interrupted then exhausted := true;
        let stats =
          {
            configs_visited = !visited;
            terminal_runs = !terminals;
            budget_exhausted = !exhausted;
          }
        in
        record_run_stats stats;
        Safe stats
    | exception Found (decisions, reason, depth) ->
        Violation { decisions; reason; depth }

  (* ---- parallel exhaustive exploration ---- *)

  (* Fans the first levels of the DFS across domains.  The visited set
     of a complete DFS is exactly the set of reachable configurations,
     so per-domain searches with private seen-tables merged by key
     union return the same stats and verdict as [explore] whenever no
     budget truncates the search (configuration keys are content-based
     and therefore comparable across domains).  [check] runs
     concurrently and must be thread-safe. *)
  let explore_par ?domains ?(max_depth = 200) ?(max_configs = 2_000_000)
      ?(policy = Per_sender) ?(on_terminal = fun _ -> ())
      ?(ckpt = Checkpoint.ctl ()) ~n ~inputs ~pattern ~check () =
    require_explorable ~n ~pattern;
    Metrics.gauge_set g_max_configs max_configs;
    let domains =
      max 1 (match domains with Some d -> d | None -> default_domains ())
    in
    let correct = Failure_pattern.correct pattern in
    let steppers = correct in
    (* breadth-first prefix: expand until the frontier is wide enough
       to keep every domain busy *)
    let target_frontier = domains * 8 in
    let seen0 : (E.key, unit) Hashtbl.t = Hashtbl.create 1024 in
    let terminals0 : (E.key, (Pid.t * Value.t * int) list) Hashtbl.t =
      Hashtbl.create 64
    in
    let exhausted0 = ref false in
    let frontier = Queue.create () in
    Queue.add (E.init_explore ~n ~inputs, 0) frontier;
    let prefix_violation = ref None in
    (* expand BFS nodes until wide enough (or done, or a violation) *)
    (try
       while
         !prefix_violation = None
         && Queue.length frontier < target_frontier
         && not (Queue.is_empty frontier)
       do
         let config, depth = Queue.pop frontier in
         let key = E.key config in
         if Hashtbl.mem seen0 key then Metrics.incr m_dedup
         else if Hashtbl.length seen0 >= max_configs then begin
           (* budget spent inside the prefix: drop the remaining
              frontier — everything from here on is truncated *)
           exhausted0 := true;
           Metrics.incr m_truncations;
           Queue.clear frontier
         end
         else begin
           Hashtbl.add seen0 key ();
           Metrics.incr m_admitted;
           Metrics.gauge_max g_depth_peak depth;
           let decisions = E.decisions config in
           (match check decisions with
           | Some reason -> raise (Found (decisions, reason, depth))
           | None -> ());
           let done_ =
             List.for_all (fun p -> E.decision_of config p <> None) correct
           in
           if done_ then begin
             Hashtbl.replace terminals0 key decisions;
             Metrics.incr m_terminals
           end
           else if depth >= max_depth then exhausted0 := true
           else
             schedule_successors ~policy ~pattern ~steppers config
               (fun config' -> Queue.add (config', depth + 1) frontier);
           Metrics.gauge_max g_frontier_peak (Queue.length frontier)
         end
       done
     with Found (decisions, reason, depth) ->
       prefix_violation := Some (decisions, reason, depth));
    match !prefix_violation with
    | Some (decisions, reason, depth) -> Violation { decisions; reason; depth }
    | None ->
        let frontier_items = List.of_seq (Queue.to_seq frontier) in
        let visited0 = Hashtbl.length seen0 in
        let buckets = Array.make domains [] in
        List.iteri
          (fun i item ->
            buckets.(i mod domains) <- item :: buckets.(i mod domains))
          frontier_items;
        let global_count = Atomic.make visited0 in
        let stop = Atomic.make false in
        let interrupted = ref false in
        let pause = Pause.create domains in
        let worker ~pause i bucket () =
          Metrics.incr m_domains;
          let seen : (E.key, unit) Hashtbl.t = Hashtbl.create 65_536 in
          let terminals : (E.key, (Pid.t * Value.t * int) list) Hashtbl.t =
            Hashtbl.create 1024
          in
          let exhausted = ref false in
          let violation = ref None in
          let error = ref None in
          let admitted = ref 0 in
          let stack = ref bucket in
          let snap () =
            (Hashtbl.copy seen, Hashtbl.copy terminals, !stack, !exhausted)
          in
          let rec drain () =
            Pause.point pause i snap;
            if not (Atomic.get stop) then
              match !stack with
              | [] -> ()
              | (config, depth) :: rest ->
                  stack := rest;
                  let key = E.key config in
                  if Hashtbl.mem seen key || Hashtbl.mem seen0 key then
                    Metrics.incr m_dedup
                  else begin
                    (* a fetch-and-add ticket clamps the global
                       admission count at the budget even under domain
                       races (losers hand their ticket back) *)
                    let ticket = Atomic.fetch_and_add global_count 1 in
                    if ticket >= max_configs then begin
                      Atomic.decr global_count;
                      exhausted := true;
                      Metrics.incr m_truncations
                    end
                    else begin
                      Hashtbl.add seen key ();
                      incr admitted;
                      Metrics.incr m_admitted;
                      Metrics.gauge_max g_depth_peak depth;
                      let decisions = E.decisions config in
                      (match check decisions with
                      | Some reason -> raise (Found (decisions, reason, depth))
                      | None -> ());
                      let done_ =
                        List.for_all
                          (fun p -> E.decision_of config p <> None)
                          correct
                      in
                      if done_ then begin
                        Hashtbl.replace terminals key decisions;
                        Metrics.incr m_terminals
                      end
                      else if depth >= max_depth then exhausted := true
                      else begin
                        let succs = ref [] in
                        schedule_successors ~policy ~pattern ~steppers config
                          (fun config' ->
                            succs := (config', depth + 1) :: !succs);
                        stack := List.rev_append !succs !stack
                      end
                    end
                  end;
                  drain ()
          in
          (try Metrics.time t_worker drain with
          | Found (decisions, reason, depth) ->
              violation := Some (decisions, reason, depth);
              Atomic.set stop true
          | e -> error := Some (Printexc.to_string e));
          Pause.exit pause i snap;
          (seen, terminals, !exhausted, !violation, !admitted, !error)
        in
        (* merge worker snapshots (plus the shared BFS prefix) into a
           sequential-format checkpoint payload: resume continues on
           [explore], whose verdicts and stats are identical by the
           seq/par parity invariant *)
        let merge slots =
          let seen_m = Hashtbl.copy seen0 in
          let term_m = Hashtbl.copy terminals0 in
          let stack_m = ref [] in
          let ex = ref !exhausted0 in
          Array.iter
            (function
              | None -> ()
              | Some (seen, terms, stack, exh) ->
                  Hashtbl.iter (fun k () -> Hashtbl.replace seen_m k ()) seen;
                  Hashtbl.iter (fun k d -> Hashtbl.replace term_m k d) terms;
                  stack_m := List.rev_append stack !stack_m;
                  if exh then ex := true)
            slots;
          Marshal.to_string
            (( seen_m,
               Hashtbl.length seen_m,
               Hashtbl.length term_m,
               !ex,
               !stack_m )
              : explore_snap)
            []
        in
        let coordinator =
          spawn_coordinator ~ckpt ~pause
            ~items:(fun () -> Atomic.get global_count)
            ~merge
            ~on_interrupt:(fun () ->
              interrupted := true;
              Atomic.set stop true)
        in
        let handles =
          Array.to_list
            (Array.mapi
               (fun i bucket -> Domain.spawn (worker ~pause:(Some pause) i bucket))
               buckets)
        in
        let joined = List.map Domain.join handles in
        stop_coordinator coordinator;
        (* supervision: a worker that died of a non-verdict exception
           forfeits its partial tables; its admission tickets are
           refunded and its whole bucket re-runs in this domain (the
           campaign degrades to fewer workers rather than aborting) *)
        let results =
          List.mapi
            (fun i result ->
              match result with
              | _, _, _, _, admitted, Some err ->
                  ignore (Atomic.fetch_and_add global_count (-admitted));
                  Checkpoint.note_failure ckpt ~worker:i ~error:err
                    ~requeued:(List.length buckets.(i));
                  let (_, _, _, _, _, rerun_err) as rerun =
                    worker ~pause:None i buckets.(i) ()
                  in
                  (match rerun_err with
                  | Some err2 ->
                      (* failed twice on the same work: a systematic
                         fault, not a transient — surface it *)
                      failwith
                        (Printf.sprintf "explorer worker %d failed twice: %s"
                           i err2)
                  | None -> ());
                  rerun
              | ok -> ok)
            joined
        in
        let results =
          List.map (fun (s, t, ex, v, _, _) -> (s, t, ex, v)) results
        in
        let violation =
          List.fold_left
            (fun best (_, _, _, v) ->
              match (best, v) with
              | None, v -> v
              | Some _, None -> best
              | Some (_, _, db), Some (_, _, dv) ->
                  if dv < db then v else best)
            None results
        in
        (match violation with
        | Some (decisions, reason, depth) ->
            Violation { decisions; reason; depth }
        | None ->
            let union : (E.key, unit) Hashtbl.t =
              Hashtbl.create (max 1024 (2 * visited0))
            in
            let all_terminals :
                (E.key, (Pid.t * Value.t * int) list) Hashtbl.t =
              Hashtbl.create 1024
            in
            Hashtbl.iter (fun k ds -> Hashtbl.replace all_terminals k ds)
              terminals0;
            let exhausted = ref (!exhausted0 || !interrupted) in
            List.iter
              (fun (seen, terminals, ex, _) ->
                if ex then exhausted := true;
                Hashtbl.iter (fun k () -> Hashtbl.replace union k ()) seen;
                Hashtbl.iter
                  (fun k ds -> Hashtbl.replace all_terminals k ds)
                  terminals)
              results;
            Hashtbl.iter (fun _ ds -> on_terminal ds) all_terminals;
            let stats =
              {
                configs_visited = visited0 + Hashtbl.length union;
                terminal_runs = Hashtbl.length all_terminals;
                budget_exhausted = !exhausted;
              }
            in
            record_run_stats stats;
            Safe stats)

  (* ---- crash-adversarial exploration ---- *)

  exception Unsafe of (Pid.t * Value.t * int) list * string

  (* The crashed set travels as a bitmask folded into the node key;
     node identities and graph edges are dense ints, never strings. *)
  let mask_mem = Mask.mem
  let mask_add = Mask.add
  let mask_to_list = Mask.to_list
  let popcount = Mask.popcount

  type node_rec = {
    succs : int list;
    complete : bool;
    mask : int;
    undecided : Pid.t list;
  }

  (* Per-node expansion, shared by the sequential and parallel
     drivers: decisions check, completeness, and the successor
     (config, mask) pairs. *)
  let expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
      ~pattern_of ~check config mask =
    let decisions = E.decisions config in
    (match check decisions with
    | Some reason -> raise (Unsafe (decisions, reason))
    | None -> ());
    let alive = List.filter (fun p -> not (mask_mem mask p)) (Pid.universe n) in
    let is_complete =
      List.for_all (fun p -> E.decision_of config p <> None) alive
    in
    let undecided =
      List.filter (fun p -> E.decision_of config p = None) alive
    in
    let succs = ref [] in
    if not is_complete then begin
      let pattern = pattern_of mask in
      List.iter
        (fun pid ->
          let mine = E.inbox config pid in
          List.iter
            (fun deliver ->
              match
                E.apply ~pattern config (Adversary.Step { pid; deliver })
              with
              | Some config' -> succs := (config', mask) :: !succs
              | None -> assert false)
            (choices policy mine))
        alive;
      if popcount mask - popcount base_mask < crash_budget then begin
        (* one pass over the pending multiset buckets messages by
           sender for the drop-on-crash successors *)
        let by_src =
          if drop_on_crash then begin
            let a = Array.make n [] in
            List.iter
              (fun (e : A.message Envelope.t) -> a.(e.src) <- e.id :: a.(e.src))
              (E.pending config);
            a
          end
          else [||]
        in
        List.iter
          (fun victim ->
            let mask' = mask_add mask victim in
            succs := (config, mask') :: !succs;
            if drop_on_crash && by_src.(victim) <> [] then
              match
                E.apply ~pattern:(pattern_of mask') config
                  (Adversary.Drop by_src.(victim))
              with
              | Some config' -> succs := (config', mask') :: !succs
              | None -> assert false)
          alive
      end
    end;
    (is_complete, mask, undecided, !succs)

  (* Backwards reachability from the complete nodes over the int-id
     graph; [None] when every node can still reach completion.  The
     reported witness is the minimum over (mask, undecided) of all
     stuck nodes, so sequential and parallel drivers — which discover
     nodes in different orders — return the same one. *)
  let classify_graph ~count ~(recs : node_rec array) =
    let preds = Array.make count [] in
    let completes = ref [] in
    for id = 0 to count - 1 do
      if recs.(id).complete then completes := id :: !completes;
      List.iter (fun s -> preds.(s) <- id :: preds.(s)) recs.(id).succs
    done;
    let can_decide = Array.make count false in
    let rec mark_all = function
      | [] -> ()
      | id :: rest ->
          if can_decide.(id) then mark_all rest
          else begin
            can_decide.(id) <- true;
            mark_all (List.rev_append preds.(id) rest)
          end
    in
    mark_all !completes;
    let stuck = ref None in
    for id = 0 to count - 1 do
      if not can_decide.(id) then begin
        let w = (recs.(id).mask, recs.(id).undecided) in
        match !stuck with
        | Some best when compare best w <= 0 -> ()
        | Some _ | None -> stuck := Some w
      end
    done;
    !stuck

  let check_crash_explorable ~n ~initially_dead =
    if A.uses_fd then
      invalid_arg "Explorer: algorithms with failure detectors are unsupported";
    if n > Sys.int_size - 2 then
      invalid_arg "Explorer: system too large for crash-set bitmasks";
    List.iter
      (fun p ->
        if not (Pid.valid ~n p) then
          invalid_arg "Explorer: initially_dead pid out of range")
      initially_dead

  let base_mask_of initially_dead =
    List.fold_left mask_add 0 initially_dead

  (* memoised initial-dead failure patterns, one per crashed-set mask *)
  let make_pattern_of ~n =
    let patterns : (int, Failure_pattern.t) Hashtbl.t = Hashtbl.create 64 in
    fun mask ->
      match Hashtbl.find_opt patterns mask with
      | Some p -> p
      | None ->
          let p =
            Failure_pattern.initial_dead ~n ~dead:(mask_to_list ~n mask)
          in
          Hashtbl.add patterns mask p;
          p

  (* Checkpoint payload of a crash campaign: the key→id table, the
     expanded prefix of the node-record graph, the counters, and the
     worklist of admitted-but-unexpanded nodes.  The parallel driver
     merges its per-worker graphs into this same format (global dense
     ids re-assigned at merge time), and resume always continues on
     the sequential driver. *)
  type crash_snap =
    (E.key, int) Hashtbl.t
    * node_rec array
    * int
    * int
    * bool
    * (int * E.config * int) list

  let empty_rec = { succs = []; complete = false; mask = 0; undecided = [] }

  let explore_with_crashes ?(max_configs = 300_000) ?(policy = Per_sender)
      ?(drop_on_crash = true) ?(initially_dead = [])
      ?(ckpt = Checkpoint.ctl ()) ?resume ~n ~inputs ~crash_budget ~check () =
    check_crash_explorable ~n ~initially_dead;
    Metrics.gauge_set g_max_configs max_configs;
    let base_mask = base_mask_of initially_dead in
    let pattern_of = make_pattern_of ~n in
    let ids, recs0, count0, terminals0, exhausted0, worklist0 =
      match resume with
      | Some payload -> (Marshal.from_string payload 0 : crash_snap)
      | None -> (Hashtbl.create 65_536, Array.make 1024 empty_rec, 0, 0, false, [])
    in
    let recs =
      ref (if Array.length recs0 = 0 then Array.make 1024 empty_rec else recs0)
    in
    let count = ref count0 in
    let terminals = ref terminals0 in
    let exhausted = ref exhausted0 in
    let interrupted = ref false in
    let worklist = ref worklist0 in
    let wl_len = ref (List.length worklist0) in
    (* discovery: assign a dense id the first time a node is seen and
       queue it for expansion; [None] once the budget is exhausted *)
    let visit config mask =
      let key = E.key ~extra:mask config in
      match Hashtbl.find_opt ids key with
      | Some id ->
          Metrics.incr m_dedup;
          Some id
      | None ->
          if !count >= max_configs then begin
            exhausted := true;
            Metrics.incr m_truncations;
            None
          end
          else begin
            let id = !count in
            incr count;
            Metrics.incr m_admitted;
            Hashtbl.add ids key id;
            if id >= Array.length !recs then begin
              let bigger =
                Array.make (2 * Array.length !recs)
                  { succs = []; complete = false; mask = 0; undecided = [] }
              in
              Array.blit !recs 0 bigger 0 (Array.length !recs);
              recs := bigger
            end;
            worklist := (id, config, mask) :: !worklist;
            incr wl_len;
            Metrics.gauge_max g_frontier_peak !wl_len;
            Some id
          end
    in
    let expand (id, config, mask) =
      let is_complete, mask, undecided, succ_pairs =
        expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
          ~pattern_of ~check config mask
      in
      if is_complete then begin
        incr terminals;
        Metrics.incr m_terminals
      end;
      let succs =
        List.filter_map (fun (c, m) -> visit c m) succ_pairs
      in
      !recs.(id) <- { succs; complete = is_complete; mask; undecided }
    in
    let snap () =
      Marshal.to_string
        (( ids,
           Array.sub !recs 0 !count,
           !count,
           !terminals,
           !exhausted,
           !worklist )
          : crash_snap)
        []
    in
    let enumerate () =
      if resume = None then ignore (visit (E.init_explore ~n ~inputs) base_mask);
      let rec drain () =
        match !worklist with
        | [] -> ()
        | _ when Checkpoint.interrupted ckpt ->
            Checkpoint.flush ckpt snap;
            interrupted := true
        | node :: rest ->
            worklist := rest;
            decr wl_len;
            expand node;
            Checkpoint.tick ckpt ~items:!count snap;
            drain ()
      in
      drain ()
    in
    match enumerate () with
    | exception Unsafe (decisions, reason) ->
        Safety_violation { decisions; reason }
    | () ->
        if !interrupted then exhausted := true;
        let stats =
          {
            configs_visited = !count;
            terminal_runs = !terminals;
            budget_exhausted = !exhausted;
          }
        in
        record_run_stats stats;
        (* A truncated graph cannot be classified: stuck-ness is a
           property of {e all} continuations, and unexpanded frontier
           nodes would read as stuck while truly-stuck nodes may hide
           beyond the cut.  Say so instead of claiming the optimistic
           verdict. *)
        if !exhausted then Indeterminate stats
        else
          match classify_graph ~count:!count ~recs:!recs with
          | Some (mask, undecided_correct) ->
              Stuck
                {
                  crashed = mask_to_list ~n mask;
                  undecided_correct;
                  stats;
                }
          | None -> All_paths_decide stats

  (* Parallel crash-adversarial exploration: the root's successors —
     in particular the distinct crash-pattern subtrees — are fanned
     across domains, each enumerating with a private table; the merged
     graph (dense global ids, identical expansion determinism) is then
     classified exactly like the sequential one.  Outcomes match
     [explore_with_crashes] whenever the budget does not truncate. *)
  let explore_with_crashes_par ?domains ?(max_configs = 300_000)
      ?(policy = Per_sender) ?(drop_on_crash = true) ?(initially_dead = [])
      ?(ckpt = Checkpoint.ctl ()) ~n ~inputs ~crash_budget ~check () =
    check_crash_explorable ~n ~initially_dead;
    Metrics.gauge_set g_max_configs max_configs;
    let domains =
      max 1 (match domains with Some d -> d | None -> default_domains ())
    in
    let base_mask = base_mask_of initially_dead in
    let root = E.init_explore ~n ~inputs in
    let pattern_of0 = make_pattern_of ~n in
    match
      expand_crash_node ~n ~policy ~drop_on_crash ~base_mask ~crash_budget
        ~pattern_of:pattern_of0 ~check root base_mask
    with
    | exception Unsafe (decisions, reason) ->
        Safety_violation { decisions; reason }
    | root_complete, root_mask, root_undecided, root_succs ->
        let buckets = Array.make domains [] in
        List.iteri
          (fun i s -> buckets.(i mod domains) <- s :: buckets.(i mod domains))
          root_succs;
        let global_count = Atomic.make 1 in
        Metrics.incr m_admitted (* the root, expanded inline *);
        let stop = Atomic.make false in
        let interrupted = ref false in
        let pause = Pause.create domains in
        let worker ~pause i bucket () =
          Metrics.incr m_domains;
          (* per-domain enumeration: local dense ids, merged later *)
          let pattern_of = make_pattern_of ~n in
          let ids : (E.key, int) Hashtbl.t = Hashtbl.create 65_536 in
          let keys = ref (Array.make 1024 "") in
          let recs =
            ref
              (Array.make 1024
                 { succs = []; complete = false; mask = 0; undecided = [] })
          in
          let count = ref 0 in
          let exhausted = ref false in
          let worklist = ref [] in
          let wl_len = ref 0 in
          let visit config mask =
            let key = E.key ~extra:mask config in
            match Hashtbl.find_opt ids key with
            | Some id ->
                Metrics.incr m_dedup;
                Some id
            | None ->
                (* ticket clamp: the global admission count never
                   exceeds [max_configs], even under domain races *)
                let ticket = Atomic.fetch_and_add global_count 1 in
                if ticket >= max_configs then begin
                  Atomic.decr global_count;
                  exhausted := true;
                  Metrics.incr m_truncations;
                  None
                end
                else begin
                  Metrics.incr m_admitted;
                  let id = !count in
                  incr count;
                  Hashtbl.add ids key id;
                  if id >= Array.length !recs then begin
                    let bigger =
                      Array.make (2 * Array.length !recs)
                        { succs = []; complete = false; mask = 0; undecided = [] }
                    in
                    Array.blit !recs 0 bigger 0 (Array.length !recs);
                    recs := bigger;
                    let bigger_k = Array.make (2 * Array.length !keys) "" in
                    Array.blit !keys 0 bigger_k 0 (Array.length !keys);
                    keys := bigger_k
                  end;
                  !keys.(id) <- key;
                  worklist := (id, config, mask) :: !worklist;
                  incr wl_len;
                  Metrics.gauge_max g_frontier_peak !wl_len;
                  Some id
                end
          in
          let violation = ref None in
          let error = ref None in
          let snap () =
            ( Array.sub !keys 0 !count,
              Array.sub !recs 0 !count,
              !worklist,
              !exhausted )
          in
          (try
             Metrics.time t_worker (fun () ->
                 List.iter (fun (c, m) -> ignore (visit c m)) bucket;
                 let rec drain () =
                   Pause.point pause i snap;
                   if not (Atomic.get stop) then
                     match !worklist with
                     | [] -> ()
                     | (id, config, mask) :: rest ->
                         worklist := rest;
                         decr wl_len;
                         let is_complete, mask, undecided, succ_pairs =
                           expand_crash_node ~n ~policy ~drop_on_crash
                             ~base_mask ~crash_budget ~pattern_of ~check config
                             mask
                         in
                         if is_complete then Metrics.incr m_terminals;
                         let succs =
                           List.filter_map (fun (c, m) -> visit c m) succ_pairs
                         in
                         !recs.(id) <-
                           { succs; complete = is_complete; mask; undecided };
                         drain ()
                 in
                 drain ())
           with
          | Unsafe (decisions, reason) ->
              violation := Some (decisions, reason);
              Atomic.set stop true
          | e -> error := Some (Printexc.to_string e));
          Pause.exit pause i snap;
          ( Array.sub !keys 0 !count,
            Array.sub !recs 0 !count,
            !exhausted,
            !violation,
            !count,
            !error )
        in
        (* merge the published worker snapshots (plus the inline-
           expanded root) into a sequential-format graph: global
           dense ids over the union of the per-worker key spaces,
           expanded records preferred over pending duplicates, and
           every node expanded nowhere re-queued on the merged
           worklist.  Resume continues on [explore_with_crashes]. *)
        let root_key = E.key ~extra:root_mask root in
        let merge slots =
          let snaps =
            Array.to_list slots |> List.filter_map (fun s -> s)
          in
          let gids : (E.key, int) Hashtbl.t = Hashtbl.create 65_536 in
          Hashtbl.add gids root_key 0;
          let gcount = ref 1 in
          let ex = ref false in
          List.iter
            (fun ((keys : E.key array), _, _, exh) ->
              if exh then ex := true;
              Array.iter
                (fun key ->
                  if not (Hashtbl.mem gids key) then begin
                    Hashtbl.add gids key !gcount;
                    incr gcount
                  end)
                keys)
            snaps;
          let count = !gcount in
          let recs_g = Array.make count empty_rec in
          let filled = Array.make count false in
          filled.(0) <- true;
          recs_g.(0) <-
            {
              succs =
                List.filter_map
                  (fun (c, m) -> Hashtbl.find_opt gids (E.key ~extra:m c))
                  root_succs;
              complete = root_complete;
              mask = root_mask;
              undecided = root_undecided;
            };
          List.iter
            (fun ((keys : E.key array), (recs_l : node_rec array), wl, _) ->
              let expanded = Array.make (Array.length keys) true in
              List.iter (fun (lid, _, _) -> expanded.(lid) <- false) wl;
              Array.iteri
                (fun lid key ->
                  if expanded.(lid) then begin
                    let gid = Hashtbl.find gids key in
                    if not filled.(gid) then begin
                      filled.(gid) <- true;
                      let r = recs_l.(lid) in
                      recs_g.(gid) <-
                        {
                          r with
                          succs =
                            List.map
                              (fun s -> Hashtbl.find gids keys.(s))
                              r.succs;
                        }
                    end
                  end)
                keys)
            snaps;
          let queued = Array.make count false in
          let wl_g = ref [] in
          List.iter
            (fun ((keys : E.key array), _, wl, _) ->
              List.iter
                (fun (lid, config, mask) ->
                  let gid = Hashtbl.find gids keys.(lid) in
                  if (not filled.(gid)) && not queued.(gid) then begin
                    queued.(gid) <- true;
                    wl_g := (gid, config, mask) :: !wl_g
                  end)
                wl)
            snaps;
          let terminals = ref 0 in
          Array.iteri
            (fun gid (r : node_rec) ->
              if filled.(gid) && r.complete then incr terminals)
            recs_g;
          Marshal.to_string
            ((gids, recs_g, count, !terminals, !ex, !wl_g) : crash_snap)
            []
        in
        let coordinator =
          spawn_coordinator ~ckpt ~pause
            ~items:(fun () -> Atomic.get global_count)
            ~merge
            ~on_interrupt:(fun () ->
              interrupted := true;
              Atomic.set stop true)
        in
        let handles =
          Array.to_list
            (Array.mapi
               (fun i bucket -> Domain.spawn (worker ~pause:(Some pause) i bucket))
               buckets)
        in
        let joined = List.map Domain.join handles in
        stop_coordinator coordinator;
        (* supervision: refund the dead worker's tickets, log it in
           the ledger, re-run its bucket in this domain *)
        let results =
          List.mapi
            (fun i result ->
              match result with
              | _, _, _, _, admitted, Some err ->
                  ignore (Atomic.fetch_and_add global_count (-admitted));
                  Checkpoint.note_failure ckpt ~worker:i ~error:err
                    ~requeued:(List.length buckets.(i));
                  let (_, _, _, _, _, rerun_err) as rerun =
                    worker ~pause:None i buckets.(i) ()
                  in
                  (match rerun_err with
                  | Some err2 ->
                      failwith
                        (Printf.sprintf "explorer worker %d failed twice: %s"
                           i err2)
                  | None -> ());
                  rerun
              | ok -> ok)
            joined
        in
        let results =
          List.map (fun (k, r, ex, v, _, _) -> (k, r, ex, v)) results
        in
        let violation = List.find_map (fun (_, _, _, v) -> v) results in
        (match violation with
        | Some (decisions, reason) -> Safety_violation { decisions; reason }
        | None ->
            (* merge: global dense ids over the union of per-domain
               graphs; duplicated nodes expand identically, so the
               first copy wins *)
            let gids : (E.key, int) Hashtbl.t = Hashtbl.create 65_536 in
            let gcount = ref 0 in
            let exhausted = ref !interrupted in
            Hashtbl.add gids root_key 0;
            incr gcount;
            List.iter
              (fun ((keys : E.key array), _, ex, _) ->
                if ex then exhausted := true;
                Array.iter
                  (fun key ->
                    if not (Hashtbl.mem gids key) then begin
                      Hashtbl.add gids key !gcount;
                      incr gcount
                    end)
                  keys)
              results;
            let count = !gcount in
            let recs =
              Array.make count
                { succs = []; complete = false; mask = 0; undecided = [] }
            in
            let filled = Array.make count false in
            let terminals = ref 0 in
            List.iter
              (fun ((keys : E.key array), (local : node_rec array), _, _) ->
                Array.iteri
                  (fun lid key ->
                    let gid = Hashtbl.find gids key in
                    if not filled.(gid) then begin
                      filled.(gid) <- true;
                      let r = local.(lid) in
                      recs.(gid) <-
                        {
                          r with
                          succs =
                            List.map
                              (fun s ->
                                (* succ ids are local to the same domain *)
                                Hashtbl.find gids keys.(s))
                              r.succs;
                        };
                      if r.complete then incr terminals
                    end)
                  keys)
              results;
            (* the root, expanded inline above *)
            let root_succ_ids =
              List.filter_map
                (fun (c, m) ->
                  Hashtbl.find_opt gids (E.key ~extra:m c))
                root_succs
            in
            filled.(0) <- true;
            recs.(0) <-
              {
                succs = root_succ_ids;
                complete = root_complete;
                mask = root_mask;
                undecided = root_undecided;
              };
            if root_complete then incr terminals;
            let stats =
              {
                configs_visited = count;
                terminal_runs = !terminals;
                budget_exhausted = !exhausted;
              }
            in
            record_run_stats stats;
            (* same honesty rule as the sequential driver: a truncated
               graph admits no all-paths-decide claim *)
            if !exhausted then Indeterminate stats
            else
              match classify_graph ~count ~recs with
              | Some (mask, undecided_correct) ->
                  Stuck
                    {
                      crashed = mask_to_list ~n mask;
                      undecided_correct;
                      stats;
                    }
              | None -> All_paths_decide stats)

  let reachable_decision_values ?(max_configs = 300_000) ?(policy = Per_sender)
      ~n ~inputs ~crash_budget () =
    let seen = ref [] in
    let note decisions =
      List.iter
        (fun (_, v, _) -> if not (List.mem v !seen) then seen := v :: !seen)
        decisions
    in
    (match
       explore_with_crashes ~max_configs ~policy ~n ~inputs ~crash_budget
         ~check:(fun decisions ->
           note decisions;
           None)
         ()
     with
    | All_paths_decide _ | Stuck _ | Indeterminate _ -> ()
    | Safety_violation _ -> ());
    List.sort compare !seen

  let reachable_decision_values_par ?domains ?(max_configs = 300_000)
      ?(policy = Per_sender) ~n ~inputs ~crash_budget () =
    (* [check] runs concurrently on several domains: the accumulator
       is mutex-protected.  Parity with the sequential driver follows
       from [explore_with_crashes_par] enumerating the same reachable
       node set (asserted in test/test_explore.ml). *)
    let lock = Mutex.create () in
    let seen = ref [] in
    let note decisions =
      Mutex.lock lock;
      List.iter
        (fun (_, v, _) -> if not (List.mem v !seen) then seen := v :: !seen)
        decisions;
      Mutex.unlock lock
    in
    (match
       explore_with_crashes_par ?domains ~max_configs ~policy ~n ~inputs
         ~crash_budget
         ~check:(fun decisions ->
           note decisions;
           None)
         ()
     with
    | All_paths_decide _ | Stuck _ | Indeterminate _ -> ()
    | Safety_violation _ -> ());
    List.sort compare !seen
end
