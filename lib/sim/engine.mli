(** The run executor: drives an algorithm under an adversary and a
    failure pattern, producing a {!Run.t}.

    The engine owns the paper's system-level objects — configurations
    (local states + message buffers), the step relation, time as step
    index — and enforces the model's rules:

    - a step atomically receives a chosen subset of the process's
      buffer, queries the failure detector (if the model has one),
      transitions, and sends messages;
    - a process takes no step with index greater than its crash time;
    - messages can only be dropped if their sender has crashed
      (the last-step-omission allowance);
    - output values are write-once.

    Configurations are immutable, so run prefixes can be forked —
    which is how the exhaustive {!Explorer} and the Lemma 11/12 run
    surgery work. *)

module Make (A : Algorithm.S) : sig
  type config

  exception Invalid_action of string
  (** The adversary proposed an action the model forbids. *)

  exception Double_decision of Pid.t
  (** The algorithm tried to overwrite a decided output with a
      different value — an algorithm bug, not a model condition. *)

  val init : n:int -> inputs:Value.t array -> config
  (** Initial configuration C{_0}: every process in its initial state,
      all buffers empty.  @raise Invalid_argument if the input vector
      length differs from [n]. *)

  val init_explore :
    ?reduction:Canon.reduction -> n:int -> inputs:Value.t array -> unit ->
    config
  (** Like {!init} but in exploration mode: the configuration does not
      accumulate an event log ({!finish} then produces a run whose
      {!Trace.t} has empty step rows), so forked configurations stay
      small.  {!events} returns [[]] and
      {!finish} produces a run with an empty event list; everything
      else behaves identically except for one semantic choice: a batch
      of deliveries in a single step is folded into [A.step] in
      canonical (sender, payload) order rather than message-id order.
      Message ids encode one particular send interleaving, so under
      an id-order fold two configurations equal under {!key} could
      step to configurations that are not — the visited set of a
      keyed search would then depend on traversal order.  With the
      canonical fold, successor keys are a function of the
      configuration key alone, which is what makes {!Explorer}'s
      deduplication sound and its sequential and parallel drivers
      agree exactly.  This is what the {!Explorer} forks by the
      million.

      When [reduction] is a symmetry mode, the configuration
      additionally applies [A.canon] to every produced local state and
      [A.canon_message] to every sent payload before interning (and
      stores the canonical payload), so representation-equal states
      and messages share one interned id; pass the same [reduction] to
      {!key}. *)

  val time : config -> int
  val n : config -> int
  val state_of : config -> Pid.t -> A.state
  val decision_of : config -> Pid.t -> Value.t option
  val decisions : config -> (Pid.t * Value.t * int) list
  val pending : config -> A.message Envelope.t list
  val events : config -> Event.t list
  (** Chronological event log of the prefix executed so far
      (empty in exploration mode). *)

  val steps_taken : config -> Pid.t -> int
  (** Number of steps the process has executed, maintained
      incrementally — O(1), never a rescan of the event log. *)

  val inbox : config -> Pid.t -> (int * Pid.t) list
  (** [(id, src)] of the pending messages addressed to a process, in
      sending order — served from a per-destination index maintained
      by {!apply}, O(|buffer(p)|) rather than O(|pending|). *)

  val observe : pattern:Failure_pattern.t -> config -> Adversary.obs

  val forge_pool : n:int -> inputs:Value.t array -> A.message list
  (** The Byzantine forge pool of this system:
      [A.forge_pool ~n ~values:(Fault_model.forge_values inputs)].  A
      pure function of its arguments, so the explorer, the fuzz
      adversary and replay agree on the indices recorded in
      schedules. *)

  val apply :
    ?fd:Fd_view.oracle -> pattern:Failure_pattern.t -> config ->
    Adversary.action -> config option
  (** Execute one adversary action.  [None] on [Halt].  [Forge] is
      {e not} gated on the failure pattern (replays run under a
      different pattern than the generating trial); budget discipline
      is the generating adversary's obligation.
      @raise Invalid_action if the action violates the model,
      @raise Double_decision on a write-once violation. *)

  val omit : config -> int list -> config
  (** Remove pending messages without the crashed-sender gate of
      [Drop]: the mobile model's transient omission, where a healthy
      sender's messages for one round are lost.  Used by the
      {!Explorer} under [Fault_model.Mobile]; deliberately not an
      {!Adversary.action}, so crash-model adversaries cannot reach it.
      @raise Invalid_action on an empty list or a non-pending id. *)

  val run :
    ?max_steps:int -> ?fd:Fd_view.oracle ->
    n:int -> inputs:Value.t array -> pattern:Failure_pattern.t ->
    Adversary.t -> Run.t
  (** Drive the adversary from C{_0} until it halts or [max_steps]
      steps (default 100_000) have executed. *)

  val run_full :
    ?max_steps:int -> ?fd:Fd_view.oracle ->
    n:int -> inputs:Value.t array -> pattern:Failure_pattern.t ->
    Adversary.t -> Run.t * config
  (** Like {!run} but also returns the final configuration, so that
      callers can inspect final local states (e.g. extract the
      operation logs of a register emulation). *)

  val finish : config -> pattern:Failure_pattern.t -> Run.status -> Run.t
  (** Package an explicitly driven prefix as a {!Run.t} (used by the
      explorer and by run-surgery code that calls {!apply} itself);
      inputs are recovered from the initial configuration. *)

  type key = string
  (** Compact canonical key of a configuration: local states and
      message payloads are interned to dense integers in the global
      {!Ksa_prim.Intern} registries (shared across functor instances,
      substrates and domains — the registries are mutex-protected),
      and the key is the exact packed sequence of those integers.
      Equality of keys therefore holds {e iff} the semantic cores are
      structurally equal: no hash collision can conflate two distinct
      configurations, unlike a truncated digest. *)

  val key : ?crashed:int -> ?reduction:Canon.reduction -> config -> key
  (** The single reduction-parameterized key builder.  Always covers
      the semantic core of a configuration: local states, decided
      outputs and the multiset of undelivered (src, dst, payload)
      triples — deliberately excluding time and message ids, so that
      schedule-permuted but behaviourally identical configurations
      collide.  [crashed] is the crash explorer's crashed-set bitmask
      (default [0]).

      With [~reduction:No_reduction] (the default) the key is exact —
      byte-identical to the pre-reduction layout.  With a symmetry
      mode it is the serialized {!Canon.canonical} orbit
      representative: crashed processes' inert local states and
      undeliverable inbound messages are elided, and fully-unobservable
      ("movable") crashed processes are identified up to relabelling.
      Only meaningful on configurations built with the same
      [reduction] via {!init_explore}.  Sound for state-space
      deduplication only when future behaviour is time-independent: no
      failure detector and no crash times later than 0.  The
      {!Explorer} checks these conditions. *)

  val key_equal : key -> key -> bool
  val key_hash : key -> int

  val sends_between : config -> config -> int
  (** Destination-pid bitmask of the messages sent by the step that
      produced the second configuration from the first (which must be
      its immediate predecessor) — the [sends] mask of a
      {!Canon.Action.t}. *)

  val delivery_signature : config -> int list -> int list
  (** Content signature of a delivery batch (message ids addressed to
      one process): sorted [(src, payload id)] pairs packed as ints,
      stable across message-id renumbering — the representation of
      delivery actions in the explorer's DPOR sleep sets.
      @raise Invalid_action if an id is not pending. *)
end
