type t = {
  time : int;
  pid : Pid.t;
  delivered : (int * Pid.t) list;
  sent : (int * Pid.t) list;
  decision : Value.t option;
  state_id : int;
}

let pp ppf e =
  let pp_ref ppf (id, q) = Format.fprintf ppf "#%d(%a)" id Pid.pp q in
  Format.fprintf ppf "t%d %a rcv[%a] snd[%a]%a" e.time Pid.pp e.pid
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_ref)
    e.delivered
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_ref)
    e.sent
    (fun ppf -> function
      | None -> ()
      | Some v -> Format.fprintf ppf " DECIDE %a" Value.pp v)
    e.decision
