(** One step of a run, as recorded in a trace.

    Payloads are not stored here — events reference messages by id, so
    a trace is payload-agnostic and two runs of different algorithms
    can be compared structurally (who heard from whom, who decided
    when).  This is all the information the paper's run-level
    predicates ((dec-D), (dec-D̄), indistinguishability-until-decision)
    need. *)

type t = {
  time : int;  (** Step index; the i-th step of the run occurs at time i (1-based). *)
  pid : Pid.t;  (** The process that took the step. *)
  delivered : (int * Pid.t) list;  (** (message id, sender) received in this step. *)
  sent : (int * Pid.t) list;  (** (message id, recipient) sent in this step. *)
  decision : Value.t option;  (** [Some v] if the process decided in this step. *)
  state_id : int;
      (** Interned id of the post-step local state (from the shared
          {!Ksa_prim.Intern.states} registry).  Id equality holds iff
          the states are structurally equal — the registry resolves
          hash collisions with structural equality — so equal id
          sequences mean {e exactly} equal state sequences: the
          operational form of the paper's indistinguishability (until
          decision) of runs (Definition 2), with no collision
          caveat. *)
}

val pp : Format.formatter -> t -> unit
