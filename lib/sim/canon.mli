(** Reduction layer: symmetry orbit keys and DPOR delivery actions.

    Pure integer/array arithmetic over the interned rows of a
    configuration — no dependency on any algorithm.  {!Engine.key}
    calls {!canonicalize} + {!serialize} when a symmetry reduction is
    requested; the explorer's sleep sets are lists of {!Action.t}. *)

(** How aggressively the explorers collapse the state space.

    - [No_reduction]: exact keys — every distinct interned
      configuration is admitted separately (the pre-reduction
      behaviour, byte-identical keys included).
    - [Symmetry]: orbit keys — configurations equal up to relabelling
      of {e movable} processes (crashed, no observable pending
      message) share one key, crashed processes' inert local states
      and undeliverable inbound messages are elided, and the
      algorithm's [canon]/[canon_message] hooks normalize local state
      and payload representations as they are produced.
    - [Symmetry_por]: [Symmetry] plus DPOR sleep sets over delivery
      actions in the crash-free explorer (sleep sets are inert in the
      crash drivers, where pruning transitions would break the Stuck
      classification — see DESIGN.md). *)
type reduction = No_reduction | Symmetry | Symmetry_por

val reduction_to_string : reduction -> string
val reduction_of_string : string -> (reduction, string) result
val all_reductions : reduction list

(** {1 Packed pending triples}

    A pending message packs into one int: src in bits 51..61, dst in
    bits 40..50, payload id in bits 0..39. *)

val pack_triple : int -> int -> int -> int
val payload_mask : int
val triple_src : int -> int
val triple_dst : int -> int
val triple_payload : int -> int

val triple_content : int -> int
(** [(src, payload)] with the destination dropped: the content
    signature of one delivered message, stable across message-id
    renumbering. *)

(** Delivery actions, the alphabet of the DPOR sleep sets.  Two
    actions commute iff their stepping pids differ {e and} neither
    sends a message to the other's stepper: the explorer's delivery
    policies offer whole current inbox buckets, so a send to a pid
    replaces that pid's offered batches — pid-distinctness alone
    would let the sleep sets prune interleavings whose covering
    permutation does not exist in the policy-restricted tree. *)
module Action : sig
  type t = {
    pid : int;  (** the stepping process *)
    deliveries : int list;
        (** sorted {!triple_content} signatures of the delivered batch *)
    sends : int;
        (** destination-pid bitmask of the messages the action's
            execution sends ([0] until executed; not part of the
            action's identity — at a fixed configuration the sends
            are a function of (pid, deliveries)) *)
  }

  val make : pid:int -> deliveries:int list -> sends:int -> t

  val with_sends : t -> int -> t
  (** The same action with its send mask recorded (used once the
      successor configuration is known). *)

  val equal : t -> t -> bool
  (** Identity over [(pid, deliveries)]; [sends] is derived. *)

  val compare : t -> t -> int

  val independent : t -> t -> bool
  (** [independent a b] iff executing [a] then [b] reaches the same
      configuration (under {!Engine.key}) as [b] then [a], {e and}
      both orders exist in the policy-restricted transition system:
      distinct stepping pids, and neither action's recorded sends
      target the other's stepper. *)

  val digest : t list -> string
  (** Exact (collision-free) serialization of a sleep set, appended to
      dedup keys so a configuration re-reached under a different sleep
      set is re-explored ("sleep-in-key"). *)
end

(** {1 Process-permutation symmetry} *)

(** The interned rows of a configuration under a crashed-set mask. *)
type rows = {
  n : int;
  crashed : int;  (** bitmask of crashed pids *)
  state_ids : int array;  (** interned local-state id per pid *)
  decided : int option array;  (** decided value per pid *)
  triples : int array;  (** packed (src, dst, payload) triples, any order *)
}

val movable : rows -> int list
(** Crashed pids with no pending live-destination message naming them
    as source: nothing about their identity is observable any more
    except their decided output, so they may be relabelled freely
    among themselves. *)

(** The orbit-representative core of a configuration. *)
type canonical = {
  retained : int array;
      (** sorted pending triples with a live destination *)
  row_ids : int array;  (** state id per pid, [-1] for crashed pids *)
  fixed_decided : (int * int) list;
      (** (pid, value) outputs of non-movable pids, pid-ascending *)
  movable_decided : int list;
      (** sorted value multiset of the movable pids' outputs *)
  movable_pids : int list;  (** the movable pids, ascending *)
  perm : int array;
      (** witnessing permutation: [perm.(p)] is the slot pid [p]
          occupies in the representative; identity outside the movable
          set *)
}

val permute_rows : int array -> rows -> rows
(** [permute_rows perm rows] relabels every pid [p] as [perm.(p)] in
    the crashed mask, state rows, decided rows and triples. *)

val canonicalize : rows -> canonical
(** Orbit representative + witness.  Sound by construction: only
    movable pids are reordered, and only their (pid ↛ value) binding
    is forgotten — the k-agreement oracle is invariant under it. *)

val canonical_equal : canonical -> canonical -> bool
(** Equality of the representative cores (the witness [perm] is not
    compared — orbit-equal inputs produce different witnesses). *)

val serialize : crashed:int -> canonical -> string
(** Exact byte serialization of the core; equal iff
    {!canonical_equal}.  The leading tag keeps reduced keys disjoint
    from unreduced ones. *)
