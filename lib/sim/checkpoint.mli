(** Durable campaign checkpoints: periodic snapshots of explorer and
    fuzzer state, written crash-safely, validated on load, and
    carrying everything a resumed campaign needs to report
    bit-identical verdicts and stats.

    A checkpoint file is one {!Ksa_prim.Durable} framed record (magic
    ["KSACKPT1"], CRC-32 over the body).  The body holds the campaign
    {e kind} (["explore"], ["explore-crash"], ["fuzz"]), a caller
    {e fingerprint} of the campaign parameters, the worker-error
    {e ledger}, dumps of both global interner registries, and the
    driver's opaque marshalled payload.  Interner dumps matter
    because configurations and dedup keys embed interned ids: resume
    first re-establishes the dumped id assignment
    ({!restore_interners}), then hands the payload back to the same
    driver.

    Loading never raises: truncation, bit flips, a wrong magic or an
    unsupported version each yield an [Error] naming the path, and
    callers fall back to a fresh campaign. *)

type policy = {
  every_items : int;  (** write after this many new work items … *)
  every_seconds : float;  (** … or after this much monotonic time *)
}

val default_policy : policy
(** Time-based: every 5 seconds, no item threshold. *)

type sink = {
  path : string;
  kind : string;
  fingerprint : string;
  policy : policy;
}
(** Where and how a campaign checkpoints.  [fingerprint] should
    encode every parameter that shapes the search (algorithm, n, k,
    budgets, seed, policy…): resume refuses a checkpoint whose
    fingerprint differs, since its state describes a different
    campaign. *)

type ledger_entry = {
  worker : int;  (** worker (domain) index within the campaign *)
  error : string;  (** the caught exception, printed *)
  requeued : int;  (** work items handed back for re-execution *)
}

(** {1 Reading} *)

type t
(** A loaded checkpoint. *)

val load : path:string -> (t, string) result
val kind : t -> string
val fingerprint : t -> string
val ledger : t -> ledger_entry list
val payload : t -> string

val restore_interners : t -> (unit, string) result
(** Re-establish the dumped interner id assignment in this process —
    call before unmarshalling the payload.  Succeeds in a fresh
    process (ids re-assigned in dump order) and in the writing
    process (assignment already in force); an incompatible live
    assignment is an [Error]. *)

(** {1 Writing: the campaign-side controller}

    One [ctl] accompanies one campaign run.  Drivers call {!tick} at
    safepoints with an item count and a snapshot thunk; the thunk is
    only evaluated when the sink's policy says a write is due.  All
    operations are thread-safe. *)

type ctl

val ctl :
  ?sink:sink ->
  ?interrupt:(unit -> bool) ->
  ?ledger:ledger_entry list ->
  unit ->
  ctl
(** [sink] absent → {!tick}/{!flush} are no-ops; [interrupt] absent →
    {!interrupted} is always false.  [ledger] seeds the error ledger
    (carried over from a resumed checkpoint). *)

val engaged : ctl -> bool
(** Whether the controller can ever act (has a sink or an interrupt
    poll) — parallel drivers skip their coordination machinery
    otherwise. *)

val interrupted : ctl -> bool
(** Polls the interrupt; latches on first [true]. *)

val due : ctl -> items:int -> bool
(** Whether {!tick} would write now — lets parallel drivers pause
    workers only when a write will actually happen. *)

val tick : ctl -> items:int -> (unit -> string) -> unit
(** Write a checkpoint if the policy thresholds are met.  Write
    failures are reported on stderr, never raised: a failing
    checkpoint must not abort the campaign it protects. *)

val flush : ctl -> (unit -> string) -> unit
(** Unconditional write (used for the final checkpoint on
    interruption), same error containment as {!tick}. *)

val note_failure : ctl -> worker:int -> error:string -> requeued:int -> unit
(** Record a supervised worker failure in the ledger and the
    [campaign.worker.failures] / [campaign.requeues] metrics. *)

val ledger_of : ctl -> ledger_entry list
(** Current ledger, oldest first. *)
