let header = "# ksa schedule v1"

let schedule_to_string descs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (d : Replay.step_desc) ->
      Buffer.add_string buf (string_of_int d.pid);
      Buffer.add_char buf ':';
      List.iter
        (fun (dl : Replay.delivery) ->
          Buffer.add_string buf (Printf.sprintf " %d.%d" dl.src dl.seq))
        d.deliver;
      Buffer.add_char buf '\n')
    descs;
  Buffer.contents buf

let parse_delivery token =
  match String.split_on_char '.' token with
  | [ src; seq ] -> (
      match (int_of_string_opt src, int_of_string_opt seq) with
      | Some src, Some seq when src >= 0 && seq >= 1 ->
          Ok { Replay.src; seq }
      | _, _ -> Error (Printf.sprintf "bad delivery %S" token))
  | _ -> Error (Printf.sprintf "bad delivery %S" token)

let parse_line lineno line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "line %d: missing ':'" lineno)
  | Some i -> (
      let pid_str = String.trim (String.sub line 0 i) in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt pid_str with
      | None -> Error (Printf.sprintf "line %d: bad pid %S" lineno pid_str)
      | Some pid ->
          let tokens =
            List.filter
              (fun t -> t <> "")
              (String.split_on_char ' ' (String.trim rest))
          in
          let rec parse acc = function
            | [] -> Ok { Replay.pid; deliver = List.rev acc }
            | t :: rest -> (
                match parse_delivery t with
                | Ok d -> parse (d :: acc) rest
                | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
          in
          parse [] tokens)

let schedule_of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || String.length trimmed > 0 && trimmed.[0] = '#' then
          go (lineno + 1) acc rest
        else (
          match parse_line lineno trimmed with
          | Ok d -> go (lineno + 1) (d :: acc) rest
          | Error _ as e -> e)
  in
  go 1 [] lines

let save_schedule ~path descs =
  Ksa_prim.Durable.write_atomic ~path (schedule_to_string descs)

(* a Sys_error usually already names the file ("…: No such file or
   directory"); prepend the path only when the system message omits it,
   so callers can always tell which file failed *)
let sys_error_with_path path msg =
  let contains_path =
    path <> ""
    && String.length msg >= String.length path
    &&
    let rec scan i =
      i + String.length path <= String.length msg
      && (String.sub msg i (String.length path) = path || scan (i + 1))
    in
    scan 0
  in
  Error (if contains_path then msg else Printf.sprintf "%s: %s" path msg)

let load_schedule ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> sys_error_with_path path e
  | exception End_of_file -> sys_error_with_path path "truncated read"
  | contents -> (
      match schedule_of_string contents with
      | Ok _ as ok -> ok
      | Error e -> sys_error_with_path path e)

let schedule_of_run run = Replay.project ~keep:(fun _ -> true) run

let pp_events ppf run =
  List.iter (fun ev -> Format.fprintf ppf "%a@." Event.pp ev) run.Run.events
