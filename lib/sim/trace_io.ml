let header = "# ksa schedule v1"
let model_prefix = "# model: "

let schedule_to_string ?(model = Fault_model.Crash) descs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  (* crash schedules keep the pre-model byte layout; only the other
     models stamp their tag, so old files parse as crash *)
  (match model with
  | Fault_model.Crash -> ()
  | m ->
      Buffer.add_string buf model_prefix;
      Buffer.add_string buf (Fault_model.to_string m);
      Buffer.add_char buf '\n');
  List.iter
    (fun (d : Replay.step_desc) ->
      Buffer.add_string buf (string_of_int d.pid);
      Buffer.add_char buf ':';
      List.iter
        (fun (dl : Replay.delivery) ->
          match dl.forged with
          | None -> Buffer.add_string buf (Printf.sprintf " %d.%d" dl.src dl.seq)
          | Some alt ->
              Buffer.add_string buf
                (Printf.sprintf " %d.%d!%d" dl.src dl.seq alt))
        d.deliver;
      Buffer.add_char buf '\n')
    descs;
  Buffer.contents buf

let parse_delivery token =
  let body, forged =
    match String.index_opt token '!' with
    | None -> (token, Ok None)
    | Some i -> (
        let alt = String.sub token (i + 1) (String.length token - i - 1) in
        ( String.sub token 0 i,
          match int_of_string_opt alt with
          | Some a when a >= 0 -> Ok (Some a)
          | Some _ | None ->
              Error (Printf.sprintf "bad forge index in %S" token) ))
  in
  match forged with
  | Error _ as e -> e
  | Ok forged -> (
      match String.split_on_char '.' body with
      | [ src; seq ] -> (
          match (int_of_string_opt src, int_of_string_opt seq) with
          | Some src, Some seq when src >= 0 && seq >= 1 ->
              Ok { Replay.src; seq; forged }
          | _, _ -> Error (Printf.sprintf "bad delivery %S" token))
      | _ -> Error (Printf.sprintf "bad delivery %S" token))

let parse_line lineno line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "line %d: missing ':'" lineno)
  | Some i -> (
      let pid_str = String.trim (String.sub line 0 i) in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt pid_str with
      | None -> Error (Printf.sprintf "line %d: bad pid %S" lineno pid_str)
      | Some pid ->
          let tokens =
            List.filter
              (fun t -> t <> "")
              (String.split_on_char ' ' (String.trim rest))
          in
          let rec parse acc = function
            | [] -> Ok { Replay.pid; deliver = List.rev acc }
            | t :: rest -> (
                match parse_delivery t with
                | Ok d -> parse (d :: acc) rest
                | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
          in
          parse [] tokens)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let parse_schedule s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno model acc = function
    | [] -> Ok (model, List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if has_prefix ~prefix:model_prefix trimmed then (
          let tag =
            String.trim
              (String.sub trimmed (String.length model_prefix)
                 (String.length trimmed - String.length model_prefix))
          in
          match Fault_model.of_string tag with
          | Ok m -> go (lineno + 1) m acc rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
        else if
          trimmed = "" || (String.length trimmed > 0 && trimmed.[0] = '#')
        then go (lineno + 1) model acc rest
        else (
          match parse_line lineno trimmed with
          | Ok d -> go (lineno + 1) model (d :: acc) rest
          | Error _ as e -> e)
  in
  match go 1 Fault_model.Crash [] lines with
  | Error _ as e -> e
  | Ok (model, descs) ->
      (* a crash-tagged (or untagged) schedule must not smuggle forged
         payloads in: replaying them under crash semantics would
         silently change what the schedule means *)
      let forged_count =
        List.fold_left
          (fun acc (d : Replay.step_desc) ->
            List.fold_left
              (fun acc (dl : Replay.delivery) ->
                if dl.forged = None then acc else acc + 1)
              acc d.deliver)
          0 descs
      in
      if forged_count > 0 && Fault_model.tag model = "crash" then
        Error
          (Printf.sprintf
             "schedule carries %d forged payload(s) but declares model \
              %s; refusing to replay them under crash semantics (the \
              file is missing its '%s<model>' line)"
             forged_count (Fault_model.to_string model) model_prefix)
      else Ok (model, descs)

let check_expected ~expect model =
  match expect with
  | None -> Ok ()
  | Some m when Fault_model.tag m = Fault_model.tag model -> Ok ()
  | Some m ->
      Error
        (Printf.sprintf
           "schedule was recorded under model %s but replay requested \
            %s; cross-model replay is unsupported — pass --model %s"
           (Fault_model.to_string model) (Fault_model.to_string m)
           (Fault_model.to_string model))

let schedule_of_string ?expect s =
  match parse_schedule s with
  | Error _ as e -> e
  | Ok (model, descs) -> (
      match check_expected ~expect model with
      | Ok () -> Ok descs
      | Error _ as e -> e)

let schedule_model_of_string s =
  match parse_schedule s with Error _ as e -> e | Ok (model, _) -> Ok model

let save_schedule ?model ~path descs =
  Ksa_prim.Durable.write_atomic ~path (schedule_to_string ?model descs)

(* a Sys_error usually already names the file ("…: No such file or
   directory"); prepend the path only when the system message omits it,
   so callers can always tell which file failed *)
let sys_error_with_path path msg =
  let contains_path =
    path <> ""
    && String.length msg >= String.length path
    &&
    let rec scan i =
      i + String.length path <= String.length msg
      && (String.sub msg i (String.length path) = path || scan (i + 1))
    in
    scan 0
  in
  Error (if contains_path then msg else Printf.sprintf "%s: %s" path msg)

let load_schedule ?expect ~path () =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> sys_error_with_path path e
  | exception End_of_file -> sys_error_with_path path "truncated read"
  | contents -> (
      match schedule_of_string ?expect contents with
      | Ok _ as ok -> ok
      | Error e -> sys_error_with_path path e)

let schedule_of_run run = Replay.project ~keep:(fun _ -> true) run

let pp_events ppf run =
  List.iter (fun ev -> Format.fprintf ppf "%a@." Event.pp ev) run.Run.events
