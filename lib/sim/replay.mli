(** Replaying and splicing recorded runs.

    The proofs of Lemmas 11 and 12 build new runs by surgery: take the
    steps of the processes in D̄ from one run and the steps of the
    processes in D from another, delay all cross-partition messages,
    and argue the result is admissible.  To execute that surgery we
    re-run the algorithm under a {e replay adversary} that reproduces
    each process's recorded step sequence.

    Message identity across runs: recorded deliveries are stored as
    (sender, per-channel sequence number) rather than message ids.
    All adversaries in this library deliver each channel (src → dst)
    in send order, so the seq-th delivered message of a channel is the
    seq-th sent, and the descriptor transfers between runs as long as
    the sender goes through the same states — which is exactly the
    induction the lemmas perform. *)

type delivery = { src : Pid.t; seq : int; forged : int option }
(** The [seq]-th (1-based, in send order) message from [src] to the
    stepping process.  [forged] is [Some alt] when the recorded run
    delivered the message with its payload replaced by entry [alt] of
    the algorithm's forge pool (Byzantine model): the replay
    adversaries then emit an [Adversary.Forge] for the resolved
    message id immediately before the step, reproducing the corrupted
    payload.  [None] under the crash model. *)

type step_desc = { pid : Pid.t; deliver : delivery list }

val project : keep:(Pid.t -> bool) -> Run.t -> step_desc list
(** The step descriptors of the kept processes, in run order. *)

val interleave : step_desc list list -> Adversary.t
(** An adversary that replays several descriptor streams
    concurrently: at each point it executes the head of the first
    stream whose required messages are all available.  Halts when all
    streams are exhausted, or when no head is executable (splice
    mismatch — the resulting run will then not be decision-complete,
    which callers should treat as surgery failure). *)

val sequential : step_desc list list -> Adversary.t
(** Replays the streams one after the other (stream 2 starts when
    stream 1 is exhausted): the Lemma 12 pasting order. *)

val lenient : ?rest:Adversary.t -> step_desc list -> Adversary.t
(** Best-effort replay of a possibly ill-formed descriptor stream —
    the workhorse of greybox schedule mutation ({!Fuzz}), where
    spliced or perturbed schedules routinely reference messages the
    current run never sends.  Unlike {!sequential}, which halts at the
    first non-executable descriptor, [lenient] degrades per step: a
    descriptor for a crashed process is skipped, and each delivery is
    resolved independently with unresolvable ones silently omitted
    (stepping a process with a subset of its recorded receives is
    always engine-valid).  When the stream is exhausted, control
    passes to [rest] (default: halt) — replay-prefix-plus-random-tail
    is how a mutant both revisits its parent's territory and deepens
    past it. *)
