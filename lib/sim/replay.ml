type delivery = { src : Pid.t; seq : int; forged : int option }
type step_desc = { pid : Pid.t; deliver : delivery list }

let project ~keep run =
  (* per-channel delivered counters, keyed by (src, dst) *)
  let counts = Hashtbl.create 64 in
  let bump src dst =
    let key = (src, dst) in
    let c = Option.value ~default:0 (Hashtbl.find_opt counts key) + 1 in
    Hashtbl.replace counts key c;
    c
  in
  List.filter_map
    (fun (ev : Event.t) ->
      let deliveries =
        List.map
          (fun (id, src) ->
            (src, bump src ev.pid, List.assoc_opt id run.Run.forges))
          ev.delivered
      in
      if keep ev.pid then
        Some
          {
            pid = ev.pid;
            deliver =
              List.map (fun (src, seq, forged) -> { src; seq; forged })
                deliveries;
          }
      else None)
    run.Run.events

(* Tracks, per channel, the ids of all messages ever seen pending, in
   id (= send) order: the seq-th element is the seq-th sent message of
   the channel.  Ids are only appended (a message enters pending once). *)
module Channel_log = struct
  type t = (Pid.t * Pid.t, int list ref) Hashtbl.t (* ids, reversed *)

  let create () : t = Hashtbl.create 64

  let note (t : t) (obs : Adversary.obs) =
    List.iter
      (fun (m : Adversary.pending) ->
        let key = (m.src, m.dst) in
        let log =
          match Hashtbl.find_opt t key with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add t key l;
              l
        in
        if not (List.mem m.id !log) then log := m.id :: !log)
      obs.pending

  let nth_id (t : t) ~src ~dst ~seq =
    match Hashtbl.find_opt t (src, dst) with
    | None -> None
    | Some l -> List.nth_opt (List.rev !l) (seq - 1)
end

let executable log (obs : Adversary.obs) desc =
  let pending_ids =
    List.map (fun (m : Adversary.pending) -> m.id) obs.pending
  in
  let resolve { src; seq; forged } =
    match Channel_log.nth_id log ~src ~dst:desc.pid ~seq with
    | Some id when List.mem id pending_ids -> Some (id, forged)
    | Some _ | None -> None
  in
  let ids = List.map resolve desc.deliver in
  if List.for_all Option.is_some ids then Some (List.map Option.get ids)
  else None

(* A resolved step is one engine [Step] preceded by one [Forge] per
   delivery that recorded a forged payload: the adversary re-corrupts
   each message just before it is delivered, exactly reproducing the
   payloads the recorded run saw.  The queue in [make_adversary] feeds
   these to the engine one action at a time. *)
let actions_of_step pid resolved =
  let forges =
    List.filter_map
      (fun (id, forged) ->
        Option.map (fun alt -> Adversary.Forge { id; alt }) forged)
      resolved
  in
  forges @ [ Adversary.Step { pid; deliver = List.map fst resolved } ]

let make_adversary ~describe pick =
  let log = Channel_log.create () in
  let queue = ref [] in
  let next obs =
    match !queue with
    | a :: tl ->
        queue := tl;
        a
    | [] -> (
        Channel_log.note log obs;
        match pick log obs with
        | [] -> Adversary.Halt
        | a :: tl ->
            queue := tl;
            a)
  in
  { Adversary.describe; next }

let interleave streams =
  let queues = Array.of_list (List.map ref streams) in
  let pick log obs =
    let rec try_from i =
      if i >= Array.length queues then []
      else
        match !(queues.(i)) with
        | [] -> try_from (i + 1)
        | desc :: rest -> (
            match executable log obs desc with
            | Some resolved ->
                queues.(i) := rest;
                actions_of_step desc.pid resolved
            | None -> try_from (i + 1))
    in
    try_from 0
  in
  make_adversary ~describe:"replay-interleave" pick

(* Best-effort resolution for mutated schedules: each delivery is
   resolved independently, and the unresolvable ones are simply not
   delivered.  Stepping a process with a subset of its recorded
   receives is always engine-valid, so a mutant keeps as much of its
   parent's structure as the current run admits. *)
let resolve_subset log (obs : Adversary.obs) desc =
  let pending_ids =
    List.map (fun (m : Adversary.pending) -> m.id) obs.pending
  in
  List.filter_map
    (fun { src; seq; forged } ->
      match Channel_log.nth_id log ~src ~dst:desc.pid ~seq with
      | Some id when List.mem id pending_ids -> Some (id, forged)
      | Some _ | None -> None)
    desc.deliver
  |> List.sort_uniq compare

let lenient ?rest descs =
  let queue = ref descs in
  let pick log obs =
    let alive = Adversary.alive obs in
    let rec advance () =
      match !queue with
      | [] -> (
          match rest with
          | None -> []
          | Some (a : Adversary.t) -> [ a.next obs ])
      | desc :: tl ->
          queue := tl;
          if List.mem desc.pid alive then
            actions_of_step desc.pid (resolve_subset log obs desc)
          else advance ()
    in
    advance ()
  in
  make_adversary ~describe:"replay-lenient" pick

let sequential streams =
  let queues = ref streams in
  let pick log obs =
    let rec advance () =
      match !queues with
      | [] -> []
      | [] :: rest ->
          queues := rest;
          advance ()
      | (desc :: rest_stream) :: rest -> (
          match executable log obs desc with
          | Some resolved ->
              queues := rest_stream :: rest;
              actions_of_step desc.pid resolved
          | None -> [])
    in
    advance ()
  in
  make_adversary ~describe:"replay-sequential" pick
