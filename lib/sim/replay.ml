type delivery = { src : Pid.t; seq : int }
type step_desc = { pid : Pid.t; deliver : delivery list }

let project ~keep run =
  (* per-channel delivered counters, keyed by (src, dst) *)
  let counts = Hashtbl.create 64 in
  let bump src dst =
    let key = (src, dst) in
    let c = Option.value ~default:0 (Hashtbl.find_opt counts key) + 1 in
    Hashtbl.replace counts key c;
    c
  in
  List.filter_map
    (fun (ev : Event.t) ->
      let deliveries =
        List.map (fun (_, src) -> (src, bump src ev.pid)) ev.delivered
      in
      if keep ev.pid then
        Some
          {
            pid = ev.pid;
            deliver = List.map (fun (src, seq) -> { src; seq }) deliveries;
          }
      else None)
    run.Run.events

(* Tracks, per channel, the ids of all messages ever seen pending, in
   id (= send) order: the seq-th element is the seq-th sent message of
   the channel.  Ids are only appended (a message enters pending once). *)
module Channel_log = struct
  type t = (Pid.t * Pid.t, int list ref) Hashtbl.t (* ids, reversed *)

  let create () : t = Hashtbl.create 64

  let note (t : t) (obs : Adversary.obs) =
    List.iter
      (fun (m : Adversary.pending) ->
        let key = (m.src, m.dst) in
        let log =
          match Hashtbl.find_opt t key with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add t key l;
              l
        in
        if not (List.mem m.id !log) then log := m.id :: !log)
      obs.pending

  let nth_id (t : t) ~src ~dst ~seq =
    match Hashtbl.find_opt t (src, dst) with
    | None -> None
    | Some l -> List.nth_opt (List.rev !l) (seq - 1)
end

let executable log (obs : Adversary.obs) desc =
  let pending_ids =
    List.map (fun (m : Adversary.pending) -> m.id) obs.pending
  in
  let resolve { src; seq } =
    match Channel_log.nth_id log ~src ~dst:desc.pid ~seq with
    | Some id when List.mem id pending_ids -> Some id
    | Some _ | None -> None
  in
  let ids = List.map resolve desc.deliver in
  if List.for_all Option.is_some ids then Some (List.map Option.get ids)
  else None

let make_adversary ~describe pick =
  let log = Channel_log.create () in
  let next obs =
    Channel_log.note log obs;
    pick log obs
  in
  { Adversary.describe; next }

let interleave streams =
  let queues = Array.of_list (List.map ref streams) in
  let pick log obs =
    let rec try_from i =
      if i >= Array.length queues then Adversary.Halt
      else
        match !(queues.(i)) with
        | [] -> try_from (i + 1)
        | desc :: rest -> (
            match executable log obs desc with
            | Some ids ->
                queues.(i) := rest;
                Adversary.Step { pid = desc.pid; deliver = ids }
            | None -> try_from (i + 1))
    in
    try_from 0
  in
  make_adversary ~describe:"replay-interleave" pick

(* Best-effort resolution for mutated schedules: each delivery is
   resolved independently, and the unresolvable ones are simply not
   delivered.  Stepping a process with a subset of its recorded
   receives is always engine-valid, so a mutant keeps as much of its
   parent's structure as the current run admits. *)
let resolve_subset log (obs : Adversary.obs) desc =
  let pending_ids =
    List.map (fun (m : Adversary.pending) -> m.id) obs.pending
  in
  List.filter_map
    (fun { src; seq } ->
      match Channel_log.nth_id log ~src ~dst:desc.pid ~seq with
      | Some id when List.mem id pending_ids -> Some id
      | Some _ | None -> None)
    desc.deliver
  |> List.sort_uniq compare

let lenient ?rest descs =
  let queue = ref descs in
  let pick log obs =
    let alive = Adversary.alive obs in
    let rec advance () =
      match !queue with
      | [] -> (
          match rest with
          | None -> Adversary.Halt
          | Some (a : Adversary.t) -> a.next obs)
      | desc :: tl ->
          queue := tl;
          if List.mem desc.pid alive then
            Adversary.Step
              { pid = desc.pid; deliver = resolve_subset log obs desc }
          else advance ()
    in
    advance ()
  in
  make_adversary ~describe:"replay-lenient" pick

let sequential streams =
  let queues = ref streams in
  let pick log obs =
    let rec advance () =
      match !queues with
      | [] -> Adversary.Halt
      | [] :: rest ->
          queues := rest;
          advance ()
      | (desc :: rest_stream) :: rest -> (
          match executable log obs desc with
          | Some ids ->
              queues := rest_stream :: rest;
              Adversary.Step { pid = desc.pid; deliver = ids }
          | None -> Adversary.Halt)
    in
    advance ()
  in
  make_adversary ~describe:"replay-sequential" pick
