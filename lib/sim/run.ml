type status =
  | All_correct_decided
  | Halted_by_adversary
  | Hit_step_budget
  | No_enabled_process

type t = {
  status : status;
  n : int;
  inputs : Value.t array;
  pattern : Failure_pattern.t;
  events : Event.t list;
  trace : Trace.t;
  decisions : (Pid.t * Value.t * int) list;
  forges : (int * int) list;
      (* (message id, forge-pool index) of every Byzantine forge
         applied during the run, chronological; [] under crash runs *)
}

let decision_of t p =
  List.find_map (fun (q, v, _) -> if Pid.equal p q then Some v else None) t.decisions

let decided_values t =
  List.sort_uniq Value.compare (List.map (fun (_, v, _) -> v) t.decisions)

let distinct_decisions t = List.length (decided_values t)

let all_correct_decided t =
  List.for_all
    (fun p -> decision_of t p <> None)
    (Failure_pattern.correct t.pattern)

let decision_time t p =
  List.find_map (fun (q, _, tm) -> if Pid.equal p q then Some tm else None) t.decisions

let last_decision_time t ps =
  let times = List.map (decision_time t) ps in
  if List.exists Option.is_none times then None
  else Some (List.fold_left (fun acc x -> max acc (Option.get x)) 0 times)

let received_before_decision t p =
  let deadline = decision_time t p in
  List.fold_left
    (fun acc (ev : Event.t) ->
      if Pid.equal ev.pid p then
        let counts =
          match deadline with None -> true | Some d -> ev.time <= d
        in
        if counts then
          List.fold_left (fun acc (_, src) -> Pid.Set.add src acc) acc ev.delivered
        else acc
      else acc)
    Pid.Set.empty t.events

let receives_nothing_from_until t p ~from ~until =
  not
    (List.exists
       (fun (ev : Event.t) ->
         Pid.equal ev.pid p && ev.time <= until
         && List.exists (fun (_, src) -> List.mem src from) ev.delivered)
       t.events)

let steps_of t p = List.filter (fun (ev : Event.t) -> Pid.equal ev.pid p) t.events

let step_count t = List.length t.events

let message_count t =
  List.fold_left (fun acc (ev : Event.t) -> acc + List.length ev.sent) 0 t.events

let pp_status ppf = function
  | All_correct_decided -> Format.pp_print_string ppf "all-correct-decided"
  | Halted_by_adversary -> Format.pp_print_string ppf "halted"
  | Hit_step_budget -> Format.pp_print_string ppf "step-budget"
  | No_enabled_process -> Format.pp_print_string ppf "no-enabled-process"

let pp_summary ppf t =
  let pp_dec ppf (p, v, tm) =
    Format.fprintf ppf "%a=%a@%d" Pid.pp p Value.pp v tm
  in
  Format.fprintf ppf "run[%a] n=%d steps=%d msgs=%d decisions={%a} distinct=%d"
    pp_status t.status t.n (step_count t) (message_count t)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_dec)
    t.decisions (distinct_decisions t)
