(** Bounded exhaustive exploration of the schedule space (a small
    model checker).

    For small systems this enumerates {e every} run prefix an
    asynchronous adversary can produce — every interleaving of process
    steps and every admissible delivery choice — and checks a safety
    predicate on the decision set of every reachable configuration.
    Possibility claims (e.g. "the Section VI protocol never produces
    more than k distinct decisions when kn > (k+1)f") are validated
    against this space rather than against sampled schedules.

    Soundness of the state-space deduplication requires future
    behaviour to be determined by the semantic configuration alone, so
    exploration is restricted to failure-detector-free algorithms and
    failure patterns whose crashes are all initial ([explore] raises
    [Invalid_argument] otherwise); in exploration mode the engine
    additionally folds each delivered batch in canonical
    (sender, payload) order — see {!Engine.Make.init_explore} — which
    makes the set of reachable configuration keys independent of the
    traversal order.  The sequential and parallel drivers therefore
    report identical statistics and verdicts whenever no budget
    truncates the search.

    Every driver takes a {!Canon.reduction}: [Symmetry] switches
    admission to orbit keys (plus the algorithm's canon hooks, applied
    by the engine as states and messages are produced), and
    [Symmetry_por] additionally prunes commuting delivery
    interleavings with DPOR sleep sets in the crash-free drivers.
    Both preserve verdicts and the decision-value oracle (soundness
    argument in DESIGN.md); the configuration counts shrink — that is
    the point — so cross-{e mode} stats differ while seq/par parity
    within a mode still holds exactly. *)

type delivery_policy =
  | Empty_or_all
      (** At each step a process receives nothing or its whole
          buffer.  Coarsest; misses reorderings within a buffer. *)
  | Per_sender
      (** Nothing, the whole buffer, or exactly the messages of one
          sender.  Captures the distinctions FLP-style protocols can
          make; default. *)
  | All_subsets
      (** Every subset of the buffer (exponential; tiny runs only). *)

type stats = {
  configs_visited : int;
  terminal_runs : int;
      (** Deduplicated configs where every correct process has
          decided.  Always counted per distinct configuration key:
          under [Symmetry_por] a terminal configuration re-admitted
          with a different sleep digest is not counted again, so
          [terminal_runs] agrees between [Symmetry] and
          [Symmetry_por]. *)
  budget_exhausted : bool;
      (** True if [max_configs] or [max_depth] pruned the search — the
          verdict then covers only the explored portion.  Admission is
          clamped {e at} the budget in every driver, so
          [configs_visited] never exceeds [max_configs], and the flag
          is set only when an unseen reachable configuration was
          actually turned away (or a depth cutoff fired). *)
}

type outcome =
  | Safe of stats
      (** No reachable explored configuration violates the check.
          When [stats.budget_exhausted] is set this is a statement
          about the explored prefix only — treat it as indeterminate
          for the full space. *)
  | Violation of { decisions : (Pid.t * Value.t * int) list; reason : string; depth : int }

module Mask : sig
  (** Crashed-set bitmasks (pure bit arithmetic, no allocation). *)

  val mem : int -> Pid.t -> bool
  val add : int -> Pid.t -> int
  val to_list : n:int -> int -> Pid.t list
  (** Set pids below [n], ascending. *)

  val popcount : int -> int
  (** Number of set bits (Kernighan's loop — one iteration per set
      bit; correct for any [int], including negative masks). *)
end

val default_domains : unit -> int
(** Domain count used by the parallel drivers when [?domains] is not
    given: the [KSA_DOMAINS] environment variable if set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)

type resilient_outcome =
  | All_paths_decide of stats
      (** From every reachable configuration, a decision-complete
          configuration remains reachable — the algorithm cannot be
          trapped. *)
  | Safety_violation of {
      decisions : (Pid.t * Value.t * int) list;
      reason : string;
    }
  | Stuck of {
      crashed : Pid.t list;
      undecided_correct : Pid.t list;
      stats : stats;
    }
      (** A reachable configuration from which {e no} continuation
          reaches decision-completeness: the crash pattern listed has
          trapped the undecided correct processes — an FLP-style
          non-termination witness.  (In the infinite-run view, every
          fair extension of this configuration violates
          Termination.) *)
  | Indeterminate of stats
      (** The config budget truncated the enumeration before the
          reachable graph was closed, so neither [All_paths_decide]
          nor [Stuck] can be claimed: unexpanded frontier nodes would
          read as stuck, and truly-stuck nodes may lie beyond the
          cut.  [stats.budget_exhausted] is always [true] here; the
          [All_paths_decide] and [Stuck] verdicts conversely imply a
          complete enumeration.  Raise [max_configs] (or shrink the
          system) to get a classified verdict. *)

module Make (A : Algorithm.S) : sig
  val explore :
    ?reduction:Canon.reduction ->
    ?max_depth:int ->
    ?max_configs:int ->
    ?policy:delivery_policy ->
    ?on_terminal:((Pid.t * Value.t * int) list -> unit) ->
    ?ckpt:Checkpoint.ctl ->
    ?resume:string ->
    n:int ->
    inputs:Value.t array ->
    pattern:Failure_pattern.t ->
    check:((Pid.t * Value.t * int) list -> string option) ->
    unit ->
    outcome
  (** DFS over all schedules.  [check decisions] returns
      [Some reason] to report a safety violation of the current
      decision set ((process, value, time) triples).  [on_terminal]
      fires once per decision-complete configuration {e key} — under
      [Symmetry_por] sleep-digest re-admissions of the same terminal
      configuration do not re-fire it, so terminal counts and
      callbacks agree with [Symmetry].
      Defaults: [max_depth] 200, [max_configs] 2_000_000, [policy]
      [Per_sender].

      [ckpt] attaches a {!Checkpoint} controller: the driver writes
      periodic snapshots per its sink policy, and polls the
      controller's interrupt — on interruption it flushes a final
      checkpoint and returns its [Safe] outcome with
      [budget_exhausted] set (the explored portion only).  [resume]
      is the payload of a checkpoint written by this driver (or
      merged by {!explore_par}); the campaign continues exactly where
      it stopped and reports verdict and stats bit-identical to an
      uninterrupted run.  The interner dumps must be restored first
      ({!Checkpoint.restore_interners}).  [on_terminal] calls already
      delivered before the checkpoint are not replayed.  Checkpoint
      payloads carry the reduction mode (and, under [Symmetry_por],
      each pending item's sleep set); a payload written under a
      different [reduction] describes a different search — the driver
      warns on stderr and starts fresh, like a corrupt checkpoint. *)

  val explore_par :
    ?reduction:Canon.reduction ->
    ?domains:int ->
    ?max_depth:int ->
    ?max_configs:int ->
    ?policy:delivery_policy ->
    ?on_terminal:((Pid.t * Value.t * int) list -> unit) ->
    ?ckpt:Checkpoint.ctl ->
    n:int ->
    inputs:Value.t array ->
    pattern:Failure_pattern.t ->
    check:((Pid.t * Value.t * int) list -> string option) ->
    unit ->
    outcome
  (** Multicore {!explore}: [domains] OCaml domains (default
      {!default_domains}) admit configurations against one shared
      {!Ksa_prim.Shardset} table whose ticket-clamped admission is
      atomic per key, so every reachable configuration is admitted and
      expanded exactly once across all workers.  The frontier moves
      through work-stealing deques — private LIFO stacks, batched
      spills to per-worker pools, half-the-batches steals, and an
      idle-count termination protocol.  Whenever neither [max_depth]
      nor [max_configs] truncates the search, the visited set equals
      the reachable set and the outcome — verdict, [configs_visited],
      [terminal_runs] — is identical to the sequential one.  [check]
      and [on_terminal] caveats: [check] runs concurrently on several
      domains and must be thread-safe; [on_terminal] is invoked from
      the calling domain after the workers join (and not at all when a
      violation is found).

      With [ckpt], a coordinator domain periodically parks every
      worker at a safepoint and cuts the shared table, the pools and
      the parked stacks into a {e sequential-format} snapshot: resume
      such a checkpoint with {!explore}, whose verdicts and stats are
      identical by the parity invariant above.  A worker that dies of
      a non-verdict exception is supervised: its admissions stand (no
      ticket is refunded), its frontier is spilled back to the shared
      pool for survivors — or a post-join rescue worker — to drain,
      and the failure is recorded in the ledger
      ([campaign.worker.failures] / [campaign.requeues] metrics), so
      one poisoned worker degrades the campaign instead of aborting
      it. *)

  val explore_with_crashes :
    ?reduction:Canon.reduction ->
    ?model:Fault_model.t ->
    ?max_configs:int ->
    ?policy:delivery_policy ->
    ?drop_on_crash:bool ->
    ?initially_dead:Pid.t list ->
    ?ckpt:Checkpoint.ctl ->
    ?resume:string ->
    n:int ->
    inputs:Value.t array ->
    crash_budget:int ->
    check:((Pid.t * Value.t * int) list -> string option) ->
    unit ->
    resilient_outcome
  (** Exhaustive exploration where, in addition to scheduling and
      delivery choices, the adversary may crash up to [crash_budget]
      processes at {e any} point (a crashed process takes no further
      steps; with [drop_on_crash], for each crash both the
      keep-messages and the drop-all-its-pending-messages variants are
      explored — the last-step-omission allowance).  Classifies the
      whole reachable space: either every configuration can still
      reach decision-completeness, or a {e stuck} configuration is
      reported — the exhaustive form of the FLP/[11] facts behind
      condition (C), and of the Theorem 2 vs Theorem 8 gap (one
      non-initial crash defeats protocols that tolerate initial
      crashes).  State-space deduplication includes the crashed set
      (as a bitmask folded into the hashed node key), so the search is
      sound for crash-anytime patterns (algorithms with failure
      detectors remain unsupported).  [initially_dead] seeds the
      search with processes dead from time 0 that do {e not} count
      against [crash_budget] — the restricted-subsystem form used by
      the Theorem-1 condition (C) validation; the [crashed] list of a
      {!Stuck} verdict includes them.

      [ckpt]/[resume] behave as in {!explore}: periodic snapshots of
      the node graph and worklist, a final flush plus an
      [Indeterminate] verdict on interruption, and bit-identical
      verdict/stats when resumed (checkpoints written by
      {!explore_with_crashes_par} resume here too, after
      {!Checkpoint.restore_interners}); a reduction-mode or
      fault-model mismatch warns and starts fresh (the payload carries
      the model tag).

      [model] selects the fault model ({!Fault_model.t}).  Under
      [Crash] (the default) the budget is [crash_budget].  Under
      [Byzantine t] the budget is [t] and the masked set is the
      {e corrupted} set: a corrupted process subsumes a crashed one
      (it stops, its in-flight messages may be dropped) and in
      addition each of its pending messages may be forged to any
      entry of {!Algorithm.S.forge_pool} — per-message, hence
      per-receiver (equivocation).  Byzantine behaviours are a strict
      superset of crash behaviours at equal budget, and at budget 0
      the node graph is bit-identical to the crash graph.  Under
      [Mobile t] nobody ever crashes; for [t >= 1] any sender's
      in-flight messages may be transiently omitted (one sender per
      expansion — async interleaving composes these into every
      faulty-set trajectory), and at [t = 0] the graph coincides with
      the budget-0 crash graph.  Parity and separation are pinned by
      test/test_byzantine.ml.

      The crash drivers use the orbit keys of the symmetry modes but
      never DPOR sleep sets — [Symmetry_por] behaves like [Symmetry]
      here.  The {!Stuck} classification is backward reachability over
      the {e full} transition graph; sleep sets prune edges, which
      preserves reachable states (and so every other verdict) but
      could cut the only path by which a configuration reaches
      decision-completeness, flipping can-decide nodes to stuck. *)

  val explore_with_crashes_par :
    ?reduction:Canon.reduction ->
    ?model:Fault_model.t ->
    ?domains:int ->
    ?max_configs:int ->
    ?policy:delivery_policy ->
    ?drop_on_crash:bool ->
    ?initially_dead:Pid.t list ->
    ?ckpt:Checkpoint.ctl ->
    n:int ->
    inputs:Value.t array ->
    crash_budget:int ->
    check:((Pid.t * Value.t * int) list -> string option) ->
    unit ->
    resilient_outcome
  (** Multicore {!explore_with_crashes}: [domains] domains enumerate
      the node graph against one shared {!Ksa_prim.Shardset} table and
      one write-once record store, stealing frontier batches from each
      other as in {!explore_par}.  A node's global dense id {e is} its
      admission ticket, so graph edges are globally meaningful the
      moment they are made and classification runs on the shared graph
      directly — no merge or id translation.  Outcomes (verdict and
      stats) are identical to {!explore_with_crashes} whenever
      [max_configs] does not truncate the enumeration.  [check] must
      be thread-safe.

      [ckpt] enables pause-the-world checkpointing and worker
      supervision exactly as in {!explore_par}; the written
      snapshots are sequential-format and resume on
      {!explore_with_crashes}. *)

  val reachable_decision_values :
    ?reduction:Canon.reduction ->
    ?model:Fault_model.t ->
    ?max_configs:int ->
    ?policy:delivery_policy ->
    n:int ->
    inputs:Value.t array ->
    crash_budget:int ->
    unit ->
    Value.t list
  (** The set of values decided in some reachable configuration under
      the crash-adversarial exploration: the {e valency} of the
      initial configuration.  Two or more values = bivalent/
      multivalent in FLP's sense. *)

  val reachable_decision_values_par :
    ?reduction:Canon.reduction ->
    ?model:Fault_model.t ->
    ?domains:int ->
    ?max_configs:int ->
    ?policy:delivery_policy ->
    n:int ->
    inputs:Value.t array ->
    crash_budget:int ->
    unit ->
    Value.t list
  (** Multicore {!reachable_decision_values}, routed through
      {!explore_with_crashes_par} with a mutex-protected accumulator.
      Returns exactly the same value set as the sequential driver
      whenever [max_configs] does not truncate the enumeration (the
      parallel search visits the same reachable node set). *)
end
