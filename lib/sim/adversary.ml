module Rng = Ksa_prim.Rng

type pending = { id : int; src : Pid.t; dst : Pid.t; sent_at : int }

type obs = {
  time : int;
  n : int;
  pending : pending list;
  decided : (Pid.t * Value.t) list;
  pattern : Failure_pattern.t;
  steps_taken : Pid.t -> int;
}

type action =
  | Step of { pid : Pid.t; deliver : int list }
  | Drop of int list
  | Forge of { id : int; alt : int }
  | Halt

type t = { describe : string; next : obs -> action }

(* p may take the next step (at time obs.time + 1) iff its crash time,
   if any, is not exceeded: a process with crash time ct takes no step
   with index > ct. *)
let alive obs =
  let next_time = obs.time + 1 in
  List.filter
    (fun p ->
      match Failure_pattern.crash_time obs.pattern p with
      | None -> true
      | Some ct -> next_time <= ct)
    (Pid.universe obs.n)

let has_decided obs p = List.mem_assoc p obs.decided

let undecided_alive obs = List.filter (fun p -> not (has_decided obs p)) (alive obs)

let all_correct_decided obs =
  List.for_all (fun p -> has_decided obs p) (Failure_pattern.correct obs.pattern)

let pending_for ?(allow = fun _ _ -> true) obs p =
  List.filter_map
    (fun m -> if m.dst = p && allow m.src m.dst then Some m.id else None)
    obs.pending

let droppable ?(victims = fun _ -> true) obs =
  List.filter_map
    (fun m ->
      if
        victims m.src
        && Failure_pattern.is_crashed obs.pattern m.src ~time:obs.time
      then Some m.id
      else None)
    obs.pending

(* Under the Byzantine model the corrupted set rides the failure
   pattern (corruption subsumes crashing), so the forgeable messages
   are exactly the droppable ones: pending sends of already-corrupted
   processes. *)
let forgeable = droppable

(* Prefer scheduling processes that still have work (pending messages
   or no decision yet); halt when every correct process has decided. *)
let fair ~rng =
  let next obs =
    if all_correct_decided obs then Halt
    else
      match alive obs with
      | [] -> Halt
      | candidates ->
          let pid =
            (* bias towards undecided processes to reach termination fast *)
            match undecided_alive obs with
            | [] -> Rng.pick rng candidates
            | undecided ->
                if Rng.int rng 4 = 0 then Rng.pick rng candidates
                else Rng.pick rng undecided
          in
          Step { pid; deliver = pending_for obs pid }
  in
  { describe = "fair"; next }

let round_robin_next cursor obs ~allow =
  match alive obs with
  | [] -> Halt
  | candidates ->
      let after = List.filter (fun p -> p > !cursor) candidates in
      let pid = match after with p :: _ -> p | [] -> List.hd candidates in
      cursor := pid;
      Step { pid; deliver = pending_for ~allow obs pid }

let round_robin () =
  let cursor = ref (-1) in
  let next obs =
    if all_correct_decided obs then Halt
    else round_robin_next cursor obs ~allow:(fun _ _ -> true)
  in
  { describe = "round-robin"; next }

let fair_lossy ~rng ~p_defer =
  let next obs =
    if all_correct_decided obs then Halt
    else
      match alive obs with
      | [] -> Halt
      | candidates ->
          let pid =
            (* like [fair]: decided processes must keep taking steps
               (they may be replying on behalf of others — quorum
               protocols rely on it), so only bias towards undecided
               ones *)
            match undecided_alive obs with
            | [] -> Rng.pick rng candidates
            | undecided ->
                if Rng.int rng 4 = 0 then Rng.pick rng candidates
                else Rng.pick rng undecided
          in
          let deliver =
            List.filter (fun _ -> Rng.float rng >= p_defer) (pending_for obs pid)
          in
          Step { pid; deliver }
  in
  { describe = Printf.sprintf "fair-lossy(%.2f)" p_defer; next }

let group_table ~n groups =
  let tbl = Array.make n (-1) in
  List.iteri
    (fun gi members ->
      List.iter
        (fun p ->
          if p < 0 || p >= n then invalid_arg "Adversary: pid out of range";
          if tbl.(p) <> -1 then invalid_arg "Adversary: overlapping groups";
          tbl.(p) <- gi)
        members)
    groups;
  (* ungrouped processes form one implicit extra group *)
  let extra = List.length groups in
  Array.iteri (fun p g -> if g = -1 then tbl.(p) <- extra) tbl;
  tbl

let partition ~groups ?release () =
  let release = Option.value release ~default:all_correct_decided in
  let cursor = ref (-1) in
  let released = ref false in
  let tbl = ref [||] in
  let next obs =
    if Array.length !tbl = 0 then tbl := group_table ~n:obs.n groups;
    if (not !released) && release obs then released := true;
    if all_correct_decided obs && !released then Halt
    else
      let allow src dst = !released || !tbl.(src) = !tbl.(dst) in
      round_robin_next cursor obs ~allow
  in
  { describe = "partition"; next }

let sequential_solo ~groups =
  let stage = ref 0 in
  let cursor = ref (-1) in
  let tbl = ref [||] in
  let n_stages = List.length groups in
  let groups_arr = Array.of_list groups in
  let next obs =
    if Array.length !tbl = 0 then tbl := group_table ~n:obs.n groups;
    (* advance past stages whose alive members have all decided *)
    let stage_done gi =
      List.for_all
        (fun p -> has_decided obs p || not (List.mem p (alive obs)))
        groups_arr.(gi)
    in
    while !stage < n_stages && stage_done !stage do
      incr stage
    done;
    if !stage >= n_stages then
      if all_correct_decided obs then Halt
      else
        (* all groups done solo: release everything, round-robin *)
        round_robin_next cursor obs ~allow:(fun _ _ -> true)
    else
      let gi = !stage in
      let members = List.filter (fun p -> List.mem p (alive obs)) groups_arr.(gi) in
      match members with
      | [] -> Halt (* unreachable: stage_done would have advanced *)
      | _ :: _ ->
          (* round-robin over the stage's alive members so everyone
             makes progress (undecided members included on every lap) *)
          let after = List.filter (fun p -> p > !cursor) members in
          let p = match after with q :: _ -> q | [] -> List.hd members in
          cursor := p;
          let allow src dst = !tbl.(src) = gi && !tbl.(dst) = gi in
          Step { pid = p; deliver = pending_for ~allow obs p }
  in
  { describe = "sequential-solo"; next }

let eventually_lockstep ~rng ~gst ~p_defer =
  let cursor = ref (-1) in
  let next obs =
    if all_correct_decided obs then Halt
    else if obs.time + 1 < gst then
      match alive obs with
      | [] -> Halt
      | candidates ->
          let pid = Rng.pick rng candidates in
          let deliver =
            List.filter (fun _ -> Rng.float rng >= p_defer) (pending_for obs pid)
          in
          Step { pid; deliver }
    else round_robin_next cursor obs ~allow:(fun _ _ -> true)
  in
  { describe = Printf.sprintf "eventually-lockstep(gst=%d)" gst; next }

let crash_after_decision ~inner ~victims =
  let next obs =
    match droppable ~victims:(fun src -> List.mem src victims) obs with
    | [] -> inner.next obs
    | ids -> Drop ids
  in
  { describe = inner.describe ^ "+crash-drops"; next }
