(** The interface a distributed algorithm presents to the engine.

    This is the paper's "deterministic state machine" with its
    transition relation and message sending function (Section II),
    fused into a single [step]: one atomic step receives a (possibly
    empty) set of messages, optionally queries the failure detector,
    updates the local state, sends messages, and may irrevocably
    decide.  Atomic receive+send and one-step broadcast are the
    {e favourable} choices of the Dolev–Dwork–Stockmeyer parameters,
    which only strengthens impossibility results run against this
    interface (Corollary 5).

    Implementations must be pure: the engine replays and splices runs
    under the assumption that [init] and [step] are functions of their
    arguments. *)

module type S = sig
  type state
  type message

  val name : string

  val uses_fd : bool
  (** Whether the algorithm queries a failure detector; the engine
      requires an oracle iff this is set. *)

  val init : n:int -> me:Pid.t -> input:Value.t -> state
  (** Initial state of process [me] in a system of [n] processes with
      proposal value [input].  Like the paper's restricted algorithm
      A|D (Definition 1), code always sees the {e full} system size
      [n], even when run in a restricted system. *)

  val step :
    state ->
    received:(Pid.t * message) list ->
    fd:Fd_view.t option ->
    state * (Pid.t * message) list * Value.t option
  (** One atomic step.  [received] are the messages delivered in this
      step (sender, payload), in sending order.  [fd] is the failure
      detector's answer for this step, present iff the model provides
      one.  Returns the new state, messages to send (recipient,
      payload) — a broadcast is simply [n] sends — and [Some v] to
      decide [v].  The output variable is write-once: the engine
      treats a second, different decision as an algorithm bug and
      raises. *)

  val canon : state -> state
  (** Behaviour-preserving normal form of a local state, the
      algorithm-level lever of the [--reduction sym] orbit keys: two
      states that [canon] maps to the same representative must be
      bisimilar — [step] from either (with [canon]-equal received
      lists) must produce [canon]-equal states, [canon_message]-equal
      sends in the same order, and equal decisions.  [canon] must be
      idempotent.  Typical use: sort an order-insensitive list (a
      deduplicated heard-set kept in arrival order).  Algorithms whose
      states are already canonical return them unchanged. *)

  val canon_message : message -> message
  (** Same contract for payloads: a delivered [canon_message m] must
      drive [step] exactly like [m] would (after [canon] of the
      results).  The engine interns and stores the canonical payload,
      so representation-equal messages share one interned id. *)

  val forge_pool : n:int -> values:Value.t list -> message list
  (** The payloads a Byzantine-corrupted sender may inject in place of
      a pending message, parameterized by the candidate value domain
      (the proposed inputs plus one out-of-domain value; see
      {!Fault_model.forge_values}).  The pool must be a finite,
      deterministic function of its arguments — forge indices are
      recorded in schedules and replayed — and is consulted only under
      [Fault_model.Byzantine]; return [[]] to make the algorithm's
      messages unforgeable (the Byzantine explorer then degenerates to
      the crash explorer). *)

  val pp_state : Format.formatter -> state -> unit
  val pp_message : Format.formatter -> message -> unit
end
