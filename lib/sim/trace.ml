type step = { state_id : int; decision : Value.t option }
type t = { init_ids : int array; steps : step array array }

let n t = Array.length t.init_ids

let make ~init_ids ~steps =
  if Array.length steps <> Array.length init_ids then
    invalid_arg "Trace.make: steps length";
  {
    init_ids = Array.copy init_ids;
    steps = Array.map Array.of_list steps;
  }

let empty ~init_ids =
  {
    init_ids = Array.copy init_ids;
    steps = Array.make (Array.length init_ids) [||];
  }

let decision_index t p =
  let row = t.steps.(p) in
  let rec find i =
    if i >= Array.length row then None
    else if row.(i).decision <> None then Some i
    else find (i + 1)
  in
  find 0

let decided t p = decision_index t p <> None

(* number of entries of [steps.(p)] that count as "until decision" *)
let compare_length t p =
  match decision_index t p with
  | Some i -> i + 1
  | None -> Array.length t.steps.(p)

let states_until_decision t p =
  let row = t.steps.(p) in
  let len = compare_length t p in
  t.init_ids.(p) :: List.init len (fun i -> row.(i).state_id)

let prefix_equal ra rb len =
  let rec go i = i >= len || (ra.(i).state_id = rb.(i).state_id && go (i + 1)) in
  go 0

let indistinguishable_for a b p =
  let ra = a.steps.(p) and rb = b.steps.(p) in
  let la = compare_length a p and lb = compare_length b p in
  a.init_ids.(p) = b.init_ids.(p)
  &&
  match (decided a p, decided b p) with
  | true, true -> la = lb && prefix_equal ra rb la
  | true, false -> lb >= la && prefix_equal ra rb la
  | false, true -> la >= lb && prefix_equal ra rb lb
  | false, false -> prefix_equal ra rb (min la lb)

let indistinguishable_for_all a b ds =
  List.for_all (indistinguishable_for a b) ds

let equal a b = a.init_ids = b.init_ids && a.steps = b.steps

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun p row ->
      Format.fprintf ppf "p%d: %d" p t.init_ids.(p);
      Array.iter
        (fun s ->
          Format.fprintf ppf " %d" s.state_id;
          match s.decision with
          | Some v -> Format.fprintf ppf "!%a" Value.pp v
          | None -> ())
        row;
      if p < Array.length t.steps - 1 then Format.fprintf ppf "@ ")
    t.steps;
  Format.fprintf ppf "@]"
