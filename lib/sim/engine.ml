module Int_map = Map.Make (Int)
module Intern = Ksa_prim.Intern
module Metrics = Ksa_prim.Metrics

(* Shared by every functor instance and domain: the memo ratio is a
   property of the workload, not of one algorithm module. *)
let m_steps = Metrics.counter "sim.steps"
let m_memo_hits = Metrics.counter "sim.memo.hits"
let m_memo_misses = Metrics.counter "sim.memo.misses"

module Make (A : Algorithm.S) = struct
  (* Per-pid data lives in plain arrays under a copy-on-write
     discipline: every step copies the (tiny) array before writing, so
     configurations remain immutable and forkable while per-step
     access is O(1) with no balanced-tree overhead. *)
  type config = {
    n : int;
    inputs : Value.t array;
    time : int;
    states : A.state array; (* copy-on-write *)
    decided : (Value.t * int) option array; (* copy-on-write *)
    pending : (A.message Envelope.t * int) Int_map.t;
        (* envelope, paired with the packed (src, dst, payload id)
           triple the key builder needs — precomputed once at send
           time *)
    inbox : A.message Envelope.t list array;
        (* per-destination index over [pending], newest first;
           copy-on-write.  Kept in lockstep with [pending] so the
           explorer's per-process delivery choices are O(|buffer(p)|)
           instead of O(|pending|). *)
    steps : int array; (* per-pid step counts; copy-on-write *)
    next_id : int;
    init_ids : int array; (* interned initial states; never mutated *)
    state_ids : int array;
        (* per-pid interned state ids (copy-on-write), maintained
           incrementally — only the stepping pid's state is
           re-interned *)
    explore : bool;
        (* exploration mode: no event log, canonical delivery fold *)
    reduce : bool;
        (* reduction mode: [A.canon] is applied to every produced
           state and [A.canon_message] to every sent payload before
           interning, so representation-equal states/messages share
           one id.  Set by [init_explore ~reduction] — never in
           recorded runs, whose traces must reflect the raw states. *)
    events : Event.t list; (* reversed; empty in exploration mode *)
    forges : (int * int) list;
        (* (message id, forge-pool index) of every Forge applied, in
           reverse order; empty in exploration mode.  Replay projection
           needs it to re-emit the forgeries a recorded run saw. *)
  }

  exception Invalid_action of string
  exception Double_decision of Pid.t

  (* Structurally distinct states and payloads are interned to dense
     integers, so a configuration key is an exact sequence of small
     ints — no hash collision can conflate distinct configurations
     (the registries resolve generic-hash collisions with structural
     equality, exactly the equality [Marshal]-blob keys provided).
     The registries live in {!Ksa_prim.Intern} and are shared by
     every engine functor instance, every substrate and every domain:
     state ids are therefore comparable across [Engine.Make (A)] and
     [Engine.Make (Restrict (A))], and across this engine and the
     Heard-Of engine — which is what lets {!Trace.t} be the one
     currency of indistinguishability. *)
  let intern_state (s : A.state) = Intern.id Intern.states s
  let intern_payload (m : A.message) = Intern.id Intern.payloads m

  (* The packed (src, dst, payload id) triple representation lives in
     {!Canon}, shared with the reduction layer that takes the triples
     apart again. *)
  let pack_triple = Canon.pack_triple
  let payload_mask = Canon.payload_mask

  (* Transition memo.  For a failure-detector-free algorithm a step is
     a pure function of (local state, received sequence) — and both
     the DFS explorer and the recorded-mode portfolios (the Theorem 1
     screen runs the same algorithm under several adversaries)
     re-execute the same local transition under thousands of different
     global configurations.  Keyed by interned ids, so hits skip
     [A.step] and every intern call.  One table per domain
     (domain-local storage): no synchronisation. *)
  type memo_entry = {
    m_state : A.state;
    m_state_id : int;
    m_sends : (Pid.t * A.message * int) list; (* dst, payload, payload id *)
    m_dec : Value.t option;
  }

  (* The leading bool is the reduction flag: reduced and unreduced
     explorations intern different (canonicalized vs raw) states under
     the same ids, so their memo entries must not be conflated. *)
  let memo_dls
      : (bool * int * (int * int) list, memo_entry) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

  let make_init ~explore ~reduce ~n ~inputs =
    if Array.length inputs <> n then invalid_arg "Engine.init: inputs length";
    let states = Array.init n (fun p -> A.init ~n ~me:p ~input:inputs.(p)) in
    let states = if reduce then Array.map A.canon states else states in
    let init_ids = Array.map intern_state states in
    {
      n;
      inputs = Array.copy inputs;
      time = 0;
      states;
      decided = Array.make n None;
      pending = Int_map.empty;
      inbox = Array.make n [];
      steps = Array.make n 0;
      next_id = 0;
      init_ids;
      state_ids = init_ids;
      explore;
      reduce;
      events = [];
      forges = [];
    }

  let init ~n ~inputs = make_init ~explore:false ~reduce:false ~n ~inputs

  let init_explore ?(reduction = Canon.No_reduction) ~n ~inputs () =
    make_init ~explore:true
      ~reduce:(reduction <> Canon.No_reduction)
      ~n ~inputs
  (* Exploration mode: skip the event log — configurations stay small
     and forkable by the million. *)

  let time c = c.time
  let n c = c.n
  let state_of c p = c.states.(p)
  let decision_of c p = Option.map fst c.decided.(p)

  let decisions c =
    let acc = ref [] in
    for p = c.n - 1 downto 0 do
      match c.decided.(p) with
      | Some (v, t) -> acc := (p, v, t) :: !acc
      | None -> ()
    done;
    !acc

  let pending c = List.map (fun (_, (e, _)) -> e) (Int_map.bindings c.pending)
  let events c = List.rev c.events
  let steps_taken c p = c.steps.(p)

  let inbox c p =
    List.rev_map (fun (e : A.message Envelope.t) -> (e.id, e.src)) c.inbox.(p)

  let observe ~pattern c =
    {
      Adversary.time = c.time;
      n = c.n;
      pending =
        List.map
          (fun (e : A.message Envelope.t) ->
            { Adversary.id = e.id; src = e.src; dst = e.dst; sent_at = e.sent_at })
          (pending c);
      decided = List.map (fun (p, v, _) -> (p, v)) (decisions c);
      pattern;
      steps_taken = (fun p -> c.steps.(p));
    }

  let check_deliverable c pid ids =
    List.map
      (fun id ->
        match Int_map.find_opt id c.pending with
        | None ->
            raise (Invalid_action (Printf.sprintf "message #%d not pending" id))
        | Some ((e : A.message Envelope.t), _) as pair ->
            if not (Pid.equal e.dst pid) then
              raise
                (Invalid_action
                   (Printf.sprintf "message #%d not addressed to p%d" id pid));
            Option.get pair)
      (List.sort_uniq compare ids)

  let exec_step ?fd ~pattern c pid ids =
    let next_time = c.time + 1 in
    if not (Pid.valid ~n:c.n pid) then
      raise (Invalid_action (Printf.sprintf "invalid pid p%d" pid));
    (match Failure_pattern.crash_time pattern pid with
    | Some ct when next_time > ct ->
        raise
          (Invalid_action
             (Printf.sprintf "p%d crashed at %d, cannot step at %d" pid ct
                next_time))
    | Some _ | None -> ());
    Metrics.incr m_steps;
    let env_pairs = check_deliverable c pid ids in
    (* Exploration mode folds a delivered batch in canonical
       (sender, payload) order rather than message-id order.  Ids
       encode one particular send interleaving; two configurations
       that agree on the content key can carry the same pending
       multiset under different id orders, and an id-order fold would
       give them diverging successors — the visited set would then
       depend on which representative the search expands first, and
       sequential and parallel drivers would disagree.  With a
       canonical fold the successor keys are a function of the
       configuration key alone, so every search order computes the
       same closure.  Recorded (non-exploration) runs keep the
       id-order fold. *)
    let env_pairs =
      if c.explore && not A.uses_fd then
        List.sort
          (fun ((a : A.message Envelope.t), _)
               ((b : A.message Envelope.t), _) ->
            compare (a.src, a.payload) (b.src, b.payload))
          env_pairs
      else env_pairs
    in
    let fd_view =
      if A.uses_fd then
        match fd with
        | None ->
            raise (Invalid_action (A.name ^ " queries a failure detector but none was supplied"))
        | Some oracle -> Some (oracle ~time:next_time ~me:pid)
      else None
    in
    let state = c.states.(pid) in
    (* [sends3] carries the interned payload id per send (from the
       memo or a fresh intern); -1 when not yet known (the
       failure-detector path interns at send time instead). *)
    let state', sends3, dec, state_id' =
      if not A.uses_fd then (
        let mkey =
          ( c.reduce,
            c.state_ids.(pid),
            List.map
              (fun ((e : A.message Envelope.t), t) ->
                (e.src, t land payload_mask))
              env_pairs )
        in
        let memo = Domain.DLS.get memo_dls in
        match Hashtbl.find_opt memo mkey with
        | Some m ->
            Metrics.incr m_memo_hits;
            (m.m_state, m.m_sends, m.m_dec, m.m_state_id)
        | None ->
            Metrics.incr m_memo_misses;
            let received =
              List.map
                (fun ((e : A.message Envelope.t), _) -> (e.src, e.payload))
                env_pairs
            in
            let state', sends, dec = A.step state ~received ~fd:None in
            (* Reduction: normalize the produced state and payloads
               {e before} interning, and keep the canonical payload as
               the envelope content — the receiver must later step on
               exactly the message its interned id names, or two
               configurations with equal keys could diverge. *)
            let state' = if c.reduce then A.canon state' else state' in
            let sends3 =
              List.map
                (fun (dst, payload) ->
                  let payload =
                    if c.reduce then A.canon_message payload else payload
                  in
                  (dst, payload, intern_payload payload))
                sends
            in
            let sid = intern_state state' in
            Hashtbl.add memo mkey
              { m_state = state'; m_state_id = sid; m_sends = sends3;
                m_dec = dec };
            (state', sends3, dec, sid))
      else
        let received =
          List.map
            (fun ((e : A.message Envelope.t), _) -> (e.src, e.payload))
            env_pairs
        in
        let state', sends, dec = A.step state ~received ~fd:fd_view in
        let state' = if c.reduce then A.canon state' else state' in
        ( state',
          List.map
            (fun (dst, p) ->
              ((dst, (if c.reduce then A.canon_message p else p), -1)
                : Pid.t * A.message * int))
            sends,
          dec,
          intern_state state' )
    in
    let pending =
      List.fold_left
        (fun acc ((e : A.message Envelope.t), _) -> Int_map.remove e.id acc)
        c.pending env_pairs
    in
    let inbox = Array.copy c.inbox in
    (* delivered messages were all addressed to [pid]: one filter of
       its buffer keeps the inbox index in sync *)
    (match env_pairs with
    | [] -> ()
    | _ ->
        inbox.(pid) <-
          List.filter
            (fun (e : A.message Envelope.t) ->
              not
                (List.exists
                   (fun ((d : A.message Envelope.t), _) -> d.id = e.id)
                   env_pairs))
            inbox.(pid));
    let pending, next_id, sent_refs =
      List.fold_left
        (fun (pend, id, refs) (dst, payload, plid) ->
          if not (Pid.valid ~n:c.n dst) then
            raise (Invalid_action (Printf.sprintf "send to invalid pid p%d" dst));
          let e =
            { Envelope.id; src = pid; dst; sent_at = next_time; payload }
          in
          inbox.(dst) <- e :: inbox.(dst);
          let triple =
            pack_triple pid dst
              (if plid >= 0 then plid else intern_payload payload)
          in
          (Int_map.add id (e, triple) pend, id + 1, (id, dst) :: refs))
        (pending, c.next_id, [])
        sends3
    in
    let decided =
      match dec with
      | None -> c.decided
      | Some v -> (
          match c.decided.(pid) with
          | None ->
              let d = Array.copy c.decided in
              d.(pid) <- Some (v, next_time);
              d
          | Some (v0, _) ->
              if Value.equal v v0 then c.decided else raise (Double_decision pid))
    in
    let events =
      if c.explore then []
      else
        {
          Event.time = next_time;
          pid;
          delivered =
            List.map
              (fun ((e : A.message Envelope.t), _) -> (e.id, e.src))
              env_pairs;
          sent = List.rev sent_refs;
          decision =
            (match dec with
            | Some v when c.decided.(pid) = None -> Some v
            | Some _ | None -> None);
          state_id = state_id';
        }
        :: c.events
    in
    let state_ids =
      (* only [pid]'s state changed: one intern per step (memo hits
         skip even that), not one per process per key *)
      let sids = Array.copy c.state_ids in
      sids.(pid) <- state_id';
      sids
    in
    let states = Array.copy c.states in
    states.(pid) <- state';
    let steps = Array.copy c.steps in
    steps.(pid) <- steps.(pid) + 1;
    {
      c with
      time = next_time;
      states;
      decided;
      pending;
      inbox;
      steps;
      next_id;
      state_ids;
      events;
    }

  let exec_drop ~pattern c ids =
    if ids = [] then raise (Invalid_action "empty drop");
    let pending, dropped =
      List.fold_left
        (fun (acc, dropped) id ->
          match Int_map.find_opt id acc with
          | None ->
              raise (Invalid_action (Printf.sprintf "drop: message #%d not pending" id))
          | Some ((e : A.message Envelope.t), _) ->
              if not (Failure_pattern.is_crashed pattern e.src ~time:c.time)
              then
                raise
                  (Invalid_action
                     (Printf.sprintf
                        "drop: sender p%d of message #%d has not crashed" e.src
                        id))
              else (Int_map.remove id acc, e :: dropped))
        (c.pending, []) ids
    in
    let inbox = Array.copy c.inbox in
    List.iter
      (fun (e : A.message Envelope.t) ->
        inbox.(e.dst) <-
          List.filter
            (fun (m : A.message Envelope.t) -> m.id <> e.id)
            inbox.(e.dst))
      dropped;
    { c with pending; inbox }

  (* The forge pool is a pure function of (n, inputs): the explorer,
     the fuzz adversary and replay all recompute it and agree on the
     indices recorded in schedules. *)
  let forge_pool ~n ~inputs =
    A.forge_pool ~n ~values:(Fault_model.forge_values inputs)

  let exec_forge c ~id ~alt =
    match Int_map.find_opt id c.pending with
    | None ->
        raise (Invalid_action (Printf.sprintf "forge: message #%d not pending" id))
    | Some ((e : A.message Envelope.t), _) ->
        let pool = forge_pool ~n:c.n ~inputs:c.inputs in
        let size = List.length pool in
        if alt < 0 || alt >= size then
          raise
            (Invalid_action
               (Printf.sprintf "forge: index %d outside the pool (size %d)" alt
                  size));
        let payload = List.nth pool alt in
        let payload = if c.reduce then A.canon_message payload else payload in
        let plid = intern_payload payload in
        let e' = { e with Envelope.payload } in
        let triple = pack_triple e.src e.dst plid in
        let pending = Int_map.add id (e', triple) c.pending in
        let inbox = Array.copy c.inbox in
        inbox.(e.dst) <-
          List.map
            (fun (m : A.message Envelope.t) -> if m.id = id then e' else m)
            inbox.(e.dst);
        let forges = if c.explore then c.forges else (id, alt) :: c.forges in
        { c with pending; inbox; forges }

  (* Note: [Forge] is deliberately not gated on the failure pattern —
     fuzz replays run under a different pattern than the generating
     trial, and budget discipline (forge only messages of corrupted
     senders, at most [t] of them) is the generating adversary's
     obligation, pinned by the qcheck properties in
     test/test_byzantine.ml. *)
  let apply ?fd ~pattern c = function
    | Adversary.Halt -> None
    | Adversary.Step { pid; deliver } -> Some (exec_step ?fd ~pattern c pid deliver)
    | Adversary.Drop ids -> Some (exec_drop ~pattern c ids)
    | Adversary.Forge { id; alt } -> Some (exec_forge c ~id ~alt)

  (* Ungated removal of pending messages — the mobile model's
     transient omission, where the sender is healthy (it never
     crashes) yet this round's messages are lost.  Not reachable
     through {!apply}: crash-model adversaries must keep going through
     the gated [Drop], and the explorer alone generates omissions. *)
  let omit c ids =
    if ids = [] then raise (Invalid_action "empty omit");
    let pending, omitted =
      List.fold_left
        (fun (acc, omitted) id ->
          match Int_map.find_opt id acc with
          | None ->
              raise
                (Invalid_action
                   (Printf.sprintf "omit: message #%d not pending" id))
          | Some ((e : A.message Envelope.t), _) ->
              (Int_map.remove id acc, e :: omitted))
        (c.pending, []) ids
    in
    let inbox = Array.copy c.inbox in
    List.iter
      (fun (e : A.message Envelope.t) ->
        inbox.(e.dst) <-
          List.filter
            (fun (m : A.message Envelope.t) -> m.id <> e.id)
            inbox.(e.dst))
      omitted;
    { c with pending; inbox }

  let trace_of c =
    (* c.events is newest-first: prepending while iterating it yields
       chronological per-pid rows *)
    let rev_rows = Array.make c.n [] in
    List.iter
      (fun (ev : Event.t) ->
        rev_rows.(ev.pid) <-
          { Trace.state_id = ev.state_id; decision = ev.decision }
          :: rev_rows.(ev.pid))
      c.events;
    Trace.make ~init_ids:c.init_ids ~steps:rev_rows

  let finish c ~pattern status =
    {
      Run.status;
      n = c.n;
      inputs = Array.copy c.inputs;
      pattern;
      events = events c;
      trace = trace_of c;
      decisions = decisions c;
      forges = List.rev c.forges;
    }

  let run_full ?(max_steps = 100_000) ?fd ~n ~inputs ~pattern
      (adv : Adversary.t) =
    let all_correct_decided c =
      List.for_all
        (fun p -> c.decided.(p) <> None)
        (Failure_pattern.correct pattern)
    in
    let rec loop c steps_left =
      if steps_left <= 0 then (finish c ~pattern Run.Hit_step_budget, c)
      else
        match adv.Adversary.next (observe ~pattern c) with
        | Adversary.Halt ->
            let status =
              if all_correct_decided c then Run.All_correct_decided
              else Run.Halted_by_adversary
            in
            (finish c ~pattern status, c)
        | action -> (
            match apply ?fd ~pattern c action with
            | None -> assert false
            | Some c' ->
                let consumed =
                  match action with
                  (* a Forge consumes budget: an adversary re-forging
                     the same message forever must still terminate *)
                  | Adversary.Step _ | Adversary.Forge _ -> 1
                  | Adversary.Drop _ | Adversary.Halt -> 0
                in
                loop c' (steps_left - consumed))
    in
    loop (init ~n ~inputs) max_steps

  let run ?max_steps ?fd ~n ~inputs ~pattern adv =
    fst (run_full ?max_steps ?fd ~n ~inputs ~pattern adv)

  (* ---- canonical configuration keys ----

     One reduction-parameterized builder.  [No_reduction] emits the
     exact byte layout the pre-reduction key produced (with the
     crashed mask in the old leading [extra] slot), so unreduced
     campaigns — and their checkpoints — are bit-compatible across the
     refactor.  The symmetry modes hand the interned rows to
     {!Canon.canonicalize} and serialize the orbit representative. *)

  type key = string

  let triples_of c =
    let m = Int_map.cardinal c.pending in
    let triples = Array.make m 0 in
    let i = ref 0 in
    Int_map.iter
      (fun _ (_, t) ->
        triples.(!i) <- t;
        incr i)
      c.pending;
    triples

  let key ?(crashed = 0) ?(reduction = Canon.No_reduction) c =
    match reduction with
    | Canon.Symmetry | Canon.Symmetry_por ->
        Canon.serialize ~crashed
          (Canon.canonicalize
             {
               Canon.n = c.n;
               crashed;
               state_ids = c.state_ids;
               decided = Array.map (Option.map fst) c.decided;
               triples = triples_of c;
             })
    | Canon.No_reduction ->
        let n = c.n in
        let triples = triples_of c in
        let m = Array.length triples in
        let sids = c.state_ids in
        Array.sort (fun (a : int) b -> compare a b) triples;
        let d = ref 0 in
        for p = 0 to n - 1 do
          if c.decided.(p) <> None then incr d
        done;
        (* exact little-endian int sequence: crashed mask; per-pid
           state ids; |decided|; (pid, value) pairs; |pending|; sorted
           triples — key equality iff semantic cores are structurally
           equal *)
        let b = Bytes.create (8 * (3 + n + (2 * !d) + m)) in
        let pos = ref 0 in
        let add i =
          Bytes.set_int64_le b !pos (Int64.of_int i);
          pos := !pos + 8
        in
        add crashed;
        for p = 0 to n - 1 do
          add sids.(p)
        done;
        add !d;
        for p = 0 to n - 1 do
          match c.decided.(p) with
          | Some (v, _) ->
              add p;
              add v
          | None -> ()
        done;
        add m;
        Array.iter add triples;
        Bytes.unsafe_to_string b

  let key_equal = String.equal
  let key_hash = Hashtbl.hash

  (* Destination-pid bitmask of the messages sent by the step that
     produced [c'] from [c].  Message ids are allocated monotonically
     and a step's sends cannot be delivered within the same step, so
     they are exactly the pending envelopes with ids at or above [c]'s
     next free id. *)
  let sends_between c c' =
    if c'.next_id = c.next_id then 0
    else
      Int_map.fold
        (fun id ((e : A.message Envelope.t), _) acc ->
          if id >= c.next_id then acc lor (1 lsl e.dst) else acc)
        c'.pending 0

  (* content signature of a delivery batch for the DPOR sleep sets:
     sorted (src, payload id) pairs, independent of message-id
     numbering *)
  let delivery_signature c ids =
    List.sort compare
      (List.map
         (fun id ->
           match Int_map.find_opt id c.pending with
           | Some (_, t) -> Canon.triple_content t
           | None ->
               raise
                 (Invalid_action
                    (Printf.sprintf "message #%d not pending" id)))
         ids)
end
