module Rng = Ksa_prim.Rng

type t = Crash | Byzantine of int | Mobile of int

let crash = Crash

let byzantine t =
  if t < 0 then invalid_arg "Fault_model.byzantine: negative budget";
  Byzantine t

let mobile t =
  if t < 0 then invalid_arg "Fault_model.mobile: negative budget";
  Mobile t

let budget = function Crash -> 0 | Byzantine t | Mobile t -> t

(* The crash budget is a separate knob for the crash model (the
   explorer's [~crash_budget]); the corruption models carry their own
   budget.  This helper resolves the effective budget of a campaign. *)
let budget_or ~crash_budget = function
  | Crash -> crash_budget
  | Byzantine t | Mobile t -> t

let tag = function
  | Crash -> "crash"
  | Byzantine _ -> "byzantine"
  | Mobile _ -> "mobile"

let to_string = function
  | Crash -> "crash"
  | Byzantine t -> Printf.sprintf "byzantine:%d" t
  | Mobile t -> Printf.sprintf "mobile:%d" t

let of_string s =
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "crash" -> Ok Crash
      | "byzantine" -> Ok (Byzantine 1)
      | "mobile" -> Ok (Mobile 1)
      | _ -> Error (Printf.sprintf "unknown fault model %S" s))
  | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match (kind, int_of_string_opt arg) with
      | _, Some t when t < 0 ->
          Error (Printf.sprintf "fault model %S: negative budget" s)
      | "byzantine", Some t -> Ok (Byzantine t)
      | "mobile", Some t -> Ok (Mobile t)
      | "crash", Some 0 -> Ok Crash
      | "crash", Some _ ->
          Error "crash takes its budget from --crash-budget, not the model"
      | _, _ -> Error (Printf.sprintf "unknown fault model %S" s))

let equal a b =
  match (a, b) with
  | Crash, Crash -> true
  | Byzantine a, Byzantine b | Mobile a, Mobile b -> a = b
  | (Crash | Byzantine _ | Mobile _), _ -> false

let pp ppf m = Format.pp_print_string ppf (to_string m)

(* ---- mobile faulty-set sampling ----

   The per-round faulty set of a mobile adversary, shared by the fuzz
   adversary and the Heard-Of assignment so both engines resample the
   same sets from the same seed: a pure function of (seed, n, t,
   round), at most [t] processes, constant within a round by
   construction.  [Rng.split_at] keys the round's generator off the
   campaign seed, so consecutive rounds draw independent sets and no
   call-order dependence can leak in. *)
let mobile_faulty ~seed ~n ~t ~round =
  if t <= 0 || n <= 0 then []
  else
    let rng = Rng.split_at (Rng.create ~seed) round in
    let k = min t n in
    let size = Rng.int rng (k + 1) in
    List.sort compare (Rng.sample rng size (List.init n Fun.id))

(* ---- forged-payload candidate values ----

   The value domain a Byzantine sender may inject: every proposed
   input plus one value outside the proposal set (so validity-breaking
   forgeries are expressible).  Deterministic in the inputs — every
   engine derives the identical candidate list, which keeps forge-pool
   indices meaningful across sim, explorer and replay. *)
let forge_values inputs =
  let vs = List.sort_uniq Value.compare (Array.to_list inputs) in
  vs @ [ 1 + List.fold_left (fun acc v -> max acc v) 0 vs ]
