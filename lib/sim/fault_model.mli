(** The shared fault-model abstraction consumed by all three engines
    (async sim, Heard-Of rounds, explorer).

    - [Crash]: the baseline model — processes stop permanently, their
      in-flight messages may be dropped.  The budget is the engine's
      crash budget ([--crash-budget]).
    - [Byzantine t]: up to [t] corrupted processes.  A corrupted
      process subsumes every crash behaviour (it may stop, its
      messages may be dropped) and additionally its in-flight messages
      may be {e forged}: the payload of a pending message is replaced
      by an entry of the algorithm's forge pool.  Forging is
      per-message, hence per-receiver — two receivers may see
      different payloads from the same corrupted sender in the same
      round (equivocation).
    - [Mobile t]: transient faults with no permanent faulty set.  In
      each round up to [t] processes are faulty; their messages for
      that round may be omitted, but they themselves keep running and
      a process faulty in round [r] is healthy in round [r+1] unless
      resampled.  Nobody ever crashes.

    At budget 0 all three models coincide: no process is ever faulty,
    no message is ever dropped or forged, and the explorers produce
    bit-identical graphs (pinned by test/test_byzantine.ml). *)

type t = Crash | Byzantine of int | Mobile of int

val crash : t

val byzantine : int -> t
(** @raise Invalid_argument on a negative budget *)

val mobile : int -> t
(** @raise Invalid_argument on a negative budget *)

val budget : t -> int
(** The model's own budget; 0 for [Crash] (whose budget is the
    engine's crash budget). *)

val budget_or : crash_budget:int -> t -> int
(** Effective campaign budget: [crash_budget] under [Crash], the
    model's own budget otherwise. *)

val tag : t -> string
(** The model kind without its budget: ["crash" | "byzantine" |
    "mobile"]. *)

val to_string : t -> string
(** Round-trips with {!of_string}: ["crash"], ["byzantine:2"],
    ["mobile:1"]. *)

val of_string : string -> (t, string) result
(** Accepts ["crash"], ["byzantine:<t>"], ["mobile:<t>"], and the
    bare kinds ["byzantine"] / ["mobile"] (budget 1). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val mobile_faulty : seed:int -> n:int -> t:int -> round:int -> Pid.t list
(** The faulty set of round [round] under a mobile adversary: a pure
    function of its arguments, sorted, at most [t] pids.  Shared by
    the fuzz adversary and {!Ksa_ho.Assignment.mobile} so the async
    and round-based engines resample identical sets. *)

val forge_values : Value.t array -> Value.t list
(** Candidate values for forged payloads, derived from the proposal
    inputs: the distinct proposed values plus one fresh value outside
    the proposal set.  Deterministic, so forge-pool indices agree
    across engines and across save/replay. *)
