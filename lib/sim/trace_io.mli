(** Textual serialization of schedules and traces.

    A schedule (the {!Replay.step_desc} list of a run) is the
    portable, replayable artifact of an execution: together with the
    algorithm, the inputs and the failure pattern it reproduces the
    run exactly.  The format is line-oriented and stable:

    {v
    # ksa schedule v1
    2: 0.1 1.1
    0:
    v}

    — process p2 steps receiving the 1st message of channel p0→p2 and
    the 1st of p1→p2, then p0 steps receiving nothing. *)

val schedule_to_string : Replay.step_desc list -> string

val schedule_of_string : string -> (Replay.step_desc list, string) result
(** Parses the format above; tolerates blank lines and [#] comments. *)

val save_schedule : path:string -> Replay.step_desc list -> (unit, string) result
(** Atomic write via {!Ksa_prim.Durable.write_atomic}.  Never raises:
    an unwritable path or full disk is an [Error] naming the path,
    and the target is never left half-written. *)

val load_schedule : path:string -> (Replay.step_desc list, string) result
(** Never raises: I/O failures (nonexistent path included) and parse
    failures are returned as [Error] with the offending path in the
    message. *)

val schedule_of_run : Run.t -> Replay.step_desc list
(** The full schedule ([project ~keep:(fun _ -> true)]). *)

val pp_events : Format.formatter -> Run.t -> unit
(** Human-readable event-by-event dump of a run. *)
