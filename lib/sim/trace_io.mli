(** Textual serialization of schedules and traces.

    A schedule (the {!Replay.step_desc} list of a run) is the
    portable, replayable artifact of an execution: together with the
    algorithm, the inputs, the fault model and the failure pattern it
    reproduces the run exactly.  The format is line-oriented and
    stable:

    {v
    # ksa schedule v1
    # model: byzantine:1
    2: 0.1 1.1!2
    0:
    v}

    — process p2 steps receiving the 1st message of channel p0→p2 and
    the 1st of p1→p2 with its payload forged to entry 2 of the
    algorithm's forge pool, then p0 steps receiving nothing.  The
    [# model:] line is omitted for crash schedules, so pre-model files
    parse unchanged (as crash); a forged [src.seq!alt] token in a
    schedule that declares (or defaults to) the crash model is a named
    parse [Error] — it must never silently replay under crash
    semantics. *)

val schedule_to_string :
  ?model:Fault_model.t -> Replay.step_desc list -> string
(** [model] defaults to [Crash] (no [# model:] line, byte-identical to
    the pre-model format). *)

val schedule_of_string :
  ?expect:Fault_model.t -> string -> (Replay.step_desc list, string) result
(** Parses the format above; tolerates blank lines and [#] comments.
    When [expect] is given and its {!Fault_model.tag} differs from the
    schedule's declared model, returns a named [Error] telling the
    caller which [--model] to pass — cross-model replay is
    unsupported. *)

val schedule_model_of_string : string -> (Fault_model.t, string) result
(** The fault model a schedule declares ([Crash] if untagged). *)

val save_schedule :
  ?model:Fault_model.t ->
  path:string ->
  Replay.step_desc list ->
  (unit, string) result
(** Atomic write via {!Ksa_prim.Durable.write_atomic}.  Never raises:
    an unwritable path or full disk is an [Error] naming the path,
    and the target is never left half-written. *)

val load_schedule :
  ?expect:Fault_model.t ->
  path:string ->
  unit ->
  (Replay.step_desc list, string) result
(** Never raises: I/O failures (nonexistent path included), parse
    failures and an [expect] model mismatch are returned as [Error]
    with the offending path in the message. *)

val schedule_of_run : Run.t -> Replay.step_desc list
(** The full schedule ([project ~keep:(fun _ -> true)]). *)

val pp_events : Format.formatter -> Run.t -> unit
(** Human-readable event-by-event dump of a run. *)
