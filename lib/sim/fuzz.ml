module Rng = Ksa_prim.Rng
module Metrics = Ksa_prim.Metrics
module Listx = Ksa_prim.Listx
module Intern = Ksa_prim.Intern

type weights = {
  deliver_all : int;
  deliver_some : int;
  deliver_none : int;
  drop : int;
  undecided_bias : int;
}

let fair_weights =
  { deliver_all = 1; deliver_some = 0; deliver_none = 0; drop = 0; undecided_bias = 3 }

let default_weights =
  { deliver_all = 5; deliver_some = 3; deliver_none = 2; drop = 2; undecided_bias = 3 }

let check_weights w =
  if w.deliver_all < 0 || w.deliver_some < 0 || w.deliver_none < 0 || w.drop < 0
     || w.undecided_bias < 0
  then invalid_arg "Fuzz: negative weight";
  if w.deliver_all + w.deliver_some + w.deliver_none <= 0 then
    invalid_arg "Fuzz: at least one step weight must be positive"

type property =
  | K_agreement of int
  | Validity
  | Termination
  | Custom of string * (Run.t -> string option)

let property_name = function
  | K_agreement k -> Printf.sprintf "%d-agreement" k
  | Validity -> "validity"
  | Termination -> "termination"
  | Custom (name, _) -> name

type config = {
  n : int;
  inputs : Value.t array;
  pattern : Failure_pattern.t;
  weights : weights;
  max_crashes : int;
  max_steps : int;
  properties : property list;
  stop : (unit -> bool) option;
  model : Fault_model.t;
  coverage : bool;
}

let default_config ?(k = 1) ~n () =
  {
    n;
    inputs = Value.distinct_inputs n;
    pattern = Failure_pattern.none ~n;
    weights = default_weights;
    max_crashes = 0;
    max_steps = 200;
    properties = [ K_agreement k; Validity ];
    stop = None;
    coverage = false;
    model = Fault_model.Crash;
  }

type violation = {
  trial : int;
  property : string;
  reason : string;
  pattern : Failure_pattern.t;
  run : Run.t;
  schedule : Replay.step_desc list;
  shrunk : Replay.step_desc list;
  shrink_candidates : int;
}

type outcome =
  | Violation_found of violation
  | Clean of { trials : int }
  | Budget_exhausted of { trials : int }

(* live counters; the authoritative per-campaign figures are in the
   returned outcome (the parallel driver may run trials beyond the
   first violation, so raw counters can exceed the canonical count) *)
let m_trials = Metrics.counter "fuzz.trials"
let m_violations = Metrics.counter "fuzz.violations"
let m_shrink_candidates = Metrics.counter "fuzz.shrink.candidates"
let m_domains = Metrics.counter "fuzz.domains.spawned"
let t_trial = Metrics.timer "fuzz.trial"
let t_shrink = Metrics.timer "fuzz.shrink"
let g_first = Metrics.gauge "fuzz.first_violation.trial"
let g_schedule_len = Metrics.gauge "fuzz.schedule.len"
let g_shrunk_len = Metrics.gauge "fuzz.shrunk.len"

(* greybox coverage instruments, refreshed at every corpus fold and
   finalized at campaign end *)
let g_cov_ids = Metrics.gauge "fuzz.cov.ids"
let g_cov_pairs = Metrics.gauge "fuzz.cov.pairs"
let g_cov_corpus = Metrics.gauge "fuzz.cov.corpus"
let m_cov_admitted = Metrics.counter "fuzz.cov.admitted"
let m_cov_mutants = Metrics.counter "fuzz.cov.mutants"
let m_cov_fresh = Metrics.counter "fuzz.cov.fresh"
let m_poisoned = Metrics.counter "fuzz.tickets_poisoned"

let () =
  Metrics.probe "fuzz.schedules_per_sec" (fun () ->
      let ns = Metrics.timer_ns t_trial in
      if ns <= 0 then 0 else Metrics.value m_trials * 1_000_000_000 / ns);
  Metrics.probe "fuzz.cov.ids_per_sec" (fun () ->
      let ns = Metrics.timer_ns t_trial in
      if ns <= 0 then 0
      else Metrics.gauge_value g_cov_ids * 1_000_000_000 / ns)

(* Delta debugging (Zeller & Hildebrandt's ddmin) over a step list:
   returns a subsequence on which [test] still holds and from which no
   single element can be removed without losing it (1-minimality). *)
let ddmin ~test xs =
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 then xs
    else
      let n = min n len in
      let size = max 1 ((len + n - 1) / n) in
      let chunks = Listx.chunks size xs in
      let rec try_subsets = function
        | [] -> None
        | c :: rest -> if test c then Some c else try_subsets rest
      in
      let rec try_complements i =
        if i >= List.length chunks then None
        else
          let comp =
            List.concat (List.filteri (fun j _ -> j <> i) chunks)
          in
          if test comp then Some comp else try_complements (i + 1)
      in
      match try_subsets chunks with
      | Some c -> go c 2
      | None -> (
          match try_complements 0 with
          | Some comp -> go comp (max (n - 1) 2)
          | None -> if size > 1 then go xs (min len (2 * n)) else xs)
  in
  if test [] then [] else go xs 2

(* ---------- coverage-guided (greybox) machinery ----------

   The interner already assigns a dense id to every process state any
   run reaches, so an AFL-style coverage map comes for free: a bitmap
   over state ids plus a set of (previous-id, next-id) transition
   pairs.  A trial whose run lights any new bit donates its executed
   schedule to a corpus; later trials mutate corpus entries instead
   of always sampling fresh schedules, with an energy schedule that
   favors entries holding rarely-hit ids.

   Determinism is the whole design problem.  Trial [i] must stay a
   pure function of (config, seed, i) — the contract every parity and
   resume test pins — yet mutation needs the corpus, which is built
   from other trials' results.  The resolution is epoch-frozen
   visibility: trials are grouped into fixed-size epochs, and a trial
   in epoch [e] is generated against the corpus state obtained by
   folding exactly the clean trials of epochs [0..e-1], in trial
   order.  Folds happen when the clean-trial watermark (the same
   contiguous-prefix watermark the checkpoints use) crosses an epoch
   boundary, so the parallel driver folds the identical updates in
   the identical order as the sequential one, no matter how its
   domains interleave.  Violating trials contribute nothing (the
   sequential driver stops at the first one, so folding them would
   break parity).

   The per-epoch generation state is published as an immutable [view]
   (entry array plus cumulative energy weights); workers read only
   views, and the mutable master state is touched only while holding
   the caller's lock (the watermark mutex, in the parallel driver).

   All tuning constants below are part of the deterministic contract:
   changing one changes campaign outcomes, exactly like changing the
   seed. *)

module Cov = struct
  let epoch = 16 (* trials per corpus-visibility epoch *)
  let corpus_cap = 128 (* entries kept; lowest-energy evicted *)
  let rare_cap = 16 (* new ids remembered per entry for rarity *)
  let rare_cutoff = 8 (* hit count at or below which an id is rare *)
  let fresh_odds = 4 (* 1-in-[fresh_odds] trials sample fresh *)

  (* a transition pair packed into one int; state ids are dense from
     0 so 31 bits each fits comfortably in OCaml's 63-bit ints *)
  let pack a b = (a lsl 31) lor b

  type entry = {
    en_pattern : Failure_pattern.t;
    en_sched : Replay.step_desc list; (* executed schedule as admitted *)
    en_new : int; (* ids + pairs first seen in that run *)
    en_rare : int list; (* up to [rare_cap] of the new state ids *)
  }

  type master = {
    mutable bits : Bytes.t; (* bit [i] set iff state id [i] seen *)
    mutable ids : int; (* population count of [bits] *)
    mutable hits : int array; (* folded-update touch count per id *)
    pairs : (int, unit) Hashtbl.t; (* packed transition pairs *)
    mutable corpus : entry list; (* newest first *)
    mutable size : int;
  }

  (* the interner watermark is a cheap, lock-free capacity hint: runs
     before this campaign already interned that many state ids, so
     start the bitmap there instead of growing through every
     power of two (content is unaffected — the bits start zero) *)
  let create_master () =
    let hint = (Intern.watermark Intern.states / 8) + 1 in
    {
      bits = Bytes.make (max 128 hint) '\000';
      ids = 0;
      hits = Array.make (max 1024 (8 * hint)) 0;
      pairs = Hashtbl.create 1024;
      corpus = [];
      size = 0;
    }

  let ensure_bits m id =
    let need = (id lsr 3) + 1 in
    if Bytes.length m.bits < need then begin
      let fresh = Bytes.make (max need (2 * Bytes.length m.bits)) '\000' in
      Bytes.blit m.bits 0 fresh 0 (Bytes.length m.bits);
      m.bits <- fresh
    end

  let test_bit m id =
    id lsr 3 < Bytes.length m.bits
    && Char.code (Bytes.get m.bits (id lsr 3)) land (1 lsl (id land 7)) <> 0

  let set_bit m id =
    ensure_bits m id;
    Bytes.set m.bits (id lsr 3)
      (Char.chr
         (Char.code (Bytes.get m.bits (id lsr 3)) lor (1 lsl (id land 7))))

  let ensure_hits m id =
    if id >= Array.length m.hits then begin
      let fresh = Array.make (max (id + 1) (2 * Array.length m.hits)) 0 in
      Array.blit m.hits 0 fresh 0 (Array.length m.hits);
      m.hits <- fresh
    end

  (* what one clean trial contributes, extracted from its recorded
     trace: the distinct state ids it touched, the distinct transition
     pairs, and its executed schedule (for corpus admission) *)
  type update = {
    up_ids : int array; (* sorted distinct *)
    up_pairs : int array; (* sorted distinct, packed *)
    up_pattern : Failure_pattern.t;
    up_sched : Replay.step_desc list;
  }

  let sorted_keys h =
    let a = Array.of_seq (Hashtbl.to_seq_keys h) in
    Array.sort compare a;
    a

  let update_of_run ~pattern (run : Run.t) =
    let tr = run.Run.trace in
    let idset = Hashtbl.create 64 in
    let pairset = Hashtbl.create 64 in
    Array.iteri
      (fun p init ->
        Hashtbl.replace idset init ();
        let prev = ref init in
        Array.iter
          (fun (s : Trace.step) ->
            Hashtbl.replace idset s.Trace.state_id ();
            Hashtbl.replace pairset (pack !prev s.Trace.state_id) ();
            prev := s.Trace.state_id)
          tr.Trace.steps.(p))
      tr.Trace.init_ids;
    {
      up_ids = sorted_keys idset;
      up_pairs = sorted_keys pairset;
      up_pattern = pattern;
      up_sched = Trace_io.schedule_of_run run;
    }

  let energy m e =
    let rare =
      List.fold_left
        (fun acc id ->
          if id < Array.length m.hits && m.hits.(id) <= rare_cutoff then
            acc + 1
          else acc)
        0 e.en_rare
    in
    1 + min e.en_new 32 + (8 * rare)

  (* deterministic eviction: drop the oldest entry of minimal energy
     ([<=] while scanning newest-first lands on the last, i.e. oldest,
     minimum) *)
  let evict m =
    let arr = Array.of_list m.corpus in
    let worst = ref 0 in
    Array.iteri
      (fun i e -> if energy m e <= energy m arr.(!worst) then worst := i)
      arr;
    let w = !worst in
    m.corpus <- List.filteri (fun i _ -> i <> w) m.corpus;
    m.size <- m.size - 1

  let publish_gauges m =
    Metrics.gauge_set g_cov_ids m.ids;
    Metrics.gauge_set g_cov_pairs (Hashtbl.length m.pairs);
    Metrics.gauge_set g_cov_corpus m.size

  let fold_update m (u : update) =
    let news = ref 0 in
    let rare = ref [] in
    let nrare = ref 0 in
    Array.iter
      (fun id ->
        ensure_hits m id;
        if not (test_bit m id) then begin
          set_bit m id;
          m.ids <- m.ids + 1;
          incr news;
          if !nrare < rare_cap then begin
            rare := id :: !rare;
            incr nrare
          end
        end;
        m.hits.(id) <- m.hits.(id) + 1)
      u.up_ids;
    Array.iter
      (fun pk ->
        if not (Hashtbl.mem m.pairs pk) then begin
          Hashtbl.add m.pairs pk ();
          incr news
        end)
      u.up_pairs;
    if !news > 0 && u.up_sched <> [] then begin
      Metrics.incr m_cov_admitted;
      m.corpus <-
        {
          en_pattern = u.up_pattern;
          en_sched = u.up_sched;
          en_new = !news;
          en_rare = List.rev !rare;
        }
        :: m.corpus;
      m.size <- m.size + 1;
      if m.size > corpus_cap then evict m
    end

  (* an immutable per-epoch generation snapshot: entries in admission
     order with cumulative energy weights, so weighted parent picks
     never read the mutable master *)
  type view = { entries : entry array; cum : int array; total : int }

  let view_of m =
    let entries = Array.of_list (List.rev m.corpus) in
    let cum = Array.make (Array.length entries) 0 in
    let total = ref 0 in
    Array.iteri
      (fun i e ->
        total := !total + energy m e;
        cum.(i) <- !total)
      entries;
    { entries; cum; total = !total }

  let pick_entry v r =
    (* first index whose cumulative weight exceeds r; linear scan is
       fine at [corpus_cap] entries *)
    let n = Array.length v.entries in
    let rec go i = if i >= n - 1 || v.cum.(i) > r then i else go (i + 1) in
    v.entries.(go 0)

  (* per-campaign coverage state: [master] folded through every trial
     below [base] (always an epoch boundary), clean-trial updates at
     or above [base] buffered in [pending], and the generation view
     for each folded epoch boundary in [views].  Mutated only under
     the campaign's watermark discipline: the sequential driver owns
     it outright, the parallel driver guards every access with the
     watermark mutex. *)
  type box = {
    mutable master : master;
    mutable base : int;
    pending : (int, update) Hashtbl.t;
    views : (int, view) Hashtbl.t;
  }

  let epoch_floor i = i - (i mod epoch)

  (* fold every complete epoch up to [target] (an epoch boundary; all
     clean updates below it must be pending), registering the
     generation view at each boundary crossed *)
  let fold_to b target =
    while b.base < target do
      for i = b.base to b.base + epoch - 1 do
        match Hashtbl.find_opt b.pending i with
        | Some u ->
            fold_update b.master u;
            Hashtbl.remove b.pending i
        | None -> ()
      done;
      b.base <- b.base + epoch;
      Hashtbl.replace b.views b.base (view_of b.master);
      publish_gauges b.master
    done

  (* fold whatever clean updates remain (the trailing partial epoch),
     in trial order — campaign-end finalization so the coverage
     gauges report the whole campaign, never for generation *)
  let fold_tail b =
    let idxs =
      List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) b.pending [])
    in
    List.iter
      (fun i ->
        match Hashtbl.find_opt b.pending i with
        | Some u ->
            fold_update b.master u;
            Hashtbl.remove b.pending i
        | None -> ())
      idxs;
    publish_gauges b.master
end

(* ---------- checkpoint payload (schema version 4) ---------- *)

(* What a fuzz checkpoint carries.  For a blind campaign the trial
   watermark alone is the whole resumable state (trial [i] is a pure
   function of (config, seed, i)).  A coverage campaign additionally
   carries the corpus machinery in canonical form: the master folded
   to exactly [epoch_floor watermark] plus the pending updates of the
   current partial epoch, in trial order — the same state the
   uninterrupted campaign holds at that watermark, so resume is
   bit-identical, corpus included. *)
type cov_state = {
  cs_base : int;
  cs_master : Cov.master;
  cs_pending : (int * Cov.update) list; (* sorted; trials in [base, wm) *)
}

type payload = {
  pl_trial : int;
  pl_cov : cov_state option;
  pl_model : string; (* Fault_model.to_string of the campaign's model *)
}

let fuzz_snap ~model i () =
  Marshal.to_string { pl_trial = i; pl_cov = None; pl_model = model } []

let decode_payload s = (Marshal.from_string s 0 : payload)

(* the trial stream is a pure function of (config, seed, i), and the
   model is part of the config: a payload written under a different
   --model (budget included) describes a different stream — warn and
   start fresh, exactly the explorer's --reduction policy *)
let warn_model_mismatch ~want ~got =
  Printf.eprintf
    "ksa: checkpoint was written under --model %s, not %s — starting a \
     fresh campaign\n\
     %!"
    got
    (Fault_model.to_string want)

(* canonical coverage payload at watermark [wm]; caller holds the
   box's lock (parallel driver) or owns it (sequential) *)
let cov_payload ~model wm (b : Cov.box) =
  Cov.fold_to b (Cov.epoch_floor wm);
  let pend =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold
         (fun i u acc -> if i < wm then (i, u) :: acc else acc)
         b.Cov.pending [])
  in
  {
    pl_trial = wm;
    pl_cov =
      Some { cs_base = b.Cov.base; cs_master = b.Cov.master; cs_pending = pend };
    pl_model = model;
  }

(* rebuild a campaign's coverage box for trials starting at [start] *)
let box_of_state ~start (cs : cov_state option) =
  let b =
    match cs with
    | None ->
        {
          Cov.master = Cov.create_master ();
          base = Cov.epoch_floor start;
          pending = Hashtbl.create 64;
          views = Hashtbl.create 32;
        }
    | Some cs ->
        let b =
          {
            Cov.master = cs.cs_master;
            base = cs.cs_base;
            pending = Hashtbl.create 64;
            views = Hashtbl.create 32;
          }
        in
        List.iter (fun (i, u) -> Hashtbl.replace b.Cov.pending i u) cs.cs_pending;
        b
  in
  Hashtbl.replace b.Cov.views b.Cov.base (Cov.view_of b.Cov.master);
  Cov.publish_gauges b.Cov.master;
  b

type coverage_summary = {
  cov_trials : int;
  cov_ids : int;
  cov_pairs : int;
  cov_corpus : (Failure_pattern.t * Replay.step_desc list) list;
}

let coverage_of_payload s =
  let p = decode_payload s in
  match p.pl_cov with
  | None -> None
  | Some cs ->
      (* fold the pending partial epoch into the freshly unmarshaled
         master (a private copy) so the summary reflects the exact
         watermark state *)
      let b = box_of_state ~start:p.pl_trial (Some cs) in
      Cov.fold_tail b;
      let m = b.Cov.master in
      Some
        {
          cov_trials = p.pl_trial;
          cov_ids = m.Cov.ids;
          cov_pairs = Hashtbl.length m.Cov.pairs;
          cov_corpus =
            List.rev_map
              (fun (e : Cov.entry) -> (e.Cov.en_pattern, e.Cov.en_sched))
              m.Cov.corpus;
        }

module Make (A : Algorithm.S) = struct
  module E = Engine.Make (A)

  (* Crash budget of a trial pattern: under [Byzantine t] the
     corrupted set rides the failure pattern (corruption subsumes
     crashing) with budget [t]; under [Mobile] nobody ever crashes. *)
  let effective_max_crashes (cfg : config) =
    match cfg.model with
    | Fault_model.Crash -> cfg.max_crashes
    | Fault_model.Byzantine t -> t
    | Fault_model.Mobile _ -> 0

  (* the forge pool is empty unless the model is Byzantine *)
  let forge_alts_of (cfg : config) =
    match cfg.model with
    | Fault_model.Byzantine _ ->
        List.length (E.forge_pool ~n:cfg.n ~inputs:cfg.inputs)
    | Fault_model.Crash | Fault_model.Mobile _ -> 0

  (* the base pattern plus up to [max_crashes] randomly drawn crash
     times among the processes it leaves correct *)
  let trial_pattern (cfg : config) rng =
    let max_crashes = effective_max_crashes cfg in
    if max_crashes <= 0 then cfg.pattern
    else
      let base =
        List.filter_map
          (fun p ->
            Option.map (fun t -> (p, t)) (Failure_pattern.crash_time cfg.pattern p))
          (Pid.universe cfg.n)
      in
      let correct = Failure_pattern.correct cfg.pattern in
      let c = min (Rng.int rng (max_crashes + 1)) (List.length correct) in
      let victims = Rng.sample rng c correct in
      let extra =
        List.map (fun p -> (p, Rng.int rng (cfg.max_steps + 1))) victims
      in
      Failure_pattern.of_crash_times ~n:cfg.n (base @ extra)

  let nonempty_subset rng = function
    | [] -> invalid_arg "Fuzz.nonempty_subset"
    | xs -> (
        match List.filter (fun _ -> Rng.bool rng) xs with
        | [] -> [ List.nth xs (Rng.int rng (List.length xs)) ]
        | some -> some)

  (* Model-aware weighted adversary.  Under [Crash] the RNG draw
     sequence is bit-identical to the pre-model adversary: the forge
     arm only enters the roll when the model is Byzantine and some
     message is forgeable, and the mobile seed is only drawn under
     [Mobile] — crash campaigns reproduce unchanged.

     Byzantine: the forge arm (weighted like the drop arm) picks one
     pending message of an already-corrupted sender and replaces its
     payload with a random forge-pool entry; budget discipline is
     inherited from the trial pattern (at most [t] corrupted
     processes), pinned by the qcheck properties in
     test/test_byzantine.ml.

     Mobile: the per-round faulty set is [Fault_model.mobile_faulty]
     of a per-adversary seed, with rounds as windows of [n] steps.  A
     message sent while its sender was faulty is {e omitted} — this
     adversary never delivers it (keyed on [sent_at], so the omission
     is permanent: mobile faults are not message delays). *)
  let fuzz_adversary (cfg : config) rng =
    let w = cfg.weights in
    let forge_alts = forge_alts_of cfg in
    let mobile =
      match cfg.model with
      | Fault_model.Mobile t when t > 0 ->
          Some (t, Rng.int rng 0x3FFFFFFF)
      | Fault_model.Mobile _ | Fault_model.Crash | Fault_model.Byzantine _ ->
          None
    in
    let omitted (m : Adversary.pending) =
      match mobile with
      | None -> false
      | Some (t, seed) ->
          let round = m.sent_at / max 1 cfg.n in
          List.mem m.src
            (Fault_model.mobile_faulty ~seed ~n:cfg.n ~t ~round)
    in
    let next obs =
      if Adversary.all_correct_decided obs then Adversary.Halt
      else
        match Adversary.alive obs with
        | [] -> Adversary.Halt
        | candidates ->
            let droppable = Adversary.droppable obs in
            let forgeable =
              if forge_alts = 0 then [] else Adversary.forgeable obs
            in
            let w_step = w.deliver_all + w.deliver_some + w.deliver_none in
            let w_drop = if droppable = [] then 0 else w.drop in
            let w_forge = if forgeable = [] then 0 else w.drop in
            let roll = Rng.int rng (w_step + w_drop + w_forge) in
            if roll < w_drop then Adversary.Drop (nonempty_subset rng droppable)
            else if roll < w_drop + w_forge then
              let id = List.nth forgeable (Rng.int rng (List.length forgeable)) in
              Adversary.Forge { id; alt = Rng.int rng forge_alts }
            else
              let pid =
                match Adversary.undecided_alive obs with
                | [] -> Rng.pick rng candidates
                | undecided ->
                    if
                      w.undecided_bias > 0
                      && Rng.int rng (w.undecided_bias + 1) <> 0
                    then Rng.pick rng undecided
                    else Rng.pick rng candidates
              in
              let buffer =
                if mobile = None then Adversary.pending_for obs pid
                else
                  List.filter_map
                    (fun (m : Adversary.pending) ->
                      if m.dst = pid && not (omitted m) then Some m.id
                      else None)
                    obs.pending
              in
              let roll = roll - w_drop - w_forge in
              let deliver =
                if roll < w.deliver_all then buffer
                else if roll < w.deliver_all + w.deliver_some then
                  List.filter (fun _ -> Rng.bool rng) buffer
                else []
              in
              Adversary.Step { pid; deliver }
    in
    { Adversary.describe = "fuzz"; next }

  let trial (cfg : config) ~seed i =
    check_weights cfg.weights;
    let rng = Rng.split_at (Rng.create ~seed) i in
    let pattern = trial_pattern cfg rng in
    let adv = fuzz_adversary cfg rng in
    let run =
      Metrics.time t_trial (fun () ->
          E.run ~max_steps:cfg.max_steps ~n:cfg.n ~inputs:cfg.inputs ~pattern adv)
    in
    Metrics.incr m_trials;
    (pattern, run)

  let check_property (cfg : config) run = function
    | K_agreement k ->
        let d = Run.distinct_decisions run in
        if d > k then
          Some (Printf.sprintf "%d distinct decided values, k = %d" d k)
        else None
    | Validity -> (
        let proposed v = Array.exists (Value.equal v) run.Run.inputs in
        match List.find_opt (fun v -> not (proposed v)) (Run.decided_values run) with
        | Some v ->
            Some
              (Format.asprintf "decided value %a was never proposed" Value.pp v)
        | None -> None)
    | Termination ->
        if run.Run.status = Run.Hit_step_budget && not (Run.all_correct_decided run)
        then
          Some
            (Printf.sprintf "correct process undecided after %d steps"
               cfg.max_steps)
        else None
    | Custom (_, f) -> f run

  let check_run (cfg : config) run =
    List.find_map
      (fun p ->
        Option.map (fun reason -> (p, reason)) (check_property cfg run p))
      cfg.properties

  let replay_schedule ?pattern (cfg : config) sched =
    let pattern = Option.value pattern ~default:cfg.pattern in
    E.run ~max_steps:cfg.max_steps ~n:cfg.n ~inputs:cfg.inputs ~pattern
      (Replay.sequential [ sched ])

  let shrink (cfg : config) ~pattern prop sched =
    let candidates = ref 0 in
    let test s =
      incr candidates;
      Metrics.incr m_shrink_candidates;
      Option.is_some (check_property cfg (replay_schedule ~pattern cfg s) prop)
    in
    let shrunk =
      Metrics.time t_shrink (fun () ->
          if not (test sched) then sched else ddmin ~test sched)
    in
    (shrunk, !candidates)

  let violation_of (cfg : config) i pattern run prop reason =
    Metrics.incr m_violations;
    let schedule = Trace_io.schedule_of_run run in
    let shrunk, shrink_candidates = shrink cfg ~pattern prop schedule in
    Metrics.gauge_set g_first i;
    Metrics.gauge_set g_schedule_len (List.length schedule);
    Metrics.gauge_set g_shrunk_len (List.length shrunk);
    {
      trial = i;
      property = property_name prop;
      reason;
      pattern;
      run;
      schedule;
      shrunk;
      shrink_candidates;
    }

  let resume_trial payload = (decode_payload payload).pl_trial

  (* ---------- greybox trial generation ---------- *)

  (* one mutation pass over a schedule; each arm draws from [rng] in a
     fixed order, so mutants are as deterministic as fresh trials *)
  let mutate_once (cfg : config) rng (view : Cov.view) sched =
    let len = List.length sched in
    let forge_alts = forge_alts_of cfg in
    let random_delivery () =
      (* the forged draw comes first and only under Byzantine, so
         crash-model mutation streams are bit-identical to before *)
      let forged =
        if forge_alts > 0 && Rng.int rng 4 = 0 then
          Some (Rng.int rng forge_alts)
        else None
      in
      { Replay.src = Rng.int rng cfg.n; seq = 1 + Rng.int rng 8; forged }
    in
    match Rng.int rng 4 with
    | 0 ->
        (* splice: our prefix, another entry's suffix *)
        let other =
          view.Cov.entries.(Rng.int rng (Array.length view.Cov.entries))
        in
        let olen = List.length other.Cov.en_sched in
        let cut = Rng.int rng (len + 1) in
        let ocut = Rng.int rng (olen + 1) in
        Listx.take cut sched @ Listx.drop ocut other.Cov.en_sched
    | 1 ->
        (* insert a synthetic step *)
        let pos = Rng.int rng (len + 1) in
        let deliver = List.init (Rng.int rng 3) (fun _ -> random_delivery ()) in
        let step = { Replay.pid = Rng.int rng cfg.n; deliver } in
        Listx.take pos sched @ (step :: Listx.drop pos sched)
    | 2 ->
        (* drop a chunk of steps *)
        if len = 0 then sched
        else
          let pos = Rng.int rng len in
          let k = 1 + Rng.int rng 3 in
          List.filteri (fun i _ -> i < pos || i >= pos + k) sched
    | _ ->
        (* flip the delivery subset of one step *)
        if len = 0 then sched
        else
          let pos = Rng.int rng len in
          List.mapi
            (fun i (s : Replay.step_desc) ->
              if i <> pos then s
              else
                let kept =
                  List.filter (fun _ -> Rng.bool rng) s.Replay.deliver
                in
                let deliver =
                  if Rng.int rng 3 = 0 then random_delivery () :: kept
                  else kept
                in
                { s with Replay.deliver })
            sched

  (* the [i]-th trial of a coverage campaign, a pure function of
     (config, seed, i, view) — and [view] is itself a pure function
     of (config, seed, epoch_floor i), so the blind contract holds *)
  let cov_trial (cfg : config) ~seed (view : Cov.view) i =
    check_weights cfg.weights;
    let rng = Rng.split_at (Rng.create ~seed) i in
    let roll = Rng.int rng Cov.fresh_odds in
    let pattern, adv =
      if view.Cov.total = 0 || roll = 0 then begin
        Metrics.incr m_cov_fresh;
        let pattern = trial_pattern cfg rng in
        (pattern, fuzz_adversary cfg rng)
      end
      else begin
        Metrics.incr m_cov_mutants;
        let parent = Cov.pick_entry view (Rng.int rng view.Cov.total) in
        let sched = ref parent.Cov.en_sched in
        let ops = 1 + Rng.int rng 2 in
        for _ = 1 to ops do
          sched := mutate_once cfg rng view !sched
        done;
        ( parent.Cov.en_pattern,
          Replay.lenient ~rest:(fuzz_adversary cfg rng) !sched )
      end
    in
    let run =
      Metrics.time t_trial (fun () ->
          E.run ~max_steps:cfg.max_steps ~n:cfg.n ~inputs:cfg.inputs ~pattern
            adv)
    in
    Metrics.incr m_trials;
    (pattern, run)

  (* ---------- sequential driver ---------- *)

  (* Checkpoint payload of a fuzz campaign: the watermark — the
     lowest trial index such that every trial below it completed
     clean — plus, in coverage mode, the canonical corpus state at
     that watermark.  Because trial [i] is a pure function of
     (config, seed, i) (given, in coverage mode, the corpus state the
     payload restores), a resumed campaign re-derives every later
     trial (and any violation, its shrink included) bit-identically. *)

  let run_cov ?on_trial ~ckpt ~start ~cov0 (cfg : config) ~seed ~trials =
    let stopped () = match cfg.stop with Some f -> f () | None -> false in
    let b = box_of_state ~start cov0 in
    let mtag = Fault_model.to_string cfg.model in
    let wm = ref start in
    let snap () = Marshal.to_string (cov_payload ~model:mtag !wm b) [] in
    let finish outcome =
      Cov.fold_tail b;
      outcome
    in
    let rec go i =
      if i >= trials then finish (Clean { trials })
      else if Checkpoint.interrupted ckpt then begin
        Checkpoint.flush ckpt snap;
        finish (Budget_exhausted { trials = i })
      end
      else if stopped () then begin
        Checkpoint.flush ckpt snap;
        finish (Budget_exhausted { trials = i })
      end
      else begin
        Cov.fold_to b (Cov.epoch_floor i);
        let view = Hashtbl.find b.Cov.views (Cov.epoch_floor i) in
        let pattern, r = cov_trial cfg ~seed view i in
        let () = Option.iter (fun f -> f i r) on_trial in
        match check_run cfg r with
        | None ->
            Hashtbl.replace b.Cov.pending i (Cov.update_of_run ~pattern r);
            wm := i + 1;
            Checkpoint.tick ckpt ~items:(i + 1) snap;
            go (i + 1)
        | Some (prop, reason) ->
            finish (Violation_found (violation_of cfg i pattern r prop reason))
      end
    in
    go start

  (* a payload written under a different --model (budget included)
     describes a different trial stream: warn and start fresh, exactly
     the explorer's --reduction policy *)
  let resume_state (cfg : config) resume_from resume_payload =
    match resume_payload with
    | None -> (resume_from, None)
    | Some s ->
        let p = decode_payload s in
        if p.pl_model <> Fault_model.to_string cfg.model then begin
          warn_model_mismatch ~want:cfg.model ~got:p.pl_model;
          (0, None)
        end
        else (p.pl_trial, p.pl_cov)

  let run ?on_trial ?(ckpt = Checkpoint.ctl ()) ?(resume_from = 0)
      ?resume_payload (cfg : config) ~seed ~trials =
    let start, cov0 = resume_state cfg resume_from resume_payload in
    let mtag = Fault_model.to_string cfg.model in
    if cfg.coverage then run_cov ?on_trial ~ckpt ~start ~cov0 cfg ~seed ~trials
    else
      let stopped () = match cfg.stop with Some f -> f () | None -> false in
      let rec go i =
        if i >= trials then Clean { trials }
        else if Checkpoint.interrupted ckpt then begin
          Checkpoint.flush ckpt (fuzz_snap ~model:mtag i);
          Budget_exhausted { trials = i }
        end
        else if stopped () then begin
          (* a stop-hook expiry (e.g. --max-seconds) must preserve the
             watermark exactly like an interrupt: without this flush
             the campaign's progress since the last periodic tick was
             silently discarded *)
          Checkpoint.flush ckpt (fuzz_snap ~model:mtag i);
          Budget_exhausted { trials = i }
        end
        else
          let pattern, r = trial cfg ~seed i in
          let () = Option.iter (fun f -> f i r) on_trial in
          match check_run cfg r with
          | None ->
              Checkpoint.tick ckpt ~items:(i + 1) (fuzz_snap ~model:mtag (i + 1));
              go (i + 1)
          | Some (prop, reason) ->
              Violation_found (violation_of cfg i pattern r prop reason)
      in
      go start

  (* ---------- parallel coverage driver ----------

     Same ticket/watermark skeleton as the blind driver below, plus
     the epoch barrier: a worker holding ticket [i] must not generate
     until the corpus is folded through [epoch_floor i], which in turn
     requires the clean watermark to reach that boundary.  The barrier
     cannot deadlock: a waiting worker's ticket [i] satisfies
     [epoch_floor i <= i], and every trial below [epoch_floor i] is a
     claimed ticket that either completes clean (advancing the
     watermark) or violates — and a violation [v < epoch_floor i <= i]
     makes the waiter bail via the [best] check.  The blind driver's
     requeue-after-join supervision would stall the watermark forever
     here, so a failing coverage ticket is retried once in place
     (still ledgered); a second failure poisons the campaign and
     propagates after the join, like the sequential driver's would. *)
  let run_par_cov ~domains ~ckpt ~start ~cov0 (cfg : config) ~seed ~trials =
    check_weights cfg.weights;
    let stop () = match cfg.stop with Some f -> f () | None -> false in
    let stopped_early = Atomic.make false in
    let interrupted = Atomic.make false in
    let poison = Atomic.make None in
    let next_ticket = Atomic.make start in
    let best = Atomic.make max_int in
    let wm_lock = Mutex.create () in
    let done_tbl : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
    let watermark = ref start in
    let b = box_of_state ~start cov0 in
    let locked f =
      Mutex.lock wm_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock wm_lock) f
    in
    (* lock order is checkpoint-then-watermark everywhere: [tick] and
       [flush] hold the checkpoint mutex when they invoke [snap], and
       [note_clean] releases the watermark mutex before ticking *)
    let mtag = Fault_model.to_string cfg.model in
    let snap () =
      Marshal.to_string
        (locked (fun () -> cov_payload ~model:mtag !watermark b))
        []
    in
    let note_clean i u =
      let wm =
        locked (fun () ->
            Hashtbl.replace b.Cov.pending i u;
            Hashtbl.replace done_tbl i ();
            while Hashtbl.mem done_tbl !watermark do
              Hashtbl.remove done_tbl !watermark;
              incr watermark
            done;
            !watermark)
      in
      Checkpoint.tick ckpt ~items:wm snap
    in
    let await_view ~ticket target =
      let rec wait () =
        if Checkpoint.interrupted ckpt then begin
          Atomic.set interrupted true;
          None
        end
        else if stop () then begin
          Atomic.set stopped_early true;
          None
        end
        else if Atomic.get poison <> None || ticket > Atomic.get best then
          None
        else
          let v =
            locked (fun () ->
                if b.Cov.base < target && !watermark >= target then
                  Cov.fold_to b target;
                if b.Cov.base >= target then
                  Hashtbl.find_opt b.Cov.views target
                else None)
          in
          match v with
          | Some _ -> v
          | None ->
              Domain.cpu_relax ();
              wait ()
      in
      wait ()
    in
    let worker w () =
      Metrics.incr m_domains;
      let run_ticket view i =
        let pattern, r = cov_trial cfg ~seed view i in
        (pattern, r, check_run cfg r)
      in
      let rec loop acc =
        if Checkpoint.interrupted ckpt then begin
          Atomic.set interrupted true;
          acc
        end
        else if stop () then begin
          Atomic.set stopped_early true;
          acc
        end
        else if Atomic.get poison <> None then acc
        else
          let i = Atomic.fetch_and_add next_ticket 1 in
          if i >= trials || i > Atomic.get best then acc
          else
            match await_view ~ticket:i (Cov.epoch_floor i) with
            | None -> acc
            | Some view -> (
                let res =
                  match run_ticket view i with
                  | res -> Ok res
                  | exception e -> (
                      Checkpoint.note_failure ckpt ~worker:w
                        ~error:(Printexc.to_string e) ~requeued:1;
                      match run_ticket view i with
                      | res -> Ok res
                      | exception e2 ->
                          (* second failure on the same ticket: ledger
                             it as non-requeued before the campaign is
                             torn down, so a resumed run can see which
                             ticket poisoned which worker *)
                          Checkpoint.note_failure ckpt ~worker:w
                            ~error:(Printexc.to_string e2) ~requeued:0;
                          Metrics.incr m_poisoned;
                          Error (e2, Printexc.get_raw_backtrace ()))
                in
                match res with
                | Ok (pattern, r, Some (prop, reason)) ->
                    let rec lower () =
                      let bst = Atomic.get best in
                      if i < bst && not (Atomic.compare_and_set best bst i)
                      then lower ()
                    in
                    lower ();
                    loop ((i, pattern, r, prop, reason) :: acc)
                | Ok (pattern, r, None) ->
                    note_clean i (Cov.update_of_run ~pattern r);
                    loop acc
                | Error eb ->
                    Atomic.set poison (Some eb);
                    acc)
      in
      loop []
    in
    let found =
      List.init domains (fun w -> Domain.spawn (worker w))
      |> List.concat_map Domain.join
    in
    (match Atomic.get poison with
    | Some (e, bt) ->
        (* flush so the poisoned-ticket ledger entry and the clean
           watermark survive the raise — the campaign dies loudly but
           resumably *)
        Checkpoint.flush ckpt snap;
        Printexc.raise_with_backtrace e bt
    | None -> ());
    if Atomic.get interrupted || Atomic.get stopped_early then
      Checkpoint.flush ckpt snap;
    let finish outcome =
      locked (fun () -> Cov.fold_tail b);
      outcome
    in
    let by_trial (a, _, _, _, _) (b, _, _, _, _) = compare a b in
    match List.sort by_trial found with
    | (i, pattern, r, prop, reason) :: _ ->
        finish (Violation_found (violation_of cfg i pattern r prop reason))
    | [] ->
        if Atomic.get interrupted || Atomic.get stopped_early then
          finish (Budget_exhausted { trials = !watermark })
        else finish (Clean { trials })

  let run_par ?domains ?(ckpt = Checkpoint.ctl ()) ?(resume_from = 0)
      ?resume_payload (cfg : config) ~seed ~trials =
    let domains =
      match domains with Some d -> max 1 d | None -> Explorer.default_domains ()
    in
    let mtag = Fault_model.to_string cfg.model in
    let start, cov0 = resume_state cfg resume_from resume_payload in
    if domains <= 1 then
      (* resume_state already resolved the payload (model check
         included); hand [run] the resolved start, dropping a payload
         the model check rejected so the warning does not print twice *)
      run ~ckpt ~resume_from:start
        ?resume_payload:
          (if cov0 = None && resume_payload <> None && start = 0 then None
           else resume_payload)
        cfg ~seed ~trials
    else if cfg.coverage then
      run_par_cov ~domains ~ckpt ~start ~cov0 cfg ~seed ~trials
    else begin
      check_weights cfg.weights;
      let stop () = match cfg.stop with Some f -> f () | None -> false in
      let stopped_early = Atomic.make false in
      let interrupted = Atomic.make false in
      let next_ticket = Atomic.make start in
      (* lowest violating trial index found so far: workers stop
         claiming tickets above it, but every ticket below it is still
         executed by someone, so the minimum over all reported
         violations is exactly the sequential first violation *)
      let best = Atomic.make max_int in
      (* the clean-trial watermark feeding periodic checkpoints: a
         mutex-protected done-set advances it in ticket order, so a
         written watermark never claims an unfinished trial *)
      let wm_lock = Mutex.create () in
      let done_tbl : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
      let watermark = ref start in
      let note_clean i =
        let wm =
          Mutex.lock wm_lock;
          Hashtbl.replace done_tbl i ();
          while Hashtbl.mem done_tbl !watermark do
            Hashtbl.remove done_tbl !watermark;
            incr watermark
          done;
          let wm = !watermark in
          Mutex.unlock wm_lock;
          wm
        in
        Checkpoint.tick ckpt ~items:wm (fuzz_snap ~model:mtag wm)
      in
      let worker w () =
        Metrics.incr m_domains;
        let rec loop acc fails =
          if Checkpoint.interrupted ckpt then begin
            Atomic.set interrupted true;
            (acc, fails)
          end
          else if stop () then begin
            Atomic.set stopped_early true;
            (acc, fails)
          end
          else
            let i = Atomic.fetch_and_add next_ticket 1 in
            if i >= trials || i > Atomic.get best then (acc, fails)
            else
              match
                let pattern, r = trial cfg ~seed i in
                (pattern, r, check_run cfg r)
              with
              | pattern, r, Some (prop, reason) ->
                  let rec lower () =
                    let b = Atomic.get best in
                    if i < b && not (Atomic.compare_and_set best b i) then
                      lower ()
                  in
                  lower ();
                  loop ((i, pattern, r, prop, reason) :: acc) fails
              | _, _, None ->
                  note_clean i;
                  loop acc fails
              | exception e ->
                  (* supervised: the ticket is re-executed after the
                     join; the campaign itself keeps going *)
                  loop acc ((w, i, Printexc.to_string e) :: fails)
        in
        loop [] []
      in
      let joined =
        List.init domains (fun w -> Domain.spawn (worker w))
        |> List.map Domain.join
      in
      let found = List.concat_map fst joined in
      let failures = List.concat_map snd joined in
      (* re-run every failed ticket in this domain: trials are pure
         functions of (seed, index), so nothing is lost — a violation
         on a re-run ticket competes for minimality like any other *)
      let found =
        List.fold_left
          (fun acc (w, i, err) ->
            Checkpoint.note_failure ckpt ~worker:w ~error:err ~requeued:1;
            let pattern, r = trial cfg ~seed i in
            match check_run cfg r with
            | None ->
                note_clean i;
                acc
            | Some (prop, reason) -> (i, pattern, r, prop, reason) :: acc)
          found
          (List.sort compare failures)
      in
      (* a stop-hook expiry preserves progress exactly like an
         interrupt: flush the watermark instead of dropping it *)
      if Atomic.get interrupted || Atomic.get stopped_early then
        Checkpoint.flush ckpt (fuzz_snap ~model:mtag !watermark);
      let by_trial (a, _, _, _, _) (b, _, _, _, _) = compare a b in
      match List.sort by_trial found with
      | (i, pattern, r, prop, reason) :: _ ->
          Violation_found (violation_of cfg i pattern r prop reason)
      | [] ->
          if Atomic.get interrupted || Atomic.get stopped_early then
            (* the contiguous clean watermark — what the checkpoint
               recorded — not the racy count of claimed tickets, so
               sequential and parallel Budget_exhausted counts agree *)
            Budget_exhausted { trials = !watermark }
          else Clean { trials }
    end
end
