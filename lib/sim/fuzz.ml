module Rng = Ksa_prim.Rng
module Metrics = Ksa_prim.Metrics
module Listx = Ksa_prim.Listx

type weights = {
  deliver_all : int;
  deliver_some : int;
  deliver_none : int;
  drop : int;
  undecided_bias : int;
}

let fair_weights =
  { deliver_all = 1; deliver_some = 0; deliver_none = 0; drop = 0; undecided_bias = 3 }

let default_weights =
  { deliver_all = 5; deliver_some = 3; deliver_none = 2; drop = 2; undecided_bias = 3 }

let check_weights w =
  if w.deliver_all < 0 || w.deliver_some < 0 || w.deliver_none < 0 || w.drop < 0
     || w.undecided_bias < 0
  then invalid_arg "Fuzz: negative weight";
  if w.deliver_all + w.deliver_some + w.deliver_none <= 0 then
    invalid_arg "Fuzz: at least one step weight must be positive"

type property =
  | K_agreement of int
  | Validity
  | Termination
  | Custom of string * (Run.t -> string option)

let property_name = function
  | K_agreement k -> Printf.sprintf "%d-agreement" k
  | Validity -> "validity"
  | Termination -> "termination"
  | Custom (name, _) -> name

type config = {
  n : int;
  inputs : Value.t array;
  pattern : Failure_pattern.t;
  weights : weights;
  max_crashes : int;
  max_steps : int;
  properties : property list;
  stop : (unit -> bool) option;
}

let default_config ?(k = 1) ~n () =
  {
    n;
    inputs = Value.distinct_inputs n;
    pattern = Failure_pattern.none ~n;
    weights = default_weights;
    max_crashes = 0;
    max_steps = 200;
    properties = [ K_agreement k; Validity ];
    stop = None;
  }

type violation = {
  trial : int;
  property : string;
  reason : string;
  pattern : Failure_pattern.t;
  run : Run.t;
  schedule : Replay.step_desc list;
  shrunk : Replay.step_desc list;
  shrink_candidates : int;
}

type outcome =
  | Violation_found of violation
  | Clean of { trials : int }
  | Budget_exhausted of { trials : int }

(* live counters; the authoritative per-campaign figures are in the
   returned outcome (the parallel driver may run trials beyond the
   first violation, so raw counters can exceed the canonical count) *)
let m_trials = Metrics.counter "fuzz.trials"
let m_violations = Metrics.counter "fuzz.violations"
let m_shrink_candidates = Metrics.counter "fuzz.shrink.candidates"
let m_domains = Metrics.counter "fuzz.domains.spawned"
let t_trial = Metrics.timer "fuzz.trial"
let t_shrink = Metrics.timer "fuzz.shrink"
let g_first = Metrics.gauge "fuzz.first_violation.trial"
let g_schedule_len = Metrics.gauge "fuzz.schedule.len"
let g_shrunk_len = Metrics.gauge "fuzz.shrunk.len"

let () =
  Metrics.probe "fuzz.schedules_per_sec" (fun () ->
      let ns = Metrics.timer_ns t_trial in
      if ns <= 0 then 0 else Metrics.value m_trials * 1_000_000_000 / ns)

(* Delta debugging (Zeller & Hildebrandt's ddmin) over a step list:
   returns a subsequence on which [test] still holds and from which no
   single element can be removed without losing it (1-minimality). *)
let ddmin ~test xs =
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 then xs
    else
      let n = min n len in
      let size = max 1 ((len + n - 1) / n) in
      let chunks = Listx.chunks size xs in
      let rec try_subsets = function
        | [] -> None
        | c :: rest -> if test c then Some c else try_subsets rest
      in
      let rec try_complements i =
        if i >= List.length chunks then None
        else
          let comp =
            List.concat (List.filteri (fun j _ -> j <> i) chunks)
          in
          if test comp then Some comp else try_complements (i + 1)
      in
      match try_subsets chunks with
      | Some c -> go c 2
      | None -> (
          match try_complements 0 with
          | Some comp -> go comp (max (n - 1) 2)
          | None -> if size > 1 then go xs (min len (2 * n)) else xs)
  in
  if test [] then [] else go xs 2

module Make (A : Algorithm.S) = struct
  module E = Engine.Make (A)

  (* the base pattern plus up to [max_crashes] randomly drawn crash
     times among the processes it leaves correct *)
  let trial_pattern (cfg : config) rng =
    if cfg.max_crashes <= 0 then cfg.pattern
    else
      let base =
        List.filter_map
          (fun p ->
            Option.map (fun t -> (p, t)) (Failure_pattern.crash_time cfg.pattern p))
          (Pid.universe cfg.n)
      in
      let correct = Failure_pattern.correct cfg.pattern in
      let c = min (Rng.int rng (cfg.max_crashes + 1)) (List.length correct) in
      let victims = Rng.sample rng c correct in
      let extra =
        List.map (fun p -> (p, Rng.int rng (cfg.max_steps + 1))) victims
      in
      Failure_pattern.of_crash_times ~n:cfg.n (base @ extra)

  let nonempty_subset rng = function
    | [] -> invalid_arg "Fuzz.nonempty_subset"
    | xs -> (
        match List.filter (fun _ -> Rng.bool rng) xs with
        | [] -> [ List.nth xs (Rng.int rng (List.length xs)) ]
        | some -> some)

  let fuzz_adversary w rng =
    let next obs =
      if Adversary.all_correct_decided obs then Adversary.Halt
      else
        match Adversary.alive obs with
        | [] -> Adversary.Halt
        | candidates ->
            let droppable = Adversary.droppable obs in
            let w_step = w.deliver_all + w.deliver_some + w.deliver_none in
            let w_drop = if droppable = [] then 0 else w.drop in
            let roll = Rng.int rng (w_step + w_drop) in
            if roll < w_drop then Adversary.Drop (nonempty_subset rng droppable)
            else
              let pid =
                match Adversary.undecided_alive obs with
                | [] -> Rng.pick rng candidates
                | undecided ->
                    if
                      w.undecided_bias > 0
                      && Rng.int rng (w.undecided_bias + 1) <> 0
                    then Rng.pick rng undecided
                    else Rng.pick rng candidates
              in
              let buffer = Adversary.pending_for obs pid in
              let roll = roll - w_drop in
              let deliver =
                if roll < w.deliver_all then buffer
                else if roll < w.deliver_all + w.deliver_some then
                  List.filter (fun _ -> Rng.bool rng) buffer
                else []
              in
              Adversary.Step { pid; deliver }
    in
    { Adversary.describe = "fuzz"; next }

  let trial (cfg : config) ~seed i =
    check_weights cfg.weights;
    let rng = Rng.split_at (Rng.create ~seed) i in
    let pattern = trial_pattern cfg rng in
    let adv = fuzz_adversary cfg.weights rng in
    let run =
      Metrics.time t_trial (fun () ->
          E.run ~max_steps:cfg.max_steps ~n:cfg.n ~inputs:cfg.inputs ~pattern adv)
    in
    Metrics.incr m_trials;
    (pattern, run)

  let check_property (cfg : config) run = function
    | K_agreement k ->
        let d = Run.distinct_decisions run in
        if d > k then
          Some (Printf.sprintf "%d distinct decided values, k = %d" d k)
        else None
    | Validity -> (
        let proposed v = Array.exists (Value.equal v) run.Run.inputs in
        match List.find_opt (fun v -> not (proposed v)) (Run.decided_values run) with
        | Some v ->
            Some
              (Format.asprintf "decided value %a was never proposed" Value.pp v)
        | None -> None)
    | Termination ->
        if run.Run.status = Run.Hit_step_budget && not (Run.all_correct_decided run)
        then
          Some
            (Printf.sprintf "correct process undecided after %d steps"
               cfg.max_steps)
        else None
    | Custom (_, f) -> f run

  let check_run (cfg : config) run =
    List.find_map
      (fun p ->
        Option.map (fun reason -> (p, reason)) (check_property cfg run p))
      cfg.properties

  let replay_schedule ?pattern (cfg : config) sched =
    let pattern = Option.value pattern ~default:cfg.pattern in
    E.run ~max_steps:cfg.max_steps ~n:cfg.n ~inputs:cfg.inputs ~pattern
      (Replay.sequential [ sched ])

  let shrink (cfg : config) ~pattern prop sched =
    let candidates = ref 0 in
    let test s =
      incr candidates;
      Metrics.incr m_shrink_candidates;
      Option.is_some (check_property cfg (replay_schedule ~pattern cfg s) prop)
    in
    let shrunk =
      Metrics.time t_shrink (fun () ->
          if not (test sched) then sched else ddmin ~test sched)
    in
    (shrunk, !candidates)

  let violation_of (cfg : config) i pattern run prop reason =
    Metrics.incr m_violations;
    let schedule = Trace_io.schedule_of_run run in
    let shrunk, shrink_candidates = shrink cfg ~pattern prop schedule in
    Metrics.gauge_set g_first i;
    Metrics.gauge_set g_schedule_len (List.length schedule);
    Metrics.gauge_set g_shrunk_len (List.length shrunk);
    {
      trial = i;
      property = property_name prop;
      reason;
      pattern;
      run;
      schedule;
      shrunk;
      shrink_candidates;
    }

  (* Checkpoint payload of a fuzz campaign: the watermark — the
     lowest trial index such that every trial below it completed
     clean.  Because trial [i] is a pure function of (config, seed,
     i), that one integer is the whole resumable state: a resumed
     campaign re-derives every later trial (and any violation, its
     shrink included) bit-identically. *)
  let fuzz_snap i () = Marshal.to_string (i : int) []

  let resume_trial payload = (Marshal.from_string payload 0 : int)

  let run ?on_trial ?(ckpt = Checkpoint.ctl ()) ?(resume_from = 0)
      (cfg : config) ~seed ~trials =
    let stopped () = match cfg.stop with Some f -> f () | None -> false in
    let rec go i =
      if i >= trials then Clean { trials }
      else if Checkpoint.interrupted ckpt then begin
        Checkpoint.flush ckpt (fuzz_snap i);
        Budget_exhausted { trials = i }
      end
      else if stopped () then Budget_exhausted { trials = i }
      else
        let pattern, r = trial cfg ~seed i in
        let () = Option.iter (fun f -> f i r) on_trial in
        match check_run cfg r with
        | None ->
            Checkpoint.tick ckpt ~items:(i + 1) (fuzz_snap (i + 1));
            go (i + 1)
        | Some (prop, reason) ->
            Violation_found (violation_of cfg i pattern r prop reason)
    in
    go resume_from

  let run_par ?domains ?(ckpt = Checkpoint.ctl ()) ?(resume_from = 0)
      (cfg : config) ~seed ~trials =
    let domains =
      match domains with Some d -> max 1 d | None -> Explorer.default_domains ()
    in
    if domains <= 1 then run ~ckpt ~resume_from cfg ~seed ~trials
    else begin
      check_weights cfg.weights;
      let stop () = match cfg.stop with Some f -> f () | None -> false in
      let stopped_early = Atomic.make false in
      let interrupted = Atomic.make false in
      let next_ticket = Atomic.make resume_from in
      (* lowest violating trial index found so far: workers stop
         claiming tickets above it, but every ticket below it is still
         executed by someone, so the minimum over all reported
         violations is exactly the sequential first violation *)
      let best = Atomic.make max_int in
      (* the clean-trial watermark feeding periodic checkpoints: a
         mutex-protected done-set advances it in ticket order, so a
         written watermark never claims an unfinished trial *)
      let wm_lock = Mutex.create () in
      let done_tbl : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
      let watermark = ref resume_from in
      let note_clean i =
        let wm =
          Mutex.lock wm_lock;
          Hashtbl.replace done_tbl i ();
          while Hashtbl.mem done_tbl !watermark do
            Hashtbl.remove done_tbl !watermark;
            incr watermark
          done;
          let wm = !watermark in
          Mutex.unlock wm_lock;
          wm
        in
        Checkpoint.tick ckpt ~items:wm (fuzz_snap wm)
      in
      let worker w () =
        Metrics.incr m_domains;
        let rec loop acc fails =
          if Checkpoint.interrupted ckpt then begin
            Atomic.set interrupted true;
            (acc, fails)
          end
          else if stop () then begin
            Atomic.set stopped_early true;
            (acc, fails)
          end
          else
            let i = Atomic.fetch_and_add next_ticket 1 in
            if i >= trials || i > Atomic.get best then (acc, fails)
            else
              match
                let pattern, r = trial cfg ~seed i in
                (pattern, r, check_run cfg r)
              with
              | pattern, r, Some (prop, reason) ->
                  let rec lower () =
                    let b = Atomic.get best in
                    if i < b && not (Atomic.compare_and_set best b i) then
                      lower ()
                  in
                  lower ();
                  loop ((i, pattern, r, prop, reason) :: acc) fails
              | _, _, None ->
                  note_clean i;
                  loop acc fails
              | exception e ->
                  (* supervised: the ticket is re-executed after the
                     join; the campaign itself keeps going *)
                  loop acc ((w, i, Printexc.to_string e) :: fails)
        in
        loop [] []
      in
      let joined =
        List.init domains (fun w -> Domain.spawn (worker w))
        |> List.map Domain.join
      in
      let found = List.concat_map fst joined in
      let failures = List.concat_map snd joined in
      (* re-run every failed ticket in this domain: trials are pure
         functions of (seed, index), so nothing is lost — a violation
         on a re-run ticket competes for minimality like any other *)
      let found =
        List.fold_left
          (fun acc (w, i, err) ->
            Checkpoint.note_failure ckpt ~worker:w ~error:err ~requeued:1;
            let pattern, r = trial cfg ~seed i in
            match check_run cfg r with
            | None ->
                note_clean i;
                acc
            | Some (prop, reason) -> (i, pattern, r, prop, reason) :: acc)
          found
          (List.sort compare failures)
      in
      if Atomic.get interrupted then
        Checkpoint.flush ckpt (fuzz_snap !watermark);
      let by_trial (a, _, _, _, _) (b, _, _, _, _) = compare a b in
      match List.sort by_trial found with
      | (i, pattern, r, prop, reason) :: _ ->
          Violation_found (violation_of cfg i pattern r prop reason)
      | [] ->
          if Atomic.get interrupted then
            Budget_exhausted { trials = !watermark }
          else if Atomic.get stopped_early then
            Budget_exhausted { trials = min trials (Atomic.get next_ticket) }
          else Clean { trials }
    end
end
