(** Randomized schedule search with counterexample shrinking.

    Exhaustive exploration ({!Explorer}) certifies small systems but
    cannot reach the sizes the paper's adversary constructions
    quantify over.  The fuzzer fills that gap: it drives an algorithm
    through random engine-validated adversary actions — weighted
    step/deliver/drop choices plus randomly drawn crash times — checks
    run-level properties, and on violation delta-debugs the offending
    schedule down to a 1-minimal counterexample that round-trips
    through {!Trace_io} for replay.

    Determinism is load-bearing, exactly as for {!Ksa_prim.Rng}: trial
    [i] of a campaign is a pure function of the root seed and [i]
    (each trial's generator is derived with {!Ksa_prim.Rng.split_at},
    never by consuming a shared stream), so the sequential and
    parallel drivers fuzz the identical trial corpus and report the
    identical first violation, and a saved counterexample replays to
    the same verdict on any machine. *)

type weights = {
  deliver_all : int;  (** Step a process, delivering its whole buffer. *)
  deliver_some : int;
      (** Step a process, delivering a uniformly random subset. *)
  deliver_none : int;  (** Step a process, delivering nothing. *)
  drop : int;
      (** Drop a random nonempty subset of the pending messages whose
          sender has crashed (weight ignored while none exist). *)
  undecided_bias : int;
      (** Odds of preferring an undecided stepper: the chosen process
          is drawn from the undecided alive ones with probability
          [bias/(bias+1)], from all alive ones otherwise.  [3]
          reproduces {!Adversary.fair}'s 3/4 bias; [0] is uniform. *)
}
(** Relative odds of each action class.  At least one of the step
    weights must be positive; all weights must be non-negative. *)

val fair_weights : weights
(** Deliver-all steps only, no drops, bias 3 — the randomized fair
    schedules of the possibility side, matching {!Adversary.fair}. *)

val default_weights : weights
(** A mixed profile (full, partial and empty deliveries plus
    crash-drops) that exercises out-of-order delivery and message
    loss. *)

type property =
  | K_agreement of int
      (** At most [k] distinct decided values (uniform: decisions of
          later-crashed processes count). *)
  | Validity  (** Every decided value was some process's input. *)
  | Termination
      (** The run must not exhaust the step budget with a correct
          process undecided.  Only meaningful under weightings that
          keep the schedule fair ({!fair_weights}); an unfair random
          schedule may legitimately starve a process. *)
  | Custom of string * (Run.t -> string option)
      (** Named user predicate: return [Some reason] on violation. *)

val property_name : property -> string

type config = {
  n : int;
  inputs : Value.t array;
  pattern : Failure_pattern.t;
      (** Base failure pattern; random crashes are drawn on top. *)
  weights : weights;
  max_crashes : int;
      (** Per trial, up to this many additional crash times are drawn
          uniformly (victim and time both random) among the processes
          the base pattern leaves correct. *)
  max_steps : int;  (** Per-trial step budget. *)
  properties : property list;  (** Checked in order after each trial. *)
  stop : (unit -> bool) option;
      (** Polled between trials; when it returns [true] the campaign
          ends with {!Budget_exhausted} {e after flushing a final
          checkpoint}, exactly like an interrupt — a wall-clock expiry
          never discards watermark progress.  Wall-clock budgets live
          here (the library itself never reads a clock), and only here
          can determinism be lost: with [stop = None] a campaign is a
          pure function of its seed. *)
  model : Fault_model.t;
      (** Fault model of the campaign.  [Crash] (the default) draws
          crash times exactly as before — the trial stream is
          bit-identical to pre-model campaigns.  [Byzantine t] treats
          the (at most [t]) randomly crashed processes as corrupted:
          an extra weighted arm forges one of their pending messages
          into a random {!Engine.Make.forge_pool} entry, and greybox
          mutation may stamp forged payloads onto spliced deliveries.
          [Mobile t] crashes nobody; instead a per-trial seed drives
          {!Fault_model.mobile_faulty} and every message sent while
          its sender was in the round's faulty set is permanently
          omitted.  All model-specific randomness is drawn only under
          its model, keeping the crash stream byte-stable. *)
  coverage : bool;
      (** Greybox mode: maintain a coverage map over interned state
          ids and (state-id, state-id) transition pairs, keep a corpus
          of schedules whose runs lit new coverage, and generate most
          trials by mutating corpus entries (splice, insert, drop,
          delivery-subset flips over {!Replay.step_desc} lists, each
          replayed leniently with a random tail) under an energy
          schedule favoring entries with rarely-hit ids.  Corpus
          evolution is epoch-frozen — a trial sees the corpus folded
          through the clean trials of earlier epochs only, in trial
          order — so trial [i] remains a pure function of
          [(config, seed, i)] and every blind-mode contract
          (bit-reproducibility, seq/par parity, checkpoint/resume)
          carries over verbatim; the corpus rides the checkpoint
          payload. *)
}

val default_config : ?k:int -> n:int -> unit -> config
(** Distinct inputs, failure-free base pattern, {!default_weights},
    no extra crashes, 200-step budget, properties
    [[K_agreement k; Validity]] (default [k = 1]), no stop, blind
    (non-coverage) generation. *)

type violation = {
  trial : int;  (** Trial index of the first violating run. *)
  property : string;
  reason : string;
  pattern : Failure_pattern.t;  (** The trial's full failure pattern. *)
  run : Run.t;
  schedule : Replay.step_desc list;  (** Full offending schedule. *)
  shrunk : Replay.step_desc list;
      (** 1-minimal: replaying it still violates [property], and
          removing any single step no longer does. *)
  shrink_candidates : int;  (** Candidate schedules replayed by ddmin. *)
}

type outcome =
  | Violation_found of violation
  | Clean of { trials : int }  (** All trials ran; none violated. *)
  | Budget_exhausted of { trials : int }
      (** [config.stop] ended the campaign after [trials] trials with
          no violation found.  Both drivers report the contiguous
          clean-trial watermark — the figure the final checkpoint
          flush records — so sequential and parallel counts agree. *)

type coverage_summary = {
  cov_trials : int;  (** The payload's clean-trial watermark. *)
  cov_ids : int;  (** Distinct interned state ids covered. *)
  cov_pairs : int;  (** Distinct (state-id, state-id) transition pairs. *)
  cov_corpus : (Failure_pattern.t * Replay.step_desc list) list;
      (** Corpus entries in admission order: each admitted run's
          failure pattern and executed schedule. *)
}
(** Structural digest of a coverage checkpoint payload, for
    inspection and for pinning that a killed-and-resumed campaign
    carries the exact corpus an uninterrupted one holds. *)

val coverage_of_payload : string -> coverage_summary option
(** Decode a ["fuzz"]-kind checkpoint payload's coverage state
    ([None] for blind campaigns), folding the payload's pending
    partial epoch so the summary reflects the exact watermark state.
    Raises on garbage — gate with {!Checkpoint.kind} first. *)

module Make (A : Algorithm.S) : sig
  val trial : config -> seed:int -> int -> Failure_pattern.t * Run.t
  (** The [i]-th trial of campaign [seed], as a pure function of
      [(config, seed, i)] — the unit of sequential/parallel parity:
      both drivers execute exactly this run for trial [i]. *)

  val check_run : config -> Run.t -> (property * string) option
  (** First violated property of [config.properties], with reason. *)

  val replay_schedule :
    ?pattern:Failure_pattern.t ->
    config ->
    Replay.step_desc list ->
    Run.t
  (** Replay a schedule under [Replay.sequential] with the config's
      inputs and step budget ([pattern] defaults to [config.pattern]).
      Safety verdicts transfer from the fuzzed run even though drops
      are not part of the schedule: dropped messages were never
      delivered, so replay feeds every process the same receive
      sequence. *)

  val shrink :
    config ->
    pattern:Failure_pattern.t ->
    property ->
    Replay.step_desc list ->
    Replay.step_desc list * int
  (** [shrink config ~pattern prop schedule] delta-debugs (ddmin) the
      schedule to a 1-minimal one whose replay still violates [prop];
      also returns the number of candidate replays.  If the input
      schedule itself does not re-violate under replay (which the
      drivers never produce), it is returned unshrunk. *)

  val resume_trial : string -> int
  (** Decode the payload of a ["fuzz"]-kind checkpoint into the trial
      watermark to pass as [resume_from].  Raises on garbage — gate
      with {!Checkpoint.kind} first.  Coverage campaigns should
      resume via [resume_payload] instead, which restores the corpus
      along with the watermark. *)

  val run :
    ?on_trial:(int -> Run.t -> unit) ->
    ?ckpt:Checkpoint.ctl ->
    ?resume_from:int ->
    ?resume_payload:string ->
    config ->
    seed:int ->
    trials:int ->
    outcome
  (** Sequential campaign: trials [0 .. trials-1] in order, stopping
      at the first violation (which is then shrunk).  [on_trial] sees
      every executed run — e.g. to collect the decision corpus.

      [ckpt] attaches a {!Checkpoint} controller: after each clean
      trial the driver offers a snapshot whose payload is the trial
      watermark (every trial below it completed clean) plus, in
      coverage mode, the canonical corpus state at that watermark;
      at each trial boundary it polls the interrupt {e and} the
      [stop] hook — either way of ending early flushes a final
      checkpoint before returning [Budget_exhausted], so a
      [--max-seconds] expiry preserves exactly what a SIGINT would.
      [resume_payload] (the {!Checkpoint.payload} of a ["fuzz"]
      checkpoint) restarts the campaign at the recorded watermark
      with the recorded corpus; [resume_from] (default [0], from
      {!resume_trial}) restarts blind campaigns by index alone.
      Because trial [i] is a pure function of [(config, seed, i)],
      the resumed campaign's verdict — violation trial, shrunk
      schedule, corpus evolution, everything — is bit-identical to an
      uninterrupted run's. *)

  val run_par :
    ?domains:int ->
    ?ckpt:Checkpoint.ctl ->
    ?resume_from:int ->
    ?resume_payload:string ->
    config ->
    seed:int ->
    trials:int ->
    outcome
  (** Multicore campaign ([domains] defaults to
      {!Explorer.default_domains}): workers claim trial indices from a
      shared ticket counter (the explorer's clamp idiom) and stop
      claiming tickets above the lowest violating index found so far.
      Every trial below that index is still executed, so the reported
      violation is exactly the sequential driver's first violation,
      and shrinking (performed once, after join) is deterministic:
      for a fixed seed the outcome is bit-identical to {!run}'s.  With
      [config.stop] set, which trials ran is timing-dependent; only
      then can the two drivers differ (and even then both report the
      clean watermark, and both flush it to the checkpoint).

      [ckpt]/[resume_from]/[resume_payload] behave as in {!run}; the
      checkpointed watermark is maintained in ticket order under a
      mutex, so a written snapshot never claims an unfinished trial,
      and the snapshots resume on either driver.  In coverage mode the
      corpus is shared across domains under that same mutex: updates
      are buffered per trial and folded in strict trial order when the
      watermark crosses an epoch boundary, so every domain generates
      against the exact corpus state the sequential driver would hold
      — parity is by construction, not by luck.  A worker trial that
      raises a non-verdict exception is supervised: the failure lands
      in the checkpoint ledger ([campaign.worker.failures] /
      [campaign.requeues] metrics) and the ticket is re-executed —
      after the join in blind mode, immediately in place in coverage
      mode (a post-join requeue would stall the epoch barrier); a
      repeated coverage failure propagates after the join — but not
      silently: the poisoned ticket is ledgered with [requeued = 0],
      the [fuzz.tickets_poisoned] counter records it, and the
      checkpoint (ledger and clean watermark included) is flushed
      before the exception re-raises, so the campaign dies loudly but
      resumably. *)
end
