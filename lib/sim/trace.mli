(** Substrate-neutral run traces: per-process sequences of interned
    state ids plus decision records.

    A trace is the operational residue of a run that the paper's
    run-level definitions quantify over: for each process, the exact
    sequence of local states it traversed (as dense ids from the
    shared {!Ksa_prim.Intern.states} registry) and the step at which
    it decided, if any.  Both execution substrates produce the same
    type — the asynchronous engine records one entry per step of a
    process ({!Ksa_sim.Engine.Make.run}), the Heard-Of engine one
    entry per round ({!Ksa_ho.Engine.Make.run}) — so
    indistinguishability (Definition 2), compatibility of run sets
    (Definition 3) and the Theorem 1 machinery built on them evaluate
    identically over either substrate.

    Because ids are interned with structural-equality resolution,
    [state_id] equality holds iff the states are structurally equal:
    comparisons are exact O(1) integer equalities with no hash
    collision caveat (unlike the retired [Marshal]+MD5 digests). *)

type step = {
  state_id : int;  (** Interned post-step (or post-round) local state. *)
  decision : Value.t option;
      (** [Some v] iff the process decided [v] in this step (first
          decision only; re-affirmations are not marked). *)
}

type t = {
  init_ids : int array;
      (** [init_ids.(p)]: interned initial state of process p. *)
  steps : step array array;
      (** [steps.(p)]: chronological steps of process p.  Rows may
          have different lengths (processes step at different
          rates); a row may be empty (a process that never stepped,
          or a trace recorded in exploration mode). *)
}

val n : t -> int
(** Number of processes. *)

val make : init_ids:int array -> steps:step list array -> t
(** Build a trace from per-process chronological step lists (arrays
    are copied). *)

val empty : init_ids:int array -> t
(** A trace with initial states only (no recorded steps). *)

val decision_index : t -> Pid.t -> int option
(** Index into [steps.(p)] of the deciding step, if p decided. *)

val decided : t -> Pid.t -> bool

val states_until_decision : t -> Pid.t -> int list
(** The state-id sequence of process p up to and including its
    deciding step — initial state first; the whole recorded row if p
    never decides. *)

val indistinguishable_for : t -> t -> Pid.t -> bool
(** α ∼ β for p (Definition 2, finite-prefix form): p traverses the
    same state sequence in both traces until it decides.  If p
    decides in both, the prefixes up to (and including) the deciding
    steps must be equal — which forces equal deciding step counts; if
    it decides in exactly one, the decided prefix must be a prefix of
    the other trace; if in neither, the rows must agree up to the
    shorter one's length.  Exact integer comparison, O(steps). *)

val indistinguishable_for_all : t -> t -> Pid.t list -> bool
(** α {^D}∼ β (Definition 2): {!indistinguishable_for} holds for
    every process of D. *)

val equal : t -> t -> bool
(** Structural equality of whole traces (same initial states, same
    rows, same decision marks). *)

val pp : Format.formatter -> t -> unit
