module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

module Make (P : sig
  val wait_for : int
end) =
struct
  type message = Val of Value.t

  type state = {
    n : int;
    me : Pid.t;
    input : Value.t;
    started : bool;
    seen : Value.t Pid.Map.t; (* own value included *)
    decided : bool;
  }

  let name = Printf.sprintf "naive-min(wait=%d)" P.wait_for
  let uses_fd = false

  let init ~n ~me ~input =
    if P.wait_for < 1 || P.wait_for > n then invalid_arg "Naive_min";
    {
      n;
      me;
      input;
      started = false;
      seen = Pid.Map.singleton me input;
      decided = false;
    }

  let step st ~received ~fd =
    ignore fd;
    let st, sends =
      if st.started then (st, [])
      else
        ( { st with started = true },
          List.filter_map
            (fun q ->
              if Pid.equal q st.me then None else Some (q, Val st.input))
            (List.init st.n Fun.id) )
    in
    let st =
      List.fold_left
        (fun st (src, Val v) -> { st with seen = Pid.Map.add src v st.seen })
        st received
    in
    if (not st.decided) && Pid.Map.cardinal st.seen >= P.wait_for then
      let min_v =
        Pid.Map.fold (fun _ v acc -> min v acc) st.seen max_int
      in
      ({ st with decided = true }, sends, Some min_v)
    else (st, sends, None)

  (* [seen] is a balanced map — already a canonical representation *)
  let canon st = st
  let canon_message (msg : message) = msg

  (* a corrupted sender may claim any candidate value, including the
     out-of-domain one *)
  let forge_pool ~n:_ ~values = List.map (fun v -> Val v) values
  let pp_message ppf (Val v) = Format.fprintf ppf "val(%a)" Value.pp v

  let pp_state ppf st =
    Format.fprintf ppf "{%a seen=%d}" Pid.pp st.me (Pid.Map.cardinal st.seen)
end
