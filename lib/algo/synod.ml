module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value
module Fd_view = Ksa_sim.Fd_view

let ballot_owner ~n b = b mod n

module A = struct
  type message =
    | Prepare of int
    | Promise of int * (int * Value.t) option
    | Accept of int * Value.t
    | Accepted of int
    | Nack of int (* the higher promise that blocked us *)
    | Decide of Value.t

  type phase = Idle | P1 | P2 of Value.t

  type state = {
    n : int;
    me : Pid.t;
    input : Value.t;
    (* acceptor *)
    promised : int;
    accepted : (int * Value.t) option;
    (* proposer *)
    ballot : int;
    phase : phase;
    promises : (int * Value.t) option Pid.Map.t;
    accepts : Pid.Set.t;
    highest_seen : int; (* highest ballot observed anywhere *)
    stalled : int;
    (* learner *)
    decided : Value.t option;
    announced : bool;
  }

  let name = "synod"
  let uses_fd = true

  let init ~n ~me ~input =
    {
      n;
      me;
      input;
      promised = -1;
      accepted = None;
      ballot = -1;
      phase = Idle;
      promises = Pid.Map.empty;
      accepts = Pid.Set.empty;
      highest_seen = -1;
      stalled = 0;
      decided = None;
      announced = false;
    }

  let others st = List.filter (fun q -> not (Pid.equal q st.me)) (List.init st.n Fun.id)
  let broadcast st msg = List.map (fun q -> (q, msg)) (others st)

  (* promises/accepts are balanced maps/sets — already canonical *)
  let canon (st : state) = st
  let canon_message (m : message) = m

  (* ballot-carrying messages are not in scope for the Byzantine
     experiments: unforgeable *)
  let forge_pool ~n:_ ~values:_ = []

  let next_own_ballot st =
    let base = max st.ballot (max st.promised st.highest_seen) in
    (((max base 0 / st.n) + 1) * st.n) + st.me

  let observe_ballot st b = { st with highest_seen = max st.highest_seen b }

  (* ----- acceptor side ----- *)
  let on_prepare st src b =
    let st = observe_ballot st b in
    if b > st.promised then
      ({ st with promised = b }, [ (src, Promise (b, st.accepted)) ])
    else (st, [ (src, Nack st.promised) ])

  let on_accept st src b v =
    let st = observe_ballot st b in
    if b >= st.promised then
      ({ st with promised = b; accepted = Some (b, v) }, [ (src, Accepted b) ])
    else (st, [ (src, Nack st.promised) ])

  (* ----- proposer side ----- *)
  let on_promise st src b acc =
    match st.phase with
    | P1 when b = st.ballot ->
        { st with promises = Pid.Map.add src acc st.promises; stalled = 0 }
    | Idle | P1 | P2 _ -> st

  let on_accepted st src b =
    match st.phase with
    | P2 _ when b = st.ballot ->
        { st with accepts = Pid.Set.add src st.accepts; stalled = 0 }
    | Idle | P1 | P2 _ -> st

  let on_nack st b =
    let st = observe_ballot st b in
    if st.phase <> Idle && b > st.ballot then
      { st with stalled = max st.stalled 1_000_000 }
    else st

  let handle st (src, msg) =
    match msg with
    | Prepare b -> on_prepare st src b
    | Accept (b, v) -> on_accept st src b v
    | Promise (b, acc) -> (on_promise st src b acc, [])
    | Accepted b -> (on_accepted st src b, [])
    | Nack b -> (on_nack st b, [])
    | Decide v ->
        ( (match st.decided with
          | None -> { st with decided = Some v }
          | Some _ -> st),
          [] )

  let covers_quorum quorum set = List.for_all (fun q -> Pid.Set.mem q set) quorum

  let choose_value st =
    let best =
      Pid.Map.fold
        (fun _ acc best ->
          match (acc, best) with
          | Some (b, v), Some (b', _) when b > b' -> Some (b, v)
          | Some (b, v), None -> Some (b, v)
          | _, _ -> best)
        st.promises None
    in
    match best with Some (_, v) -> v | None -> st.input

  let start_ballot st =
    let b = next_own_ballot st in
    let st =
      {
        st with
        ballot = b;
        phase = P1;
        promises = Pid.Map.singleton st.me st.accepted;
        accepts = Pid.Set.empty;
        promised = max st.promised b;
        stalled = 0;
      }
    in
    (st, broadcast st (Prepare b))

  let start_phase2 st quorum_ignored v =
    ignore quorum_ignored;
    let st =
      {
        st with
        phase = P2 v;
        accepts = Pid.Set.singleton st.me;
        promised = max st.promised st.ballot;
        accepted = Some (st.ballot, v);
        stalled = 0;
      }
    in
    (st, broadcast st (Accept (st.ballot, v)))

  let stall_threshold st = (4 * st.n) + 8

  let proposer_tick st quorum am_leader =
    if st.decided <> None then (st, [])
    else
      match st.phase with
      | Idle -> if am_leader then start_ballot st else (st, [])
      | P1 ->
          if covers_quorum quorum (Pid.Map.fold (fun p _ s -> Pid.Set.add p s) st.promises Pid.Set.empty)
          then start_phase2 st quorum (choose_value st)
          else if st.stalled > stall_threshold st then
            if am_leader then start_ballot st else ({ st with phase = Idle }, [])
          else ({ st with stalled = st.stalled + 1 }, [])
      | P2 v ->
          if covers_quorum quorum st.accepts then
            ({ st with decided = Some v }, [])
          else if st.stalled > stall_threshold st then
            if am_leader then start_ballot st else ({ st with phase = Idle }, [])
          else ({ st with stalled = st.stalled + 1 }, [])

  let step st ~received ~fd =
    let quorum, leaders =
      match fd with
      | None -> invalid_arg "synod: failure detector view required"
      | Some view -> (
          match (Fd_view.quorum view, Fd_view.leaders view) with
          | Some q, Some l -> (q, l)
          | _, _ -> invalid_arg "synod: view needs quorum and leader components")
    in
    let st, replies =
      List.fold_left
        (fun (st, acc) incoming ->
          let st, out = handle st incoming in
          (st, acc @ out))
        (st, []) received
    in
    let am_leader = List.mem st.me leaders in
    let st, proposals = proposer_tick st quorum am_leader in
    match st.decided with
    | Some v when not st.announced ->
        ( { st with announced = true },
          replies @ proposals @ broadcast st (Decide v),
          Some v )
    | Some _ | None -> (st, replies @ proposals, None)

  let pp_phase ppf = function
    | Idle -> Format.pp_print_string ppf "idle"
    | P1 -> Format.pp_print_string ppf "p1"
    | P2 v -> Format.fprintf ppf "p2(%a)" Value.pp v

  let pp_state ppf st =
    Format.fprintf ppf "{%a bal=%d %a promised=%d}" Pid.pp st.me st.ballot
      pp_phase st.phase st.promised

  let pp_message ppf = function
    | Prepare b -> Format.fprintf ppf "prepare(%d)" b
    | Promise (b, None) -> Format.fprintf ppf "promise(%d,-)" b
    | Promise (b, Some (b', v)) ->
        Format.fprintf ppf "promise(%d,%d:%a)" b b' Value.pp v
    | Accept (b, v) -> Format.fprintf ppf "accept(%d,%a)" b Value.pp v
    | Accepted b -> Format.fprintf ppf "accepted(%d)" b
    | Nack b -> Format.fprintf ppf "nack(%d)" b
    | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v
end
