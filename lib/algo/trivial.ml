module Value = Ksa_sim.Value
module Pid = Ksa_sim.Pid

module A = struct
  type state = { me : Pid.t; input : Value.t; decided : bool }
  type message = |

  let name = "trivial"
  let uses_fd = false
  let init ~n ~me ~input = ignore n; { me; input; decided = false }

  let step st ~received ~fd =
    ignore received;
    ignore fd;
    if st.decided then (st, [], None)
    else ({ st with decided = true }, [], Some st.input)

  (* the record has no order-sensitive representation to normalize *)
  let canon st = st
  let canon_message (msg : message) = msg

  (* no messages, nothing to forge *)
  let forge_pool ~n:_ ~values:_ = []
  let pp_message _ppf (msg : message) = match msg with _ -> .

  let pp_state ppf st =
    Format.fprintf ppf "{%a input=%a}" Pid.pp st.me Value.pp st.input
end
