module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value
module Digraph = Ksa_dgraph.Digraph
module Source = Ksa_dgraph.Source

let kset_l ~n ~f =
  if f < 0 || f >= n then invalid_arg "Kset_flp.kset_l";
  n - f

let consensus_l ~n = (n + 2) / 2

let decisions_bound ~n ~l = n / l

let solvable ~n ~f ~k = k * n > (k + 1) * f

module Make (P : sig
  val l : int
end) =
struct
  type message =
    | Hello
    | Report of Value.t * Pid.t list
        (** proposal value and the stage-1 heard list of the sender *)

  type state = {
    n : int;
    me : Pid.t;
    input : Value.t;
    started : bool;
    heard : Pid.t list; (* stage-1 senders, arrival order, deduped *)
    in_stage2 : bool;
    reports : (Value.t * Pid.t list) Pid.Map.t; (* own report included *)
    need : Pid.Set.t; (* transitive closure of heard-lists, incl. self *)
    decided : bool;
  }

  let name = Printf.sprintf "kset-flp(L=%d)" P.l
  let uses_fd = false

  let init ~n ~me ~input =
    if P.l < 1 || P.l > n then invalid_arg "Kset_flp: need 1 <= L <= n";
    {
      n;
      me;
      input;
      started = false;
      heard = [];
      in_stage2 = false;
      reports = Pid.Map.empty;
      need = Pid.Set.singleton me;
      decided = false;
    }

  let broadcast st msg =
    List.filter_map
      (fun q -> if Pid.equal q st.me then None else Some (q, msg))
      (List.init st.n Fun.id)

  (* Once all needed reports are present, the local knowledge graph is
     exactly the ancestor closure of [me] in the global stage-one
     graph; decide via its minimal source component. *)
  let try_decide st =
    if st.decided || not st.in_stage2 then None
    else if not (Pid.Set.for_all (fun q -> Pid.Map.mem q st.reports) st.need)
    then None
    else begin
      let known = Pid.Set.elements st.need in
      let compact = Hashtbl.create 16 in
      List.iteri (fun i q -> Hashtbl.replace compact q i) known;
      let preds =
        Array.of_list
          (List.map
             (fun q ->
               let _, heard_q = Pid.Map.find q st.reports in
               List.filter_map (Hashtbl.find_opt compact) heard_q)
             known)
      in
      let g = Digraph.of_pred_lists preds in
      let src = Source.decision_source g (Hashtbl.find compact st.me) in
      let min_vertex = List.fold_left min (List.hd src) src in
      let winner = List.nth known min_vertex in
      let value, _ = Pid.Map.find winner st.reports in
      Some value
    end

  let absorb_report st q (v, heard_q) =
    if Pid.Map.mem q st.reports then st
    else
      {
        st with
        reports = Pid.Map.add q (v, heard_q) st.reports;
        need =
          List.fold_left
            (fun acc u -> Pid.Set.add u acc)
            (Pid.Set.add q st.need) heard_q;
      }

  let enter_stage2 st =
    let st =
      absorb_report { st with in_stage2 = true } st.me (st.input, st.heard)
    in
    (st, broadcast st (Report (st.input, st.heard)))

  let step st ~received ~fd =
    ignore fd;
    let st, hello_sends =
      if st.started then (st, [])
      else ({ st with started = true }, broadcast st Hello)
    in
    let st =
      List.fold_left
        (fun st (src, msg) ->
          match msg with
          | Hello ->
              if List.mem src st.heard then st
              else { st with heard = st.heard @ [ src ] }
          | Report (v, heard_q) -> absorb_report st src (v, heard_q))
        st received
    in
    let st, report_sends =
      if (not st.in_stage2) && List.length st.heard >= P.l - 1 then
        enter_stage2 st
      else (st, [])
    in
    match try_decide st with
    | Some v -> ({ st with decided = true }, hello_sends @ report_sends, Some v)
    | None -> (st, hello_sends @ report_sends, None)

  (* [heard] is a deduplicated set kept in arrival order, and every
     consumer is order-insensitive: membership ([List.mem]), the
     stage-2 threshold ([List.length]), the [need] closure (set
     union), and [try_decide]'s predecessor lists (a digraph edge set,
     and [decision_source] is a function of the graph).  Sorting it —
     and the heard lists inside received reports — is therefore
     behaviour-preserving, and collapses the (L-1)! arrival orders
     that lead to the same stage-2 report.

     Two stronger erasures on top of the sort, both of dead state:

     - once [in_stage2], nothing reads [heard] again — the threshold
       test is gated on [not in_stage2] and [enter_stage2] snapshotted
       the list into [reports]/the broadcast — so late Hello arrivals
       only grow a write-only field.  Freezing it to [] collapses the
       2^(n-1) subsets of stragglers a stage-2 process may yet hear.

     - once [decided], [try_decide] short-circuits, no send can fire
       ([started] and [in_stage2] both hold), and the decision value
       already left through [step]'s result — the whole
       [heard]/[reports]/[need] ledger is write-only.  Resetting it
       makes every decided process a single sink state per (me, input),
       however many stragglers it still absorbs.

     Both satisfy the {!Algorithm.S.canon} contract: [step] emits the
     same sends and decision from the erased state, and erasure
     commutes with the writes [step] performs on the erased fields. *)
  let canon st =
    if st.decided then
      {
        st with
        heard = [];
        reports = Pid.Map.empty;
        need = Pid.Set.singleton st.me;
      }
    else
      {
        st with
        heard = (if st.in_stage2 then [] else List.sort compare st.heard);
        reports =
          Pid.Map.map (fun (v, h) -> (v, List.sort compare h)) st.reports;
      }

  let canon_message = function
    | Hello -> Hello
    | Report (v, heard) -> Report (v, List.sort compare heard)

  (* A corrupted sender may replay a Hello or claim any candidate
     value with an {e empty} heard list — the empty list makes it a
     predecessor-free source in the receiver's decision graph, the
     strongest lie this algorithm can be told (any non-empty heard
     list only weakens the forged report's influence). *)
  let forge_pool ~n:_ ~values =
    Hello :: List.map (fun v -> Report (v, [])) values

  let pp_message ppf = function
    | Hello -> Format.pp_print_string ppf "hello"
    | Report (v, heard) ->
        Format.fprintf ppf "report(%a, [%a])" Value.pp v
          (Format.pp_print_list ~pp_sep:Format.pp_print_space Pid.pp)
          heard

  let pp_state ppf st =
    Format.fprintf ppf "{%a stage=%s heard=%d reports=%d}" Pid.pp st.me
      (if st.in_stage2 then "2" else "1")
      (List.length st.heard)
      (Pid.Map.cardinal st.reports)
end
