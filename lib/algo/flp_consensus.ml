module For (N : sig
  val n : int
end) =
struct
  module Inner = Kset_flp.Make (struct
    let l = Kset_flp.consensus_l ~n:N.n
  end)

  type state = Inner.state
  type message = Inner.message

  let name = Printf.sprintf "flp-consensus(n=%d)" N.n
  let uses_fd = Inner.uses_fd

  let init ~n ~me ~input =
    if n <> N.n then invalid_arg "Flp_consensus: system size mismatch";
    Inner.init ~n ~me ~input

  let step = Inner.step
  let canon = Inner.canon
  let canon_message = Inner.canon_message
  let forge_pool = Inner.forge_pool
  let pp_state = Inner.pp_state
  let pp_message = Inner.pp_message
end

let max_initial_crashes ~n =
  if n < 1 then invalid_arg "Flp_consensus.max_initial_crashes";
  ((n + 1) / 2) - 1
