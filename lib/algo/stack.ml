module Pid = Ksa_sim.Pid
module Fd_view = Ksa_sim.Fd_view

module type FD_IMPL = sig
  type state
  type message

  val name : string
  val init : n:int -> me:Pid.t -> state

  val on_step :
    state -> received:(Pid.t * message) list -> state * (Pid.t * message) list

  val view : state -> Fd_view.t
end

module Heartbeat_fd (W : sig
  val window : int
end) =
struct
  type message = Beat

  type state = {
    n : int;
    me : Pid.t;
    steps : int;
    last_heard : int Pid.Map.t; (* own-step index of last beat per sender *)
  }

  let name = Printf.sprintf "heartbeat-fd(w=%d)" W.window

  let init ~n ~me = { n; me; steps = 0; last_heard = Pid.Map.empty }

  let on_step st ~received =
    let st = { st with steps = st.steps + 1 } in
    let last_heard =
      List.fold_left
        (fun acc (src, Beat) -> Pid.Map.add src st.steps acc)
        st.last_heard received
    in
    let st = { st with last_heard } in
    let sends =
      List.filter_map
        (fun q -> if Pid.equal q st.me then None else Some (q, Beat))
        (List.init st.n Fun.id)
    in
    (st, sends)

  let fresh st =
    List.filter
      (fun q ->
        Pid.equal q st.me
        ||
        match Pid.Map.find_opt q st.last_heard with
        | Some s -> s > st.steps - W.window
        | None -> false)
      (List.init st.n Fun.id)

  let view st =
    let fresh = fresh st in
    let majority = (st.n / 2) + 1 in
    let quorum =
      if List.length fresh >= majority then fresh else List.init st.n Fun.id
    in
    let leader = List.fold_left min st.me fresh in
    Fd_view.Pair (Fd_view.Quorum quorum, Fd_view.Leaders [ leader ])
end

module Make (F : FD_IMPL) (A : Ksa_sim.Algorithm.S) = struct
  type state = { f : F.state; a : A.state }
  type message = Fd of F.message | App of A.message

  let name = A.name ^ "/" ^ F.name
  let uses_fd = false

  let init ~n ~me ~input = { f = F.init ~n ~me; a = A.init ~n ~me ~input }

  let step st ~received ~fd =
    ignore fd;
    let fd_msgs =
      List.filter_map
        (fun (src, m) -> match m with Fd m -> Some (src, m) | App _ -> None)
        received
    in
    let app_msgs =
      List.filter_map
        (fun (src, m) -> match m with App m -> Some (src, m) | Fd _ -> None)
        received
    in
    let f, f_sends = F.on_step st.f ~received:fd_msgs in
    let view = F.view f in
    let a, a_sends, dec = A.step st.a ~received:app_msgs ~fd:(Some view) in
    let sends =
      List.map (fun (dst, m) -> (dst, Fd m)) f_sends
      @ List.map (fun (dst, m) -> (dst, App m)) a_sends
    in
    ({ f; a }, sends, dec)

  (* the FD layer has no canon hook of its own; normalize the
     application half only *)
  let canon st = { st with a = A.canon st.a }

  let canon_message = function
    | Fd m -> Fd m
    | App m -> App (A.canon_message m)

  (* forging FD beats is not modeled; application payloads forge
     through the inner pool *)
  let forge_pool ~n ~values = List.map (fun m -> App m) (A.forge_pool ~n ~values)

  let pp_state ppf st = A.pp_state ppf st.a

  let pp_message ppf = function
    | Fd _ -> Format.pp_print_string ppf "fd-beat"
    | App m -> A.pp_message ppf m
end
