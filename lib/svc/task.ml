(* Campaign drivers as resumable tasks.  See task.mli. *)

module Sim = Ksa_sim
module Algo = Ksa_algo
module Checkpoint = Ksa_sim.Checkpoint

type explore_spec = {
  e_algo : string;
  e_n : int;
  e_k : int;
  e_l : int option;
  e_wait : int;
  e_dead : int list;
  e_crash_budget : int;
  e_model : Sim.Fault_model.t;
  e_policy : string;
  e_reduction : Sim.Canon.reduction;
  e_max_configs : int option;
  e_drop : bool;
}

type fuzz_spec = {
  f_algo : string;
  f_n : int;
  f_k : int;
  f_l : int option;
  f_wait : int;
  f_dead : int list;
  f_seed : int;
  f_trials : int;
  f_max_steps : int;
  f_max_crashes : int;
  f_weights : string;
  f_termination : bool;
  f_coverage : bool;
  f_model : Sim.Fault_model.t;
}

type probe_spec = { p_fail : int; p_spin : float }

type spec =
  | Explore of explore_spec
  | Fuzz of fuzz_spec
  | Probe of probe_spec

(* ---------- shared pieces lifted from the CLI ---------- *)

let resolve_l ~n = function Some l -> l | None -> max 1 (n - 1)

let algo_conv ~l ~wait_for = function
  | "kset-flp" ->
      let module K = Algo.Kset_flp.Make (struct
        let l = l
      end) in
      Ok (module K : Sim.Algorithm.S)
  | "naive-min" ->
      let module N = Algo.Naive_min.Make (struct
        let wait_for = wait_for
      end) in
      Ok (module N : Sim.Algorithm.S)
  | "trivial" -> Ok (module Algo.Trivial.A : Sim.Algorithm.S)
  | "synod" -> Ok (module Algo.Synod.A : Sim.Algorithm.S)
  | other -> Error (Printf.sprintf "unknown algorithm %S" other)

let policy_conv = function
  | "per-sender" -> Ok Sim.Explorer.Per_sender
  | "empty-or-all" -> Ok Sim.Explorer.Empty_or_all
  | "all-subsets" -> Ok Sim.Explorer.All_subsets
  | p ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected per-sender, empty-or-all, or \
            all-subsets)"
           p)

let weights_conv = function
  | "fair" -> Ok Sim.Fuzz.fair_weights
  | "mixed" -> Ok Sim.Fuzz.default_weights
  | w -> Error (Printf.sprintf "unknown weights %S (expected fair or mixed)" w)

let explore_crashless e =
  e.e_crash_budget = 0 && e.e_model = Sim.Fault_model.Crash

let kind = function
  | Explore e -> if explore_crashless e then "explore" else "explore-crash"
  | Fuzz _ -> "fuzz"
  | Probe _ -> "probe"

(* Fingerprint formats are load-bearing: they must stay byte-identical
   to the strings the CLI has always written, or every existing
   checkpoint stops resuming. *)

let model_suffix = function
  | Sim.Fault_model.Crash -> ""
  | m -> " model=" ^ Sim.Fault_model.to_string m

let fingerprint = function
  | Explore e ->
      let l = resolve_l ~n:e.e_n e.e_l in
      Printf.sprintf
        "algo=%s n=%d k=%d l=%d wait=%d dead=%s crash-budget=%d policy=%s \
         max-configs=%s drop=%b reduction=%s"
        e.e_algo e.e_n e.e_k l e.e_wait
        (String.concat "," (List.map string_of_int e.e_dead))
        e.e_crash_budget e.e_policy
        (match e.e_max_configs with None -> "-" | Some m -> string_of_int m)
        e.e_drop
        (Sim.Canon.reduction_to_string e.e_reduction)
      ^ model_suffix e.e_model
  | Fuzz f ->
      let l = resolve_l ~n:f.f_n f.f_l in
      Printf.sprintf
        "algo=%s n=%d k=%d l=%d wait=%d dead=%s seed=%d trials=%d \
         max-steps=%d max-crashes=%d weights=%s termination=%b coverage=%b"
        f.f_algo f.f_n f.f_k l f.f_wait
        (String.concat "," (List.map string_of_int f.f_dead))
        f.f_seed f.f_trials f.f_max_steps f.f_max_crashes f.f_weights
        f.f_termination f.f_coverage
      ^ model_suffix f.f_model
  | Probe p -> Printf.sprintf "probe fail=%d spin=%g" p.p_fail p.p_spin

(* ---------- JSON codec ---------- *)

let spec_to_json spec =
  let ints l = Json.List (List.map (fun i -> Json.Int i) l) in
  match spec with
  | Explore e ->
      Json.Obj
        ([
           ("task", Json.Str "explore");
           ("algo", Json.Str e.e_algo);
           ("n", Json.Int e.e_n);
           ("k", Json.Int e.e_k);
         ]
        @ (match e.e_l with None -> [] | Some l -> [ ("l", Json.Int l) ])
        @ [
            ("wait", Json.Int e.e_wait);
            ("dead", ints e.e_dead);
            ("crash-budget", Json.Int e.e_crash_budget);
            ("model", Json.Str (Sim.Fault_model.to_string e.e_model));
            ("policy", Json.Str e.e_policy);
            ( "reduction",
              Json.Str (Sim.Canon.reduction_to_string e.e_reduction) );
          ]
        @ (match e.e_max_configs with
          | None -> []
          | Some m -> [ ("max-configs", Json.Int m) ])
        @ [ ("drop-on-crash", Json.Bool e.e_drop) ])
  | Fuzz f ->
      Json.Obj
        ([
           ("task", Json.Str "fuzz");
           ("algo", Json.Str f.f_algo);
           ("n", Json.Int f.f_n);
           ("k", Json.Int f.f_k);
         ]
        @ (match f.f_l with None -> [] | Some l -> [ ("l", Json.Int l) ])
        @ [
            ("wait", Json.Int f.f_wait);
            ("dead", ints f.f_dead);
            ("seed", Json.Int f.f_seed);
            ("trials", Json.Int f.f_trials);
            ("max-steps", Json.Int f.f_max_steps);
            ("max-crashes", Json.Int f.f_max_crashes);
            ("weights", Json.Str f.f_weights);
            ("termination", Json.Bool f.f_termination);
            ("coverage", Json.Bool f.f_coverage);
            ("model", Json.Str (Sim.Fault_model.to_string f.f_model));
          ])
  | Probe p ->
      Json.Obj
        [
          ("task", Json.Str "probe");
          ("fail", Json.Int p.p_fail);
          ("spin", Json.Float p.p_spin);
        ]

let spec_of_json j =
  let ( let* ) = Result.bind in
  let str ?default k =
    match Option.map Json.get_string (Json.mem k j) with
    | Some (Some s) -> Ok s
    | Some None -> Error (Printf.sprintf "field %S must be a string" k)
    | None -> (
        match default with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "missing field %S" k))
  in
  let int ?default k =
    match Option.map Json.get_int (Json.mem k j) with
    | Some (Some i) -> Ok i
    | Some None -> Error (Printf.sprintf "field %S must be an integer" k)
    | None -> (
        match default with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "missing field %S" k))
  in
  let int_opt k =
    match Option.map Json.get_int (Json.mem k j) with
    | Some (Some i) -> Ok (Some i)
    | Some None -> Error (Printf.sprintf "field %S must be an integer" k)
    | None -> Ok None
  in
  let flt ~default k =
    match Option.map Json.get_float (Json.mem k j) with
    | Some (Some f) -> Ok f
    | Some None -> Error (Printf.sprintf "field %S must be a number" k)
    | None -> Ok default
  in
  let boolean ~default k =
    match Option.map Json.get_bool (Json.mem k j) with
    | Some (Some b) -> Ok b
    | Some None -> Error (Printf.sprintf "field %S must be a boolean" k)
    | None -> Ok default
  in
  let dead () =
    match Json.mem "dead" j with
    | None -> Ok []
    | Some v -> (
        match Json.get_list v with
        | None -> Error "field \"dead\" must be a list of integers"
        | Some l ->
            List.fold_right
              (fun x acc ->
                let* acc = acc in
                match Json.get_int x with
                | Some i -> Ok (i :: acc)
                | None -> Error "field \"dead\" must be a list of integers")
              l (Ok []))
  in
  let model () =
    let* s = str ~default:"crash" "model" in
    Sim.Fault_model.of_string s
  in
  let algo () =
    let* a = str ~default:"kset-flp" "algo" in
    (* validate eagerly with harmless parameters; the name is what is
       being checked *)
    let* _ = algo_conv ~l:1 ~wait_for:1 a in
    Ok a
  in
  let* task = str "task" in
  match task with
  | "explore" ->
      let* e_algo = algo () in
      let* e_n = int ~default:6 "n" in
      let* e_k = int ~default:2 "k" in
      let* e_l = int_opt "l" in
      let* e_wait = int ~default:2 "wait" in
      let* e_dead = dead () in
      let* e_crash_budget = int ~default:0 "crash-budget" in
      let* e_model = model () in
      let* e_policy = str ~default:"per-sender" "policy" in
      let* _ = policy_conv e_policy in
      let* red = str ~default:"none" "reduction" in
      let* e_reduction = Sim.Canon.reduction_of_string red in
      let* e_max_configs = int_opt "max-configs" in
      let* e_drop = boolean ~default:false "drop-on-crash" in
      Ok
        (Explore
           {
             e_algo;
             e_n;
             e_k;
             e_l;
             e_wait;
             e_dead;
             e_crash_budget;
             e_model;
             e_policy;
             e_reduction;
             e_max_configs;
             e_drop;
           })
  | "fuzz" ->
      let* f_algo = algo () in
      let* f_n = int ~default:6 "n" in
      let* f_k = int ~default:2 "k" in
      let* f_l = int_opt "l" in
      let* f_wait = int ~default:2 "wait" in
      let* f_dead = dead () in
      let* f_seed = int ~default:1 "seed" in
      let* f_trials = int ~default:1000 "trials" in
      let* f_max_steps = int ~default:200 "max-steps" in
      let* f_max_crashes = int ~default:0 "max-crashes" in
      let* f_weights = str ~default:"mixed" "weights" in
      let* _ = weights_conv f_weights in
      let* f_termination = boolean ~default:false "termination" in
      let* f_coverage = boolean ~default:false "coverage" in
      let* f_model = model () in
      Ok
        (Fuzz
           {
             f_algo;
             f_n;
             f_k;
             f_l;
             f_wait;
             f_dead;
             f_seed;
             f_trials;
             f_max_steps;
             f_max_crashes;
             f_weights;
             f_termination;
             f_coverage;
             f_model;
           })
  | "probe" ->
      let* p_fail = int ~default:0 "fail" in
      let* p_spin = flt ~default:0. "spin" in
      Ok (Probe { p_fail; p_spin })
  | other -> Error (Printf.sprintf "unknown task %S" other)

(* ---------- resume validation ---------- *)

let load_resume ~path ~kind ~fingerprint =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match Checkpoint.load ~path with
  | Error e -> fail "cannot resume: %s" e
  | Ok t ->
      if Checkpoint.kind t <> kind then
        fail "%s is a %S checkpoint, not %S" path (Checkpoint.kind t) kind
      else if Checkpoint.fingerprint t <> fingerprint then
        fail "%s was written under different campaign parameters" path
      else (
        match Checkpoint.restore_interners t with
        | Error e -> fail "cannot resume: %s" e
        | Ok () -> Ok t)

(* ---------- execution ---------- *)

type outcome =
  | Explored of Sim.Explorer.outcome
  | Crash_explored of Sim.Explorer.resilient_outcome
  | Fuzzed of Sim.Fuzz.outcome
  | Probed of { attempt : int }

let k_check ~k decisions =
  let distinct =
    List.sort_uniq Sim.Value.compare
      (List.map (fun (_, v, _) -> v) decisions)
  in
  if List.length distinct > k then
    Some
      (Printf.sprintf "%d distinct decisions exceed k=%d"
         (List.length distinct) k)
  else None

let run_probe ~attempt ~ckpt ~stop p =
  if attempt < p.p_fail then
    failwith
      (Printf.sprintf "probe: injected failure (attempt %d of %d)" attempt
         p.p_fail);
  let deadline = p.p_spin in
  let slept = ref 0. in
  while
    !slept < deadline
    && (not (Checkpoint.interrupted ckpt))
    && not (stop ())
  do
    let slice = Float.min 0.01 (deadline -. !slept) in
    Unix.sleepf slice;
    slept := !slept +. slice
  done;
  Probed { attempt }

let run ?(attempt = 0) ?(domains = 1) ?(stop = fun () -> false)
    ?(ckpt = Checkpoint.ctl ()) ?resume spec =
  match spec with
  | Probe p -> Ok (run_probe ~attempt ~ckpt ~stop p)
  | Explore e -> (
      let n = e.e_n in
      let l = resolve_l ~n e.e_l in
      match algo_conv ~l ~wait_for:e.e_wait e.e_algo with
      | Error _ as err -> err
      | Ok (module A) -> (
          match policy_conv e.e_policy with
          | Error _ as err -> err
          | Ok policy -> (
              let module Ex = Sim.Explorer.Make (A) in
              let inputs = Sim.Value.distinct_inputs n in
              let check = k_check ~k:e.e_k in
              let reduction = e.e_reduction in
              let max_configs = e.e_max_configs in
              try
                if explore_crashless e then begin
                  let pattern =
                    Sim.Failure_pattern.initial_dead ~n ~dead:e.e_dead
                  in
                  let outcome =
                    if domains > 1 then
                      Ex.explore_par ~reduction ~domains ?max_configs ~policy
                        ~ckpt ~n ~inputs ~pattern ~check ()
                    else
                      Ex.explore ~reduction ?max_configs ~policy ~ckpt ?resume
                        ~n ~inputs ~pattern ~check ()
                  in
                  Ok (Explored outcome)
                end
                else begin
                  let outcome =
                    if domains > 1 then
                      Ex.explore_with_crashes_par ~reduction ~model:e.e_model
                        ~domains ?max_configs ~policy ~drop_on_crash:e.e_drop
                        ~initially_dead:e.e_dead ~ckpt ~n ~inputs
                        ~crash_budget:e.e_crash_budget ~check ()
                    else
                      Ex.explore_with_crashes ~reduction ~model:e.e_model
                        ?max_configs ~policy ~drop_on_crash:e.e_drop
                        ~initially_dead:e.e_dead ~ckpt ?resume ~n ~inputs
                        ~crash_budget:e.e_crash_budget ~check ()
                  in
                  Ok (Crash_explored outcome)
                end
              with Invalid_argument msg -> Error ("not explorable: " ^ msg))))
  | Fuzz f -> (
      let n = f.f_n in
      let l = resolve_l ~n f.f_l in
      match algo_conv ~l ~wait_for:f.f_wait f.f_algo with
      | Error _ as err -> err
      | Ok (module A) -> (
          match weights_conv f.f_weights with
          | Error _ as err -> err
          | Ok weights ->
              let module F = Sim.Fuzz.Make (A) in
              let cfg =
                {
                  (Sim.Fuzz.default_config ~k:f.f_k ~n ()) with
                  Sim.Fuzz.pattern =
                    Sim.Failure_pattern.initial_dead ~n ~dead:f.f_dead;
                  weights;
                  max_crashes = f.f_max_crashes;
                  max_steps = f.f_max_steps;
                  properties =
                    ([ Sim.Fuzz.K_agreement f.f_k; Sim.Fuzz.Validity ]
                    @
                    if f.f_termination then [ Sim.Fuzz.Termination ] else []);
                  stop = Some stop;
                  model = f.f_model;
                  coverage = f.f_coverage;
                }
              in
              let outcome =
                if domains > 1 then
                  F.run_par ~domains ~ckpt ?resume_payload:resume cfg
                    ~seed:f.f_seed ~trials:f.f_trials
                else
                  F.run ~ckpt ?resume_payload:resume cfg ~seed:f.f_seed
                    ~trials:f.f_trials
              in
              Ok (Fuzzed outcome)))

(* ---------- summaries ---------- *)

type summary = {
  verdict : string;
  exit_code : int;
  detail : string;
  items : int;
}

let pp_stats (s : Sim.Explorer.stats) =
  Printf.sprintf "%d configs visited, %d terminal runs%s"
    s.Sim.Explorer.configs_visited s.Sim.Explorer.terminal_runs
    (if s.Sim.Explorer.budget_exhausted then " (budget exhausted)" else "")

let summarize = function
  | Explored (Sim.Explorer.Safe stats)
    when stats.Sim.Explorer.budget_exhausted ->
      {
        verdict = "indeterminate";
        exit_code = 4;
        detail = "no violation in the explored prefix; " ^ pp_stats stats;
        items = stats.Sim.Explorer.configs_visited;
      }
  | Explored (Sim.Explorer.Safe stats) ->
      {
        verdict = "safe";
        exit_code = 0;
        detail = pp_stats stats;
        items = stats.Sim.Explorer.configs_visited;
      }
  | Explored (Sim.Explorer.Violation { reason; depth; _ }) ->
      {
        verdict = "violation";
        exit_code = 2;
        detail = Printf.sprintf "at depth %d: %s" depth reason;
        items = depth;
      }
  | Crash_explored (Sim.Explorer.All_paths_decide stats) ->
      {
        verdict = "all-paths-decide";
        exit_code = 0;
        detail = pp_stats stats;
        items = stats.Sim.Explorer.configs_visited;
      }
  | Crash_explored (Sim.Explorer.Safety_violation { reason; _ }) ->
      { verdict = "violation"; exit_code = 2; detail = reason; items = 0 }
  | Crash_explored (Sim.Explorer.Stuck { crashed; undecided_correct; stats })
    ->
      {
        verdict = "stuck";
        exit_code = 3;
        detail =
          Printf.sprintf "crashes {%s} strand {%s} undecided; %s"
            (String.concat "," (List.map (Printf.sprintf "p%d") crashed))
            (String.concat ","
               (List.map (Printf.sprintf "p%d") undecided_correct))
            (pp_stats stats);
        items = stats.Sim.Explorer.configs_visited;
      }
  | Crash_explored (Sim.Explorer.Indeterminate stats) ->
      {
        verdict = "indeterminate";
        exit_code = 4;
        detail = "budget truncated before the graph closed; " ^ pp_stats stats;
        items = stats.Sim.Explorer.configs_visited;
      }
  | Fuzzed (Sim.Fuzz.Violation_found v) ->
      {
        verdict = "violation";
        exit_code = 2;
        detail =
          Printf.sprintf "at trial %d (%s): %s" v.Sim.Fuzz.trial
            v.Sim.Fuzz.property v.Sim.Fuzz.reason;
        items = v.Sim.Fuzz.trial;
      }
  | Fuzzed (Sim.Fuzz.Clean { trials }) ->
      {
        verdict = "clean";
        exit_code = 0;
        detail = Printf.sprintf "%d trials, no violation" trials;
        items = trials;
      }
  | Fuzzed (Sim.Fuzz.Budget_exhausted { trials }) ->
      {
        verdict = "budget-exhausted";
        exit_code = 4;
        detail = Printf.sprintf "no violation in %d trials before the budget" trials;
        items = trials;
      }
  | Probed { attempt } ->
      {
        verdict = "ok";
        exit_code = 0;
        detail = Printf.sprintf "probe completed on attempt %d" attempt;
        items = 1;
      }

let summary_to_json s =
  Json.Obj
    [
      ("verdict", Json.Str s.verdict);
      ("exit", Json.Int s.exit_code);
      ("detail", Json.Str s.detail);
      ("items", Json.Int s.items);
    ]

let summary_of_json j =
  let ( let* ) = Result.bind in
  let field k get =
    match Option.map get (Json.mem k j) with
    | Some (Some v) -> Ok v
    | _ -> Error (Printf.sprintf "summary: bad field %S" k)
  in
  let* verdict = field "verdict" Json.get_string in
  let* exit_code = field "exit" Json.get_int in
  let* detail = field "detail" Json.get_string in
  let* items = field "items" Json.get_int in
  Ok { verdict; exit_code; detail; items }
