(* Minimal strict JSON.  See json.mli for scope. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string t =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_finite f then (
          let s = Printf.sprintf "%.17g" f in
          Buffer.add_string b s)
        else Buffer.add_string b "null"
    | Str s -> escape b s
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape b k;
            Buffer.add_char b ':';
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go t;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad (!pos, m))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected %c, found %c" c d
    | None -> fail "expected %c, found end of input" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail "bad literal"
  in
  let utf8_encode b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
    else if cp < 0x10000 then (
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
    else (
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          Buffer.contents b
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' -> (
                  match hex4 () with
                  | exception _ -> fail "bad \\u escape"
                  | hi when hi >= 0xD800 && hi <= 0xDBFF ->
                      (* surrogate pair *)
                      if
                        !pos + 2 <= n
                        && s.[!pos] = '\\'
                        && s.[!pos + 1] = 'u'
                      then (
                        pos := !pos + 2;
                        match hex4 () with
                        | exception _ -> fail "bad \\u escape"
                        | lo when lo >= 0xDC00 && lo <= 0xDFFF ->
                            utf8_encode b
                              (0x10000
                              + ((hi - 0xD800) lsl 10)
                              + (lo - 0xDC00))
                        | _ -> fail "unpaired surrogate")
                      else fail "unpaired surrogate"
                  | cp -> utf8_encode b cp)
              | c -> fail "bad escape \\%c" c);
              go ())
      | Some c when Char.code c < 0x20 -> fail "control byte in string"
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elts acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elts (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elts []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (off, m) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" off m)

(* ---------- accessors ---------- *)

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let get_string = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List l -> Some l | _ -> None
