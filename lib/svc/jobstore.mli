(** The daemon's durable job store: one {!Ksa_prim.Durable} framed
    record per job (magic ["KSAJOB01"], JSON payload), living in the
    campaign directory next to the job's checkpoint file.

    Every state transition is a full atomic rewrite of the job's
    record, so a crash at {e any} instant — enumerable and provable
    via {!Ksa_prim.Faultsim} — leaves the record at the old state or
    the new state, both of which are valid resumption points of the
    job state machine:

    {v Queued -> Running -> Done
                    |-> Queued        (deadline / drain requeue)
                    |-> Failed(n)     (retriable; backs off, -> Queued)
                    |-> Dead          (retries exhausted / cancelled) v}

    A [Running] record found on open is an orphan — its daemon died
    without transitioning it — and is adopted back to [Queued] with
    [resumable] set, so its next attempt resumes from the checkpoint
    the dead daemon flushed.

    In-memory bookkeeping (retry eligibility times) is deliberately
    not persisted: after a restart every [Queued]/[Failed] job is
    immediately eligible, which only ever retries {e sooner} than the
    in-process schedule would have. *)

type state = Queued | Running | Done | Failed of int | Dead

val state_to_string : state -> string

type job = {
  id : int;
  spec : Task.spec;
  state : state;
  attempts : int;  (** Execution attempts completed (with any outcome). *)
  requeues : int;  (** Deadline/drain checkpoint-and-requeue count. *)
  deadline : float option;  (** Per-attempt wall-clock budget, seconds. *)
  retry_max : int;  (** Failed attempts allowed before [Dead]. *)
  resumable : bool;  (** Next attempt should resume the checkpoint. *)
  result : Task.summary option;  (** Set iff [Done]. *)
  error : string option;  (** Last failure / cancellation reason. *)
}

val ckpt_path : dir:string -> int -> string
(** The job's checkpoint file ([job-NNNNNN.ckpt] in [dir]) — fixed
    for the job's whole life, so resume needs no extra bookkeeping. *)

type t

val open_dir : dir:string -> (t, string) result
(** Create [dir] if needed, scan it for job records (skipping — with
    a stderr warning — any that fail CRC or parse: a torn temp file
    must not block the store), adopt [Running] orphans back to
    [Queued resumable] durably, and return the store.  [next id] is
    one past the highest id seen. *)

val dir : t -> string
val submit : t -> ?deadline:float -> ?retry_max:int -> Task.spec -> (job, string) result
val get : t -> int -> job option
val list : t -> job list
(** Ascending id order. *)

val update : t -> job -> (unit, string) result
(** Durably rewrite the job's record and the in-memory view.  The
    record on disk is the truth: if the write fails the in-memory
    view is {e not} changed. *)

val job_to_json : job -> Json.t
val job_of_json : Json.t -> (job, string) result
