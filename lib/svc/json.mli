(** A minimal JSON tree, parser and printer — just enough for the
    campaign daemon's job records and wire API, with no dependency
    beyond the stdlib.

    Coverage: objects, arrays, strings (with [\uXXXX] escapes decoded
    to UTF-8), booleans, null, and numbers split into [Int] (no
    fraction or exponent, fits in [int]) and [Float].  Parsing is
    strict — trailing garbage, unterminated literals and bad escapes
    are [Error]s naming the byte offset — because every job record
    read back from disk has already passed a CRC check: a parse
    failure here means a logic bug, and must not be papered over. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict parse of exactly one JSON value (surrounding whitespace
    allowed). *)

val to_string : t -> string
(** Compact (single-line) serialization.  [Float] uses ["%.17g"] so
    values round-trip; non-finite floats serialize as [null] (JSON
    has no spelling for them). *)

(** {1 Accessors} — each returns [None] on a shape mismatch. *)

val mem : string -> t -> t option
(** Field of an [Obj]. *)

val get_string : t -> string option
val get_int : t -> int option
val get_float : t -> float option
(** Accepts [Int] too (widened). *)

val get_bool : t -> bool option
val get_list : t -> t list option
