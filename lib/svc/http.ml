(* Minimal HTTP/1.1 over local sockets.  See http.mli for scope. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = { status : int; body : string }

let max_head = 64 * 1024
let max_body = 8 * 1024 * 1024

(* ---------- addresses ---------- *)

type addr = AUnix of string | ATcp of Unix.inet_addr * int

let parse_addr s =
  let prefixed p =
    let lp = String.length p in
    if String.length s > lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match prefixed "unix:" with
  | Some path when path <> "" -> Ok (AUnix path)
  | Some _ -> Error "empty unix socket path"
  | None -> (
      match prefixed "tcp:" with
      | Some hostport -> (
          match String.rindex_opt hostport ':' with
          | None -> Error (Printf.sprintf "bad tcp address %S (need HOST:PORT)" s)
          | Some i -> (
              let host = String.sub hostport 0 i in
              let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
              match int_of_string_opt port with
              | None -> Error (Printf.sprintf "bad port in %S" s)
              | Some p -> (
                  match Unix.inet_addr_of_string host with
                  | ip -> Ok (ATcp (ip, p))
                  | exception Failure _ -> (
                      match Unix.gethostbyname host with
                      | { Unix.h_addr_list = [||]; _ } ->
                          Error (Printf.sprintf "cannot resolve %S" host)
                      | h -> Ok (ATcp (h.Unix.h_addr_list.(0), p))
                      | exception Not_found ->
                          Error (Printf.sprintf "cannot resolve %S" host)))))
      | None ->
          Error
            (Printf.sprintf
               "bad address %S (expected unix:/path or tcp:HOST:PORT)" s))

let sockaddr_of = function
  | AUnix path -> Unix.ADDR_UNIX path
  | ATcp (ip, port) -> Unix.ADDR_INET (ip, port)

let with_errors f =
  try Ok (f ()) with
  | Unix.Unix_error (e, syscall, arg) ->
      Error
        (Printf.sprintf "%s%s: %s" syscall
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))
  | Sys_error m -> Error m

let listen ~addr =
  match parse_addr addr with
  | Error _ as e -> e
  | Ok a ->
      with_errors (fun () ->
          (match a with
          | AUnix path when Sys.file_exists path -> (
              (* stale socket from a killed daemon: safe to unlink iff
                 nobody accepts on it *)
              let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              let live =
                match Unix.connect probe (Unix.ADDR_UNIX path) with
                | () -> true
                | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> false
                | exception Unix.Unix_error (Unix.ENOENT, _, _) -> false
              in
              (try Unix.close probe with Unix.Unix_error _ -> ());
              if live then
                raise
                  (Sys_error
                     (Printf.sprintf "%s: a daemon is already listening" path))
              else try Unix.unlink path with Unix.Unix_error _ -> ())
          | _ -> ());
          let domain =
            match a with AUnix _ -> Unix.PF_UNIX | ATcp _ -> Unix.PF_INET
          in
          let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
          (match a with
          | ATcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
          | AUnix _ -> ());
          (try Unix.bind fd (sockaddr_of a)
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          Unix.listen fd 16;
          fd)

let addr_cleanup ~addr =
  match parse_addr addr with
  | Ok (AUnix path) -> ( try Sys.remove path with Sys_error _ -> ())
  | _ -> ()

(* ---------- wire reading ---------- *)

let read_until_headers fd =
  (* accumulate until \r\n\r\n (or bounded failure) *)
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    let s = Buffer.contents buf in
    match
      (* find header terminator in what we have so far *)
      let rec find i =
        if i + 3 >= String.length s then None
        else if
          s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
          && s.[i + 3] = '\n'
        then Some (i + 4)
        else find (i + 1)
      in
      find 0
    with
    | Some stop -> Ok (String.sub s 0 stop, String.sub s stop (String.length s - stop))
    | None ->
        if Buffer.length buf > max_head then Error "request head too large"
        else
          let k = Unix.read fd chunk 0 (Bytes.length chunk) in
          if k = 0 then Error "connection closed mid-request"
          else begin
            Buffer.add_subbytes buf chunk 0 k;
            go ()
          end
  in
  go ()

let read_exactly fd ~already ~len =
  let b = Buffer.create len in
  Buffer.add_string b already;
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length b >= len then
      Ok (String.sub (Buffer.contents b) 0 len)
    else
      let k = Unix.read fd chunk 0 (Bytes.length chunk) in
      if k = 0 then Error "connection closed mid-body"
      else begin
        Buffer.add_subbytes b chunk 0 k;
        go ()
      end
  in
  go ()

let split_lines head =
  String.split_on_char '\n' head
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
  |> List.filter (fun l -> l <> "")

let parse_head head =
  match split_lines head with
  | [] -> Error "empty request"
  | reqline :: header_lines -> (
      match String.split_on_char ' ' reqline with
      | meth :: path :: _ ->
          let headers =
            List.filter_map
              (fun l ->
                match String.index_opt l ':' with
                | None -> None
                | Some i ->
                    let k = String.lowercase_ascii (String.trim (String.sub l 0 i)) in
                    let v = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
                    Some (k, v))
              header_lines
          in
          Ok (String.uppercase_ascii meth, path, headers)
      | _ -> Error (Printf.sprintf "bad request line %S" reqline))

let read_request fd =
  match with_errors (fun () -> read_until_headers fd) with
  | Error _ as e -> e
  | Ok (Error _ as e) -> e
  | Ok (Ok (head, rest)) -> (
      match parse_head head with
      | Error _ as e -> e
      | Ok (meth, path, headers) -> (
          let len =
            match List.assoc_opt "content-length" headers with
            | None -> Some 0
            | Some v -> int_of_string_opt (String.trim v)
          in
          match len with
          | None -> Error "bad Content-Length"
          | Some len when len < 0 || len > max_body ->
              Error "unreasonable Content-Length"
          | Some len -> (
              match
                with_errors (fun () -> read_exactly fd ~already:rest ~len)
              with
              | Error _ as e -> e
              | Ok (Error _ as e) -> e
              | Ok (Ok body) -> Ok { meth; path; headers; body })))

let reason_of = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let write_response fd { status; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: application/json\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (reason_of status) (String.length body)
  in
  match with_errors (fun () -> write_all fd (head ^ body)) with
  | Ok () -> ()
  | Error _ -> () (* peer went away mid-response: its problem *)

(* ---------- client ---------- *)

let read_response fd =
  match with_errors (fun () -> read_until_headers fd) with
  | Error _ as e -> e
  | Ok (Error _ as e) -> e
  | Ok (Ok (head, rest)) -> (
      match split_lines head with
      | [] -> Error "empty response"
      | status_line :: header_lines -> (
          let status =
            match String.split_on_char ' ' status_line with
            | _ :: code :: _ -> int_of_string_opt code
            | _ -> None
          in
          match status with
          | None -> Error (Printf.sprintf "bad status line %S" status_line)
          | Some status -> (
              let headers =
                List.filter_map
                  (fun l ->
                    match String.index_opt l ':' with
                    | None -> None
                    | Some i ->
                        Some
                          ( String.lowercase_ascii
                              (String.trim (String.sub l 0 i)),
                            String.trim
                              (String.sub l (i + 1) (String.length l - i - 1))
                          ))
                  header_lines
              in
              match List.assoc_opt "content-length" headers with
              | Some v -> (
                  match int_of_string_opt (String.trim v) with
                  | Some len when len >= 0 && len <= max_body -> (
                      match
                        with_errors (fun () ->
                            read_exactly fd ~already:rest ~len)
                      with
                      | Error _ as e -> e
                      | Ok (Error _ as e) -> e
                      | Ok (Ok body) -> Ok (status, body))
                  | _ -> Error "bad Content-Length in response")
              | None -> (
                  (* Connection: close framing — read to EOF *)
                  let b = Buffer.create 256 in
                  Buffer.add_string b rest;
                  let chunk = Bytes.create 4096 in
                  match
                    with_errors (fun () ->
                        let rec go () =
                          let k = Unix.read fd chunk 0 (Bytes.length chunk) in
                          if k = 0 then ()
                          else begin
                            Buffer.add_subbytes b chunk 0 k;
                            if Buffer.length b > max_body then
                              raise (Sys_error "response too large")
                            else go ()
                          end
                        in
                        go ())
                  with
                  | Error _ as e -> e
                  | Ok () -> Ok (status, Buffer.contents b)))))

let request ~addr ~meth ~path ?(body = "") () =
  match parse_addr addr with
  | Error _ as e -> e
  | Ok a -> (
      let connect () =
        let domain =
          match a with AUnix _ -> Unix.PF_UNIX | ATcp _ -> Unix.PF_INET
        in
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        try
          Unix.connect fd (sockaddr_of a);
          fd
        with e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
      in
      match with_errors connect with
      | Error _ as e -> e
      | Ok fd ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let head =
                Printf.sprintf
                  "%s %s HTTP/1.1\r\n\
                   Host: ksa\r\n\
                   Content-Length: %d\r\n\
                   Connection: close\r\n\
                   \r\n"
                  (String.uppercase_ascii meth)
                  path (String.length body)
              in
              match with_errors (fun () -> write_all fd (head ^ body)) with
              | Error _ as e -> e
              | Ok () -> read_response fd))
