(** Campaign drivers as resumable library-level tasks.

    The explore and fuzz campaigns used to live as loops entangled
    with the CLI: argument records, checkpoint fingerprints, resume
    validation and driver dispatch all inline in [bin/ksa.ml].  This
    module is that logic lifted to a library: a {e spec} describes a
    campaign, [kind]/[fingerprint] derive the checkpoint identity the
    CLI has always written ({e byte-identical} formats — existing
    checkpoint files keep resuming), [load_resume] validates a
    checkpoint against a spec with structured failures (so callers
    choose warn-and-fresh or strict-refusal), and [run] executes the
    campaign: spec in, checkpoint in/out, outcome out.

    The CLI keeps its argument parsing, printing and exit-code
    mapping; the campaign daemon gets the same engine without a
    subprocess.  A [Probe] task rides along — a trivially cheap,
    deterministic task that fails its first [fail] attempts — so the
    daemon's retry, backoff and throughput paths can be exercised
    without spinning up a real search. *)

type explore_spec = {
  e_algo : string;
  e_n : int;
  e_k : int;
  e_l : int option;  (** [None] = the CLI default, [max 1 (n-1)]. *)
  e_wait : int;
  e_dead : int list;
  e_crash_budget : int;
  e_model : Ksa_sim.Fault_model.t;
  e_policy : string;  (** per-sender | empty-or-all | all-subsets *)
  e_reduction : Ksa_sim.Canon.reduction;
  e_max_configs : int option;
  e_drop : bool;
}

type fuzz_spec = {
  f_algo : string;
  f_n : int;
  f_k : int;
  f_l : int option;
  f_wait : int;
  f_dead : int list;
  f_seed : int;
  f_trials : int;
  f_max_steps : int;
  f_max_crashes : int;
  f_weights : string;  (** mixed | fair *)
  f_termination : bool;
  f_coverage : bool;
  f_model : Ksa_sim.Fault_model.t;
}

type probe_spec = {
  p_fail : int;  (** Raise on attempts [0 .. p_fail - 1]. *)
  p_spin : float;  (** Interruptible busy-sleep, seconds. *)
}

type spec =
  | Explore of explore_spec
  | Fuzz of fuzz_spec
  | Probe of probe_spec

val kind : spec -> string
(** Checkpoint kind tag: ["explore"], ["explore-crash"] (when the
    crash budget or a non-crash model makes the resilient driver
    run), ["fuzz"], or ["probe"]. *)

val fingerprint : spec -> string
(** The campaign-parameter fingerprint, byte-identical to what the
    CLI has always written into checkpoints for the same
    parameters. *)

val spec_to_json : spec -> Json.t
val spec_of_json : Json.t -> (spec, string) result
(** Wire/disk codec.  [spec_of_json] applies the CLI's defaults for
    absent optional fields and validates algorithm, policy, reduction
    and model names eagerly — a submitted job fails at submission,
    not at execution. *)

val load_resume :
  path:string ->
  kind:string ->
  fingerprint:string ->
  (Ksa_sim.Checkpoint.t, string) result
(** Validate a checkpoint for resumption: load it, check [kind] and
    [fingerprint], restore the interner dumps.  The [Error] carries
    the reason exactly as the CLI's lenient path has always worded it
    (["cannot resume: ..."], ["... is a ... checkpoint, not ..."],
    ["... was written under different campaign parameters"]); lenient
    callers print it as a warning and start fresh, strict callers
    ([--strict-resume], the daemon) refuse the campaign. *)

type outcome =
  | Explored of Ksa_sim.Explorer.outcome
  | Crash_explored of Ksa_sim.Explorer.resilient_outcome
  | Fuzzed of Ksa_sim.Fuzz.outcome
  | Probed of { attempt : int }

val run :
  ?attempt:int ->
  ?domains:int ->
  ?stop:(unit -> bool) ->
  ?ckpt:Ksa_sim.Checkpoint.ctl ->
  ?resume:string ->
  spec ->
  (outcome, string) result
(** Execute the campaign.  [ckpt] is the caller's checkpoint
    controller (sink, interrupt, seeded ledger); [resume] is the
    payload of a checkpoint already validated by {!load_resume}.
    [domains] defaults to 1 — the resumable sequential drivers; the
    CLI passes its [--domains].  [stop] is a wall-clock (or any
    other) budget hook, polled by the fuzz driver between trials.
    [attempt] (default 0) is the retry ordinal, consumed by [Probe].
    Errors: unknown algorithm names and unexplorable parameter
    combinations ([Invalid_argument] from the engine, reported as
    ["not explorable: ..."]).  Other exceptions propagate — the
    daemon supervises them as job failures. *)

type summary = {
  verdict : string;
      (** safe | violation | stuck | indeterminate | all-paths-decide
          | clean | budget-exhausted | ok *)
  exit_code : int;  (** The code the CLI maps this outcome to. *)
  detail : string;  (** One human-readable line. *)
  items : int;  (** Configurations visited or trials completed. *)
}

val summarize : outcome -> summary
val summary_to_json : summary -> Json.t
val summary_of_json : Json.t -> (summary, string) result
