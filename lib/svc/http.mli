(** A hand-rolled sliver of HTTP/1.1 — request line, headers,
    [Content-Length] bodies, [Connection: close] — over Unix-domain
    or TCP sockets.  Enough for the campaign daemon's loopback API;
    deliberately nothing more (no keep-alive, no chunked encoding, no
    TLS), because the transport is a local socket whose peer is [ksa
    job] or a curl one-liner, and because the container must not grow
    a dependency for this.

    Addresses are strings:
    {ul
    {- ["unix:/path/to.sock"] — a Unix-domain socket (the default
       recommendation: filesystem permissions are the auth layer).}
    {- ["tcp:HOST:PORT"] — a TCP socket bound/connected on
       [HOST:PORT].}}

    Reads are bounded (64 KiB head, 8 MiB body) so a misbehaving
    peer cannot balloon the daemon. *)

type request = {
  meth : string;  (** Uppercased: GET, POST, DELETE, ... *)
  path : string;  (** Path component only, no query parsing. *)
  headers : (string * string) list;  (** Names lowercased. *)
  body : string;
}

type response = { status : int; body : string }

val listen : addr:string -> (Unix.file_descr, string) result
(** Bind and listen.  A stale Unix-socket path is unlinked first iff
    nothing is accepting on it; a live one is an [Error] (two daemons
    must not share a socket). *)

val addr_cleanup : addr:string -> unit
(** Remove a Unix socket path on shutdown (no-op for TCP). *)

val read_request : Unix.file_descr -> (request, string) result
val write_response : Unix.file_descr -> response -> unit

val request :
  addr:string ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  (int * string, string) result
(** Client side: one request, one response, connection closed.
    Returns (status, body). *)
