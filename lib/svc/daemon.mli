(** [ksa serve]: the crash-tolerant campaign daemon.

    One daemon owns one campaign directory ({!Jobstore}) and runs the
    jobs in it, one at a time, each in a worker domain, each
    checkpointed to its own file.  The event loop serves a minimal
    HTTP/1.1 JSON API ({!Http}) for submission and inspection while a
    job runs.

    Robustness contract:
    {ul
    {- {b Retry}: a failed attempt moves the job to [Failed n]; it
       becomes runnable again after a capped exponential
       {!Ksa_prim.Backoff} delay whose jitter is drawn from a
       deterministic {!Ksa_prim.Rng} seeded per (daemon seed, job id,
       attempt) — two daemons with the same seed produce the same
       schedule.  After [retry_max] failures the job is [Dead].}
    {- {b Deadline}: a per-job wall-clock budget.  Expiry interrupts
       the driver through its checkpoint controller, which flushes a
       final checkpoint; the job returns to [Queued] {e resumable} —
       progress is kept, not discarded.}
    {- {b Drain}: SIGTERM (or [POST /drain]) stops admission,
       interrupts the running job the same checkpoint-flushing way,
       requeues it resumable, persists everything and exits 0.}
    {- {b Crash}: SIGKILL needs no cooperation — every state
       transition was a {!Ksa_prim.Durable} atomic rewrite, so the
       restarted daemon adopts [Running] orphans as resumable and
       continues; verdicts are bit-identical to an uninterrupted run
       because the drivers' checkpoint/resume contract already
       guarantees it.}
    {- {b Strict resume}: the daemon never silently starts a
       checkpoint mismatch fresh.  A rejected checkpoint (corrupt,
       wrong kind or fingerprint, interner conflict from an earlier
       job in the same process) is counted ([svc.resume.rejected]),
       recorded on the job, and the attempt reruns from scratch —
       which, for these deterministic campaigns, still converges to
       the identical verdict.}}

    The HTTP API (all bodies JSON):
    {v
    GET    /health        daemon + queue summary
    GET    /jobs          all jobs
    POST   /jobs          {"spec": {...}, "deadline"?: s, "retries"?: n}
    GET    /jobs/ID       one job
    DELETE /jobs/ID       cancel (a running job is interrupted)
    POST   /drain         graceful shutdown v} *)

type cfg = {
  dir : string;  (** Campaign directory (created if missing). *)
  addr : string option;
      (** [Http] listen address; [None] = no API (run the queue to
          completion — the bench/test mode). *)
  retry : Ksa_prim.Backoff.policy;
  retry_max : int;  (** Default retry budget for submitted jobs. *)
  seed : int;  (** Root seed for backoff jitter. *)
  deadline : float option;  (** Default per-job deadline. *)
  domains : int;  (** Driver domains per job (1 = resumable seq). *)
  exit_when_idle : bool;
      (** Exit 0 once no job is runnable or running (jobs waiting on
          a retry backoff count as runnable). *)
  ckpt_policy : Ksa_sim.Checkpoint.policy;  (** Per-job sink policy. *)
  verbose : bool;
}

val default_cfg : dir:string -> cfg
(** No listener, [Backoff.default_retry], retry budget 3, seed 1,
    no deadline, 1 domain, [exit_when_idle = false],
    [Checkpoint.default_policy], quiet. *)

val serve : cfg -> int
(** Run until drained ([SIGTERM] / [POST /drain]) or — with
    [exit_when_idle] — until the queue empties.  Returns the process
    exit code: 0 for a clean drain or idle exit, 1 for a store or
    listener error. *)
