(* The campaign daemon event loop.  See daemon.mli for the contract. *)

module Backoff = Ksa_prim.Backoff
module Rng = Ksa_prim.Rng
module Clock = Ksa_prim.Clock
module Metrics = Ksa_prim.Metrics
module Checkpoint = Ksa_sim.Checkpoint

type cfg = {
  dir : string;
  addr : string option;
  retry : Backoff.policy;
  retry_max : int;
  seed : int;
  deadline : float option;
  domains : int;
  exit_when_idle : bool;
  ckpt_policy : Checkpoint.policy;
  verbose : bool;
}

let default_cfg ~dir =
  {
    dir;
    addr = None;
    retry = Backoff.default_retry;
    retry_max = 3;
    seed = 1;
    deadline = None;
    domains = 1;
    exit_when_idle = false;
    ckpt_policy = Checkpoint.default_policy;
    verbose = false;
  }

let m_submitted = Metrics.counter "svc.jobs.submitted"
let m_done = Metrics.counter "svc.jobs.done"
let m_failed = Metrics.counter "svc.jobs.failed"
let m_retried = Metrics.counter "svc.jobs.retried"
let m_requeued = Metrics.counter "svc.jobs.requeued"
let m_dead = Metrics.counter "svc.jobs.dead"
let m_rejected = Metrics.counter "svc.resume.rejected"
let m_http = Metrics.counter "svc.http.requests"

type running = {
  r_id : int;
  r_cancel : bool Atomic.t;
  r_deadline_hit : bool Atomic.t;
  r_interrupt_seen : bool Atomic.t;
  r_done : bool Atomic.t;
  r_domain : (Task.outcome, string) result Domain.t;
}

type st = {
  cfg : cfg;
  store : Jobstore.t;
  drain : bool Atomic.t;
  mutable running : running option;
  not_before : (int, int) Hashtbl.t;  (* job id -> Clock.now_ns threshold *)
}

let log st fmt =
  Printf.ksprintf
    (fun m -> if st.cfg.verbose then Printf.eprintf "ksa-serve: %s\n%!" m)
    fmt

(* store write failures are reported, never raised: the daemon's job
   is to keep the queue moving even when one record write trips *)
let upd st j =
  match Jobstore.update st.store j with
  | Ok () -> ()
  | Error e -> Printf.eprintf "ksa-serve: job %d: %s\n%!" j.Jobstore.id e

(* ---------- execution ---------- *)

let start_job st (j : Jobstore.job) =
  let spec = j.Jobstore.spec in
  let kind = Task.kind spec in
  let fingerprint = Task.fingerprint spec in
  let cpath = Jobstore.ckpt_path ~dir:st.cfg.dir j.Jobstore.id in
  (* the daemon is always strict: a rejected checkpoint is counted and
     recorded on the job, and the attempt reruns from scratch — never
     a silent divergence *)
  let resume, resume_note =
    if j.Jobstore.resumable && Sys.file_exists cpath then
      match Task.load_resume ~path:cpath ~kind ~fingerprint with
      | Ok t -> (Some t, None)
      | Error e ->
          Metrics.incr m_rejected;
          (None, Some (Printf.sprintf "resume rejected: %s" e))
    else (None, None)
  in
  let j =
    {
      j with
      Jobstore.state = Jobstore.Running;
      error = (match resume_note with Some _ -> resume_note | None -> j.error);
    }
  in
  upd st j;
  log st "job %d: running (attempt %d%s)" j.Jobstore.id j.Jobstore.attempts
    (if resume <> None then ", resumed" else "");
  let cancel = Atomic.make false in
  let deadline_hit = Atomic.make false in
  let interrupt_seen = Atomic.make false in
  let r_done = Atomic.make false in
  let started = Clock.now_ns () in
  let deadline = j.Jobstore.deadline in
  let drain = st.drain in
  let interrupt () =
    let v =
      Atomic.get drain || Atomic.get cancel
      ||
      match deadline with
      | Some d when Clock.elapsed_s ~since:started > d ->
          Atomic.set deadline_hit true;
          true
      | _ -> false
    in
    (* latch what the driver observed: a job that finished before any
       poll returned true completed normally, drain or not *)
    if v then Atomic.set interrupt_seen true;
    v
  in
  let ledger =
    match resume with Some t -> Checkpoint.ledger t | None -> []
  in
  let sink =
    { Checkpoint.path = cpath; kind; fingerprint; policy = st.cfg.ckpt_policy }
  in
  let payload = Option.map Checkpoint.payload resume in
  (* resume rides the sequential drivers only (checkpoints are
     sequential-format), exactly like the CLI's fallback *)
  let domains = if payload <> None then 1 else st.cfg.domains in
  let attempt = j.Jobstore.attempts in
  let dom =
    Domain.spawn (fun () ->
        let res =
          try
            let ckpt = Checkpoint.ctl ~sink ~interrupt ~ledger () in
            Task.run ~attempt ~domains ?resume:payload ~ckpt spec
          with e -> Error ("uncaught: " ^ Printexc.to_string e)
        in
        Atomic.set r_done true;
        res)
  in
  st.running <-
    Some
      {
        r_id = j.Jobstore.id;
        r_cancel = cancel;
        r_deadline_hit = deadline_hit;
        r_interrupt_seen = interrupt_seen;
        r_done;
        r_domain = dom;
      }

let finalize st r =
  let res = Domain.join r.r_domain in
  st.running <- None;
  match Jobstore.get st.store r.r_id with
  | None -> ()
  | Some j -> (
      let cpath = Jobstore.ckpt_path ~dir:st.cfg.dir j.Jobstore.id in
      let has_ckpt = Sys.file_exists cpath in
      if Atomic.get r.r_cancel then begin
        Metrics.incr m_dead;
        log st "job %d: cancelled" j.Jobstore.id;
        upd st
          { j with Jobstore.state = Jobstore.Dead; error = Some "cancelled" }
      end
      else
        match res with
        | Ok _ when Atomic.get r.r_deadline_hit ->
            (* the driver flushed a final checkpoint on the way out:
               requeue with the progress, don't discard it *)
            Metrics.incr m_requeued;
            log st "job %d: deadline expired, requeued resumable"
              j.Jobstore.id;
            upd st
              {
                j with
                Jobstore.state = Jobstore.Queued;
                requeues = j.Jobstore.requeues + 1;
                resumable = has_ckpt;
              }
        | Ok _ when Atomic.get r.r_interrupt_seen ->
            (* drain: same checkpoint-and-requeue, picked up on restart *)
            Metrics.incr m_requeued;
            log st "job %d: drained, requeued resumable" j.Jobstore.id;
            upd st
              {
                j with
                Jobstore.state = Jobstore.Queued;
                requeues = j.Jobstore.requeues + 1;
                resumable = has_ckpt;
              }
        | Ok outcome ->
            let s = Task.summarize outcome in
            Metrics.incr m_done;
            log st "job %d: done (%s)" j.Jobstore.id s.Task.verdict;
            upd st
              {
                j with
                Jobstore.state = Jobstore.Done;
                attempts = j.Jobstore.attempts + 1;
                result = Some s;
                error = None;
                resumable = false;
              }
        | Error e ->
            let attempts = j.Jobstore.attempts + 1 in
            Metrics.incr m_failed;
            if attempts > j.Jobstore.retry_max then begin
              Metrics.incr m_dead;
              log st "job %d: dead after %d attempts: %s" j.Jobstore.id
                attempts e;
              upd st
                {
                  j with
                  Jobstore.state = Jobstore.Dead;
                  attempts;
                  error = Some e;
                  resumable = has_ckpt;
                }
            end
            else begin
              (* capped exponential backoff with deterministic jitter:
                 the rng is a pure function of (daemon seed, job,
                 attempt), so the retry schedule is reproducible *)
              let rng =
                Rng.create
                  ~seed:
                    (st.cfg.seed
                    + (j.Jobstore.id * 1_000_003)
                    + (attempts * 7_919))
              in
              let delay =
                Backoff.delay ~rng st.cfg.retry ~attempt:(attempts - 1)
              in
              Metrics.incr m_retried;
              Hashtbl.replace st.not_before j.Jobstore.id
                (Clock.now_ns () + int_of_float (delay *. 1e9));
              log st "job %d: attempt %d failed (%s); retry in %.2fs"
                j.Jobstore.id attempts e delay;
              upd st
                {
                  j with
                  Jobstore.state = Jobstore.Failed attempts;
                  attempts;
                  error = Some e;
                  resumable = has_ckpt;
                }
            end)

(* ---------- scheduling ---------- *)

let eligible st now (j : Jobstore.job) =
  match j.Jobstore.state with
  | Jobstore.Queued -> true
  | Jobstore.Failed _ -> (
      match Hashtbl.find_opt st.not_before j.Jobstore.id with
      | Some t -> now >= t
      | None -> true (* restart: in-memory schedule is gone, retry now *))
  | _ -> false

let next_runnable st =
  let now = Clock.now_ns () in
  List.find_opt (eligible st now) (Jobstore.list st.store)

let pending st =
  List.exists
    (fun (j : Jobstore.job) ->
      match j.Jobstore.state with
      | Jobstore.Queued | Jobstore.Failed _ -> true
      | _ -> false)
    (Jobstore.list st.store)

(* ---------- HTTP API ---------- *)

let json_response status json =
  { Http.status; body = Json.to_string json }

let err_response status msg =
  json_response status (Json.Obj [ ("error", Json.Str msg) ])

let job_response status j = json_response status (Jobstore.job_to_json j)

let split_path p =
  String.split_on_char '/' p |> List.filter (fun s -> s <> "")

let health st =
  let count want =
    List.length
      (List.filter
         (fun (j : Jobstore.job) -> want j.Jobstore.state)
         (Jobstore.list st.store))
  in
  json_response 200
    (Json.Obj
       [
         ("ok", Json.Bool true);
         ("draining", Json.Bool (Atomic.get st.drain));
         ( "running",
           match st.running with
           | Some r -> Json.Int r.r_id
           | None -> Json.Null );
         ( "jobs",
           Json.Obj
             [
               ("queued", Json.Int (count (( = ) Jobstore.Queued)));
               ("running", Json.Int (count (( = ) Jobstore.Running)));
               ("done", Json.Int (count (( = ) Jobstore.Done)));
               ( "failed",
                 Json.Int
                   (count (function Jobstore.Failed _ -> true | _ -> false))
               );
               ("dead", Json.Int (count (( = ) Jobstore.Dead)));
             ] );
       ])

let submit st body =
  match Json.parse body with
  | Error e -> err_response 400 e
  | Ok json -> (
      match Json.mem "spec" json with
      | None -> err_response 400 "missing \"spec\""
      | Some spec_json -> (
          match Task.spec_of_json spec_json with
          | Error e -> err_response 400 e
          | Ok spec -> (
              let deadline =
                match Option.bind (Json.mem "deadline" json) Json.get_float with
                | Some d -> Some d
                | None -> st.cfg.deadline
              in
              let retry_max =
                match Option.bind (Json.mem "retries" json) Json.get_int with
                | Some r -> r
                | None -> st.cfg.retry_max
              in
              match Jobstore.submit st.store ?deadline ~retry_max spec with
              | Error e -> err_response 500 e
              | Ok j ->
                  Metrics.incr m_submitted;
                  log st "job %d: submitted" j.Jobstore.id;
                  job_response 201 j)))

let cancel st id =
  match Jobstore.get st.store id with
  | None -> err_response 404 (Printf.sprintf "no job %d" id)
  | Some j -> (
      match j.Jobstore.state with
      | Jobstore.Done | Jobstore.Dead -> job_response 200 j
      | Jobstore.Running -> (
          match st.running with
          | Some r when r.r_id = id ->
              (* flip the interrupt; the state transition lands when
                 the driver returns *)
              Atomic.set r.r_cancel true;
              job_response 202 j
          | _ ->
              (* a Running record with no runner is a store/daemon
                 disagreement; resolve it the safe way *)
              let j' =
                {
                  j with
                  Jobstore.state = Jobstore.Dead;
                  error = Some "cancelled";
                }
              in
              upd st j';
              job_response 200 j')
      | Jobstore.Queued | Jobstore.Failed _ ->
          let j' =
            { j with Jobstore.state = Jobstore.Dead; error = Some "cancelled" }
          in
          Metrics.incr m_dead;
          upd st j';
          job_response 200 j')

let route st (req : Http.request) =
  Metrics.incr m_http;
  match (req.Http.meth, split_path req.Http.path) with
  | "GET", [ "health" ] -> health st
  | "GET", [ "jobs" ] ->
      json_response 200
        (Json.Obj
           [
             ( "jobs",
               Json.List (List.map Jobstore.job_to_json (Jobstore.list st.store))
             );
           ])
  | "POST", [ "jobs" ] -> submit st req.Http.body
  | "GET", [ "jobs"; id ] -> (
      match int_of_string_opt id with
      | None -> err_response 400 "bad job id"
      | Some id -> (
          match Jobstore.get st.store id with
          | Some j -> job_response 200 j
          | None -> err_response 404 (Printf.sprintf "no job %d" id)))
  | "DELETE", [ "jobs"; id ] -> (
      match int_of_string_opt id with
      | None -> err_response 400 "bad job id"
      | Some id -> cancel st id)
  | "POST", [ "drain" ] ->
      Atomic.set st.drain true;
      log st "drain requested";
      json_response 202
        (Json.Obj [ ("ok", Json.Bool true); ("draining", Json.Bool true) ])
  | _, _ -> err_response 404 "no such endpoint"

let http_step st lfd timeout =
  match Unix.select [ lfd ] [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | [], _, _ -> ()
  | _ -> (
      match Unix.accept lfd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (* bound a stalled peer so it cannot freeze the loop *)
              (try
                 Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
               with Unix.Unix_error _ -> ());
              match Http.read_request fd with
              | Error e -> Http.write_response fd (err_response 400 e)
              | Ok req -> Http.write_response fd (route st req)))

(* ---------- the loop ---------- *)

let install_signals st =
  let handler _ = Atomic.set st.drain true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle handler)
  with Invalid_argument _ | Sys_error _ -> ()

let serve cfg =
  match Jobstore.open_dir ~dir:cfg.dir with
  | Error e ->
      Printf.eprintf "ksa-serve: %s\n%!" e;
      1
  | Ok store -> (
      let st =
        {
          cfg;
          store;
          drain = Atomic.make false;
          running = None;
          not_before = Hashtbl.create 16;
        }
      in
      let listener =
        match cfg.addr with
        | None -> Ok None
        | Some addr -> (
            match Http.listen ~addr with
            | Ok fd -> Ok (Some fd)
            | Error e -> Error e)
      in
      match listener with
      | Error e ->
          Printf.eprintf "ksa-serve: %s\n%!" e;
          1
      | Ok lfd ->
          install_signals st;
          (match cfg.addr with
          | Some a -> log st "listening on %s, campaign dir %s" a cfg.dir
          | None -> log st "no listener, draining queue in %s" cfg.dir);
          (* idle pacing: ramp 0.1ms - 5ms between loop turns when
             there is no listener to select on *)
          let sp = Backoff.Spin.make ~relax:0 ~floor:1e-4 ~cap:5e-3 () in
          let rec loop () =
            (match st.running with
            | Some r when Atomic.get r.r_done ->
                finalize st r;
                Backoff.Spin.reset sp
            | _ -> ());
            if Atomic.get st.drain && st.running = None then begin
              log st "drained; %d job(s) in store"
                (List.length (Jobstore.list st.store));
              0
            end
            else begin
              (if st.running = None && not (Atomic.get st.drain) then
                 match next_runnable st with
                 | Some j ->
                     start_job st j;
                     Backoff.Spin.reset sp
                 | None -> ());
              if cfg.exit_when_idle && st.running = None && not (pending st)
              then begin
                log st "queue idle; exiting";
                0
              end
              else begin
                (match lfd with
                | Some fd -> http_step st fd 0.02
                | None -> Backoff.Spin.wait sp);
                loop ()
              end
            end
          in
          let code = loop () in
          (match lfd with
          | Some fd -> (
              (try Unix.close fd with Unix.Unix_error _ -> ());
              match cfg.addr with
              | Some a -> Http.addr_cleanup ~addr:a
              | None -> ())
          | None -> ());
          code)
