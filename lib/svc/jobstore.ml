(* Durable job records.  See jobstore.mli for the state machine. *)

module Durable = Ksa_prim.Durable

let magic = "KSAJOB01"
let version = 1

type state = Queued | Running | Done | Failed of int | Dead

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed n -> Printf.sprintf "failed(%d)" n
  | Dead -> "dead"

type job = {
  id : int;
  spec : Task.spec;
  state : state;
  attempts : int;
  requeues : int;
  deadline : float option;
  retry_max : int;
  resumable : bool;
  result : Task.summary option;
  error : string option;
}

(* ---------- JSON codec ---------- *)

let state_to_json = function
  | Queued -> Json.Str "queued"
  | Running -> Json.Str "running"
  | Done -> Json.Str "done"
  | Failed n -> Json.Obj [ ("failed", Json.Int n) ]
  | Dead -> Json.Str "dead"

let state_of_json = function
  | Json.Str "queued" -> Ok Queued
  | Json.Str "running" -> Ok Running
  | Json.Str "done" -> Ok Done
  | Json.Str "dead" -> Ok Dead
  | Json.Obj [ ("failed", Json.Int n) ] -> Ok (Failed n)
  | _ -> Error "bad job state"

let job_to_json j =
  Json.Obj
    ([
       ("id", Json.Int j.id);
       ("spec", Task.spec_to_json j.spec);
       ("state", state_to_json j.state);
       ("attempts", Json.Int j.attempts);
       ("requeues", Json.Int j.requeues);
     ]
    @ (match j.deadline with
      | None -> []
      | Some d -> [ ("deadline", Json.Float d) ])
    @ [
        ("retry-max", Json.Int j.retry_max);
        ("resumable", Json.Bool j.resumable);
      ]
    @ (match j.result with
      | None -> []
      | Some s -> [ ("result", Task.summary_to_json s) ])
    @ match j.error with None -> [] | Some e -> [ ("error", Json.Str e) ])

let job_of_json j =
  let ( let* ) = Result.bind in
  let field k get =
    match Option.map get (Json.mem k j) with
    | Some (Some v) -> Ok v
    | _ -> Error (Printf.sprintf "job record: bad field %S" k)
  in
  let* id = field "id" Json.get_int in
  let* spec =
    match Json.mem "spec" j with
    | Some s -> Task.spec_of_json s
    | None -> Error "job record: missing spec"
  in
  let* state =
    match Json.mem "state" j with
    | Some s -> state_of_json s
    | None -> Error "job record: missing state"
  in
  let* attempts = field "attempts" Json.get_int in
  let* requeues = field "requeues" Json.get_int in
  let deadline = Option.bind (Json.mem "deadline" j) Json.get_float in
  let* retry_max = field "retry-max" Json.get_int in
  let* resumable = field "resumable" Json.get_bool in
  let* result =
    match Json.mem "result" j with
    | None -> Ok None
    | Some s ->
        let* s = Task.summary_of_json s in
        Ok (Some s)
  in
  let error = Option.bind (Json.mem "error" j) Json.get_string in
  Ok
    {
      id;
      spec;
      state;
      attempts;
      requeues;
      deadline;
      retry_max;
      resumable;
      result;
      error;
    }

(* ---------- the store ---------- *)

type t = {
  dir : string;
  lock : Mutex.t;
  tbl : (int, job) Hashtbl.t;
  mutable next_id : int;
}

let dir t = t.dir

let job_path ~dir id = Filename.concat dir (Printf.sprintf "job-%06d.ksaj" id)
let ckpt_path ~dir id = Filename.concat dir (Printf.sprintf "job-%06d.ckpt" id)

let write_job ~dir (j : job) =
  Durable.write_framed ~path:(job_path ~dir j.id) ~magic ~version
    (Json.to_string (job_to_json j))

let read_job ~path =
  match Durable.read_framed ~path ~magic with
  | Error _ as e -> e
  | Ok (v, _) when v <> version ->
      Error (Printf.sprintf "%s: unsupported job record version %d" path v)
  | Ok (_, payload) -> (
      match Json.parse payload with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok json -> (
          match job_of_json json with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok _ as ok -> ok))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let mkdir_p d =
  if not (Sys.file_exists d) then (
    (match Filename.dirname d with
    | parent when parent <> d && not (Sys.file_exists parent) ->
        (try Unix.mkdir parent 0o755 with Unix.Unix_error _ -> ())
    | _ -> ());
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let open_dir ~dir =
  match
    mkdir_p dir;
    Sys.readdir dir
  with
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | entries ->
      let t =
        { dir; lock = Mutex.create (); tbl = Hashtbl.create 64; next_id = 1 }
      in
      let adopt = ref [] in
      Array.sort compare entries;
      Array.iter
        (fun name ->
          let is_record =
            String.length name = String.length "job-000000.ksaj"
            && String.sub name 0 4 = "job-"
            && Filename.check_suffix name ".ksaj"
          in
          if is_record then
            match read_job ~path:(Filename.concat dir name) with
            | Error e ->
                (* a corrupt record must not block its siblings; .tmp
                   siblings of crashed writes are not even scanned *)
                Printf.eprintf "ksa: skipping unreadable job record: %s\n%!" e
            | Ok j ->
                let j =
                  if j.state = Running then begin
                    (* orphan of a crashed daemon: its final state
                       transition never happened.  Adopt it as queued
                       and resumable — the checkpoint file, if the dead
                       daemon flushed one, carries the progress. *)
                    adopt := j.id :: !adopt;
                    { j with state = Queued; resumable = true }
                  end
                  else j
                in
                Hashtbl.replace t.tbl j.id j;
                if j.id >= t.next_id then t.next_id <- j.id + 1)
        entries;
      (* persist adoptions so a crash between here and the job's next
         transition does not re-orphan it into a double adoption *)
      let rec persist = function
        | [] -> Ok t
        | id :: rest -> (
            match write_job ~dir (Hashtbl.find t.tbl id) with
            | Ok () -> persist rest
            | Error _ as e -> e)
      in
      persist (List.rev !adopt)

let submit t ?deadline ?(retry_max = 3) spec =
  locked t (fun () ->
      let id = t.next_id in
      let j =
        {
          id;
          spec;
          state = Queued;
          attempts = 0;
          requeues = 0;
          deadline;
          retry_max;
          resumable = false;
          result = None;
          error = None;
        }
      in
      match write_job ~dir:t.dir j with
      | Error _ as e -> e
      | Ok () ->
          t.next_id <- id + 1;
          Hashtbl.replace t.tbl id j;
          Ok j)

let get t id = locked t (fun () -> Hashtbl.find_opt t.tbl id)

let list t =
  locked t (fun () ->
      Hashtbl.fold (fun _ j acc -> j :: acc) t.tbl []
      |> List.sort (fun a b -> compare a.id b.id))

let update t (j : job) =
  locked t (fun () ->
      match write_job ~dir:t.dir j with
      | Error _ as e -> e
      | Ok () ->
          Hashtbl.replace t.tbl j.id j;
          Ok ())
