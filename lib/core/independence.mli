(** T-independence (Section IV, Definition 6).

    An algorithm is T-independent in M if for every S ∈ T there is a
    run in which the processes of S receive messages only from S until
    every member of S has decided or crashed.  The notion subsumes the
    classic progress conditions: wait-freedom gives (strong)
    2{^Π}-independence, f-resilience gives
    \{S : |S| ≥ n−f\}-independence, obstruction-freedom gives
    singleton-independence, and asymmetric conditions are expressible
    (Observation 1 and the examples after it).

    The checker is constructive: for each S it builds the confining
    adversary (S receives only from S; everyone else runs normally)
    and reports whether the members of S all decide — exhibiting the
    required run, or the budget-bounded failure to do so. *)

module Pid = Ksa_sim.Pid

type verdict = {
  set : Pid.t list;
  independent : bool;  (** A confined run in which all of S decided was exhibited. *)
  steps : int;  (** Steps of the exhibited (or attempted) run. *)
}

(** {1 Transition-level independence}

    Definition 6 is about sets of {e processes}; the explorer's
    partial-order reduction needs the finer, standard notion over
    individual {e transitions}: two delivery actions are independent
    iff they commute — executing them in either order reaches the same
    configuration {e and} both orders exist in the policy-restricted
    transition system.  In this message-passing model that holds
    exactly when the stepping processes differ (a step mutates only
    the stepper's row; delivery batches of distinct steppers are
    disjoint) and neither action sends a message to the other's
    stepper (a send to pid [q] replaces the whole-bucket delivery
    batches the explorer's policies offer [q], so the covering
    interleaving may be absent).  The action alphabet lives in
    {!Ksa_sim.Canon.Action}; it is re-exported here so the DPOR layer
    has its commutation oracle next to the run-level notion. *)

module Action = Ksa_sim.Canon.Action

val actions_commute : Action.t -> Action.t -> bool
(** [actions_commute a b] iff the order of executing [a] and [b] is
    observationally irrelevant ([Action.independent]). *)

val check_set :
  ?fd:Ksa_sim.Fd_view.oracle ->
  ?pattern:Ksa_sim.Failure_pattern.t ->
  ?inputs:Ksa_sim.Value.t array ->
  ?max_steps:int ->
  (module Ksa_sim.Algorithm.S) ->
  n:int ->
  set:Pid.t list ->
  verdict

val check_set_strong :
  ?fd:Ksa_sim.Fd_view.oracle ->
  ?pattern:Ksa_sim.Failure_pattern.t ->
  ?inputs:Ksa_sim.Value.t array ->
  ?max_steps:int ->
  ?prefixes:int list ->
  (module Ksa_sim.Algorithm.S) ->
  n:int ->
  set:Pid.t list ->
  verdict
(** {e Strong} T-independence (the second clause of Definition 6):
    there is a run in which the processes of S {e eventually} receive
    only from S and still all decide (or crash).  The definition asks
    for one such run; we exhibit one for {e every} sampled prefix
    length (default [[0; 3; 10; 25]]; prefix steps are round-robin
    with full delivery, confinement afterwards), which is a sufficient
    check strictly stronger than the bare existential.  With prefix 0
    included, a strong verdict subsumes the plain one
    (Observation 1(a)). *)

val check_family :
  ?fd:Ksa_sim.Fd_view.oracle ->
  ?pattern:Ksa_sim.Failure_pattern.t ->
  ?inputs:Ksa_sim.Value.t array ->
  ?max_steps:int ->
  (module Ksa_sim.Algorithm.S) ->
  n:int ->
  family:Pid.t list list ->
  verdict list

val satisfies :
  ?fd:Ksa_sim.Fd_view.oracle ->
  ?pattern:Ksa_sim.Failure_pattern.t ->
  ?max_steps:int ->
  (module Ksa_sim.Algorithm.S) ->
  n:int ->
  family:Pid.t list list ->
  bool
(** All sets of the family pass. *)

(** {1 Classic families} *)

val wait_free_family : n:int -> Pid.t list list
(** All nonempty subsets of Π (2{^n}−1 sets — small n only). *)

val f_resilient_family : n:int -> f:int -> Pid.t list list
(** \{S ⊆ Π : |S| ≥ n−f\}. *)

val obstruction_free_family : n:int -> Pid.t list list
(** All singletons. *)

val asymmetric_family : n:int -> anchor:Pid.t -> Pid.t list list
(** \{S : \{anchor\} ⊆ S ⊆ Π\} — wait-freedom of one process. *)

val subfamily_monotone : Pid.t list list -> Pid.t list list -> bool
(** Observation 1(b)'s hypothesis: T' ⊆ T (as set inclusion of
    families). *)
