(** The experiment harness: one entry per experiment of DESIGN.md
    (E1–E9), each regenerating a paper claim as a printed table plus a
    machine-checkable verdict.

    The paper has no measured tables or figures — its quantitative
    content is the set of solvability borders and constructions.  Each
    experiment therefore pairs the {e predicted} border (from
    {!Border}) with {e behavioural evidence} produced by the simulator
    (witness runs, screenings, pasted executions, validated
    histories), and reports whether they agree. *)

type verdict = { id : string; claim : string; holds : bool; detail : string }

val pp_verdict : Format.formatter -> verdict -> unit

val e1_theorem2 : ?n_max:int -> Format.formatter -> verdict
(** Theorem 2 / Corollary 5: for every (n, f) with n ≤ n_max and the
    formula's largest impossible k ≥ 2, the Theorem-1 screen on the
    paper's own protocol (L = n−f) finds a (dec-D)∧(dec-D̄) witness;
    where the formula says nothing (k = 1 region only), the partition
    adversary stays within bounds.  Prints one row per (n, f). *)

val e2_theorem8 : ?n_max:int -> ?seeds:int -> Format.formatter -> verdict
(** Theorem 8: on the solvable side (kn > (k+1)f) the protocol
    decides ≤ k values for every tried schedule and dead-set; at the
    border (kn = (k+1)f) the Lemma-12 pasting produces k+1 distinct
    decisions.  Prints the (n, f) grid with measured max decisions. *)

val e3_protocol_cost : ?sizes:int list -> ?seeds:int -> Format.formatter -> verdict
(** Section VI protocol cost: steps and messages to global decision
    as n grows (f = ⌊n/3⌋), plus the distinct-decision count against
    the ⌊n/L⌋ bound. *)

val e4_graph_lemmas : ?samples:int -> ?n:int -> Format.formatter -> verdict
(** Lemmas 6–7 at scale: random digraphs with minimum in-degree δ;
    measured source-component counts and sizes against the bounds. *)

val e5_theorem10 : ?n_max:int -> Format.formatter -> verdict
(** Theorem 10 / Corollary 13: for each n and 2 ≤ k ≤ n−2 the
    Lemma-12 construction drives Synod (correct for k = 1) to k
    distinct decisions under a validated (Σ{_k}, Ω{_k}) history; for
    k = 1, Synod reaches consensus across seeds and crash patterns. *)

val e6_coverage : ?n_max:int -> Format.formatter -> verdict
(** Improvement over Bouzid–Travers: counts of (n, k) pairs covered
    by 2k² ≤ n versus 2 ≤ k ≤ n−2, per n. *)

val e7_lemma9 : ?samples:int -> Format.formatter -> verdict
(** Lemma 9 statistically: random partitions/failure patterns; every
    generated (Σ'{_k}, Ω'{_k}) history validates as (Σ{_k}, Ω{_k}). *)

val e8_screening : Format.formatter -> verdict
(** The screening story: flawed candidate caught, sound protocol
    passes, the paper's protocol outside its regime caught. *)

val e9_independence : Format.formatter -> verdict
(** T-independence taxonomy (Section IV): which classic families each
    algorithm satisfies, against the paper's classification. *)

val e10_round_models : ?seeds:int -> Format.formatter -> verdict
(** The Discussion's conjecture that Theorem 1 applies to round
    models: in the Heard-Of substrate, a partitioned assignment
    drives both min-flooding and UniformVoting (safe under no-split)
    to one decision per group, with each group state-identical to its
    solo execution; under no-split plus eventual completeness the
    same algorithms reach consensus. *)

val e11_fd_implementation : ?seeds:int -> Format.formatter -> verdict
(** Ablation for the partial-synchrony failure-detector
    implementations ({!Ksa_fd.Impl}): sweep the sliding-window size
    and report how often the extracted Σ and Ω histories validate
    against Definitions 4 and 5, plus the end-to-end check that the
    extracted pair drives Synod to consensus.  Windows shorter than a
    post-GST gossip lap (≈ 2n) lose liveness; wide windows always
    validate. *)

val e12_flp_gap : Format.formatter -> verdict
(** The gap between Theorems 2 and 8, exhibited exhaustively: at
    (n, f, k) = (3, 1, 1), consensus is solvable with one {e initial}
    crash (the whole schedule space of the Section VI protocol is
    safe and every path can decide) yet impossible with one
    {e anytime} crash — the crash-adversarial explorer finds a
    reachable configuration from which no continuation reaches
    decision-completeness (the FLP phenomenon behind condition
    (C)). *)

val e13_shared_memory : ?seeds:int -> Format.formatter -> verdict
(** The shared-memory substrate of Theorem 10(C)'s appeal to [9]:
    ABD register emulation over the message-passing simulator with
    majority (Σ-style) quorums.  Torture scripts (write, read-all,
    write, read-all) under fair and lossy schedules with minority
    crashes; every extracted operation history must pass the
    atomicity checker. *)

val e14_fault_models : ?max_configs:int -> Format.formatter -> verdict
(** The (n, k, t, model) solvability border at n = 3, swept
    exhaustively per cell with the crash-adversarial explorer under
    each {!Ksa_sim.Fault_model}: kset_flp waiting for [n - t] reports,
    [k] in 1..3, budget [t] in 0..2.  Asserts (1) the crash column
    traces the paper's [k * n > (k + 1) * t] border exactly,
    (2) Byzantine corruption is nowhere more permissive than crashing
    at equal budget (corruption subsumes crashing), and (3) it is
    strictly {e less} permissive somewhere — the forged
    predecessor-free report at (n, k, t) = (3, 1, 1) breaks the
    agreement crash faults can only get stuck on. *)

val all : Format.formatter -> verdict list
(** Runs every experiment in order, printing all tables. *)
