module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value
module Adversary = Ksa_sim.Adversary
module Failure_pattern = Ksa_sim.Failure_pattern
module Rng = Ksa_prim.Rng
module Metrics = Ksa_prim.Metrics

let m_screen_runs = Metrics.counter "screen.runs"
let m_screen_witnesses = Metrics.counter "screen.witnesses"
let t_screen = Metrics.timer "screen.portfolio"
let t_exhaustive_c = Metrics.timer "screen.exhaustive_c"

let dec_d run ~(partition : Partitioning.t) =
  let d = Partitioning.d_union partition in
  let proposed_in_d = List.map (fun p -> run.Run.inputs.(p)) d in
  (* candidate values per group: decided by a member, proposed in D *)
  let candidates =
    List.map
      (fun group ->
        List.sort_uniq Value.compare
          (List.filter_map
             (fun p ->
               match Run.decision_of run p with
               | Some v when List.mem v proposed_in_d -> Some v
               | Some _ | None -> None)
             group))
      partition.Partitioning.groups
  in
  (* system of distinct representatives by backtracking *)
  let rec assign chosen = function
    | [] -> Some (List.rev chosen)
    | cands :: rest ->
        List.find_map
          (fun v ->
            if List.mem v chosen then None else assign (v :: chosen) rest)
          cands
  in
  assign [] candidates

let dec_dbar run ~(partition : Partitioning.t) =
  let d = Partitioning.d_union partition in
  let dbar = partition.Partitioning.dbar in
  match Run.last_decision_time run dbar with
  | None -> false
  | Some deadline ->
      List.for_all
        (fun p -> Run.receives_nothing_from_until run p ~from:d ~until:deadline)
        dbar

type witness = { run : Run.t; values : Value.t list; adversary : string }

type portfolio = {
  r_d : Run.t list;
  r_d_dbar : Run.t list;
  witness : witness option;
  runs_tried : int;
}

let screen ?fd ?pattern ?inputs ?(max_steps = 200_000)
    (module A : Ksa_sim.Algorithm.S) ~(partition : Partitioning.t) =
  let module E = Ksa_sim.Engine.Make (A) in
  let n = partition.Partitioning.n in
  let inputs = Option.value inputs ~default:(Value.distinct_inputs n) in
  let pattern = Option.value pattern ~default:(Failure_pattern.none ~n) in
  let groups = partition.Partitioning.groups in
  let dbar = partition.Partitioning.dbar in
  let strategies =
    [
      (fun () -> Adversary.sequential_solo ~groups:(groups @ [ dbar ]));
      (fun () -> Adversary.sequential_solo ~groups:((dbar :: groups) @ []));
      (fun () -> Adversary.partition ~groups:(groups @ [ dbar ]) ());
    ]
  in
  let classify acc mk =
    let adv = mk () in
    let run = E.run ~max_steps ?fd ~n ~inputs ~pattern adv in
    Metrics.incr m_screen_runs;
    let acc = { acc with runs_tried = acc.runs_tried + 1 } in
    match dec_d run ~partition with
    | None -> acc
    | Some values ->
        let acc = { acc with r_d = run :: acc.r_d } in
        if dec_dbar run ~partition then
          {
            acc with
            r_d_dbar = run :: acc.r_d_dbar;
            witness =
              (match acc.witness with
              | Some _ as w -> w
              | None ->
                  Metrics.incr m_screen_witnesses;
                  Some { run; values; adversary = adv.Adversary.describe });
          }
        else acc
  in
  Metrics.time t_screen (fun () ->
      List.fold_left classify
        { r_d = []; r_d_dbar = []; witness = None; runs_tried = 0 }
        strategies)

type c_witness =
  [ `Trapped of Pid.t list * Pid.t list
  | `Subsystem_decides
  | `Inconclusive of string ]

type report = {
  portfolio : portfolio;
  condition_a : bool;
  condition_b : bool;
  condition_c : bool;
  condition_c_witness : c_witness option;
  condition_d : bool;
  verdict : [ `Not_a_kset_algorithm | `No_witness ];
}

(* Condition (C) constructively: condition (C) itself is the border
   arithmetic ("consensus is unsolvable in ⟨D̄⟩"), but with the
   crash-adversarial explorer we can now corroborate it for the
   concrete algorithm — exhaustively search the subsystem in which
   Π∖D̄ is initially dead and the adversary may crash up to the
   subsystem budget more processes, and exhibit a configuration from
   which no continuation decides (the FLP-style trap the arithmetic
   predicts). *)
let validate_condition_c_exhaustive ?(max_configs = 500_000) ?inputs
    (module A : Ksa_sim.Algorithm.S) ~(partition : Partitioning.t)
    ~subsystem_crash_budget : c_witness =
  let module Ex = Ksa_sim.Explorer.Make (A) in
  let n = partition.Partitioning.n in
  let d = Partitioning.d_union partition in
  let inputs = Option.value inputs ~default:(Value.distinct_inputs n) in
  match
    Metrics.time t_exhaustive_c (fun () ->
        Ex.explore_with_crashes ~max_configs ~n ~inputs ~initially_dead:d
          ~crash_budget:subsystem_crash_budget
          ~check:(fun _ -> None)
          ())
  with
  | Ksa_sim.Explorer.Stuck { crashed; undecided_correct; _ } ->
      `Trapped
        (List.filter (fun p -> not (List.mem p d)) crashed, undecided_correct)
  | Ksa_sim.Explorer.All_paths_decide _ -> `Subsystem_decides
  | Ksa_sim.Explorer.Indeterminate stats ->
      `Inconclusive
        (Printf.sprintf
           "exploration budget exhausted after %d configurations"
           stats.Ksa_sim.Explorer.configs_visited)
  | Ksa_sim.Explorer.Safety_violation { reason; _ } ->
      `Inconclusive ("safety violation during subsystem search: " ^ reason)

(* Condition (D) by construction: run the restricted algorithm A|D̄
   in the restricted system (everyone else initially dead), run the
   full algorithm under the same pattern and schedule, and check the
   two runs are indistinguishable for D̄. *)
let validate_condition_d ?fd ?inputs ~max_steps ~seeds
    (module A : Ksa_sim.Algorithm.S) ~(partition : Partitioning.t) =
  let n = partition.Partitioning.n in
  let dbar = partition.Partitioning.dbar in
  let inputs = Option.value inputs ~default:(Value.distinct_inputs n) in
  let module R =
    Partitioning.Restrict
      (A)
      (struct
        let members = dbar
      end)
  in
  let module Er = Ksa_sim.Engine.Make (R) in
  let module Ef = Ksa_sim.Engine.Make (A) in
  let pattern =
    Failure_pattern.restrict_to (Failure_pattern.none ~n) dbar
  in
  List.for_all
    (fun seed ->
      let restricted =
        Er.run ~max_steps ?fd ~n ~inputs ~pattern
          (Adversary.fair ~rng:(Rng.create ~seed))
      in
      let full =
        Ef.run ~max_steps ?fd ~n ~inputs ~pattern
          (Adversary.fair ~rng:(Rng.create ~seed))
      in
      Indist.for_all restricted full dbar)
    seeds

let evaluate ?fd ?pattern ?inputs ?(max_steps = 200_000)
    ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(exhaustive_c = false)
    ?exhaustive_c_configs ~subsystem_crash_budget
    (module A : Ksa_sim.Algorithm.S) ~(partition : Partitioning.t) =
  let portfolio =
    screen ?fd ?pattern ?inputs ~max_steps (module A) ~partition
  in
  let condition_a = portfolio.witness <> None in
  let condition_b =
    portfolio.r_d <> []
    && Indist.compatible portfolio.r_d portfolio.r_d_dbar
         ~d:partition.Partitioning.dbar
  in
  let condition_c =
    Border.flp_consensus_impossible
      ~n_subsystem:(List.length partition.Partitioning.dbar)
      ~crashes:subsystem_crash_budget
  in
  let condition_c_witness =
    if not (exhaustive_c && A.uses_fd = false) then None
    else
      Some
        (validate_condition_c_exhaustive ?max_configs:exhaustive_c_configs
           ?inputs (module A) ~partition ~subsystem_crash_budget)
  in
  let condition_d =
    validate_condition_d ?fd ?inputs ~max_steps ~seeds (module A) ~partition
  in
  let verdict =
    if condition_a && condition_b && condition_c && condition_d then
      `Not_a_kset_algorithm
    else `No_witness
  in
  {
    portfolio;
    condition_a;
    condition_b;
    condition_c;
    condition_c_witness;
    condition_d;
    verdict;
  }

let pp_report ppf r =
  let yn ppf b = Format.pp_print_string ppf (if b then "yes" else "no") in
  Format.fprintf ppf
    "@[<v>(A) R(D) nonempty: %a@ (B) R(D) compatible with R(D,D̄): %a@ (C) \
     consensus impossible in ⟨D̄⟩: %a@ (D) restricted runs embed: %a@ verdict: \
     %s@]"
    yn r.condition_a yn r.condition_b yn r.condition_c yn r.condition_d
    (match r.verdict with
    | `Not_a_kset_algorithm ->
        "NOT a k-set agreement algorithm (Theorem 1 applies)"
    | `No_witness -> "no Theorem-1 witness found");
  match r.condition_c_witness with
  | None -> ()
  | Some `Subsystem_decides ->
      Format.fprintf ppf
        "@.(C, exhaustive) subsystem search: all paths decide — no trap found"
  | Some (`Inconclusive reason) ->
      Format.fprintf ppf "@.(C, exhaustive) inconclusive: %s" reason
  | Some (`Trapped (crashes, undecided)) ->
      Format.fprintf ppf
        "@.(C, exhaustive) ⟨D̄⟩ trap witness: crashes {%s} strand {%s} \
         undecided"
        (String.concat ","
           (List.map (fun p -> Printf.sprintf "p%d" p) crashes))
        (String.concat ","
           (List.map (fun p -> Printf.sprintf "p%d" p) undecided))
