module Sim = Ksa_sim
module Fd = Ksa_fd
module FP = Sim.Failure_pattern
module Adv = Sim.Adversary
module Rng = Ksa_prim.Rng
module Listx = Ksa_prim.Listx

type verdict = { id : string; claim : string; holds : bool; detail : string }

let pp_verdict ppf v =
  Format.fprintf ppf "[%s] %s — %s (%s)" v.id
    (if v.holds then "REPRODUCED" else "MISMATCH")
    v.claim v.detail

let hr ppf = Format.fprintf ppf "%s@." (String.make 72 '-')

let header ppf id title =
  hr ppf;
  Format.fprintf ppf "%s: %s@." id title;
  hr ppf

(* ------------------------------------------------------------------ *)
(* E1: Theorem 2                                                       *)
(* ------------------------------------------------------------------ *)

let e1_theorem2 ?(n_max = 9) ppf =
  header ppf "E1" "Theorem 2: impossibility with one live crash, k <= (n-1)/(n-f)";
  Format.fprintf ppf "%4s %4s %4s %6s  %6s %6s %8s %11s %9s@." "n" "f" "l"
    "k_max" "lemma3" "lemma4" "witness" "sync-model" "(A)-(D)";
  let failures = ref 0 and rows = ref 0 in
  for n = 3 to n_max do
    for f = 1 to n - 1 do
      let kmax = Border.max_impossible_k ~n ~f in
      if kmax >= 2 then begin
        incr rows;
        match Theorem2.demonstrate ~n ~f ~k:kmax () with
        | Error _ -> incr failures
        | Ok r ->
            if not r.Theorem2.theorem_applies then incr failures;
            let distinct =
              match r.Theorem2.witness with
              | Some run -> Sim.Run.distinct_decisions run
              | None -> 0
            in
            Format.fprintf ppf "%4d %4d %4d %6d  %6s %6s %8d %11s %9s@." n f
              (n - f) kmax
              (if r.Theorem2.lemma3 then "ok" else "NO")
              (if r.Theorem2.lemma4 then "ok" else "NO")
              distinct
              (match r.Theorem2.witness_admissible with
              | Ok () -> "admissible"
              | Error _ -> "VIOLATES")
              (if r.Theorem2.report.Theorem1.verdict = `Not_a_kset_algorithm
               then "all hold"
               else "FAIL")
      end
    done
  done;
  let holds = !failures = 0 in
  {
    id = "E1";
    claim = "k-set agreement impossible for k <= (n-1)/(n-f) (Thm 2)";
    holds;
    detail =
      Printf.sprintf
        "%d/%d (n,f) cells: Lemmas 3-4, a synchronous-processes-admissible \
         witness, and conditions (A)-(D) all verified"
        (!rows - !failures) !rows;
  }

(* ------------------------------------------------------------------ *)
(* E2: Theorem 8                                                       *)
(* ------------------------------------------------------------------ *)

let e2_theorem8 ?(n_max = 8) ?(seeds = 8) ppf =
  header ppf "E2"
    "Theorem 8: with f initial crashes, solvable iff kn > (k+1)f";
  Format.fprintf ppf "%4s %4s %4s %10s %9s   %s@." "n" "f" "k" "max-seen" "bound-ok"
    "border construction";
  let failures = ref 0 and rows = ref 0 in
  for n = 3 to n_max do
    for f = 1 to n - 1 do
      incr rows;
      let k = Border.min_solvable_k ~n ~f in
      let l = n - f in
      let module K = Ksa_algo.Kset_flp.Make (struct
        let l = l
      end) in
      let module E = Sim.Engine.Make (K) in
      (* solvable side: k-set agreement must hold for every schedule tried *)
      let max_seen = ref 0 in
      let ok = ref true in
      for seed = 1 to seeds do
        let rng = Rng.create ~seed:(seed + (n * 100) + f) in
        let dead = Rng.sample rng f (Listx.range 0 n) in
        let pattern = FP.initial_dead ~n ~dead in
        let adv =
          if seed mod 2 = 0 then Adv.fair ~rng
          else Adv.fair_lossy ~rng ~p_defer:0.4
        in
        let run = E.run ~n ~inputs:(Sim.Value.distinct_inputs n) ~pattern adv in
        max_seen := max !max_seen (Sim.Run.distinct_decisions run);
        if Kset_spec.check ~k run <> Ok () then ok := false
      done;
      (* border side: the largest unsolvable k is kb = k - 1; when it
         sits exactly on kb*n = (kb+1)*f the (kb+1)-way pasting must
         yield kb+1 distinct decisions *)
      let kb = k - 1 in
      let border_note =
        if kb >= 1 && kb * n = (kb + 1) * f then
          match Partitioning.border_case ~n ~k:kb with
          | Some groups -> (
              match Pasting.lemma12 (module K) ~groups with
              | Ok r ->
                  let d = r.Pasting.distinct_decisions in
                  if d <> kb + 1 then ok := false;
                  Printf.sprintf
                    "border k=%d (kn=(k+1)f): pasted run has %d > k decisions"
                    kb d
              | Error _ ->
                  ok := false;
                  "border construction failed")
          | None ->
              ok := false;
              "border partition missing"
        else ""
      in
      if not !ok then incr failures;
      Format.fprintf ppf "%4d %4d %4d %10d %9s   %s@." n f k !max_seen
        (if !ok then "yes" else "NO")
        border_note
    done
  done;
  let holds = !failures = 0 in
  {
    id = "E2";
    claim = "initial-crash solvability iff kn > (k+1)f (Thm 8)";
    holds;
    detail = Printf.sprintf "%d/%d (n,f) cells consistent" (!rows - !failures) !rows;
  }

(* ------------------------------------------------------------------ *)
(* E3: protocol cost                                                   *)
(* ------------------------------------------------------------------ *)

let e3_protocol_cost ?(sizes = [ 6; 12; 24; 48 ]) ?(seeds = 5) ppf =
  header ppf "E3" "Section VI protocol: cost to global decision (f = n/3)";
  Format.fprintf ppf "%5s %4s %4s %10s %10s %9s %7s@." "n" "f" "L" "avg-steps"
    "avg-msgs" "distinct" "bound";
  let ok = ref true in
  List.iter
    (fun n ->
      let f = n / 3 in
      let l = n - f in
      let module K = Ksa_algo.Kset_flp.Make (struct
        let l = l
      end) in
      let module E = Sim.Engine.Make (K) in
      let bound = Ksa_algo.Kset_flp.decisions_bound ~n ~l in
      let steps = ref 0 and msgs = ref 0 and dmax = ref 0 in
      for seed = 1 to seeds do
        let rng = Rng.create ~seed:(seed * 77) in
        let dead = Rng.sample rng f (Listx.range 0 n) in
        let pattern = FP.initial_dead ~n ~dead in
        let run =
          E.run ~n ~inputs:(Sim.Value.distinct_inputs n) ~pattern (Adv.fair ~rng)
        in
        steps := !steps + Sim.Run.step_count run;
        msgs := !msgs + Sim.Run.message_count run;
        dmax := max !dmax (Sim.Run.distinct_decisions run);
        if not (Sim.Run.all_correct_decided run) then ok := false
      done;
      if !dmax > bound then ok := false;
      Format.fprintf ppf "%5d %4d %4d %10d %10d %9d %7d@." n f l (!steps / seeds)
        (!msgs / seeds) !dmax bound)
    sizes;
  {
    id = "E3";
    claim = "protocol terminates with <= floor(n/L) decisions at scale";
    holds = !ok;
    detail = Printf.sprintf "sizes %s" (String.concat "," (List.map string_of_int sizes));
  }

(* ------------------------------------------------------------------ *)
(* E4: graph lemmas                                                    *)
(* ------------------------------------------------------------------ *)

let e4_graph_lemmas ?(samples = 300) ?(n = 400) ppf =
  header ppf "E4" "Lemmas 6-7: source components of min-in-degree digraphs";
  Format.fprintf ppf "%6s %6s %9s %12s %12s@." "delta" "n" "samples"
    "lemma6+7 ok" "max #sources";
  let rng = Rng.create ~seed:4242 in
  let all_ok = ref true in
  List.iter
    (fun delta ->
      let ok = ref 0 and max_sources = ref 0 in
      for _ = 1 to samples do
        let g = Ksa_dgraph.Gen.min_in_degree rng ~n ~delta in
        let sources = Ksa_dgraph.Source.source_component_count g in
        max_sources := max !max_sources sources;
        if
          Ksa_dgraph.Source.lemma6_holds g
          && Ksa_dgraph.Source.lemma7_holds g
          && sources <= Ksa_dgraph.Source.max_source_components ~n ~delta
        then incr ok
      done;
      if !ok <> samples then all_ok := false;
      Format.fprintf ppf "%6d %6d %9d %8d/%-5d %12d@." delta n samples !ok
        samples !max_sources)
    [ 1; 2; 3; 5; 8 ];
  {
    id = "E4";
    claim = "every min-in-degree-δ digraph has a source component of size ≥ δ+1";
    holds = !all_ok;
    detail = Printf.sprintf "%d samples per δ at n=%d" samples n;
  }

(* ------------------------------------------------------------------ *)
(* E5: Theorem 10 and Corollary 13                                     *)
(* ------------------------------------------------------------------ *)

let synod_consensus_ok ~n ~dead ~seeds =
  let module E = Sim.Engine.Make (Ksa_algo.Synod.A) in
  let pattern = FP.initial_dead ~n ~dead in
  let leader = List.hd (FP.correct pattern) in
  let ok = ref true in
  for seed = 1 to seeds do
    let rng = Rng.create ~seed:(seed * 31) in
    let sigma = Fd.Sigma.blocks ~k:1 ~pattern ~stab:6 ~horizon:40 () in
    let omega = Fd.Omega.gen ~k:1 ~pattern ~leaders:[ leader ] ~tgst:6 ~horizon:40 () in
    let fd = Fd.History.oracle (Fd.History.combine sigma omega) in
    let run =
      E.run ~max_steps:50_000 ~fd ~n ~inputs:(Sim.Value.distinct_inputs n)
        ~pattern (Adv.fair ~rng)
    in
    if Kset_spec.check ~k:1 run <> Ok () then ok := false
  done;
  !ok

let e5_theorem10 ?(n_max = 7) ppf =
  header ppf "E5"
    "Theorem 10 + Corollary 13: (Sigma_k, Omega_k) solves k-set iff k=1 or k=n-1";
  Format.fprintf ppf "%4s %4s  %-12s %10s %8s %8s %8s@." "n" "k" "regime"
    "decisions" "indist" "def7" "lemma9";
  let failures = ref 0 and rows = ref 0 in
  for n = 4 to n_max do
    (* k = 1: Synod reaches consensus *)
    incr rows;
    let k1_ok =
      synod_consensus_ok ~n ~dead:[] ~seeds:5
      && synod_consensus_ok ~n ~dead:[ n - 1 ] ~seeds:5
    in
    if not k1_ok then incr failures;
    Format.fprintf ppf "%4d %4d  %-12s %10s %8s %8s %8s@." n 1 "solvable"
      (if k1_ok then "1" else "BAD") "-" "-" "-";
    (* 2 <= k <= n-2: the construction forces k decisions *)
    for k = 2 to n - 2 do
      incr rows;
      match Partitioning.theorem10 ~n ~k with
      | None -> incr failures
      | Some partition -> (
          let groups = Partitioning.all_groups partition in
          (* the paper's D-bar first?  order does not matter for the
             construction; use D1..Dk-1, Dbar as given *)
          match Pasting.lemma12 (module Ksa_algo.Synod.A) ~groups with
          | Error _ ->
              incr failures;
              Format.fprintf ppf "%4d %4d  %-12s %10s@." n k "impossible"
                "construction failed"
          | Ok r ->
              let d = r.Pasting.distinct_decisions in
              let ind = List.for_all Fun.id r.Pasting.per_group_indistinguishable in
              let d7 = r.Pasting.definition7 = Some (Ok ()) in
              let l9 = r.Pasting.lemma9 = Some (Ok ()) in
              let ok = d = k && ind && d7 && l9 in
              if not ok then incr failures;
              Format.fprintf ppf "%4d %4d  %-12s %10d %8s %8s %8s@." n k
                "impossible" d
                (if ind then "yes" else "NO")
                (if d7 then "ok" else "NO")
                (if l9 then "ok" else "NO"))
    done
  done;
  {
    id = "E5";
    claim = "(Sigma_k,Omega_k): consensus works at k=1; partition construction \
             forces k decisions for 2<=k<=n-2";
    holds = !failures = 0;
    detail = Printf.sprintf "%d/%d rows consistent" (!rows - !failures) !rows;
  }

(* ------------------------------------------------------------------ *)
(* E6: coverage vs Bouzid-Travers                                      *)
(* ------------------------------------------------------------------ *)

let e6_coverage ?(n_max = 64) ppf =
  header ppf "E6"
    "Impossibility coverage: Theorem 10 (2<=k<=n-2) vs Bouzid-Travers (2k^2<=n)";
  Format.fprintf ppf "%6s %14s %14s %8s@." "n" "Thm10 pairs" "BT pairs" "new";
  let t_total = ref 0 and b_total = ref 0 in
  let subsumption_ok = ref true in
  List.iter
    (fun n ->
      let t = ref 0 and b = ref 0 in
      for k = 2 to n - 2 do
        if Border.theorem10_impossible ~n ~k then incr t;
        if Border.bouzid_travers_impossible ~n ~k then begin
          incr b;
          if not (Border.theorem10_impossible ~n ~k) then subsumption_ok := false
        end
      done;
      t_total := !t_total + !t;
      b_total := !b_total + !b;
      Format.fprintf ppf "%6d %14d %14d %8d@." n !t !b (!t - !b))
    [ 4; 8; 16; 32; 48; n_max ];
  Format.fprintf ppf "totals: Theorem 10 covers %d pairs, prior bound %d@."
    !t_total !b_total;
  {
    id = "E6";
    claim = "Theorem 10 strictly extends the 2k^2<=n impossibility of [5]";
    holds = !subsumption_ok && !t_total > !b_total;
    detail = Printf.sprintf "%d vs %d covered (n up to %d)" !t_total !b_total n_max;
  }

(* ------------------------------------------------------------------ *)
(* E7: Lemma 9                                                          *)
(* ------------------------------------------------------------------ *)

let e7_lemma9 ?(samples = 120) ppf =
  header ppf "E7" "Lemma 9: every (Sigma'_k, Omega'_k) history is a (Sigma_k, Omega_k) history";
  let rng = Rng.create ~seed:777 in
  let pass = ref 0 in
  for _ = 1 to samples do
    let n = 3 + Rng.int rng 5 in
    let k = 2 + Rng.int rng (max 1 (n - 2)) in
    let k = min k (n - 1) in
    (* random partition of 0..n-1 into k nonempty groups *)
    let pids = Rng.shuffle rng (Listx.range 0 n) in
    let cuts = List.sort compare (Rng.sample rng (k - 1) (Listx.range 1 n)) in
    let groups =
      let rec slice start = function
        | [] -> [ Listx.drop start pids ]
        | c :: rest ->
            List.filteri (fun i _ -> i >= start && i < c) pids :: slice c rest
      in
      slice 0 cuts
    in
    let survivor = List.hd pids in
    let dead =
      List.filter (fun p -> p <> survivor && Rng.bool rng) (Listx.range 0 n)
    in
    let pattern = FP.initial_dead ~n ~dead in
    let leaders =
      List.map
        (fun g ->
          match List.filter (fun p -> not (List.mem p dead)) g with
          | p :: _ -> p
          | [] -> List.hd g)
        groups
    in
    let spec = { Fd.Partition_fd.groups; leaders; tgst = 4; stab = 3 } in
    let h = Fd.Partition_fd.gen spec ~pattern ~horizon:9 in
    if
      Fd.Partition_fd.validate_partition_property spec ~pattern h = Ok ()
      && Fd.Partition_fd.lemma9_check ~k ~pattern h = Ok ()
    then incr pass
  done;
  Format.fprintf ppf "%d/%d random (partition, pattern) pairs validated@." !pass
    samples;
  {
    id = "E7";
    claim = "(Sigma_k,Omega_k) is weaker than (Sigma'_k,Omega'_k) (Lemma 9)";
    holds = !pass = samples;
    detail = Printf.sprintf "%d/%d samples" !pass samples;
  }

(* ------------------------------------------------------------------ *)
(* E8: screening                                                        *)
(* ------------------------------------------------------------------ *)

let e8_screening ppf =
  header ppf "E8" "Theorem 1 as a screening tool (Remarks after Theorem 1)";
  let screen name algo partition expected =
    let report = Theorem1.evaluate ~subsystem_crash_budget:1 algo ~partition in
    let got = report.Theorem1.verdict in
    let ok = got = expected in
    Format.fprintf ppf "%-38s %-28s %s@." name
      (match got with
      | `Not_a_kset_algorithm -> "caught (Theorem 1 applies)"
      | `No_witness -> "no witness found")
      (if ok then "" else "UNEXPECTED");
    ok
  in
  let module Naive = Ksa_algo.Naive_min.Make (struct
    let wait_for = 2
  end) in
  let module Sound = Ksa_algo.Kset_flp.Make (struct
    let l = 4
  end) in
  let module Overdriven = Ksa_algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let p5 = Partitioning.make ~n:5 ~groups:[ [ 0; 1 ] ] in
  let p53 = Option.get (Partitioning.theorem2 ~n:5 ~f:3 ~k:2) in
  let ok1 =
    screen "naive-min(wait=2), claim 2-set, n=5" (module Naive) p5
      `Not_a_kset_algorithm
  in
  let ok2 =
    screen "kset-flp(L=4), n=5 f=1 k=2 (solvable)" (module Sound) p5 `No_witness
  in
  let ok3 =
    screen "kset-flp(L=2), n=5 f=3 k=2 (impossible)"
      (module Overdriven)
      p53 `Not_a_kset_algorithm
  in
  let oks = [ ok1; ok2; ok3 ] in
  {
    id = "E8";
    claim = "(dec-D) screening separates flawed candidates from sound ones";
    holds = List.for_all Fun.id oks;
    detail = Printf.sprintf "%d/3 screenings as expected"
        (List.length (List.filter Fun.id oks));
  }

(* ------------------------------------------------------------------ *)
(* E9: T-independence                                                   *)
(* ------------------------------------------------------------------ *)

let e9_independence ppf =
  header ppf "E9" "T-independence taxonomy (Section IV)";
  let check name algo ?fd ?max_steps ~n family expected =
    let got = Independence.satisfies ?fd ?max_steps algo ~n ~family in
    Format.fprintf ppf "%-34s %-22s %-9s %s@." name
      (Printf.sprintf "(%d sets)" (List.length family))
      (if got then "holds" else "fails")
      (if got = expected then "" else "UNEXPECTED");
    got = expected
  in
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 3
  end) in
  let module Naive = Ksa_algo.Naive_min.Make (struct
    let wait_for = 2
  end) in
  let pattern = FP.none ~n:4 in
  let sigma = Fd.Sigma.blocks ~k:1 ~pattern ~stab:3 ~horizon:30 () in
  let omega = Fd.Omega.gen ~k:1 ~pattern ~leaders:[ 0 ] ~tgst:3 ~horizon:30 () in
  let synod_fd = Fd.History.oracle (Fd.History.combine sigma omega) in
  let ok1 =
    check "trivial / wait-free 2^Pi" (module Ksa_algo.Trivial.A) ~n:4
      (Independence.wait_free_family ~n:4)
      true
  in
  let ok2 =
    check "kset-flp(L=3) / f-resilient f=2" (module K) ~n:5
      (Independence.f_resilient_family ~n:5 ~f:2)
      true
  in
  let ok3 =
    check "kset-flp(L=3) / obstruction-free" (module K) ~n:5
      (Independence.obstruction_free_family ~n:5)
      false
  in
  let ok4 =
    check "naive-min(2) / |S|>=2" (module Naive) ~n:4
      (Independence.f_resilient_family ~n:4 ~f:2)
      true
  in
  let ok5 =
    check "synod+(Sigma,Omega) / proper subsets" (module Ksa_algo.Synod.A)
      ~fd:synod_fd ~max_steps:4_000 ~n:4
      [ [ 0; 1; 2 ] ]
      false
  in
  let ok6 =
    check "synod+(Sigma,Omega) / whole system" (module Ksa_algo.Synod.A)
      ~fd:synod_fd ~n:4
      [ [ 0; 1; 2; 3 ] ]
      true
  in
  let oks = [ ok1; ok2; ok3; ok4; ok5; ok6 ] in
  {
    id = "E9";
    claim = "wait-freedom/f-resilience/obstruction-freedom map to T-independence";
    holds = List.for_all Fun.id oks;
    detail =
      Printf.sprintf "%d/%d classifications as expected"
        (List.length (List.filter Fun.id oks))
        (List.length oks);
  }

(* ------------------------------------------------------------------ *)
(* E10: round models (Discussion)                                      *)
(* ------------------------------------------------------------------ *)

let e10_round_models ?(seeds = 30) ppf =
  header ppf "E10"
    "Round models (Discussion): the partitioning argument in the Heard-Of model";
  let module MF = Ksa_ho.Min_flood.Make (struct
    let rounds = 4
  end) in
  let module EMF = Ksa_ho.Engine.Make (MF) in
  let module EUV = Ksa_ho.Engine.Make (Ksa_ho.Uniform_voting.A) in
  let ok = ref true in
  Format.fprintf ppf "%-18s %-28s %10s %10s@." "algorithm" "HO predicate"
    "decisions" "expected";
  let row name pred got expected =
    if got <> expected then ok := false;
    Format.fprintf ppf "%-18s %-28s %10d %10d%s@." name pred got expected
      (if got = expected then "" else "  MISMATCH")
  in
  let n = 6 in
  let inputs = Sim.Value.distinct_inputs n in
  let groups = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let part = Ksa_ho.Assignment.partitioned ~n ~groups () in
  let complete = Ksa_ho.Assignment.complete ~n in
  let omf_part = EMF.run ~n ~inputs ~assignment:part ~rounds:4 () in
  row "min-flood" "partitioned (3 groups)" (EMF.distinct_decisions omf_part) 3;
  let omf_c = EMF.run ~n ~inputs ~assignment:complete ~rounds:4 () in
  row "min-flood" "complete" (EMF.distinct_decisions omf_c) 1;
  let ouv_part = EUV.run ~n ~inputs ~assignment:part ~rounds:10 () in
  row "uniform-voting" "partitioned (3 groups)" (EUV.distinct_decisions ouv_part) 3;
  let ouv_c = EUV.run ~n ~inputs ~assignment:complete ~rounds:10 () in
  row "uniform-voting" "complete" (EUV.distinct_decisions ouv_c) 1;
  (* safety of UV over random no-split assignments *)
  let rng = Rng.create ~seed:909 in
  let safe = ref 0 in
  for _ = 1 to seeds do
    let a = Ksa_ho.Assignment.random ~rng ~n ~min_size:((n / 2) + 1) () in
    let o = EUV.run ~n ~inputs ~assignment:a ~rounds:12 () in
    if EUV.distinct_decisions o <= 1 then incr safe
  done;
  Format.fprintf ppf
    "uniform-voting agreement under %d random no-split assignments: %d/%d@."
    seeds !safe seeds;
  if !safe <> seeds then ok := false;
  (* group solo-indistinguishability in the partitioned run *)
  let solo_of group =
    Ksa_ho.Assignment.make ~n (fun ~round ~me ->
        if List.mem me group then part.Ksa_ho.Assignment.ho ~round ~me else [])
  in
  let indist =
    List.for_all
      (fun group ->
        let solo = EUV.run ~n ~inputs ~assignment:(solo_of group) ~rounds:10 () in
        List.for_all
          (fun p -> EUV.states_equal_until_decision ouv_part solo p)
          group)
      groups
  in
  Format.fprintf ppf "groups state-identical to solo executions: %b@." indist;
  if not indist then ok := false;
  {
    id = "E10";
    claim = "the partitioning reduction transplants to round models (Discussion)";
    holds = !ok;
    detail =
      Printf.sprintf
        "per-group decisions, no-split safety (%d samples), solo \
         indistinguishability"
        seeds;
  }

(* ------------------------------------------------------------------ *)
(* E11: failure detectors from partial synchrony (ablation)            *)
(* ------------------------------------------------------------------ *)

let e11_fd_implementation ?(seeds = 10) ppf =
  header ppf "E11"
    "FD implementation ablation: window size vs. extracted-history validity";
  let n = 5 in
  let gst = 40 in
  let budget = 160 in
  let module HB = Sim.Engine.Make (Fd.Impl.Heartbeat) in
  Format.fprintf ppf "(n=%d, gst=%d, budget=%d, one initial crash)@." n gst budget;
  Format.fprintf ppf "%8s %14s %14s %16s@." "window" "Σ valid" "Ω valid"
    "synod consensus";
  let final_ok = ref false in
  List.iter
    (fun window ->
      let sigma_ok = ref 0 and omega_ok = ref 0 and synod_ok = ref 0 in
      for seed = 1 to seeds do
        let dead = [ seed mod n ] in
        let pattern = FP.initial_dead ~n ~dead in
        let rng = Rng.create ~seed:(seed * 13) in
        let hb =
          HB.run ~max_steps:budget ~n
            ~inputs:(Sim.Value.distinct_inputs n)
            ~pattern
            (Adv.eventually_lockstep ~rng ~gst ~p_defer:0.6)
        in
        let sigma = Fd.Impl.sigma_of_run hb ~window in
        let omega = Fd.Impl.omega_of_run hb ~window in
        let s = Fd.Sigma.validate ~k:1 ~pattern sigma = Ok () in
        let o = Fd.Omega.validate ~k:1 ~pattern omega = Ok () in
        if s then incr sigma_ok;
        if o then incr omega_ok;
        if s && o then begin
          let module ES = Sim.Engine.Make (Ksa_algo.Synod.A) in
          let oracle = Fd.History.oracle (Fd.History.combine sigma omega) in
          let run =
            ES.run ~max_steps:50_000 ~fd:oracle ~n
              ~inputs:(Sim.Value.distinct_inputs n)
              ~pattern (Adv.fair ~rng)
          in
          if Kset_spec.check ~k:1 run = Ok () then incr synod_ok
        end
      done;
      if window = 3 * n && !sigma_ok = seeds && !omega_ok = seeds then
        final_ok := !synod_ok = seeds;
      Format.fprintf ppf "%8d %11d/%-3d %11d/%-3d %13d/%-3d@." window !sigma_ok
        seeds !omega_ok seeds !synod_ok seeds)
    [ 2; 3; n; 2 * n; 3 * n ];
  (* online variant: the detector implemented INSIDE the protocol
     (Stack), no oracle and no extraction at all *)
  let module Hb = Ksa_algo.Stack.Heartbeat_fd (struct
    let window = 12
  end) in
  let module Stacked = Ksa_algo.Stack.Make (Hb) (Ksa_algo.Synod.A) in
  let module ES = Sim.Engine.Make (Stacked) in
  let online_ok = ref 0 in
  for seed = 1 to seeds do
    let pattern = FP.initial_dead ~n ~dead:[ seed mod n ] in
    let rng = Rng.create ~seed:(seed * 17) in
    let run =
      ES.run ~max_steps:60_000 ~n
        ~inputs:(Sim.Value.distinct_inputs n)
        ~pattern
        (Adv.eventually_lockstep ~rng ~gst ~p_defer:0.5)
    in
    if Kset_spec.check ~k:1 run = Ok () then incr online_ok
  done;
  Format.fprintf ppf
    "online (in-protocol detector, no oracle): consensus %d/%d@." !online_ok
    seeds;
  {
    id = "E11";
    claim =
      "partial synchrony implements (Sigma, Omega): extracted histories \
       validate and drive Synod";
    holds = !final_ok && !online_ok = seeds;
    detail =
      Printf.sprintf
        "window 3n fully validates and the in-protocol stack reaches \
         consensus, %d seeds each"
        seeds;
  }

(* ------------------------------------------------------------------ *)
(* E12: the FLP gap between Theorems 2 and 8, exhaustively             *)
(* ------------------------------------------------------------------ *)

let e12_flp_gap ppf =
  header ppf "E12"
    "The Theorem 2 / Theorem 8 gap at (n,f,k)=(3,1,1): initial vs anytime crash";
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module Ex = Sim.Explorer.Make (K) in
  let inputs = Sim.Value.distinct_inputs 3 in
  let consensus_check decisions =
    let values =
      List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions)
    in
    if List.length values > 1 then Some "two distinct decisions" else None
  in
  (* initial-crash side: every dead-set, whole schedule space *)
  let initial_ok = ref true in
  List.iter
    (fun dead ->
      let pattern = FP.initial_dead ~n:3 ~dead in
      match Ex.explore ~n:3 ~inputs ~pattern ~check:consensus_check () with
      | Sim.Explorer.Safe stats ->
          Format.fprintf ppf
            "initial crash %-8s safe over all %6d schedules (complete: %b)@."
            (if dead = [] then "none" else Printf.sprintf "p%d" (List.hd dead))
            stats.Sim.Explorer.configs_visited
            (not stats.Sim.Explorer.budget_exhausted);
          if stats.Sim.Explorer.budget_exhausted then initial_ok := false
      | Sim.Explorer.Violation v ->
          initial_ok := false;
          Format.fprintf ppf "initial crash: VIOLATION %s@." v.reason)
    [ []; [ 0 ]; [ 1 ]; [ 2 ] ];
  (* anytime-crash side: the explorer must find a trap *)
  let anytime =
    Ex.explore_with_crashes ~n:3 ~inputs ~crash_budget:1 ~check:consensus_check
      ()
  in
  let anytime_ok =
    match anytime with
    | Sim.Explorer.Stuck { crashed; undecided_correct; stats } ->
        Format.fprintf ppf
          "anytime crash: STUCK configuration found — crash of [%s] traps \
           [%s] forever (%d configurations classified)@."
          (String.concat " " (List.map (Printf.sprintf "p%d") crashed))
          (String.concat " " (List.map (Printf.sprintf "p%d") undecided_correct))
          stats.Sim.Explorer.configs_visited;
        not stats.Sim.Explorer.budget_exhausted
    | Sim.Explorer.All_paths_decide _ ->
        Format.fprintf ppf "anytime crash: unexpectedly, all paths decide@.";
        false
    | Sim.Explorer.Indeterminate stats ->
        Format.fprintf ppf
          "anytime crash: INDETERMINATE — budget exhausted after %d \
           configurations@."
          stats.Sim.Explorer.configs_visited;
        false
    | Sim.Explorer.Safety_violation { reason; _ } ->
        Format.fprintf ppf "anytime crash: safety violation %s@." reason;
        false
  in
  let valency =
    Ex.reachable_decision_values ~n:3 ~inputs ~crash_budget:1 ()
  in
  Format.fprintf ppf "initial-configuration valency under 1 crash: {%s}@."
    (String.concat " " (List.map string_of_int valency));
  {
    id = "E12";
    claim =
      "one initial crash: solvable; one anytime crash: a stuck configuration \
       exists (FLP)";
    holds = !initial_ok && anytime_ok && List.length valency >= 2;
    detail = "exhaustive over all schedules and crash placements at n=3";
  }

(* ------------------------------------------------------------------ *)
(* E13: shared memory from message passing (the [9] substrate)         *)
(* ------------------------------------------------------------------ *)

let e13_shared_memory ?(seeds = 10) ppf =
  header ppf "E13"
    "Shared memory from message passing: ABD with majority (Σ-style) quorums";
  let module Torture = Ksa_sm.Abd.Make (struct
    let script = Ksa_sm.Abd.write_then_read_all
    let write_back = true
  end) in
  let module E = Sim.Engine.Make (Torture) in
  Format.fprintf ppf "%4s %-10s %-8s %10s %10s %9s@." "n" "dead" "sched"
    "ops-done" "atomic" "swmr";
  let all_ok = ref true in
  List.iter
    (fun (n, dead, adv_name) ->
      let atomic_ok = ref 0 and swmr_ok = ref 0 and done_ok = ref 0 in
      for seed = 1 to seeds do
        let pattern = FP.initial_dead ~n ~dead in
        let rng = Rng.create ~seed:(seed * 7) in
        let adv =
          match adv_name with
          | "fair" -> Adv.fair ~rng
          | _ -> Adv.fair_lossy ~rng ~p_defer:0.5
        in
        let run, config =
          E.run_full ~max_steps:80_000 ~n
            ~inputs:(Sim.Value.distinct_inputs n)
            ~pattern adv
        in
        let ops = Torture.ops_of run ~state_of:(E.state_of config) in
        if Sim.Run.all_correct_decided run then incr done_ok;
        if Ksa_sm.Register.check_atomic ops = Ok () then incr atomic_ok;
        if Ksa_sm.Register.check_write_once_timestamps ops = Ok () then
          incr swmr_ok
      done;
      if !atomic_ok <> seeds || !swmr_ok <> seeds || !done_ok <> seeds then
        all_ok := false;
      Format.fprintf ppf "%4d %-10s %-8s %7d/%-3d %7d/%-3d %6d/%-3d@." n
        (if dead = [] then "none"
         else String.concat "," (List.map string_of_int dead))
        adv_name !done_ok seeds !atomic_ok seeds !swmr_ok seeds)
    [
      (4, [], "fair");
      (4, [ 3 ], "lossy");
      (5, [ 0; 3 ], "fair");
      (5, [ 2 ], "lossy");
      (3, [ 1 ], "fair");
    ];
  {
    id = "E13";
    claim =
      "majority quorums emulate atomic registers over the async substrate \
       (the [9] simulation behind Theorem 10(C))";
    holds = !all_ok;
    detail = Printf.sprintf "%d seeds per (n, crashes, schedule) row" seeds;
  }

(* ------------------------------------------------------------------ *)
(* E14: the (n, k, t, model) solvability border                        *)
(* ------------------------------------------------------------------ *)

let e14_fault_models ?(max_configs = 4_000_000) ppf =
  header ppf "E14"
    "Fault-model border sweep at n=3: kset_flp(l = n - t) under crash / \
     byzantine / mobile budgets";
  let n = 3 in
  let inputs = Sim.Value.distinct_inputs n in
  (* safety verdict of one (k, t, model) cell: explore every schedule,
     crash/corruption/omission placement within budget [t], and ask
     whether some reachable configuration decides more than [k]
     distinct values.  [None] = budget blown (counts as a failed
     experiment, never as evidence either way). *)
  let safe_cell ~k ~t model =
    let module K = Ksa_algo.Kset_flp.Make (struct
      let l = n - t
    end) in
    let module Ex = Sim.Explorer.Make (K) in
    let check decisions =
      let values =
        List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions)
      in
      if List.length values > k then
        Some (Printf.sprintf "%d distinct decisions" (List.length values))
      else None
    in
    match
      Ex.explore_with_crashes ~model ~max_configs ~n ~inputs ~crash_budget:t
        ~check ()
    with
    | Sim.Explorer.Safety_violation _ -> Some false
    | Sim.Explorer.Indeterminate _ -> None
    | Sim.Explorer.All_paths_decide stats | Sim.Explorer.Stuck { stats; _ } ->
        if stats.Sim.Explorer.budget_exhausted then None else Some true
  in
  let complete = ref true in
  let cell ~k ~t model =
    match safe_cell ~k ~t model with
    | Some b -> b
    | None ->
        complete := false;
        false
  in
  Format.fprintf ppf "%4s %4s %4s  %8s %10s %8s   %s@." "n" "k" "t" "crash"
    "byzantine" "mobile" "crash-bound";
  let crash_matches_bound = ref true in
  let byz_within_crash = ref true in
  let strict_separation = ref false in
  List.iter
    (fun k ->
      List.iter
        (fun t ->
          let c = cell ~k ~t Sim.Fault_model.Crash in
          let b = cell ~k ~t (Sim.Fault_model.Byzantine t) in
          let m = cell ~k ~t (Sim.Fault_model.Mobile t) in
          (* the crash row must trace the paper's t < kn/(k+1) border *)
          let bound = Ksa_algo.Kset_flp.solvable ~n ~f:t ~k in
          if c <> bound then crash_matches_bound := false;
          (* corruption subsumes crashing: a Byzantine-safe cell must
             also be crash-safe *)
          if b && not c then byz_within_crash := false;
          if c && not b then strict_separation := true;
          Format.fprintf ppf "%4d %4d %4d  %8s %10s %8s   %s@." n k t
            (if c then "safe" else "UNSAFE")
            (if b then "safe" else "UNSAFE")
            (if m then "safe" else "UNSAFE")
            (if bound then "solvable" else "unsolvable"))
        [ 0; 1; 2 ])
    [ 1; 2; 3 ];
  {
    id = "E14";
    claim =
      "crash safety traces the k*n > (k+1)*t border; Byzantine corruption \
       is never more permissive and is strictly less solvable at some \
       (n, k, t)";
    holds =
      !complete && !crash_matches_bound && !byz_within_crash
      && !strict_separation;
    detail =
      Printf.sprintf
        "exhaustive per cell at n=3, k in {1,2,3}, t in {0,1,2}; separation \
         %sfound"
        (if !strict_separation then "" else "NOT ");
  }

let all ppf =
  let v1 = e1_theorem2 ppf in
  let v2 = e2_theorem8 ppf in
  let v3 = e3_protocol_cost ppf in
  let v4 = e4_graph_lemmas ppf in
  let v5 = e5_theorem10 ppf in
  let v6 = e6_coverage ppf in
  let v7 = e7_lemma9 ppf in
  let v8 = e8_screening ppf in
  let v9 = e9_independence ppf in
  let v10 = e10_round_models ppf in
  let v11 = e11_fd_implementation ppf in
  let v12 = e12_flp_gap ppf in
  let v13 = e13_shared_memory ppf in
  let v14 = e14_fault_models ppf in
  let vs = [ v1; v2; v3; v4; v5; v6; v7; v8; v9; v10; v11; v12; v13; v14 ] in
  hr ppf;
  Format.fprintf ppf "Summary:@.";
  List.iter (fun v -> Format.fprintf ppf "  %a@." pp_verdict v) vs;
  vs
