(** Theorem 1, executable.

    The theorem: if a k-set agreement algorithm A for M admits runs
    satisfying (dec-D) — the k−1 groups D{_1} … D{_(k−1)} decide k−1
    distinct values proposed inside D while D̄ hears nothing from D
    until everyone in D̄ decided ((dec-D̄)) — and conditions (B)–(D)
    relate those runs to the restricted system M' = ⟨D̄⟩ in which
    consensus is unsolvable, then A does not solve k-set agreement.

    The paper's Remarks advertise the theorem as a cheap screening
    tool: "if (dec-D) can be satisfied in some runs, the algorithm is
    very likely flawed, as the remaining conditions are typically easy
    to construct in sufficiently asynchronous systems."  This module
    implements exactly that: {!screen} hunts for a (dec-D)∧(dec-D̄)
    witness with a portfolio of partition-shaped adversaries, and
    {!evaluate} additionally checks executable counterparts of
    conditions (B) and (D) on the collected runs and reports (C) from
    the border arithmetic. *)

module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

val dec_d : Run.t -> partition:Partitioning.t -> Value.t list option
(** (dec-D) witness: distinct values v{_1} … v{_(k−1)}, each proposed
    by a process of D and decided by a process of D{_i} — found by
    backtracking over a system of distinct representatives.  [None]
    if the run does not satisfy (dec-D). *)

val dec_dbar : Run.t -> partition:Partitioning.t -> bool
(** (dec-D̄): every process of D̄ decides, and receives no message
    from D until after the last D̄ decision. *)

type witness = {
  run : Run.t;
  values : Value.t list;  (** The distinct (dec-D) values. *)
  adversary : string;  (** Which portfolio strategy produced it. *)
}

type portfolio = {
  r_d : Run.t list;  (** Collected runs satisfying (dec-D). *)
  r_d_dbar : Run.t list;  (** … satisfying both (dec-D) and (dec-D̄). *)
  witness : witness option;  (** First run satisfying both. *)
  runs_tried : int;
}

val screen :
  ?fd:Ksa_sim.Fd_view.oracle ->
  ?pattern:Ksa_sim.Failure_pattern.t ->
  ?inputs:Value.t array ->
  ?max_steps:int ->
  (module Ksa_sim.Algorithm.S) ->
  partition:Partitioning.t ->
  portfolio
(** Runs the adversary portfolio (sequential-solo in both group
    orders, partition-with-delays) on the given algorithm with
    distinct inputs by default, classifying every produced run. *)

type c_witness =
  [ `Trapped of Pid.t list * Pid.t list
    (** (extra crashes beyond the initially-dead D, stranded undecided
        processes of D̄): a reachable configuration of the restricted
        subsystem from which no continuation decides — the FLP-style
        trap condition (C)'s arithmetic predicts, found exhaustively. *)
  | `Subsystem_decides
    (** The exhaustive subsystem search found no trap: every reachable
        configuration can still reach decision-completeness. *)
  | `Inconclusive of string ]

type report = {
  portfolio : portfolio;
  condition_a : bool;  (** R(D) ≠ ∅ (some run satisfies (dec-D)). *)
  condition_b : bool;
      (** R(D) ≼{_D̄} R(D,D̄) over the collected runs (Definition 3
          via exact interned state-trace indistinguishability). *)
  condition_c : bool;
      (** Consensus unsolvable in M' = ⟨D̄⟩, from the border
          arithmetic given the subsystem crash budget. *)
  condition_c_witness : c_witness option;
      (** Constructive corroboration of (C) by the crash-adversarial
          explorer run on the subsystem (Π∖D̄ initially dead);
          [None] unless [evaluate ~exhaustive_c:true]. *)
  condition_d : bool;
      (** Validated by construction: the restricted algorithm A|D̄
          run in ⟨D̄⟩ is reproduced, state-for-state for D̄, by a
          full-system run in which Π∖D̄ is initially dead. *)
  verdict : [ `Not_a_kset_algorithm | `No_witness ];
      (** [`Not_a_kset_algorithm]: all four conditions hold, so by
          Theorem 1 the algorithm does not solve k-set agreement in
          any model admitting these runs. *)
}

val validate_condition_c_exhaustive :
  ?max_configs:int ->
  ?inputs:Value.t array ->
  (module Ksa_sim.Algorithm.S) ->
  partition:Partitioning.t ->
  subsystem_crash_budget:int ->
  c_witness
(** Exhaustive constructive check behind [~exhaustive_c]: explore the
    system with D initially dead and up to [subsystem_crash_budget]
    adversarial crashes in D̄, classifying whether the algorithm can
    be trapped ([`Trapped]) — requires a failure-detector-free
    algorithm.  [max_configs] defaults to 500_000. *)

val evaluate :
  ?fd:Ksa_sim.Fd_view.oracle ->
  ?pattern:Ksa_sim.Failure_pattern.t ->
  ?inputs:Value.t array ->
  ?max_steps:int ->
  ?seeds:int list ->
  ?exhaustive_c:bool ->
  ?exhaustive_c_configs:int ->
  subsystem_crash_budget:int ->
  (module Ksa_sim.Algorithm.S) ->
  partition:Partitioning.t ->
  report
(** [~exhaustive_c] (default false) additionally runs
    {!validate_condition_c_exhaustive} (skipped for failure-detector
    algorithms, which the explorer cannot soundly deduplicate) and
    records the result in [condition_c_witness]. *)

val pp_report : Format.formatter -> report -> unit
