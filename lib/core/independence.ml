module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value
module Adversary = Ksa_sim.Adversary
module Failure_pattern = Ksa_sim.Failure_pattern
module Run = Ksa_sim.Run
module Listx = Ksa_prim.Listx

type verdict = { set : Pid.t list; independent : bool; steps : int }

(* Transition-level independence, re-exported for the explorer's DPOR
   sleep sets: the alphabet of delivery actions and the commutation
   test over them live next to the orbit-key machinery in
   {!Ksa_sim.Canon}. *)
module Action = Ksa_sim.Canon.Action

let actions_commute = Action.independent

(* Adversary: processes in S receive only from S until all of S have
   decided (or crashed); everyone else receives freely.  Scheduling is
   round-robin so the run stays fair. *)
let confining ~set =
  let cursor = ref (-1) in
  let next (obs : Adversary.obs) =
    let s_done =
      List.for_all
        (fun p ->
          List.mem_assoc p obs.decided
          || Failure_pattern.is_crashed obs.pattern p ~time:obs.time)
        set
    in
    if s_done && Adversary.all_correct_decided obs then Adversary.Halt
    else
      let allow src dst =
        s_done || (not (List.mem dst set)) || List.mem src set
      in
      match Adversary.alive obs with
      | [] -> Adversary.Halt
      | candidates ->
          let after = List.filter (fun p -> p > !cursor) candidates in
          let pid = match after with p :: _ -> p | [] -> List.hd candidates in
          cursor := pid;
          Adversary.Step { pid; deliver = Adversary.pending_for ~allow obs pid }
  in
  { Adversary.describe = "confine-to-S"; next }

let check_set ?fd ?pattern ?inputs ?(max_steps = 100_000)
    (module A : Ksa_sim.Algorithm.S) ~n ~set =
  let module E = Ksa_sim.Engine.Make (A) in
  let inputs = Option.value inputs ~default:(Value.distinct_inputs n) in
  let pattern = Option.value pattern ~default:(Failure_pattern.none ~n) in
  let run = E.run ~max_steps ?fd ~n ~inputs ~pattern (confining ~set) in
  let independent =
    List.for_all
      (fun p ->
        Run.decision_of run p <> None || Failure_pattern.is_faulty pattern p)
      set
  in
  { set; independent; steps = Run.step_count run }

(* like [confining], but the restriction only starts after a free
   prefix: "eventually only receive from S" *)
let confining_after ~set ~prefix =
  let cursor = ref (-1) in
  let next (obs : Adversary.obs) =
    let s_done =
      List.for_all
        (fun p ->
          List.mem_assoc p obs.decided
          || Failure_pattern.is_crashed obs.pattern p ~time:obs.time)
        set
    in
    if s_done && Adversary.all_correct_decided obs then Adversary.Halt
    else
      let in_prefix = obs.time < prefix in
      let allow src dst =
        in_prefix || s_done || (not (List.mem dst set)) || List.mem src set
      in
      match Adversary.alive obs with
      | [] -> Adversary.Halt
      | candidates ->
          let after = List.filter (fun p -> p > !cursor) candidates in
          let pid = match after with p :: _ -> p | [] -> List.hd candidates in
          cursor := pid;
          Adversary.Step { pid; deliver = Adversary.pending_for ~allow obs pid }
  in
  { Adversary.describe = "confine-to-S-eventually"; next }

let check_set_strong ?fd ?pattern ?inputs ?(max_steps = 100_000)
    ?(prefixes = [ 0; 3; 10; 25 ]) (module A : Ksa_sim.Algorithm.S) ~n ~set =
  let module E = Ksa_sim.Engine.Make (A) in
  let inputs = Option.value inputs ~default:(Value.distinct_inputs n) in
  let pattern = Option.value pattern ~default:(Failure_pattern.none ~n) in
  let steps = ref 0 in
  let independent =
    List.for_all
      (fun prefix ->
        let run =
          E.run ~max_steps ?fd ~n ~inputs ~pattern
            (confining_after ~set ~prefix)
        in
        steps := !steps + Run.step_count run;
        List.for_all
          (fun p ->
            Run.decision_of run p <> None || Failure_pattern.is_faulty pattern p)
          set)
      prefixes
  in
  { set; independent; steps = !steps }

let check_family ?fd ?pattern ?inputs ?max_steps algo ~n ~family =
  List.map (fun set -> check_set ?fd ?pattern ?inputs ?max_steps algo ~n ~set) family

let satisfies ?fd ?pattern ?max_steps algo ~n ~family =
  List.for_all
    (fun v -> v.independent)
    (check_family ?fd ?pattern ?max_steps algo ~n ~family)

let wait_free_family ~n =
  if n > 16 then invalid_arg "Independence.wait_free_family: n too large";
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun ys -> x :: ys) s
  in
  List.filter (fun s -> s <> []) (subsets (Pid.universe n))

let f_resilient_family ~n ~f =
  List.filter (fun s -> List.length s >= n - f) (wait_free_family ~n)

let obstruction_free_family ~n = List.map (fun p -> [ p ]) (Pid.universe n)

let asymmetric_family ~n ~anchor =
  List.filter (fun s -> List.mem anchor s) (wait_free_family ~n)

let subfamily_monotone t' t =
  List.for_all
    (fun s -> List.exists (fun s' -> List.sort_uniq compare s = List.sort_uniq compare s') t)
    t'
