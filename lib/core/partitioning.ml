module Pid = Ksa_sim.Pid
module Listx = Ksa_prim.Listx

type t = { n : int; groups : Pid.t list list; dbar : Pid.t list }

let make ~n ~groups =
  if List.exists (fun g -> g = []) groups then
    invalid_arg "Partitioning.make: empty group";
  let all = List.concat groups in
  if List.exists (fun p -> not (Pid.valid ~n p)) all then
    invalid_arg "Partitioning.make: invalid pid";
  if List.length (List.sort_uniq compare all) <> List.length all then
    invalid_arg "Partitioning.make: overlapping groups";
  let dbar = List.filter (fun p -> not (List.mem p all)) (Pid.universe n) in
  { n; groups = List.map (List.sort compare) groups; dbar }

let theorem2 ~n ~f ~k =
  if not (Border.theorem2_impossible ~n ~f ~k) then None
  else
    let l = n - f in
    let groups =
      List.init (k - 1) (fun i -> Listx.range (i * l) ((i + 1) * l))
    in
    Some (make ~n ~groups)

let border_case ~n ~k =
  if k < 1 || n mod (k + 1) <> 0 then None
  else
    let sz = n / (k + 1) in
    Some (List.init (k + 1) (fun i -> Listx.range (i * sz) ((i + 1) * sz)))

let theorem10 ~n ~k =
  if not (Border.theorem10_impossible ~n ~k) then None
  else
    let j = n - k + 1 in
    (* D̄ = {p0..p(j-1)}, singletons Dk-1 of the rest *)
    let groups = List.init (k - 1) (fun i -> [ j + i ]) in
    Some (make ~n ~groups)

let d_union t = List.sort compare (List.concat t.groups)

let all_groups t = t.groups @ [ t.dbar ]

let pp ppf t =
  let pp_group ppf g =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Pid.pp)
      g
  in
  Format.fprintf ppf "D=%a D̄=%a"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_group)
    t.groups pp_group t.dbar

module Restrict (A : Ksa_sim.Algorithm.S) (D : sig
  val members : Pid.t list
end) =
struct
  type state = A.state
  type message = A.message

  let name = A.name ^ "|D"
  let uses_fd = A.uses_fd
  let init = A.init

  let step st ~received ~fd =
    let st', sends, dec = A.step st ~received ~fd in
    (st', List.filter (fun (dst, _) -> List.mem dst D.members) sends, dec)

  let canon = A.canon
  let canon_message = A.canon_message
  let forge_pool = A.forge_pool
  let pp_state = A.pp_state
  let pp_message = A.pp_message
end
