module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid
module Trace = Ksa_sim.Trace

let state_trace_until_decision run p =
  Trace.states_until_decision run.Run.trace p

let for_process ra rb p = Trace.indistinguishable_for ra.Run.trace rb.Run.trace p

let for_all ra rb ds = List.for_all (for_process ra rb) ds

let compatible r' r ~d =
  List.for_all (fun alpha -> List.exists (fun beta -> for_all alpha beta d) r) r'
