(** Indistinguishability of runs (Definitions 2 and 3).

    Two runs are indistinguishable {e until decision} for a process p
    if p goes through the same sequence of local states in both until
    it decides.  Both engines record runs as a {!Ksa_sim.Trace.t} —
    per-process sequences of state ids interned in the shared
    {!Ksa_prim.Intern.states} registry — and the comparison here is
    exact: the registry resolves hash collisions with structural
    equality, so equal id sequences hold {e iff} the underlying state
    sequences are structurally equal.  There is no collision caveat,
    and the predicate is substrate-neutral (asynchronous runs and
    Heard-Of runs of the same algorithm compare directly). *)

module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid

val state_trace_until_decision : Run.t -> Pid.t -> int list
(** Interned-id sequence of the process's states — initial state
    first, then one per step — up to and including its deciding step
    (the whole recorded trace if it never decides). *)

val for_process : Run.t -> Run.t -> Pid.t -> bool
(** α ∼ β for p: equal state traces until decision (exact interned-id
    equality, delegating to {!Ksa_sim.Trace.indistinguishable_for}).
    If p decides in both runs, the prefixes up to and including the
    deciding step must coincide; if it decides in neither, the
    recorded traces must agree up to the shorter one's length
    (finite-prefix approximation). *)

val for_all : Run.t -> Run.t -> Pid.t list -> bool
(** α {^D}∼ β (Definition 2): indistinguishable for every process of
    D. *)

val compatible : Run.t list -> Run.t list -> d:Pid.t list -> bool
(** R' ≼{_D} R (Definition 3): every run of R' has a D-indistinguishable
    counterpart in R. *)
