(** Executing a Heard-Of algorithm under an HO assignment.

    The engine is round-synchronous by construction: round r consists
    of every process producing its message from its round-(r−1) state,
    then every process transitioning on the messages of its HO set.
    Determinism is total — an outcome is a pure function of
    (algorithm, n, inputs, assignment, rounds). *)

module Make (A : Ho_algorithm.S) : sig
  type outcome = {
    n : int;
    inputs : Ksa_sim.Value.t array;
    rounds_run : int;
    decisions : (Ksa_sim.Pid.t * Ksa_sim.Value.t * int) list;
        (** (process, value, deciding round), sorted by pid. *)
    trace : Ksa_sim.Trace.t;
        (** Per-process interned state-id sequences: [init_ids] are
            the initial states, step row entry r−1 is the state after
            round r (with the decision, if made in that round).  Ids
            come from the same {!Ksa_prim.Intern.states} registry the
            asynchronous engine uses, so HO outcomes and asynchronous
            runs of the same algorithm compare exactly — the
            indistinguishability instrument, shared across
            substrates. *)
  }

  exception Double_decision of Ksa_sim.Pid.t

  val run :
    ?corrupt:
      (round:int ->
      src:Ksa_sim.Pid.t ->
      dst:Ksa_sim.Pid.t ->
      A.message ->
      A.message) ->
    n:int ->
    inputs:Ksa_sim.Value.t array ->
    assignment:Assignment.t ->
    rounds:int ->
    unit ->
    outcome
  (** [corrupt] is the HO rendering of {!Ksa_sim.Fault_model.Byzantine}:
      it rewrites each received message per [(round, src, dst)], so a
      corrupted sender can equivocate — show different receivers
      different contents in the same round — while honest senders are
      passed through (the hook returns the message unchanged).  Budget
      discipline (at most [t] distinct corrupted [src]s) is the
      caller's obligation, exactly as for the asynchronous
      {!Ksa_sim.Adversary.action.Forge}.  Omitting [corrupt] is
      byte-for-byte the old engine. *)

  val decided_values : outcome -> Ksa_sim.Value.t list
  (** Distinct, sorted. *)

  val distinct_decisions : outcome -> int

  val all_decided : outcome -> bool

  val decision_round : outcome -> Ksa_sim.Pid.t -> int option

  val states_equal_until_decision :
    outcome -> outcome -> Ksa_sim.Pid.t -> bool
  (** The HO rendering of Definition 2: the process traverses the same
      state sequence in both outcomes up to (and including) its
      deciding round — exact interned-id comparison, delegating to
      {!Ksa_sim.Trace.indistinguishable_for}. *)
end
