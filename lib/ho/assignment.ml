module Pid = Ksa_sim.Pid
module Rng = Ksa_prim.Rng
module Listx = Ksa_prim.Listx

type t = { n : int; ho : round:int -> me:Pid.t -> Pid.t list }

let make ~n f =
  let ho ~round ~me =
    List.sort_uniq compare (List.filter (Pid.valid ~n) (f ~round ~me))
  in
  { n; ho }

let complete ~n = make ~n (fun ~round:_ ~me:_ -> Pid.universe n)

let partitioned ~n ~groups ?until () =
  if not (Listx.pairwise_disjoint groups) then
    invalid_arg "Assignment.partitioned: overlapping groups";
  let group_of = Array.make n [] in
  List.iter (fun g -> List.iter (fun p -> group_of.(p) <- g) g) groups;
  let rest =
    List.filter (fun p -> group_of.(p) = []) (Pid.universe n)
  in
  List.iter (fun p -> group_of.(p) <- rest) rest;
  make ~n (fun ~round ~me ->
      match until with
      | Some u when round > u -> Pid.universe n
      | Some _ | None -> group_of.(me))

let crash_like ~n ~silent_from =
  make ~n (fun ~round ~me:_ ->
      List.filter
        (fun q ->
          match List.assoc_opt q silent_from with
          | Some r -> round < r
          | None -> true)
        (Pid.universe n))

let mobile ~n ~t ~seed =
  if t < 0 || t > n then invalid_arg "Assignment.mobile";
  make ~n (fun ~round ~me:_ ->
      let faulty = Ksa_sim.Fault_model.mobile_faulty ~seed ~n ~t ~round in
      List.filter (fun q -> not (List.mem q faulty)) (Pid.universe n))

let random ~rng ~n ~min_size ?(self_in = true) () =
  if min_size < 1 || min_size > n then invalid_arg "Assignment.random";
  let cache : (int * int, Pid.t list) Hashtbl.t = Hashtbl.create 64 in
  make ~n (fun ~round ~me ->
      match Hashtbl.find_opt cache (round, me) with
      | Some s -> s
      | None ->
          let size = min_size + Rng.int rng (n - min_size + 1) in
          let base = Rng.sample rng size (Pid.universe n) in
          let s = if self_in then me :: base else base in
          let s = List.sort_uniq compare s in
          Hashtbl.add cache (round, me) s;
          s)

let for_all_cells t ~horizon pred =
  let rec rounds r =
    r > horizon
    || (List.for_all (fun p -> pred ~round:r ~me:p (t.ho ~round:r ~me:p))
          (Pid.universe t.n)
       && rounds (r + 1))
  in
  rounds 1

let self_in t ~horizon =
  for_all_cells t ~horizon (fun ~round:_ ~me s -> List.mem me s)

let nonempty t ~horizon = for_all_cells t ~horizon (fun ~round:_ ~me:_ s -> s <> [])

let no_split t ~horizon =
  let rec rounds r =
    r > horizon
    ||
    let sets = List.map (fun p -> t.ho ~round:r ~me:p) (Pid.universe t.n) in
    List.for_all
      (fun s1 -> List.for_all (fun s2 -> not (Listx.disjoint s1 s2)) sets)
      sets
    && rounds (r + 1)
  in
  rounds 1

let majority t ~horizon =
  for_all_cells t ~horizon (fun ~round:_ ~me:_ s ->
      2 * List.length s > t.n)

let uniform_round t ~round =
  match Pid.universe t.n with
  | [] -> true
  | p0 :: rest ->
      let s0 = t.ho ~round ~me:p0 in
      List.for_all (fun p -> t.ho ~round ~me:p = s0) rest

let exists_uniform_round t ~horizon =
  List.exists (fun r -> uniform_round t ~round:r) (Listx.range 1 (horizon + 1))

let confined_to t ~groups ~horizon =
  let group_of = Array.make t.n [] in
  List.iter (fun g -> List.iter (fun p -> group_of.(p) <- g) g) groups;
  let rest = List.filter (fun p -> group_of.(p) = []) (Pid.universe t.n) in
  List.iter (fun p -> group_of.(p) <- rest) rest;
  for_all_cells t ~horizon (fun ~round:_ ~me s -> Listx.subset s group_of.(me))

let kernel t ~round =
  List.filter
    (fun q -> List.for_all (fun p -> List.mem q (t.ho ~round ~me:p)) (Pid.universe t.n))
    (Pid.universe t.n)
