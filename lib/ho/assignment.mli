(** Heard-of assignments and communication predicates.

    An assignment fixes HO(p, r) for every process p and round r ≥ 1.
    Predicates over assignments are the HO model's replacement for
    failure and synchrony assumptions. *)

module Pid = Ksa_sim.Pid

type t = { n : int; ho : round:int -> me:Pid.t -> Pid.t list }

val make : n:int -> (round:int -> me:Pid.t -> Pid.t list) -> t
(** Normalizes: output sets are sorted, deduplicated, restricted to
    valid pids. *)

val complete : n:int -> t
(** HO(p, r) = Π: a lossless synchronous system. *)

val partitioned : n:int -> groups:Pid.t list list -> ?until:int -> unit -> t
(** HO(p, r) = the group of p while [r <= until] (default: forever),
    then Π: the round-model form of the partition adversary.
    Ungrouped processes form an implicit extra group.
    @raise Invalid_argument on overlapping groups. *)

val crash_like : n:int -> silent_from:(Pid.t * int) list -> t
(** Everyone hears everyone except that process p disappears from all
    HO sets from round r on, for each [(p, r)]: the HO rendering of
    crash failures. *)

val mobile : n:int -> t:int -> seed:int -> t
(** The HO rendering of the mobile-failure model ({!Ksa_sim.Fault_model.Mobile}):
    each round draws a fresh faulty set of at most [t] processes via
    {!Ksa_sim.Fault_model.mobile_faulty} — the identical per-round
    sampler the asynchronous fuzzer uses, so the two substrates agree
    on which senders round r silences — and HO(p, r) is everyone
    except that round's faulty set.  Unlike {!crash_like}, a silenced
    process reappears in later HO sets: transience, not crash.
    @raise Invalid_argument unless [0 <= t <= n]. *)

val random :
  rng:Ksa_prim.Rng.t -> n:int -> min_size:int -> ?self_in:bool -> unit -> t
(** Per (round, process) a fresh uniform HO set of at least
    [min_size] members ([self_in] forces p ∈ HO(p, r); default
    true).  Deterministic per (round, me) via caching. *)

(** {1 Predicates} (checked over rounds [1 .. horizon]) *)

val self_in : t -> horizon:int -> bool
(** p ∈ HO(p, r) everywhere. *)

val nonempty : t -> horizon:int -> bool

val no_split : t -> horizon:int -> bool
(** Any two HO sets of the same round intersect — the quorum-like
    predicate under which UniformVoting is safe. *)

val majority : t -> horizon:int -> bool
(** |HO(p, r)| > n/2 everywhere (implies {!no_split}). *)

val uniform_round : t -> round:int -> bool
(** All processes have the same HO set in that round. *)

val exists_uniform_round : t -> horizon:int -> bool

val confined_to : t -> groups:Pid.t list list -> horizon:int -> bool
(** HO(p, r) ⊆ group(p) for r ≤ horizon: the (dec-D)/(dec-D̄)
    situation, expressed as a communication predicate. *)

val kernel : t -> round:int -> Pid.t list
(** ∩{_p} HO(p, r): the processes heard by everyone in that round. *)
