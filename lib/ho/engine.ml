module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value
module Trace = Ksa_sim.Trace
module Intern = Ksa_prim.Intern
module Metrics = Ksa_prim.Metrics

let m_rounds = Metrics.counter "ho.rounds"
let m_transitions = Metrics.counter "ho.transitions"
let m_decisions = Metrics.counter "ho.decisions"

module Make (A : Ho_algorithm.S) = struct
  type outcome = {
    n : int;
    inputs : Value.t array;
    rounds_run : int;
    decisions : (Pid.t * Value.t * int) list;
    trace : Trace.t;
  }

  exception Double_decision of Pid.t

  let intern st = Intern.id Intern.states st

  let run ?corrupt ~n ~inputs ~assignment ~rounds () =
    if Array.length inputs <> n then invalid_arg "Ho.Engine.run: inputs length";
    let states =
      Array.init n (fun p -> A.init ~n ~me:p ~input:inputs.(p))
    in
    let decisions = Array.make n None in
    let init_ids = Array.map intern states in
    let rev_rows = Array.make n [] in
    for round = 1 to rounds do
      Metrics.incr m_rounds;
      let messages = Array.map (fun st -> A.send st ~round) states in
      let new_states =
        Array.init n (fun p ->
            let received =
              List.map
                (fun q ->
                  (* the Byzantine hook rewrites per (round, src, dst):
                     a corrupted sender may show every receiver a
                     different message (equivocation), but one receiver
                     always sees one message per sender per round *)
                  let m = messages.(q) in
                  match corrupt with
                  | None -> (q, m)
                  | Some f -> (q, f ~round ~src:q ~dst:p m))
                (assignment.Assignment.ho ~round ~me:p)
            in
            let st', dec = A.transition states.(p) ~round ~received in
            Metrics.incr m_transitions;
            (match dec with
            | None -> ()
            | Some v -> (
                match decisions.(p) with
                | None ->
                    decisions.(p) <- Some (v, round);
                    Metrics.incr m_decisions
                | Some (v0, _) ->
                    if not (Value.equal v v0) then raise (Double_decision p)));
            st')
      in
      Array.blit new_states 0 states 0 n;
      Array.iteri
        (fun p st ->
          let decision =
            match decisions.(p) with
            | Some (v, r) when r = round -> Some v
            | Some _ | None -> None
          in
          rev_rows.(p) <- { Trace.state_id = intern st; decision } :: rev_rows.(p))
        states
    done;
    let trace = Trace.make ~init_ids ~steps:(Array.map List.rev rev_rows) in
    let decisions =
      List.filter_map
        (fun p ->
          Option.map (fun (v, r) -> (p, v, r)) decisions.(p))
        (Pid.universe n)
    in
    { n; inputs = Array.copy inputs; rounds_run = rounds; decisions; trace }

  let decided_values o =
    List.sort_uniq Value.compare (List.map (fun (_, v, _) -> v) o.decisions)

  let distinct_decisions o = List.length (decided_values o)

  let all_decided o = List.length o.decisions = o.n

  let decision_round o p =
    List.find_map
      (fun (q, _, r) -> if Pid.equal p q then Some r else None)
      o.decisions

  let states_equal_until_decision oa ob p =
    Trace.indistinguishable_for oa.trace ob.trace p
end
