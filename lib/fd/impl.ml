module Sim = Ksa_sim
module Pid = Sim.Pid
module Fd_view = Sim.Fd_view

module Heartbeat = struct
  type state = { n : int; me : Pid.t; beats : int }
  type message = Beat of int

  let name = "heartbeat"
  let uses_fd = false
  let init ~n ~me ~input = ignore input; { n; me; beats = 0 }

  let step st ~received ~fd =
    ignore received;
    ignore fd;
    let st = { st with beats = st.beats + 1 } in
    let sends =
      List.filter_map
        (fun q -> if Pid.equal q st.me then None else Some (q, Beat st.beats))
        (List.init st.n Fun.id)
    in
    (st, sends, None)

  let canon (st : state) = st
  let canon_message (m : message) = m
  let forge_pool ~n:_ ~values:_ = []
  let pp_message ppf (Beat i) = Format.fprintf ppf "beat(%d)" i
  let pp_state ppf st = Format.fprintf ppf "{%a beats=%d}" Pid.pp st.me st.beats
end

(* last_heard.(t).(me).(src) = the latest time <= t at which [me]
   received a message from [src]; 0 if never.  Built once per run. *)
let last_heard_table run =
  let n = run.Sim.Run.n in
  let horizon =
    List.fold_left (fun acc (ev : Sim.Event.t) -> max acc ev.time) 1
      run.Sim.Run.events
  in
  let table = Array.init (horizon + 1) (fun _ -> Array.make_matrix n n 0) in
  List.iter
    (fun (ev : Sim.Event.t) ->
      List.iter
        (fun (_, src) -> table.(ev.time).(ev.pid).(src) <- ev.time)
        ev.delivered)
    run.Sim.Run.events;
  (* prefix-max over time *)
  for t = 1 to horizon do
    for me = 0 to n - 1 do
      for src = 0 to n - 1 do
        table.(t).(me).(src) <- max table.(t).(me).(src) table.(t - 1).(me).(src)
      done
    done
  done;
  (table, horizon)

let heard_recently table ~window ~time ~me ~src =
  let t = table.(time).(me).(src) in
  t > 0 && t > time - window

let omega_of_run run ~window =
  let n = run.Sim.Run.n in
  let table, horizon = last_heard_table run in
  History.make ~n ~horizon (fun ~time ~me ->
      let candidates =
        List.filter
          (fun q ->
            Pid.equal q me || heard_recently table ~window ~time ~me ~src:q)
          (Pid.universe n)
      in
      (* candidates always contains me, so the min exists *)
      Fd_view.Leaders [ List.fold_left min me candidates ])

let sigma_of_run run ~window =
  let n = run.Sim.Run.n in
  let table, horizon = last_heard_table run in
  let majority = (n / 2) + 1 in
  History.make ~n ~horizon (fun ~time ~me ->
      let heard =
        List.filter
          (fun q ->
            Pid.equal q me || heard_recently table ~window ~time ~me ~src:q)
          (Pid.universe n)
      in
      if List.length heard >= majority then Fd_view.Quorum heard
      else Fd_view.Quorum (Pid.universe n))
