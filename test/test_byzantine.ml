(* Conformance of the Byzantine and mobile fault models
   (Ksa_sim.Fault_model) against the crash substrate they extend.

   Three lines of evidence, mirroring the paper's separation between
   failure classes:

   - differential parity: at budget 0 both new models are the crash
     model — verdicts, stats and reachable decision values must be
     bit-identical to the crash explorer on every n=3 subject,
     sequentially and in parallel, across every reduction mode; and
     an algorithm with an empty forge pool makes [Byzantine t]
     degenerate to [Crash] at equal budget;

   - strict separation: at (n=3, k=1, t=1) and (n=3, k=2, t=1) the
     crash adversary cannot violate k-agreement of kset_flp but the
     Byzantine one can — the acceptance criterion that Byzantine is
     strictly less solvable than crash;

   - budget discipline: fuzzed Byzantine trials never corrupt more
     than t senders and only forge messages of corrupted senders;
     mobile trials never crash anybody and never forge; the mobile
     faulty set is a pure per-round function.  Forged schedules
     round-trip through Trace_io under their model tag and are
     refused under crash semantics; fuzz campaigns under the new
     models stay bit-reproducible, seq/par-identical and
     kill/resume-safe, and a checkpoint written under one model is
     refused (fresh start) under another. *)

module Sim = Ksa_sim
module Ho = Ksa_ho
module Canon = Sim.Canon
module FP = Sim.Failure_pattern
module FM = Sim.Fault_model
module Fuzz = Sim.Fuzz
module Trace_io = Sim.Trace_io
module Checkpoint = Sim.Checkpoint

module K2 = Ksa_algo.Kset_flp.Make (struct
  let l = 2
end)

module N2 = Ksa_algo.Naive_min.Make (struct
  let wait_for = 2
end)

module FK2 = Fuzz.Make (K2)

let distinct = Sim.Value.distinct_inputs
let no_check _ = None
let qcheck = QCheck_alcotest.to_alcotest

let k_check k decisions =
  let d =
    List.sort_uniq Sim.Value.compare (List.map (fun (_, v, _) -> v) decisions)
  in
  if List.length d > k then
    Some (Printf.sprintf "%d distinct decisions exceed k=%d" (List.length d) k)
  else None

let subjects =
  [
    ("kset_flp(l=2)", (module K2 : Sim.Algorithm.S));
    ("trivial", (module Ksa_algo.Trivial.A : Sim.Algorithm.S));
    ("naive_min(wait=2)", (module N2 : Sim.Algorithm.S));
  ]

(* verdict plus the stats that must agree bit-for-bit when two
   explorations enumerate the same node graph *)
let outcome_fingerprint (o : Sim.Explorer.resilient_outcome) =
  let stats (s : Sim.Explorer.stats) =
    Printf.sprintf "visited=%d terminal=%d exhausted=%b"
      s.Sim.Explorer.configs_visited s.Sim.Explorer.terminal_runs
      s.Sim.Explorer.budget_exhausted
  in
  match o with
  | Sim.Explorer.All_paths_decide s -> "all-paths-decide " ^ stats s
  | Sim.Explorer.Safety_violation { reason; _ } -> "violation:" ^ reason
  | Sim.Explorer.Stuck { crashed; undecided_correct; stats = s } ->
      Printf.sprintf "stuck:{%s}/{%s} %s"
        (String.concat "," (List.map string_of_int crashed))
        (String.concat "," (List.map string_of_int undecided_correct))
        (stats s)
  | Sim.Explorer.Indeterminate _ -> "indeterminate"

let all_modes =
  [ Canon.No_reduction; Canon.Symmetry; Canon.Symmetry_por ]

(* ---------- differential parity at budget 0 ---------- *)

(* [Byzantine 0] corrupts nobody and [Mobile 0] omits nothing: both
   must produce the very node graph of the crash explorer at budget
   0, so verdict, configs_visited, terminal_runs and the reachable
   decision values agree exactly — seq and par, every reduction. *)
let test_budget0_parity () =
  List.iter
    (fun (name, (module A : Sim.Algorithm.S)) ->
      let module Ex = Sim.Explorer.Make (A) in
      List.iter
        (fun reduction ->
          let tag model driver =
            Printf.sprintf "%s/%s: %s %s" name
              (Canon.reduction_to_string reduction)
              (FM.to_string model) driver
          in
          let explore ?model ?domains () =
            let o =
              match domains with
              | None ->
                  Ex.explore_with_crashes ~reduction ?model ~n:3
                    ~inputs:(distinct 3) ~crash_budget:0 ~check:no_check ()
              | Some d ->
                  Ex.explore_with_crashes_par ~reduction ?model ~domains:d
                    ~n:3 ~inputs:(distinct 3) ~crash_budget:0 ~check:no_check
                    ()
            in
            outcome_fingerprint o
          in
          let baseline = explore () in
          Alcotest.(check bool)
            (name ^ ": crash baseline classified")
            true
            (baseline <> "indeterminate");
          let base_values =
            List.sort Sim.Value.compare
              (Ex.reachable_decision_values ~reduction ~n:3
                 ~inputs:(distinct 3) ~crash_budget:0 ())
          in
          List.iter
            (fun model ->
              Alcotest.(check string)
                (tag model "seq")
                baseline
                (explore ~model ());
              Alcotest.(check string)
                (tag model "par")
                baseline
                (explore ~model ~domains:2 ());
              Alcotest.(check bool)
                (tag model "decision values")
                true
                (base_values
                = List.sort Sim.Value.compare
                    (Ex.reachable_decision_values ~reduction ~model ~n:3
                       ~inputs:(distinct 3) ~crash_budget:0 ()));
              Alcotest.(check bool)
                (tag model "decision values par")
                true
                (base_values
                = List.sort Sim.Value.compare
                    (Ex.reachable_decision_values_par ~reduction ~model
                       ~domains:2 ~n:3 ~inputs:(distinct 3) ~crash_budget:0 ())))
            [ FM.byzantine 0; FM.mobile 0 ])
        all_modes)
    subjects

(* an empty forge pool (trivial never accepts a forged payload) makes
   the Byzantine explorer the crash explorer at equal budget *)
let test_empty_forge_pool_degenerates () =
  let module Ex = Sim.Explorer.Make (Ksa_algo.Trivial.A) in
  let run ?model () =
    outcome_fingerprint
      (Ex.explore_with_crashes ?model ~n:3 ~inputs:(distinct 3)
         ~crash_budget:1 ~check:no_check ())
  in
  Alcotest.(check string)
    "trivial: byzantine:1 = crash at budget 1" (run ())
    (run ~model:(FM.byzantine 1) ())

(* ---------- strict separation ---------- *)

(* the acceptance criterion: a (n, k, t) point where the crash
   adversary cannot break k-agreement but the Byzantine one can.
   kset_flp with l = n - t = 2 at n=3, t=1: under crashes the worst
   case is a stuck undecided process (FLP-style), never a safety
   violation; one corrupted sender forging Report payloads yields two
   (resp. three) distinct decisions, beating k=1 and k=2. *)
let test_byzantine_strictly_less_solvable () =
  let module Ex = Sim.Explorer.Make (K2) in
  List.iter
    (fun k ->
      let crash =
        Ex.explore_with_crashes ~n:3 ~inputs:(distinct 3) ~crash_budget:1
          ~check:(k_check k) ()
      in
      (match crash with
      | Sim.Explorer.Safety_violation { reason; _ } ->
          Alcotest.fail
            (Printf.sprintf "crash adversary broke k=%d: %s" k reason)
      | _ -> ());
      match
        Ex.explore_with_crashes ~model:(FM.byzantine 1) ~n:3
          ~inputs:(distinct 3) ~crash_budget:1 ~check:(k_check k) ()
      with
      | Sim.Explorer.Safety_violation { reason; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "k=%d: reason names the bound" k)
            true
            (String.length reason > 0)
      | o ->
          Alcotest.fail
            (Printf.sprintf "byzantine:1 did not break k=%d (got %s)" k
               (outcome_fingerprint o)))
    [ 1; 2 ]

(* ---------- fault-budget discipline (qcheck) ---------- *)

let prop_byzantine_budget =
  QCheck.Test.make ~count:40
    ~name:"byzantine fuzz: ≤t corrupted senders, forges only theirs"
    QCheck.(
      triple (int_range 0 2) (int_range 0 1_000) (int_range 0 25))
    (fun (t, seed, i) ->
      let cfg =
        { (Fuzz.default_config ~k:1 ~n:3 ()) with Fuzz.model = FM.byzantine t }
      in
      let pattern, run = FK2.trial cfg ~seed i in
      let faulty = FP.faulty pattern in
      List.length faulty <= t
      && List.for_all
           (fun (d : Sim.Replay.step_desc) ->
             List.for_all
               (fun (dl : Sim.Replay.delivery) ->
                 dl.Sim.Replay.forged = None
                 || List.mem dl.Sim.Replay.src faulty)
               d.Sim.Replay.deliver)
           (Trace_io.schedule_of_run run))

let prop_mobile_trial_crash_free =
  QCheck.Test.make ~count:40
    ~name:"mobile fuzz: nobody crashes, nothing is forged"
    QCheck.(
      triple (int_range 0 2) (int_range 0 1_000) (int_range 0 25))
    (fun (t, seed, i) ->
      let cfg =
        { (Fuzz.default_config ~k:1 ~n:3 ()) with Fuzz.model = FM.mobile t }
      in
      let pattern, run = FK2.trial cfg ~seed i in
      FP.equal pattern (FP.none ~n:3) && run.Sim.Run.forges = [])

let prop_mobile_faulty_pure =
  QCheck.Test.make ~count:200
    ~name:"mobile faulty set: pure, sorted, ≤t, valid pids"
    QCheck.(
      quad (int_range 0 10_000) (int_range 2 5) (int_range 0 2)
        (int_range 0 20))
    (fun (seed, n, t, round) ->
      let f = FM.mobile_faulty ~seed ~n ~t ~round in
      f = FM.mobile_faulty ~seed ~n ~t ~round
      && List.length f <= t
      && f = List.sort_uniq compare f
      && List.for_all (fun p -> p >= 0 && p < n) f)

(* the faulty set is a function of the round alone — it can only
   change at round boundaries by construction — and it does change:
   mobility is resampling, not a fixed crash set *)
let test_mobile_set_actually_moves () =
  let sets =
    List.init 41 (fun round -> FM.mobile_faulty ~seed:5 ~n:3 ~t:1 ~round)
  in
  Alcotest.(check bool)
    "≥2 distinct faulty sets over 41 rounds" true
    (List.length (List.sort_uniq compare sets) >= 2);
  (* transient: some victim is faulty in one round, healthy later *)
  let victim_returns =
    List.exists
      (fun p ->
        let faulty_rounds =
          List.filteri (fun _ s -> List.mem p s) sets |> List.length
        in
        faulty_rounds > 0 && faulty_rounds < List.length sets)
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "faulty processes recover" true victim_returns;
  List.iteri
    (fun round _ ->
      Alcotest.(check bool)
        "t=0 never faults" true
        (FM.mobile_faulty ~seed:5 ~n:3 ~t:0 ~round = []))
    sets

(* ---------- fuzz campaigns under the new models ---------- *)

let byz_cfg =
  { (Fuzz.default_config ~k:1 ~n:3 ()) with Fuzz.model = FM.byzantine 1 }

let mobile_cfg =
  { (Fuzz.default_config ~k:1 ~n:3 ()) with Fuzz.model = FM.mobile 1 }

let expect_violation = function
  | Fuzz.Violation_found v -> v
  | Fuzz.Clean _ -> Alcotest.fail "expected a violation, got clean"
  | Fuzz.Budget_exhausted _ ->
      Alcotest.fail "expected a violation, got budget-exhausted"

let check_violation_equal msg (a : Fuzz.violation) (b : Fuzz.violation) =
  Alcotest.(check int) (msg ^ ": trial") a.Fuzz.trial b.Fuzz.trial;
  Alcotest.(check string) (msg ^ ": reason") a.Fuzz.reason b.Fuzz.reason;
  Alcotest.(check bool)
    (msg ^ ": pattern") true
    (FP.equal a.Fuzz.pattern b.Fuzz.pattern);
  Alcotest.(check bool)
    (msg ^ ": schedule") true
    (a.Fuzz.schedule = b.Fuzz.schedule);
  Alcotest.(check bool) (msg ^ ": shrunk") true (a.Fuzz.shrunk = b.Fuzz.shrunk)

let has_forged descs =
  List.exists
    (fun (d : Sim.Replay.step_desc) ->
      List.exists
        (fun (dl : Sim.Replay.delivery) -> dl.Sim.Replay.forged <> None)
        d.Sim.Replay.deliver)
    descs

let byz_trials = 2_000

let test_byz_fuzz_bit_reproducible () =
  let a = expect_violation (FK2.run byz_cfg ~seed:7 ~trials:byz_trials) in
  let b = expect_violation (FK2.run byz_cfg ~seed:7 ~trials:byz_trials) in
  check_violation_equal "byzantine same seed" a b;
  (* kset_flp(l=2) is crash-safe at k=1, so the violation must lean on
     a forged payload *)
  Alcotest.(check bool)
    "violating schedule carries a forge" true
    (has_forged a.Fuzz.schedule)

let test_byz_fuzz_seq_par_parity () =
  let seq = expect_violation (FK2.run byz_cfg ~seed:7 ~trials:byz_trials) in
  let par =
    expect_violation
      (FK2.run_par ~domains:2 byz_cfg ~seed:7 ~trials:byz_trials)
  in
  check_violation_equal "byzantine seq vs par" seq par

let test_mobile_fuzz_clean_parity () =
  (* transient omission can starve kset_flp but never break safety *)
  let seq = FK2.run mobile_cfg ~seed:7 ~trials:200 in
  let par = FK2.run_par ~domains:2 mobile_cfg ~seed:7 ~trials:200 in
  match (seq, par) with
  | Fuzz.Clean { trials = a }, Fuzz.Clean { trials = b } ->
      Alcotest.(check int) "mobile seq clean" 200 a;
      Alcotest.(check int) "mobile par clean" 200 b
  | _ -> Alcotest.fail "expected clean mobile campaigns"

(* checkpoint plumbing borrowed from test_checkpoint.ml *)
let tmp_path suffix =
  let path = Filename.temp_file "ksa_byz" suffix in
  Sys.remove path;
  path

let with_tmp suffix f =
  let path = tmp_path suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let poll_interrupt n =
  let polls = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add polls 1 >= n

let sink ~path ~kind =
  {
    Checkpoint.path;
    kind;
    fingerprint = "test";
    policy = Checkpoint.default_policy;
  }

let load_restored path =
  let t = ok_or_fail (Checkpoint.load ~path) in
  ok_or_fail (Checkpoint.restore_interners t);
  t

let test_byz_fuzz_kill_resume () =
  let baseline = FK2.run byz_cfg ~seed:7 ~trials:byz_trials in
  let v = expect_violation baseline in
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"fuzz")
          ~interrupt:(poll_interrupt 50) ()
      in
      (match FK2.run ~ckpt byz_cfg ~seed:7 ~trials:byz_trials with
      | Fuzz.Budget_exhausted { trials = t } ->
          Alcotest.(check bool) "cut before the violation" true
            (t > 0 && t < v.Fuzz.trial)
      | _ -> Alcotest.fail "interrupted campaign should be Budget_exhausted");
      let t = load_restored path in
      let resumed =
        FK2.run ~resume_payload:(Checkpoint.payload t) byz_cfg ~seed:7
          ~trials:byz_trials
      in
      check_violation_equal "byzantine kill/resume" v
        (expect_violation resumed))

(* a checkpoint written under one model must not silently steer a
   campaign under another: the fuzzer warns and starts fresh, so the
   outcome equals the no-resume baseline *)
let test_fuzz_model_mismatch_starts_fresh () =
  let crash_cfg = Fuzz.default_config ~k:1 ~n:3 () in
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"fuzz")
          ~interrupt:(poll_interrupt 50) ()
      in
      (match FK2.run ~ckpt crash_cfg ~seed:7 ~trials:500 with
      | Fuzz.Budget_exhausted _ -> ()
      | _ -> Alcotest.fail "interrupted crash campaign expected");
      let t = load_restored path in
      let fresh = expect_violation (FK2.run byz_cfg ~seed:7 ~trials:byz_trials) in
      let resumed =
        expect_violation
          (FK2.run ~resume_payload:(Checkpoint.payload t) byz_cfg ~seed:7
             ~trials:byz_trials)
      in
      check_violation_equal "cross-model resume = fresh campaign" fresh resumed)

let test_explorer_model_mismatch_starts_fresh () =
  let module Ex = Sim.Explorer.Make (K2) in
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"explore-crash")
          ~interrupt:(poll_interrupt 500) ()
      in
      (match
         Ex.explore_with_crashes ~ckpt ~n:3 ~inputs:(distinct 3)
           ~crash_budget:1 ~check:(k_check 1) ()
       with
      | Sim.Explorer.Indeterminate _ -> ()
      | o ->
          Alcotest.fail
            ("interrupted crash exploration expected, got "
            ^ outcome_fingerprint o));
      let t = load_restored path in
      let fresh =
        Ex.explore_with_crashes ~model:(FM.byzantine 1) ~n:3
          ~inputs:(distinct 3) ~crash_budget:1 ~check:(k_check 1) ()
      in
      let resumed =
        Ex.explore_with_crashes ~model:(FM.byzantine 1)
          ~resume:(Checkpoint.payload t) ~n:3 ~inputs:(distinct 3)
          ~crash_budget:1 ~check:(k_check 1) ()
      in
      Alcotest.(check string)
        "crash checkpoint refused under byzantine"
        (outcome_fingerprint fresh)
        (outcome_fingerprint resumed))

(* ---------- Trace_io: forged payloads and model tags ---------- *)

let forged_descs =
  [
    { Sim.Replay.pid = 0; deliver = [ { Sim.Replay.src = 1; seq = 1; forged = Some 2 } ] };
    {
      Sim.Replay.pid = 2;
      deliver =
        [
          { Sim.Replay.src = 0; seq = 1; forged = None };
          { Sim.Replay.src = 1; seq = 2; forged = Some 0 };
        ];
    };
  ]

let plain_descs =
  List.map
    (fun (d : Sim.Replay.step_desc) ->
      {
        d with
        Sim.Replay.deliver =
          List.map
            (fun (dl : Sim.Replay.delivery) ->
              { dl with Sim.Replay.forged = None })
            d.Sim.Replay.deliver;
      })
    forged_descs

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_forged_roundtrip () =
  let s = Trace_io.schedule_to_string ~model:(FM.byzantine 1) forged_descs in
  Alcotest.(check bool)
    "model tag present" true
    (contains ~sub:"# model: byzantine:1" s);
  (match Trace_io.schedule_of_string s with
  | Ok descs ->
      Alcotest.(check bool) "descs survive" true (descs = forged_descs)
  | Error e -> Alcotest.fail e);
  (match Trace_io.schedule_model_of_string s with
  | Ok m -> Alcotest.(check bool) "model survives" true (FM.equal m (FM.byzantine 1))
  | Error e -> Alcotest.fail e);
  (* file-level round-trip under the matching expectation *)
  with_tmp ".sched" (fun path ->
      ok_or_fail (Trace_io.save_schedule ~model:(FM.byzantine 1) ~path forged_descs);
      let loaded =
        ok_or_fail (Trace_io.load_schedule ~expect:(FM.byzantine 1) ~path ())
      in
      Alcotest.(check bool) "file round-trip" true (loaded = forged_descs))

let test_forged_under_crash_rejected () =
  (* a schedule carrying forged payloads but declaring no model must
     be refused, not replayed with silently-dropped forges *)
  let s = Trace_io.schedule_to_string forged_descs in
  Alcotest.(check bool) "no model line" true (not (contains ~sub:"# model" s));
  match Trace_io.schedule_of_string s with
  | Ok _ -> Alcotest.fail "forged schedule accepted under crash semantics"
  | Error e ->
      Alcotest.(check bool)
        ("error names the forge: " ^ e)
        true
        (contains ~sub:"forged" e)

let test_cross_model_rejected () =
  let s = Trace_io.schedule_to_string ~model:(FM.byzantine 1) forged_descs in
  (match Trace_io.schedule_of_string ~expect:FM.crash s with
  | Ok _ -> Alcotest.fail "byzantine schedule accepted under crash"
  | Error e ->
      Alcotest.(check bool)
        ("error tells the flag to pass: " ^ e)
        true
        (contains ~sub:"--model" e));
  (* and the mirrored direction, via the filesystem entry point *)
  with_tmp ".sched" (fun path ->
      ok_or_fail (Trace_io.save_schedule ~path plain_descs);
      match Trace_io.load_schedule ~expect:(FM.mobile 1) ~path () with
      | Ok _ -> Alcotest.fail "crash schedule accepted under mobile"
      | Error e ->
          Alcotest.(check bool)
            ("cross-model error: " ^ e)
            true
            (contains ~sub:"model" e))

let test_crash_format_unchanged () =
  (* crash schedules must stay byte-identical to the pre-model format:
     no [# model:] line, and an explicit [~model:Crash] changes nothing *)
  let a = Trace_io.schedule_to_string plain_descs in
  let b = Trace_io.schedule_to_string ~model:FM.crash plain_descs in
  Alcotest.(check string) "explicit crash = default" a b;
  Alcotest.(check bool) "no model line" true (not (contains ~sub:"# model" a));
  match Trace_io.schedule_model_of_string a with
  | Ok m -> Alcotest.(check bool) "untagged = crash" true (FM.equal m FM.crash)
  | Error e -> Alcotest.fail e

(* ---------- HO substrate ---------- *)

let test_ho_mobile_assignment () =
  let n = 3 and t = 1 and seed = 5 in
  let a = Ho.Assignment.mobile ~n ~t ~seed in
  let universe = Sim.Pid.universe n in
  let ho_sets =
    List.init 41 (fun round -> a.Ho.Assignment.ho ~round ~me:0)
  in
  List.iter
    (fun ho ->
      Alcotest.(check bool)
        "≥ n-t processes heard" true
        (List.length ho >= n - t))
    ho_sets;
  Alcotest.(check bool)
    "HO sets move across rounds" true
    (List.length (List.sort_uniq compare ho_sets) >= 2);
  (* per-round set is shared by all receivers: mobility is a property
     of the senders, not of any receiver's link *)
  List.iteri
    (fun round ho ->
      Alcotest.(check bool)
        "same HO set for every receiver" true
        (ho = a.Ho.Assignment.ho ~round ~me:1
        && ho = a.Ho.Assignment.ho ~round ~me:2))
    ho_sets;
  let a0 = Ho.Assignment.mobile ~n ~t:0 ~seed in
  List.iteri
    (fun round _ ->
      Alcotest.(check bool)
        "t=0 is the complete assignment" true
        (a0.Ho.Assignment.ho ~round ~me:0 = universe))
    ho_sets

(* a minimal concrete HO algorithm so the test can build forged
   messages (Min_flood's message type is sealed behind
   Ho_algorithm.S): flood your estimate, adopt the minimum, decide at
   the end of round 2 *)
module Min2 = struct
  type state = Sim.Value.t
  type message = Est of Sim.Value.t

  let name = "test_min2"
  let init ~n:_ ~me:_ ~input = input
  let send st ~round:_ = Est st

  let transition st ~round ~received =
    let est =
      List.fold_left (fun acc (_, Est v) -> min acc v) st received
    in
    (est, if round >= 2 then Some est else None)

  let pp_state ppf st = Sim.Value.pp ppf st
  let pp_message ppf (Est v) = Format.fprintf ppf "Est %a" Sim.Value.pp v
end

module EMin2 = Ho.Engine.Make (Min2)

let test_ho_equivocation_splits_decisions () =
  let n = 3 and inputs = distinct 3 in
  let assignment = Ho.Assignment.complete ~n in
  let honest = EMin2.run ~n ~inputs ~assignment ~rounds:2 () in
  Alcotest.(check int)
    "honest min-flood reaches consensus" 1
    (EMin2.distinct_decisions honest);
  (* one corrupted sender (t=1) equivocates in the deciding round:
     each receiver is shown a different bogus minimum too late to
     re-flood it, so three processes decide three different values —
     Byzantine behaviour no crash pattern can produce here *)
  let corrupt ~round ~src ~dst (m : Min2.message) =
    if round = 2 && src = 0 && dst <> 0 then Min2.Est (-dst) else m
  in
  let byz = EMin2.run ~corrupt ~n ~inputs ~assignment ~rounds:2 () in
  Alcotest.(check int)
    "equivocation splits the decisions" 3
    (EMin2.distinct_decisions byz);
  (* the identity hook is the old engine, bit for bit *)
  let id_hook = EMin2.run ~corrupt:(fun ~round:_ ~src:_ ~dst:_ m -> m) ~n ~inputs ~assignment ~rounds:2 () in
  Alcotest.(check bool)
    "identity hook = no hook: decisions" true
    (id_hook.EMin2.decisions = honest.EMin2.decisions);
  Alcotest.(check bool)
    "identity hook = no hook: trace" true
    (id_hook.EMin2.trace = honest.EMin2.trace)

(* ---------- suites ---------- *)

let suites =
  [
    ( "byzantine.parity",
      [
        Alcotest.test_case "budget-0 models = crash explorer (all modes)"
          `Quick test_budget0_parity;
        Alcotest.test_case "empty forge pool degenerates to crash" `Quick
          test_empty_forge_pool_degenerates;
      ] );
    ( "byzantine.separation",
      [
        Alcotest.test_case "byzantine breaks k where crash cannot" `Quick
          test_byzantine_strictly_less_solvable;
      ] );
    ( "byzantine.budget",
      [
        qcheck prop_byzantine_budget;
        qcheck prop_mobile_trial_crash_free;
        qcheck prop_mobile_faulty_pure;
        Alcotest.test_case "mobile faulty set moves and recovers" `Quick
          test_mobile_set_actually_moves;
      ] );
    ( "byzantine.fuzz",
      [
        Alcotest.test_case "byzantine campaign bit-reproducible" `Quick
          test_byz_fuzz_bit_reproducible;
        Alcotest.test_case "byzantine seq/par parity" `Quick
          test_byz_fuzz_seq_par_parity;
        Alcotest.test_case "mobile clean parity" `Quick
          test_mobile_fuzz_clean_parity;
        Alcotest.test_case "byzantine kill/resume parity" `Quick
          test_byz_fuzz_kill_resume;
        Alcotest.test_case "fuzz model mismatch starts fresh" `Quick
          test_fuzz_model_mismatch_starts_fresh;
        Alcotest.test_case "explorer model mismatch starts fresh" `Quick
          test_explorer_model_mismatch_starts_fresh;
      ] );
    ( "byzantine.trace_io",
      [
        Alcotest.test_case "forged schedule round-trips under its model"
          `Quick test_forged_roundtrip;
        Alcotest.test_case "forged under crash rejected" `Quick
          test_forged_under_crash_rejected;
        Alcotest.test_case "cross-model replay rejected" `Quick
          test_cross_model_rejected;
        Alcotest.test_case "crash format byte-stable" `Quick
          test_crash_format_unchanged;
      ] );
    ( "byzantine.ho",
      [
        Alcotest.test_case "mobile assignment bounded and transient" `Quick
          test_ho_mobile_assignment;
        Alcotest.test_case "equivocation splits decisions" `Quick
          test_ho_equivocation_splits_decisions;
      ] );
  ]
