(* Ksa_prim.Shardset: the shared dedup table of the parallel
   explorers.  The properties the explorers lean on: membership
   matches a model hash table under any operation sequence; under
   concurrent domains no insert is lost and every key has exactly one
   admission winner; and the ticketed [admit] consumes tickets only
   for genuinely-new keys, so a budget bounds insertions exactly. *)

module Shardset = Ksa_prim.Shardset

let mk ?(shards = 8) ?(capacity = 64) () =
  (* small shards + tiny capacity so tests exercise the resize path *)
  Shardset.create ~shards ~capacity ~name:"test" ()

(* short strings collide across operations often enough to test the
   found-vs-admitted distinction; never empty (reserved sentinel) *)
let key_gen =
  QCheck.Gen.(
    map
      (fun (a, b) -> Printf.sprintf "%c%d" (Char.chr (97 + a)) b)
      (pair (int_bound 5) (int_bound 40)))

let keys_arb = QCheck.make ~print:(String.concat ",") QCheck.Gen.(list_size (int_bound 400) key_gen)

(* ---------- sequential model conformance ---------- *)

let prop_matches_model =
  QCheck.Test.make ~name:"add/mem/find/length match a model Hashtbl"
    ~count:100 keys_arb (fun keys ->
      let t = mk () in
      let model : (string, int) Hashtbl.t = Hashtbl.create 64 in
      List.iteri
        (fun i k ->
          let inserted = Shardset.add t k i in
          let fresh = not (Hashtbl.mem model k) in
          if fresh then Hashtbl.add model k i;
          if inserted <> fresh then
            QCheck.Test.fail_reportf "add %S: inserted=%b fresh=%b" k inserted
              fresh)
        keys;
      Hashtbl.iter
        (fun k v ->
          if not (Shardset.mem t k) then
            QCheck.Test.fail_reportf "lost key %S" k;
          if Shardset.find t k <> Some v then
            QCheck.Test.fail_reportf "wrong value for %S" k)
        model;
      List.iter
        (fun k ->
          let probe = k ^ "?" in
          if Shardset.mem t probe <> Hashtbl.mem model probe then
            QCheck.Test.fail_reportf "membership mismatch on %S" probe)
        keys;
      Shardset.length t = Hashtbl.length model)

let prop_iter_is_the_model =
  QCheck.Test.make ~name:"iter enumerates exactly the inserted bindings"
    ~count:50 keys_arb (fun keys ->
      let t = mk () in
      let model : (string, int) Hashtbl.t = Hashtbl.create 64 in
      List.iteri
        (fun i k ->
          if Shardset.add t k i then Hashtbl.add model k i)
        keys;
      let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
      Shardset.iter
        (fun k v ->
          if Hashtbl.mem seen k then
            QCheck.Test.fail_reportf "iter visited %S twice" k;
          Hashtbl.add seen k v)
        t;
      seen = model || (
        Hashtbl.length seen = Hashtbl.length model
        && Hashtbl.fold
             (fun k v acc -> acc && Hashtbl.find_opt seen k = Some v)
             model true))

(* ---------- ticketed admission ---------- *)

let prop_budgeted_admission =
  QCheck.Test.make
    ~name:"admit consumes tickets only for new keys and stops at the budget"
    ~count:100
    QCheck.(pair keys_arb (int_range 0 50))
    (fun (keys, budget) ->
      let t = mk () in
      let next = ref 0 in
      let ticket () =
        if !next >= budget then None
        else begin
          let v = !next in
          incr next;
          Some v
        end
      in
      let admitted = ref 0 and found = ref 0 and rejected = ref 0 in
      List.iter
        (fun k ->
          match Shardset.admit t k ~ticket with
          | Shardset.Admitted _ -> incr admitted
          | Shardset.Found _ -> incr found
          | Shardset.Rejected -> incr rejected)
        keys;
      let distinct =
        List.length (List.sort_uniq compare keys)
      in
      !admitted = min budget distinct
      && !admitted = Shardset.length t
      && !next = !admitted (* no ticket burned on a duplicate *)
      && !admitted + !found + !rejected = List.length keys)

(* ---------- concurrent domains ---------- *)

let prop_no_lost_inserts_concurrent =
  (* every domain races to insert an overlapping slice of the key
     space; afterwards every key must be present, the length must be
     the size of the union, and each key must have exactly one
     admission winner (the admit path is atomic per key) *)
  QCheck.Test.make ~name:"no lost inserts, one winner per key (4 domains)"
    ~count:15
    QCheck.(int_range 50 300)
    (fun nkeys ->
      let t = mk ~shards:16 ~capacity:64 () in
      let ndomains = 4 in
      let wins = Array.make ndomains 0 in
      let domains =
        List.init ndomains (fun d ->
            Domain.spawn (fun () ->
                (* overlapping slices: every domain covers all residues
                   except one, so most keys are contested *)
                let w = ref 0 in
                for i = 0 to nkeys - 1 do
                  if i mod ndomains <> (d + 1) mod ndomains then
                    if Shardset.add t (string_of_int i) i then incr w
                done;
                !w))
      in
      List.iteri (fun d h -> wins.(d) <- Domain.join h) domains;
      let total_wins = Array.fold_left ( + ) 0 wins in
      let ok = ref (Shardset.length t = nkeys && total_wins = nkeys) in
      for i = 0 to nkeys - 1 do
        let k = string_of_int i in
        if not (Shardset.mem t k) then ok := false;
        if Shardset.find t k <> Some i then ok := false
      done;
      !ok)

let prop_dense_tickets_concurrent =
  (* the explorers' admission pattern: a shared fetch-and-add ticket
     source drawn under the shard lock.  Afterwards the granted
     tickets must be exactly 0..length-1, each bound to one key —
     admission atomicity means no ticket is ever drawn twice or
     skipped below the high-water mark *)
  QCheck.Test.make ~name:"shared ticket source stays dense (4 domains)"
    ~count:15
    QCheck.(int_range 50 200)
    (fun nkeys ->
      let t = mk ~shards:16 () in
      let counter = Atomic.make 0 in
      let ticket () = Some (Atomic.fetch_and_add counter 1) in
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for i = 0 to nkeys - 1 do
                  ignore (Shardset.admit t (string_of_int i) ~ticket)
                done))
      in
      List.iter Domain.join domains;
      let n = Shardset.length t in
      let seen_tickets = Array.make n false in
      let ok = ref (n = nkeys && Atomic.get counter = n) in
      Shardset.iter
        (fun _ v ->
          if v < 0 || v >= n || seen_tickets.(v) then ok := false
          else seen_tickets.(v) <- true)
        t;
      !ok && Array.for_all Fun.id seen_tickets)

let suites =
  [
    Test_util.qsuite "prim.shardset"
      [
        prop_matches_model;
        prop_iter_is_the_model;
        prop_budgeted_admission;
        prop_no_lost_inserts_concurrent;
        prop_dense_tickets_concurrent;
      ];
  ]
