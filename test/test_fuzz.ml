(* The schedule fuzzer.

   Determinism is the contract under test: trial i is a pure function
   of (config, root seed, i), so a campaign must be bit-reproducible,
   the sequential and parallel drivers must report the identical first
   violation and shrunk schedule, and every shrunk counterexample must
   re-violate under Replay after a Trace_io save/load round-trip.
   The differential suite checks the fuzzer is sound against the
   exhaustive explorer: a fair-weighted fuzz campaign never decides a
   value exploration cannot reach. *)

module Sim = Ksa_sim
module Fuzz = Sim.Fuzz

let distinct = Sim.Value.distinct_inputs

module FT = Fuzz.Make (Ksa_algo.Trivial.A)

module K2 = Ksa_algo.Kset_flp.Make (struct
  let l = 2
end)

module FK2 = Fuzz.Make (K2)

module K3 = Ksa_algo.Kset_flp.Make (struct
  let l = 3
end)

module FK3 = Fuzz.Make (K3)

let expect_violation = function
  | Fuzz.Violation_found v -> v
  | Fuzz.Clean _ -> Alcotest.fail "expected a violation, got clean"
  | Fuzz.Budget_exhausted _ ->
      Alcotest.fail "expected a violation, got budget-exhausted"

let check_violation_equal msg (a : Fuzz.violation) (b : Fuzz.violation) =
  Alcotest.(check int) (msg ^ ": trial") a.Fuzz.trial b.Fuzz.trial;
  Alcotest.(check string) (msg ^ ": property") a.Fuzz.property b.Fuzz.property;
  Alcotest.(check string) (msg ^ ": reason") a.Fuzz.reason b.Fuzz.reason;
  Alcotest.(check bool)
    (msg ^ ": pattern") true
    (Sim.Failure_pattern.equal a.Fuzz.pattern b.Fuzz.pattern);
  Alcotest.(check bool)
    (msg ^ ": schedule") true
    (a.Fuzz.schedule = b.Fuzz.schedule);
  Alcotest.(check bool) (msg ^ ": shrunk") true (a.Fuzz.shrunk = b.Fuzz.shrunk)

(* trivial decides its own input immediately: any two steps by
   distinct processes violate 1-agreement with distinct inputs *)
let trivial_cfg = Fuzz.default_config ~k:1 ~n:3 ()

let test_bit_reproducible () =
  let a = expect_violation (FT.run trivial_cfg ~seed:42 ~trials:50) in
  let b = expect_violation (FT.run trivial_cfg ~seed:42 ~trials:50) in
  check_violation_equal "same seed" a b;
  let c = expect_violation (FT.run trivial_cfg ~seed:43 ~trials:50) in
  (* different seed must at least give a different run object; the
     trial index may coincide *)
  Alcotest.(check bool) "different seed, different campaign" false
    (a.Fuzz.schedule = c.Fuzz.schedule && a.Fuzz.trial = c.Fuzz.trial
    && Sim.Failure_pattern.equal a.Fuzz.pattern c.Fuzz.pattern
    && a.Fuzz.run.Sim.Run.events = c.Fuzz.run.Sim.Run.events)

let test_seq_par_violation_parity () =
  let seq = expect_violation (FT.run trivial_cfg ~seed:42 ~trials:50) in
  let par = expect_violation (FT.run_par ~domains:2 trivial_cfg ~seed:42 ~trials:50) in
  check_violation_equal "seq vs par" seq par

let test_seq_par_clean_parity () =
  (* kset-flp with L=2 at n=3 can reach at most n/L = 1 decision:
     1-agreement and validity hold on every schedule *)
  let cfg =
    { (Fuzz.default_config ~k:1 ~n:3 ()) with Fuzz.max_crashes = 1 }
  in
  let seq = FK2.run cfg ~seed:7 ~trials:40 in
  let par = FK2.run_par ~domains:2 cfg ~seed:7 ~trials:40 in
  (match seq with
  | Fuzz.Clean { trials } -> Alcotest.(check int) "seq clean trials" 40 trials
  | _ -> Alcotest.fail "expected clean sequential campaign");
  match par with
  | Fuzz.Clean { trials } -> Alcotest.(check int) "par clean trials" 40 trials
  | _ -> Alcotest.fail "expected clean parallel campaign"

let test_trial_is_pure () =
  let cfg = { trivial_cfg with Fuzz.max_crashes = 1 } in
  let p1, r1 = FT.trial cfg ~seed:9 5 in
  let p2, r2 = FT.trial cfg ~seed:9 5 in
  Alcotest.(check bool) "same pattern" true (Sim.Failure_pattern.equal p1 p2);
  Alcotest.(check bool) "same events" true
    (r1.Sim.Run.events = r2.Sim.Run.events);
  Alcotest.(check bool) "same decisions" true
    (r1.Sim.Run.decisions = r2.Sim.Run.decisions)

let test_shrunk_one_minimal_and_roundtrips () =
  let cfg = Fuzz.default_config ~k:1 ~n:4 () in
  let module F = Fuzz.Make (Ksa_algo.Trivial.A) in
  let v = expect_violation (F.run cfg ~seed:3 ~trials:20) in
  (* for trivial, the minimal 1-agreement counterexample is exactly
     two steps by distinct processes *)
  Alcotest.(check int) "two steps" 2 (List.length v.Fuzz.shrunk);
  let pids = List.map (fun (d : Sim.Replay.step_desc) -> d.pid) v.Fuzz.shrunk in
  Alcotest.(check int) "distinct pids" 2
    (List.length (List.sort_uniq compare pids));
  (* the acceptance criterion: save/load round-trip, then replay, and
     the verdict must survive *)
  let path = Filename.temp_file "ksa_fuzz_cex" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Sim.Trace_io.save_schedule ~path v.Fuzz.shrunk with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let loaded =
        match Sim.Trace_io.load_schedule ~path () with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "round-trip preserves schedule" true
        (loaded = v.Fuzz.shrunk);
      let replayed = F.replay_schedule ~pattern:v.Fuzz.pattern cfg loaded in
      (match F.check_run cfg replayed with
      | Some (p, _) ->
          Alcotest.(check string) "same property violated"
            v.Fuzz.property (Fuzz.property_name p)
      | None -> Alcotest.fail "shrunk schedule no longer violates");
      (* 1-minimality: dropping any single step loses the violation *)
      List.iteri
        (fun i _ ->
          let without = List.filteri (fun j _ -> j <> i) v.Fuzz.shrunk in
          let run = F.replay_schedule ~pattern:v.Fuzz.pattern cfg without in
          match F.check_run cfg run with
          | Some _ ->
              Alcotest.failf "removing step %d still violates: not 1-minimal" i
          | None -> ())
        v.Fuzz.shrunk)

let test_full_schedule_also_reviolates () =
  let v = expect_violation (FT.run trivial_cfg ~seed:42 ~trials:50) in
  let run = FT.replay_schedule ~pattern:v.Fuzz.pattern trivial_cfg v.Fuzz.schedule in
  match FT.check_run trivial_cfg run with
  | Some (p, _) ->
      Alcotest.(check string) "same property" v.Fuzz.property
        (Fuzz.property_name p)
  | None -> Alcotest.fail "full schedule does not re-violate under replay"

(* fuzz soundness against exhaustive exploration: with fair-only
   weights on kset-flp at n=3, every value a fuzzed run decides must be
   reachable in the crash-adversarial exploration of the same space *)
let test_differential_against_explorer () =
  let n = 3 in
  let module Ex = Sim.Explorer.Make (K2) in
  let reachable =
    Ex.reachable_decision_values ~n ~inputs:(distinct n) ~crash_budget:1 ()
  in
  Alcotest.(check bool) "explorer reaches something" true (reachable <> []);
  let cfg =
    {
      (Fuzz.default_config ~k:n ~n ()) with
      Fuzz.weights = Fuzz.fair_weights;
      max_crashes = 1;
      properties = [];
    }
  in
  List.iter
    (fun seed ->
      let decided = ref [] in
      (match
         FK2.run
           ~on_trial:(fun _ run ->
             decided := Sim.Run.decided_values run @ !decided)
           cfg ~seed ~trials:60
       with
      | Fuzz.Clean { trials } -> Alcotest.(check int) "all trials ran" 60 trials
      | _ -> Alcotest.fail "property-free campaign cannot violate");
      List.iter
        (fun v ->
          if not (List.mem v reachable) then
            Alcotest.failf
              "seed %d: fuzzer decided %d, unreachable for the explorer" seed v)
        (List.sort_uniq compare !decided))
    [ 1; 2; 3; 4; 5 ]

let test_termination_violation_budget_shaped () =
  (* kset-flp with L=3 at n=3 and p0 initially dead: the two survivors
     wait forever for a second hello — every fair schedule exhausts the
     budget undecided.  The counterexample is budget-shaped: no step
     can be removed without losing budget exhaustion, so shrinking
     must return the full schedule. *)
  let n = 3 in
  let cfg =
    {
      (Fuzz.default_config ~k:1 ~n ()) with
      Fuzz.pattern = Sim.Failure_pattern.initial_dead ~n ~dead:[ 0 ];
      weights = Fuzz.fair_weights;
      max_steps = 40;
      properties = [ Fuzz.Termination ];
    }
  in
  let v = expect_violation (FK3.run cfg ~seed:11 ~trials:5) in
  Alcotest.(check int) "violates immediately" 0 v.Fuzz.trial;
  Alcotest.(check string) "termination" "termination" v.Fuzz.property;
  Alcotest.(check int) "full budget schedule" 40 (List.length v.Fuzz.schedule);
  Alcotest.(check bool) "unshrinkable: budget-shaped" true
    (v.Fuzz.shrunk = v.Fuzz.schedule)

let test_validity_custom_property () =
  (* a custom predicate violated by construction: flag any decision at
     all; the shrunk schedule is then the single deciding step *)
  let cfg =
    {
      trivial_cfg with
      Fuzz.properties =
        [
          Fuzz.Custom
            ( "no-decision",
              fun run ->
                if Sim.Run.decided_values run <> [] then
                  Some "a process decided"
                else None );
        ];
    }
  in
  let v = expect_violation (FT.run cfg ~seed:1 ~trials:10) in
  Alcotest.(check string) "custom name" "no-decision" v.Fuzz.property;
  Alcotest.(check int) "single-step counterexample" 1
    (List.length v.Fuzz.shrunk)

let test_stop_budget_exhausted () =
  let cfg = { trivial_cfg with Fuzz.stop = Some (fun () -> true) } in
  (match FT.run cfg ~seed:1 ~trials:100 with
  | Fuzz.Budget_exhausted { trials } ->
      Alcotest.(check int) "no trial ran" 0 trials
  | _ -> Alcotest.fail "expected budget-exhausted (seq)");
  match FT.run_par ~domains:2 cfg ~seed:1 ~trials:100 with
  | Fuzz.Budget_exhausted { trials } ->
      Alcotest.(check int) "no trial ran (par)" 0 trials
  | _ -> Alcotest.fail "expected budget-exhausted (par)"

(* a stop hook that grants exactly one poll: whichever driver runs,
   exactly one trial completes, so the Budget_exhausted counts of the
   sequential and parallel drivers must agree exactly — the parallel
   driver reports the contiguous clean watermark, not its racy count
   of claimed tickets *)
let one_poll_stop () =
  let polls = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add polls 1 >= 1

let test_stop_seq_par_count_parity () =
  let cfg n = { n with Fuzz.stop = Some (one_poll_stop ()) } in
  let clean = { (Fuzz.default_config ~k:1 ~n:3 ()) with Fuzz.max_crashes = 1 } in
  let seq =
    match FK2.run (cfg clean) ~seed:7 ~trials:100 with
    | Fuzz.Budget_exhausted { trials } -> trials
    | _ -> Alcotest.fail "expected budget-exhausted (seq)"
  in
  Alcotest.(check int) "seq ran exactly one trial" 1 seq;
  List.iter
    (fun domains ->
      match FK2.run_par ~domains (cfg clean) ~seed:7 ~trials:100 with
      | Fuzz.Budget_exhausted { trials } ->
          Alcotest.(check int)
            (Printf.sprintf "par(%d) count = seq count" domains)
            seq trials
      | _ -> Alcotest.fail "expected budget-exhausted (par)")
    [ 2; 4 ]

(* ---------- coverage-guided (greybox) mode ---------- *)

(* kset-flp with L=2 at n=4 violates 1-agreement only on near-partition
   schedules (two disjoint hello cycles) — rare for blind search, which
   is exactly what coverage guidance is for.  Seed 3 is pinned: the
   greybox campaign reaches the violation an order of magnitude sooner
   than blind search does. *)
let cov_violating = { (Fuzz.default_config ~k:1 ~n:4 ()) with Fuzz.coverage = true }

let distinct_ids_into acc (run : Sim.Run.t) =
  let tr = run.Sim.Run.trace in
  Array.iter (fun id -> Hashtbl.replace acc id ()) tr.Sim.Trace.init_ids;
  Array.iter
    (Array.iter (fun (s : Sim.Trace.step) ->
         Hashtbl.replace acc s.Sim.Trace.state_id ()))
    tr.Sim.Trace.steps

let test_coverage_beats_blind () =
  (* identical trial budget on the clean kset-flp n=3 subject; the
     greybox campaign must reach strictly more distinct interned state
     ids than the blind one.  Guidance pays off once the shallow state
     space saturates (under ~1000 trials the two are within noise of
     each other); at 2000 trials the greybox margin is >100 ids on
     every seed tried, so the strict inequality is a stable pin, not a
     coin flip. *)
  let base = { (Fuzz.default_config ~k:1 ~n:3 ()) with Fuzz.max_crashes = 1 } in
  let campaign coverage =
    let seen = Hashtbl.create 4096 in
    (match
       FK2.run
         ~on_trial:(fun _ run -> distinct_ids_into seen run)
         { base with Fuzz.coverage } ~seed:7 ~trials:2000
     with
    | Fuzz.Clean { trials } -> Alcotest.(check int) "all trials ran" 2000 trials
    | _ -> Alcotest.fail "expected a clean campaign");
    Hashtbl.length seen
  in
  let blind = campaign false in
  let greybox = campaign true in
  Alcotest.(check bool)
    (Printf.sprintf "greybox (%d ids) > blind (%d ids)" greybox blind)
    true (greybox > blind)

let test_coverage_bit_reproducible () =
  let a = expect_violation (FK2.run cov_violating ~seed:3 ~trials:5000) in
  let b = expect_violation (FK2.run cov_violating ~seed:3 ~trials:5000) in
  check_violation_equal "coverage same seed" a b

let test_coverage_seq_par_violation_parity () =
  let seq = expect_violation (FK2.run cov_violating ~seed:3 ~trials:5000) in
  let par =
    expect_violation (FK2.run_par ~domains:2 cov_violating ~seed:3 ~trials:5000)
  in
  check_violation_equal "coverage seq vs par" seq par

let test_coverage_finds_violation_sooner () =
  (* the pinned time-to-violation claim: same algorithm, same seed,
     same per-trial budget — greybox needs far fewer trials *)
  let blind_cfg = { cov_violating with Fuzz.coverage = false } in
  let blind = expect_violation (FK2.run blind_cfg ~seed:3 ~trials:50000) in
  let greybox = expect_violation (FK2.run cov_violating ~seed:3 ~trials:50000) in
  Alcotest.(check bool)
    (Printf.sprintf "greybox trial %d < blind trial %d" greybox.Fuzz.trial
       blind.Fuzz.trial)
    true
    (greybox.Fuzz.trial < blind.Fuzz.trial)

let test_coverage_clean_seq_par_parity () =
  let cfg =
    {
      (Fuzz.default_config ~k:1 ~n:3 ()) with
      Fuzz.max_crashes = 1;
      coverage = true;
    }
  in
  let seq = FK2.run cfg ~seed:7 ~trials:200 in
  let par = FK2.run_par ~domains:3 cfg ~seed:7 ~trials:200 in
  match (seq, par) with
  | Fuzz.Clean { trials = a }, Fuzz.Clean { trials = b } ->
      Alcotest.(check int) "seq trials" 200 a;
      Alcotest.(check int) "par trials" 200 b
  | _ -> Alcotest.fail "expected clean campaigns in both drivers"

let test_weights_validated () =
  let cfg =
    {
      trivial_cfg with
      Fuzz.weights =
        {
          Fuzz.deliver_all = 0;
          deliver_some = 0;
          deliver_none = 0;
          drop = 1;
          undecided_bias = 0;
        };
    }
  in
  Alcotest.check_raises "no step weight"
    (Invalid_argument "Fuzz: at least one step weight must be positive")
    (fun () -> ignore (FT.run cfg ~seed:1 ~trials:1))

let suites =
  [
    ( "sim.fuzz",
      [
        Alcotest.test_case "bit-reproducible" `Quick test_bit_reproducible;
        Alcotest.test_case "seq/par violation parity" `Quick
          test_seq_par_violation_parity;
        Alcotest.test_case "seq/par clean parity" `Quick
          test_seq_par_clean_parity;
        Alcotest.test_case "trial is pure" `Quick test_trial_is_pure;
        Alcotest.test_case "shrunk 1-minimal + round-trip replay" `Quick
          test_shrunk_one_minimal_and_roundtrips;
        Alcotest.test_case "full schedule re-violates" `Quick
          test_full_schedule_also_reviolates;
        Alcotest.test_case "differential vs explorer" `Quick
          test_differential_against_explorer;
        Alcotest.test_case "termination counterexample is budget-shaped"
          `Quick test_termination_violation_budget_shaped;
        Alcotest.test_case "custom property" `Quick test_validity_custom_property;
        Alcotest.test_case "stop => budget exhausted" `Quick
          test_stop_budget_exhausted;
        Alcotest.test_case "stop count: seq/par parity" `Quick
          test_stop_seq_par_count_parity;
        Alcotest.test_case "weights validated" `Quick test_weights_validated;
        Alcotest.test_case "coverage beats blind on distinct ids" `Quick
          test_coverage_beats_blind;
        Alcotest.test_case "coverage bit-reproducible" `Quick
          test_coverage_bit_reproducible;
        Alcotest.test_case "coverage seq/par violation parity" `Quick
          test_coverage_seq_par_violation_parity;
        Alcotest.test_case "coverage clean seq/par parity" `Quick
          test_coverage_clean_seq_par_parity;
        Alcotest.test_case "coverage finds violation sooner" `Slow
          test_coverage_finds_violation_sooner;
      ] );
  ]
