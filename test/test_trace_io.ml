module Sim = Ksa_sim
module Rng = Ksa_prim.Rng

let distinct = Sim.Value.distinct_inputs

let sample_run seed =
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 3
  end) in
  let module E = Sim.Engine.Make (K) in
  let rng = Rng.create ~seed in
  E.run ~n:5 ~inputs:(distinct 5)
    ~pattern:(Sim.Failure_pattern.none ~n:5)
    (Sim.Adversary.fair ~rng)

let test_schedule_roundtrip () =
  let run = sample_run 21 in
  let sched = Sim.Trace_io.schedule_of_run run in
  let text = Sim.Trace_io.schedule_to_string sched in
  match Sim.Trace_io.schedule_of_string text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check bool) "roundtrip" true (parsed = sched)

let test_schedule_replay_equivalence () =
  let run = sample_run 33 in
  let text = Sim.Trace_io.schedule_to_string (Sim.Trace_io.schedule_of_run run) in
  let sched =
    match Sim.Trace_io.schedule_of_string text with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 3
  end) in
  let module E = Sim.Engine.Make (K) in
  let replayed =
    E.run ~n:5 ~inputs:(distinct 5)
      ~pattern:(Sim.Failure_pattern.none ~n:5)
      (Sim.Replay.sequential [ sched ])
  in
  Alcotest.(check bool) "identical decisions" true
    (run.Sim.Run.decisions = replayed.Sim.Run.decisions);
  Alcotest.(check bool) "identical state ids" true
    (List.map (fun (e : Sim.Event.t) -> e.state_id) run.Sim.Run.events
    = List.map (fun (e : Sim.Event.t) -> e.state_id) replayed.Sim.Run.events)

let test_schedule_parse_errors () =
  let bad = [ "nonsense"; "x: 1.2"; "1: 0.0"; "1: 0,1"; "1 0.1" ] in
  List.iter
    (fun line ->
      match Sim.Trace_io.schedule_of_string line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    bad

let test_schedule_comments_and_blanks () =
  let text = "# a comment\n\n2: 0.1\n\n# another\n1:\n" in
  match Sim.Trace_io.schedule_of_string text with
  | Error e -> Alcotest.fail e
  | Ok [ d1; d2 ] ->
      Alcotest.(check int) "pid 2" 2 d1.Sim.Replay.pid;
      Alcotest.(check int) "one delivery" 1 (List.length d1.Sim.Replay.deliver);
      Alcotest.(check int) "pid 1" 1 d2.Sim.Replay.pid;
      Alcotest.(check (list int)) "no deliveries" []
        (List.map (fun (d : Sim.Replay.delivery) -> d.src) d2.Sim.Replay.deliver)
  | Ok l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

let test_file_roundtrip () =
  let run = sample_run 5 in
  let sched = Sim.Trace_io.schedule_of_run run in
  let path = Filename.temp_file "ksa_sched" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Sim.Trace_io.save_schedule ~path sched with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Sim.Trace_io.load_schedule ~path () with
      | Ok loaded -> Alcotest.(check bool) "file roundtrip" true (loaded = sched)
      | Error e -> Alcotest.fail e)

let test_load_schedule_missing_path () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "ksa_no_such_file.sched" in
  (match Sim.Trace_io.load_schedule ~path () with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error e ->
      let contains_path =
        let lp = String.length path and le = String.length e in
        let rec scan i =
          i + lp <= le && (String.sub e i lp = path || scan (i + 1))
        in
        lp <= le && scan 0
      in
      if not contains_path then
        Alcotest.failf "error %S does not mention the path %S" e path);
  (* parse failures through load_schedule also name the file *)
  let bad = Filename.temp_file "ksa_bad" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      let oc = open_out bad in
      output_string oc "not a schedule\n";
      close_out oc;
      match Sim.Trace_io.load_schedule ~path:bad () with
      | Ok _ -> Alcotest.fail "parsed garbage"
      | Error e ->
          Alcotest.(check bool) "names the file" true
            (String.length e >= String.length bad))

let test_malformed_error_messages () =
  let expect_error_containing input fragment =
    match Sim.Trace_io.schedule_of_string input with
    | Ok _ -> Alcotest.failf "accepted %S" input
    | Error e ->
        let lf = String.length fragment and le = String.length e in
        let rec scan i =
          i + lf <= le && (String.sub e i lf = fragment || scan (i + 1))
        in
        if not (lf <= le && scan 0) then
          Alcotest.failf "error %S for %S lacks %S" e input fragment
  in
  expect_error_containing "x: 1.1" "bad pid";
  expect_error_containing "0: 1.0" "bad delivery";
  expect_error_containing "0 1.1" "missing ':'";
  (* the reported line number counts comments and blanks *)
  expect_error_containing "# header\n\n1: 0.1\nx: 1.1\n" "line 4"

(* ---------- round-trip properties over random schedules ---------- *)

let gen_schedule =
  QCheck.Gen.(
    list_size (int_bound 10)
      ( pair (int_bound 9)
          (list_size (int_bound 4) (pair (int_bound 9) (int_range 1 5)))
      >>= fun (pid, dels) ->
        return
          {
            Sim.Replay.pid;
            deliver =
              List.map (fun (src, seq) -> { Sim.Replay.src; seq; forged = None }) dels;
          } ))

let pp_schedule s = Sim.Trace_io.schedule_to_string s

let arb_schedule = QCheck.make ~print:pp_schedule gen_schedule

let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"schedule_of_string ∘ schedule_to_string = Ok"
    ~count:300 arb_schedule (fun sched ->
      Sim.Trace_io.schedule_of_string (Sim.Trace_io.schedule_to_string sched)
      = Ok sched)

let prop_schedule_roundtrip_with_noise =
  (* comment and blank lines inserted anywhere must not change the
     parse result *)
  QCheck.Test.make ~name:"round-trip tolerates comments and blanks" ~count:300
    (QCheck.make
       ~print:(fun (s, seed) -> Printf.sprintf "seed %d\n%s" seed (pp_schedule s))
       QCheck.Gen.(pair gen_schedule (int_bound 1000)))
    (fun (sched, seed) ->
      let rng = Rng.create ~seed in
      let noisy =
        Sim.Trace_io.schedule_to_string sched
        |> String.split_on_char '\n'
        |> List.concat_map (fun line ->
               let noise =
                 match Rng.int rng 4 with
                 | 0 -> [ "# noise" ]
                 | 1 -> [ "" ]
                 | 2 -> [ "  # indented comment"; "" ]
                 | _ -> []
               in
               noise @ [ line ])
        |> String.concat "\n"
      in
      Sim.Trace_io.schedule_of_string noisy = Ok sched)

(* strong T-independence (Definition 6, second clause) *)

let test_strong_independence_taxonomy () =
  (* wait-freedom gives strong 2^Pi-independence (taxonomy after
     Definition 6) *)
  let v =
    Ksa_core.Independence.check_set_strong
      (module Ksa_algo.Trivial.A)
      ~n:4 ~set:[ 2 ]
  in
  Alcotest.(check bool) "trivial is strongly independent" true
    v.Ksa_core.Independence.independent;
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 3
  end) in
  (* the Section VI protocol with |S| = L: plain holds, and the
     existential strong check is also witnessed — after a benign
     full-delivery prefix, either S is uncontaminated or the outside
     reports already arrived, so the confined run still decides *)
  let plain = Ksa_core.Independence.check_set (module K) ~n:5 ~set:[ 0; 1; 2 ] in
  Alcotest.(check bool) "plain for |S| = L" true
    plain.Ksa_core.Independence.independent;
  let strong =
    Ksa_core.Independence.check_set_strong ~max_steps:3_000 (module K) ~n:5
      ~set:[ 0; 1; 2 ]
  in
  Alcotest.(check bool) "strong witnessed for |S| = L" true
    strong.Ksa_core.Independence.independent;
  (* singletons are dependent in both senses *)
  let v =
    Ksa_core.Independence.check_set_strong ~max_steps:3_000 (module K) ~n:5
      ~set:[ 4 ]
  in
  Alcotest.(check bool) "singleton dependent" false
    v.Ksa_core.Independence.independent

let test_observation_1a () =
  (* strong T-independence implies plain T-independence (Observation
     1(a)): with prefix 0 included in the strong check, any strong
     verdict subsumes the plain one; verified over the wait-free
     family for the trivial algorithm and a sample for naive-min *)
  let module Naive = Ksa_algo.Naive_min.Make (struct
    let wait_for = 2
  end) in
  List.iter
    (fun set ->
      let strong =
        Ksa_core.Independence.check_set_strong ~max_steps:3_000 (module Naive)
          ~n:4 ~set
      in
      let plain =
        Ksa_core.Independence.check_set ~max_steps:3_000 (module Naive) ~n:4 ~set
      in
      if strong.Ksa_core.Independence.independent then
        Alcotest.(check bool) "strong => plain" true
          plain.Ksa_core.Independence.independent)
    (Ksa_core.Independence.wait_free_family ~n:4)

let suites =
  [
    ( "sim.trace_io",
      [
        Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip;
        Alcotest.test_case "replay equivalence" `Quick test_schedule_replay_equivalence;
        Alcotest.test_case "parse errors" `Quick test_schedule_parse_errors;
        Alcotest.test_case "comments and blanks" `Quick test_schedule_comments_and_blanks;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "missing path is an Error with the path" `Quick
          test_load_schedule_missing_path;
        Alcotest.test_case "malformed inputs name line and token" `Quick
          test_malformed_error_messages;
      ] );
    Test_util.qsuite "sim.trace_io.properties"
      [ prop_schedule_roundtrip; prop_schedule_roundtrip_with_noise ];
    ( "core.independence_strong",
      [
        Alcotest.test_case "strong-vs-plain taxonomy" `Quick test_strong_independence_taxonomy;
        Alcotest.test_case "observation 1(a)" `Quick test_observation_1a;
      ] );
  ]
