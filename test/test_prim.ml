module Rng = Ksa_prim.Rng
module Listx = Ksa_prim.Listx
module Metrics = Ksa_prim.Metrics

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Rng.next64 a = Rng.next64 b)

let test_rng_copy () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.next64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next64 a) (Rng.next64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs" false (Rng.next64 a = Rng.next64 b)

let test_rng_split_at_indexed () =
  (* split_at t i is the (i+1)-th consecutive split, computable
     without advancing the parent *)
  let t = Rng.create ~seed:5 in
  let child = Rng.split_at t 2 in
  let t' = Rng.create ~seed:5 in
  ignore (Rng.split t');
  ignore (Rng.split t');
  let child' = Rng.split t' in
  Alcotest.(check int64) "matches the 3rd split" (Rng.next64 child')
    (Rng.next64 child);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split_at: negative index") (fun () ->
      ignore (Rng.split_at t (-1)))

let test_rng_split_at_pure () =
  let t = Rng.create ~seed:9 in
  let before = Rng.next64 (Rng.copy t) in
  let a = Rng.split_at t 7 in
  let b = Rng.split_at t 7 in
  Alcotest.(check int64) "deterministic per index" (Rng.next64 a) (Rng.next64 b);
  Alcotest.(check int64) "parent not advanced" before (Rng.next64 t);
  let c = Rng.split_at t 8 in
  Alcotest.(check bool) "distinct indices, distinct streams" false
    (Rng.next64 (Rng.split_at t 7) = Rng.next64 c)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:99 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "out of bounds: %d" x
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: nonpositive bound")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_unit_interval () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %f" x
  done

let test_rng_sample_distinct () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 100 do
    let s = Rng.sample rng 5 (Listx.range 0 10) in
    Alcotest.(check int) "size" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (Listx.distinct_count s)
  done

let test_rng_pick_member () =
  let rng = Rng.create ~seed:3 in
  let xs = [ 2; 4; 8 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (List.mem (Rng.pick rng xs) xs)
  done

let test_listx_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 5);
  Alcotest.(check (list int)) "empty" [] (Listx.range 5 5);
  Alcotest.(check (list int)) "reversed empty" [] (Listx.range 7 3)

let test_listx_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take over" [ 1 ] (Listx.take 5 [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop all" [] (Listx.drop 9 [ 1; 2 ])

let test_listx_chunks () =
  Alcotest.(check (list (list int)))
    "chunks" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Listx.chunks 2 [ 1; 2; 3; 4; 5 ]);
  Alcotest.check_raises "bad size" (Invalid_argument "Listx.chunks") (fun () ->
      ignore (Listx.chunks 0 [ 1 ]))

let test_listx_sets () =
  Alcotest.(check bool) "disjoint" true (Listx.disjoint [ 1; 2 ] [ 3 ]);
  Alcotest.(check bool) "not disjoint" false (Listx.disjoint [ 1; 2 ] [ 2 ]);
  Alcotest.(check bool) "subset" true (Listx.subset [ 1 ] [ 1; 2 ]);
  Alcotest.(check bool) "not subset" false (Listx.subset [ 3 ] [ 1; 2 ]);
  Alcotest.(check (list int)) "intersect" [ 2 ] (Listx.intersect [ 1; 2 ] [ 2; 3 ]);
  Alcotest.(check bool)
    "pairwise disjoint" true
    (Listx.pairwise_disjoint [ [ 1 ]; [ 2 ]; [ 3 ] ]);
  Alcotest.(check bool)
    "pairwise overlap" false
    (Listx.pairwise_disjoint [ [ 1 ]; [ 2; 1 ] ])

let test_listx_combinations () =
  Alcotest.(check (list (list int)))
    "C(3,2)"
    [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ]
    (Listx.combinations 2 [ 1; 2; 3 ]);
  Alcotest.(check (list (list int))) "C(2,3) empty" [] (Listx.combinations 3 [ 1; 2 ]);
  Alcotest.(check (list (list int))) "C(n,0)" [ [] ] (Listx.combinations 0 [ 1 ])

let test_listx_min_max_by () =
  Alcotest.(check int) "min_by" 3 (Listx.min_by (fun x -> -x) [ 1; 3; 2 ]);
  Alcotest.(check int) "max_by" 3 (Listx.max_by Fun.id [ 1; 3; 2 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Listx.min_by: empty list")
    (fun () -> ignore (Listx.min_by Fun.id []))

(* metrics: the registry is process-global, so every test uses its own
   "test.prim.*" names and asserts deltas, never absolute values *)

let test_metrics_counter () =
  let c = Metrics.counter "test.prim.counter" in
  let base = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" (base + 42) (Metrics.value c);
  (* same name, same instrument: the second lookup sees the increments *)
  Alcotest.(check int)
    "registration is idempotent" (base + 42)
    (Metrics.value (Metrics.counter "test.prim.counter"))

let test_metrics_kind_mismatch () =
  ignore (Metrics.counter "test.prim.kind");
  match Metrics.gauge "test.prim.kind" with
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch"
  | exception Invalid_argument _ -> ()

let test_metrics_gauge () =
  let g = Metrics.gauge "test.prim.gauge" in
  Metrics.gauge_set g 5;
  Metrics.gauge_max g 3;
  Alcotest.(check int) "watermark holds" 5 (Metrics.gauge_value g);
  Metrics.gauge_max g 9;
  Alcotest.(check int) "watermark rises" 9 (Metrics.gauge_value g)

let test_metrics_timer () =
  let t = Metrics.timer "test.prim.timer" in
  let calls = Metrics.timer_calls t in
  Alcotest.(check int) "result threads through" 42
    (Metrics.time t (fun () -> 42));
  Alcotest.(check int) "call counted" (calls + 1) (Metrics.timer_calls t);
  Alcotest.(check bool) "ns non-negative" true (Metrics.timer_ns t >= 0);
  (try Metrics.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int)
    "raising call still counted" (calls + 2)
    (Metrics.timer_calls t)

let test_metrics_snapshot_delta () =
  let c = Metrics.counter "test.prim.delta" in
  let before = Metrics.snapshot () in
  Metrics.incr c;
  Metrics.incr c;
  let d = Metrics.delta ~before ~after:(Metrics.snapshot ()) in
  Alcotest.(check (option int))
    "delta isolates the two increments" (Some 2)
    (List.assoc_opt "test.prim.delta" d)

let test_metrics_probe () =
  let cell = ref 7 in
  Metrics.probe "test.prim.probe" (fun () -> !cell);
  Alcotest.(check (option int))
    "probe read at snapshot" (Some 7)
    (List.assoc_opt "test.prim.probe" (Metrics.snapshot ()));
  cell := 9;
  Alcotest.(check (option int))
    "probe is lazy" (Some 9)
    (List.assoc_opt "test.prim.probe" (Metrics.snapshot ()))

let test_metrics_json () =
  Alcotest.(check string)
    "flat object" "{\n  \"a.b\": 1,\n  \"c\": -2\n}\n"
    (Metrics.to_json [ ("a.b", 1); ("c", -2) ])

let test_metrics_concurrent_increments () =
  (* the whole point of the sharded counters: concurrent domains must
     never lose an increment *)
  let c = Metrics.counter "test.prim.mt" in
  let base = Metrics.value c in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metrics.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (base + 40_000) (Metrics.value c)

(* property tests *)

let binomial n k =
  let rec go acc i = if i > k then acc else go (acc * (n - i + 1) / i) (i + 1) in
  if k < 0 || k > n then 0 else go 1 1

let prop_combinations_count =
  QCheck.Test.make ~name:"combinations count = C(n,k)" ~count:100
    QCheck.(pair (int_range 0 8) (int_range 0 10))
    (fun (k, n) ->
      List.length (Listx.combinations k (Listx.range 0 n)) = binomial n k)

let prop_combinations_distinct_sorted =
  QCheck.Test.make ~name:"combinations are distinct sublists" ~count:50
    QCheck.(pair (int_range 0 5) (int_range 0 8))
    (fun (k, n) ->
      let cs = Listx.combinations k (Listx.range 0 n) in
      List.length (List.sort_uniq compare cs) = List.length cs
      && List.for_all (fun c -> List.sort compare c = c) cs)

let prop_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:100
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let rng = Rng.create ~seed in
      List.sort compare (Rng.shuffle rng xs) = List.sort compare xs)

let prop_chunks_flatten =
  QCheck.Test.make ~name:"chunks flatten back" ~count:100
    QCheck.(pair (int_range 1 5) (small_list int))
    (fun (k, xs) -> List.concat (Listx.chunks k xs) = xs)

let suites =
  [
    ( "prim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "split" `Quick test_rng_split_independent;
        Alcotest.test_case "split_at indexed" `Quick test_rng_split_at_indexed;
        Alcotest.test_case "split_at pure" `Quick test_rng_split_at_pure;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "float range" `Quick test_rng_float_unit_interval;
        Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
        Alcotest.test_case "pick member" `Quick test_rng_pick_member;
      ] );
    ( "prim.listx",
      [
        Alcotest.test_case "range" `Quick test_listx_range;
        Alcotest.test_case "take/drop" `Quick test_listx_take_drop;
        Alcotest.test_case "chunks" `Quick test_listx_chunks;
        Alcotest.test_case "set ops" `Quick test_listx_sets;
        Alcotest.test_case "combinations" `Quick test_listx_combinations;
        Alcotest.test_case "min/max by" `Quick test_listx_min_max_by;
      ] );
    ( "prim.metrics",
      [
        Alcotest.test_case "counter" `Quick test_metrics_counter;
        Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
        Alcotest.test_case "gauge watermark" `Quick test_metrics_gauge;
        Alcotest.test_case "timer" `Quick test_metrics_timer;
        Alcotest.test_case "snapshot delta" `Quick test_metrics_snapshot_delta;
        Alcotest.test_case "probe" `Quick test_metrics_probe;
        Alcotest.test_case "json" `Quick test_metrics_json;
        Alcotest.test_case "concurrent increments" `Quick
          test_metrics_concurrent_increments;
      ] );
    Test_util.qsuite "prim.properties"
      [
        prop_combinations_count;
        prop_combinations_distinct_sorted;
        prop_shuffle_permutes;
        prop_chunks_flatten;
      ];
  ]
