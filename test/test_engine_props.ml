(* Fuzz / property tests of the engine's structural invariants: for
   every algorithm, adversary and seed, the recorded run must satisfy
   the model's bookkeeping laws. *)

module Sim = Ksa_sim
module FP = Sim.Failure_pattern
module Adv = Sim.Adversary
module Rng = Ksa_prim.Rng

let distinct = Sim.Value.distinct_inputs

type runner = { name : string; go : seed:int -> n:int -> f:int -> Sim.Run.t }

let runners =
  let mk_adv rng = function
    | 0 -> Adv.fair ~rng
    | 1 -> Adv.round_robin ()
    | 2 -> Adv.fair_lossy ~rng ~p_defer:0.5
    | _ -> Adv.eventually_lockstep ~rng ~gst:20 ~p_defer:0.5
  in
  let kset ~seed ~n ~f =
    let l = max 1 (n - f) in
    let module K = Ksa_algo.Kset_flp.Make (struct
      let l = l
    end) in
    let module E = Sim.Engine.Make (K) in
    let rng = Rng.create ~seed in
    let dead = Rng.sample rng f (List.init n Fun.id) in
    E.run ~max_steps:5_000 ~n ~inputs:(distinct n)
      ~pattern:(FP.initial_dead ~n ~dead)
      (mk_adv rng (seed mod 4))
  in
  let naive ~seed ~n ~f =
    ignore f;
    let module N = Ksa_algo.Naive_min.Make (struct
      let wait_for = 2
    end) in
    let module E = Sim.Engine.Make (N) in
    let rng = Rng.create ~seed in
    E.run ~max_steps:5_000 ~n ~inputs:(distinct n) ~pattern:(FP.none ~n)
      (mk_adv rng (seed mod 4))
  in
  let echo ~seed ~n ~f =
    let rng = Rng.create ~seed in
    let dead = Rng.sample rng (min f (n - 1)) (List.init n Fun.id) in
    Test_util.Echo_engine.run ~max_steps:5_000 ~n ~inputs:(distinct n)
      ~pattern:(FP.initial_dead ~n ~dead)
      (mk_adv rng (seed mod 4))
  in
  [ { name = "kset"; go = kset }; { name = "naive"; go = naive };
    { name = "echo"; go = echo } ]

(* ---------- invariants ---------- *)

let check_invariants (run : Sim.Run.t) =
  let events = run.Sim.Run.events in
  (* 1. event times are 1, 2, 3, ... *)
  List.iteri
    (fun i (ev : Sim.Event.t) ->
      if ev.time <> i + 1 then failwith "times not consecutive")
    events;
  (* 2. every delivered id was sent exactly once, before its delivery,
        to the delivering process *)
  let sent = Hashtbl.create 64 in
  List.iter
    (fun (ev : Sim.Event.t) ->
      List.iter
        (fun (id, dst) ->
          if Hashtbl.mem sent id then failwith "duplicate message id";
          Hashtbl.add sent id (ev.pid, dst, ev.time))
        ev.sent)
    events;
  let delivered = Hashtbl.create 64 in
  List.iter
    (fun (ev : Sim.Event.t) ->
      List.iter
        (fun (id, src) ->
          if Hashtbl.mem delivered id then failwith "double delivery";
          Hashtbl.add delivered id ();
          match Hashtbl.find_opt sent id with
          | None -> failwith "delivered a never-sent message"
          | Some (s, dst, t) ->
              if s <> src then failwith "sender mismatch";
              if dst <> ev.pid then failwith "recipient mismatch";
              if t > ev.time then failwith "delivered before being sent")
        ev.delivered)
    events;
  (* 3. crashed processes take no steps past their crash time *)
  List.iter
    (fun (ev : Sim.Event.t) ->
      match FP.crash_time run.Sim.Run.pattern ev.pid with
      | Some ct when ev.time > ct -> failwith "crashed process stepped"
      | Some _ | None -> ())
    events;
  (* 4. decisions match the event log exactly *)
  let event_decisions =
    List.filter_map
      (fun (ev : Sim.Event.t) ->
        Option.map (fun v -> (ev.pid, v, ev.time)) ev.decision)
      events
  in
  if List.sort compare event_decisions <> run.Sim.Run.decisions then
    failwith "decision list does not match events";
  (* 5. at most one decision per process *)
  let pids = List.map (fun (p, _, _) -> p) run.Sim.Run.decisions in
  if List.length (List.sort_uniq compare pids) <> List.length pids then
    failwith "process decided twice";
  (* 6. state ids are valid registry ids, and the trace mirrors the
     event log: per pid, the event state-id sequence equals the trace
     step row *)
  List.iter
    (fun (ev : Sim.Event.t) ->
      if ev.state_id < 0 then failwith "bad state id")
    events;
  let trace = run.Sim.Run.trace in
  for p = 0 to run.Sim.Run.n - 1 do
    let from_events =
      List.filter_map
        (fun (ev : Sim.Event.t) ->
          if ev.pid = p then Some ev.state_id else None)
        events
    in
    let from_trace =
      Array.to_list (Array.map (fun (s : Sim.Trace.step) -> s.state_id) trace.Sim.Trace.steps.(p))
    in
    if from_events <> from_trace then failwith "trace diverges from event log"
  done

let prop_engine_invariants =
  QCheck.Test.make ~name:"engine invariants over fuzzed runs" ~count:150
    QCheck.(triple small_int (int_range 2 8) (int_range 0 3))
    (fun (seed, n, f) ->
      QCheck.assume (f < n);
      List.for_all
        (fun r ->
          match check_invariants (r.go ~seed ~n ~f) with
          | () -> true
          | exception Failure msg ->
              QCheck.Test.fail_reportf "%s: %s" r.name msg)
        runners)

(* a chaos-monkey adversary: emits syntactically random actions; the
   engine must either apply them or reject them with Invalid_action,
   and the resulting run must still satisfy all invariants *)
let chaos_monkey rng =
  let steps = ref 0 in
  let next (obs : Adv.obs) =
    incr steps;
    if !steps > 300 then Adv.Halt
    else
      match Rng.int rng 10 with
      | 0 -> Adv.Drop [ Rng.int rng 50 ]
      | 1 -> Adv.Step { pid = Rng.int rng (obs.n + 2); deliver = [] }
      | 2 -> Adv.Step { pid = Rng.int rng obs.n; deliver = [ Rng.int rng 100 ] }
      | _ -> (
          match Adv.alive obs with
          | [] -> Adv.Halt
          | candidates ->
              let pid = Rng.pick rng candidates in
              let mine = Adv.pending_for obs pid in
              let deliver = List.filter (fun _ -> Rng.bool rng) mine in
              Adv.Step { pid; deliver })
  in
  { Adv.describe = "chaos-monkey"; next }

let prop_chaos_monkey_cannot_corrupt =
  QCheck.Test.make ~name:"invalid actions are rejected, state stays sound"
    ~count:60
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let module E = Test_util.Echo_engine in
      let pattern = FP.of_crash_times ~n ((0, 3) :: []) in
      let adv = chaos_monkey rng in
      let config = ref (E.init ~n ~inputs:(distinct n)) in
      let rejected = ref 0 in
      (try
         for _ = 1 to 200 do
           match adv.Adv.next (E.observe ~pattern !config) with
           | exception _ -> ()
           | action -> (
               match E.apply ~pattern !config action with
               | Some c -> config := c
               | None -> raise Exit
               | exception E.Invalid_action _ -> incr rejected)
         done
       with Exit -> ());
      let run = E.finish !config ~pattern Sim.Run.Halted_by_adversary in
      match check_invariants run with
      | () -> true
      | exception Failure msg -> QCheck.Test.fail_reportf "corrupted: %s" msg)

let suites =
  [
    Test_util.qsuite "sim.engine_properties"
      [ prop_engine_invariants; prop_chaos_monkey_cannot_corrupt ];
  ]
