module Sim = Ksa_sim
module Rng = Ksa_prim.Rng
module FP = Sim.Failure_pattern
module Adv = Sim.Adversary
module E = Test_util.Echo_engine

let distinct = Sim.Value.distinct_inputs

(* ---------- Failure patterns ---------- *)

let test_pattern_none () =
  let p = FP.none ~n:4 in
  Alcotest.(check (list int)) "all correct" [ 0; 1; 2; 3 ] (FP.correct p);
  Alcotest.(check (list int)) "none faulty" [] (FP.faulty p);
  Alcotest.(check int) "f=0" 0 (FP.f_count p)

let test_pattern_initial_dead () =
  let p = FP.initial_dead ~n:4 ~dead:[ 1; 3 ] in
  Alcotest.(check (list int)) "faulty" [ 1; 3 ] (FP.faulty p);
  Alcotest.(check (list int)) "F(0)" [ 1; 3 ] (FP.crashed_at p ~time:0);
  Alcotest.(check bool) "crashed now" true (FP.is_crashed p 1 ~time:0)

let test_pattern_crash_times () =
  let p = FP.of_crash_times ~n:3 [ (2, 5) ] in
  Alcotest.(check bool) "not crashed at 4" false (FP.is_crashed p 2 ~time:4);
  Alcotest.(check bool) "crashed at 5" true (FP.is_crashed p 2 ~time:5);
  Alcotest.(check (option int)) "crash time" (Some 5) (FP.crash_time p 2);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Failure_pattern: duplicate pid") (fun () ->
      ignore (FP.of_crash_times ~n:3 [ (1, 2); (1, 3) ]))

let test_pattern_restrict () =
  let p = FP.restrict_to (FP.none ~n:5) [ 1; 2 ] in
  Alcotest.(check (list int)) "outside dead" [ 0; 3; 4 ] (FP.faulty p);
  Alcotest.(check (list int)) "inside correct" [ 1; 2 ] (FP.correct p)

let test_pattern_merge () =
  let fa = FP.of_crash_times ~n:4 [ (0, 3) ] in
  let fb = FP.of_crash_times ~n:4 [ (1, 7); (0, 9) ] in
  let m = FP.merge ~inside:[ 0 ] fa fb in
  Alcotest.(check (option int)) "inside from fa" (Some 3) (FP.crash_time m 0);
  Alcotest.(check (option int)) "outside from fb" (Some 7) (FP.crash_time m 1);
  Alcotest.(check (option int)) "correct elsewhere" None (FP.crash_time m 2)

(* ---------- Engine semantics ---------- *)

let test_initial_dead_never_step () =
  let pattern = FP.initial_dead ~n:3 ~dead:[ 0 ] in
  let run =
    E.run ~n:3 ~inputs:(distinct 3) ~pattern (Adv.round_robin ())
  in
  Alcotest.(check bool) "p0 took no step" true
    (Sim.Run.steps_of run 0 = []);
  Alcotest.(check bool) "all correct decided" true (Sim.Run.all_correct_decided run)

let test_invalid_step_of_crashed () =
  let pattern = FP.initial_dead ~n:2 ~dead:[ 0 ] in
  let c = E.init ~n:2 ~inputs:(distinct 2) in
  Alcotest.(check bool) "raises" true
    (match E.apply ~pattern c (Adv.Step { pid = 0; deliver = [] }) with
    | exception E.Invalid_action _ -> true
    | _ -> false)

let test_invalid_delivery () =
  let pattern = FP.none ~n:2 in
  let c = E.init ~n:2 ~inputs:(distinct 2) in
  Alcotest.(check bool) "unknown message id" true
    (match E.apply ~pattern c (Adv.Step { pid = 0; deliver = [ 42 ] }) with
    | exception E.Invalid_action _ -> true
    | _ -> false)

let test_wrong_addressee () =
  let pattern = FP.none ~n:3 in
  let c = E.init ~n:3 ~inputs:(distinct 3) in
  (* p0 steps and broadcasts pings: ids 0 (to p1), 1 (to p2) *)
  let c =
    Option.get (E.apply ~pattern c (Adv.Step { pid = 0; deliver = [] }))
  in
  Alcotest.(check bool) "deliver p2's message to p1 fails" true
    (match E.apply ~pattern c (Adv.Step { pid = 1; deliver = [ 1 ] }) with
    | exception E.Invalid_action _ -> true
    | _ -> false)

let test_drop_requires_crashed_sender () =
  let pattern = FP.none ~n:2 in
  let c = E.init ~n:2 ~inputs:(distinct 2) in
  let c = Option.get (E.apply ~pattern c (Adv.Step { pid = 0; deliver = [] })) in
  Alcotest.(check bool) "drop from live sender fails" true
    (match E.apply ~pattern c (Adv.Drop [ 0 ]) with
    | exception E.Invalid_action _ -> true
    | _ -> false)

let test_drop_from_crashed_sender () =
  let pattern = FP.of_crash_times ~n:2 [ (0, 1) ] in
  let c = E.init ~n:2 ~inputs:(distinct 2) in
  (* p0's single allowed step at time 1 broadcasts its ping *)
  let c = Option.get (E.apply ~pattern c (Adv.Step { pid = 0; deliver = [] })) in
  Alcotest.(check int) "one pending" 1 (List.length (E.pending c));
  let c = Option.get (E.apply ~pattern c (Adv.Drop [ 0 ])) in
  Alcotest.(check int) "dropped" 0 (List.length (E.pending c))

let test_write_once_decision () =
  (* a deliberately buggy algorithm that decides twice differently *)
  let module Bad = struct
    type state = int
    type message = unit

    let name = "bad"
    let uses_fd = false
    let init ~n:_ ~me:_ ~input:_ = 0

    let step st ~received:_ ~fd:_ = (st + 1, [], Some st)
    (* decides 0, then 1, then 2... *)

    let canon (st : state) = st
    let canon_message (m : message) = m
    let forge_pool ~n:_ ~values:_ = []
    let pp_state ppf st = Format.pp_print_int ppf st
    let pp_message _ () = ()
  end in
  let module Eb = Sim.Engine.Make (Bad) in
  let pattern = FP.none ~n:1 in
  let c = Eb.init ~n:1 ~inputs:[| 0 |] in
  let c = Option.get (Eb.apply ~pattern c (Adv.Step { pid = 0; deliver = [] })) in
  Alcotest.(check bool) "second different decision raises" true
    (match Eb.apply ~pattern c (Adv.Step { pid = 0; deliver = [] }) with
    | exception Eb.Double_decision 0 -> true
    | _ -> false)

let test_event_log_chronological () =
  let pattern = FP.none ~n:2 in
  let run = E.run ~n:2 ~inputs:(distinct 2) ~pattern (Adv.round_robin ()) in
  let times = List.map (fun (ev : Sim.Event.t) -> ev.time) run.Sim.Run.events in
  Alcotest.(check (list int)) "times 1..k" (List.init (List.length times) (fun i -> i + 1)) times

let test_fd_required () =
  let module NeedsFd = struct
    type state = unit
    type message = unit

    let name = "needs-fd"
    let uses_fd = true
    let init ~n:_ ~me:_ ~input:_ = ()
    let step () ~received:_ ~fd:_ = ((), [], Some 0)
    let canon () = ()
    let canon_message () = ()
    let forge_pool ~n:_ ~values:_ = []
    let pp_state _ () = ()
    let pp_message _ () = ()
  end in
  let module En = Sim.Engine.Make (NeedsFd) in
  let pattern = FP.none ~n:1 in
  let c = En.init ~n:1 ~inputs:[| 0 |] in
  Alcotest.(check bool) "missing oracle raises" true
    (match En.apply ~pattern c (Adv.Step { pid = 0; deliver = [] }) with
    | exception En.Invalid_action _ -> true
    | _ -> false)

(* ---------- Run analyses ---------- *)

let test_received_before_decision () =
  let pattern = FP.none ~n:3 in
  let run = E.run ~n:3 ~inputs:(distinct 3) ~pattern (Adv.round_robin ()) in
  (* round-robin: p0 steps (no messages yet, doesn't decide), p1 and
     p2 receive pings and decide; p0 decides on its next step *)
  List.iter
    (fun p ->
      let senders = Sim.Run.received_before_decision run p in
      Alcotest.(check bool)
        (Printf.sprintf "p%d heard someone before deciding" p)
        true
        (not (Sim.Pid.Set.is_empty senders)))
    [ 0; 1; 2 ]

let test_receives_nothing_from_until () =
  let pattern = FP.initial_dead ~n:3 ~dead:[ 2 ] in
  let run = E.run ~n:3 ~inputs:(distinct 3) ~pattern (Adv.round_robin ()) in
  Alcotest.(check bool) "nothing from the dead" true
    (Sim.Run.receives_nothing_from_until run 0 ~from:[ 2 ] ~until:max_int)

(* ---------- Adversaries ---------- *)

let test_partition_withholds () =
  let pattern = FP.none ~n:4 in
  let adv = Adv.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] () in
  let run = E.run ~n:4 ~inputs:(distinct 4) ~pattern adv in
  Alcotest.(check bool) "all decided" true (Sim.Run.all_correct_decided run);
  (* within the prefix up to each side's decisions, no cross messages *)
  let t01 = Option.get (Sim.Run.last_decision_time run [ 0; 1 ]) in
  let t23 = Option.get (Sim.Run.last_decision_time run [ 2; 3 ]) in
  List.iter
    (fun p ->
      Alcotest.(check bool) "left hears only left" true
        (Sim.Run.receives_nothing_from_until run p ~from:[ 2; 3 ] ~until:t01))
    [ 0; 1 ];
  List.iter
    (fun p ->
      Alcotest.(check bool) "right hears only right" true
        (Sim.Run.receives_nothing_from_until run p ~from:[ 0; 1 ] ~until:t23))
    [ 2; 3 ]

let test_sequential_solo_order () =
  let pattern = FP.none ~n:4 in
  let adv = Adv.sequential_solo ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] in
  let run = E.run ~n:4 ~inputs:(distinct 4) ~pattern adv in
  Alcotest.(check bool) "all decided" true (Sim.Run.all_correct_decided run);
  let t01 = Option.get (Sim.Run.last_decision_time run [ 0; 1 ]) in
  let t2 = Option.get (Sim.Run.decision_time run 2) in
  Alcotest.(check bool) "group 1 first" true (t01 < t2)

let test_fair_terminates_many_seeds () =
  for seed = 1 to 30 do
    let rng = Rng.create ~seed in
    let pattern = FP.none ~n:5 in
    let run = E.run ~n:5 ~inputs:(distinct 5) ~pattern (Adv.fair ~rng) in
    if not (Sim.Run.all_correct_decided run) then
      Alcotest.failf "seed %d: %a" seed Sim.Run.pp_summary run
  done

let test_fair_lossy_terminates () =
  for seed = 1 to 10 do
    let rng = Rng.create ~seed in
    let pattern = FP.none ~n:4 in
    let run =
      E.run ~n:4 ~inputs:(distinct 4) ~pattern (Adv.fair_lossy ~rng ~p_defer:0.5)
    in
    if not (Sim.Run.all_correct_decided run) then
      Alcotest.failf "seed %d not decided" seed
  done

let test_crash_after_decision_drops () =
  let pattern = FP.of_crash_times ~n:3 [ (0, 1) ] in
  let inner = Adv.round_robin () in
  let adv = Adv.crash_after_decision ~inner ~victims:[ 0 ] in
  let run = E.run ~n:3 ~inputs:(distinct 3) ~pattern adv in
  (* p0's only step broadcast pings; they must all have been dropped:
     nobody ever receives from p0 *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "no message from the victim" true
        (Sim.Run.receives_nothing_from_until run p ~from:[ 0 ] ~until:max_int))
    [ 1; 2 ]

(* ---------- Determinism / replay ---------- *)

let test_runs_deterministic () =
  let go seed =
    let rng = Rng.create ~seed in
    E.run ~n:4 ~inputs:(distinct 4) ~pattern:(FP.none ~n:4) (Adv.fair ~rng)
  in
  let r1 = go 5 and r2 = go 5 in
  Alcotest.(check int) "same length" (Sim.Run.step_count r1) (Sim.Run.step_count r2);
  Alcotest.(check bool) "same events" true (r1.Sim.Run.events = r2.Sim.Run.events)

let test_replay_reproduces_run () =
  let rng = Rng.create ~seed:9 in
  let pattern = FP.none ~n:4 in
  let orig = E.run ~n:4 ~inputs:(distinct 4) ~pattern (Adv.fair ~rng) in
  let stream = Sim.Replay.project ~keep:(fun _ -> true) orig in
  let replayed =
    E.run ~n:4 ~inputs:(distinct 4) ~pattern (Sim.Replay.sequential [ stream ])
  in
  Alcotest.(check bool) "same decisions" true
    (orig.Sim.Run.decisions = replayed.Sim.Run.decisions);
  Alcotest.(check bool) "same state ids" true
    (List.map (fun (e : Sim.Event.t) -> (e.pid, e.state_id)) orig.Sim.Run.events
    = List.map (fun (e : Sim.Event.t) -> (e.pid, e.state_id)) replayed.Sim.Run.events);
  Alcotest.(check bool) "same traces" true
    (Sim.Trace.equal orig.Sim.Run.trace replayed.Sim.Run.trace)

(* ---------- Explorer ---------- *)

let test_explorer_trivial_safe () =
  let module Ex = Sim.Explorer.Make (Ksa_algo.Trivial.A) in
  match
    Ex.explore ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
      ~check:(fun _ -> None)
      ()
  with
  | Sim.Explorer.Safe stats ->
      Alcotest.(check bool) "complete" false stats.Sim.Explorer.budget_exhausted;
      Alcotest.(check bool) "some terminals" true (stats.Sim.Explorer.terminal_runs > 0)
  | Sim.Explorer.Violation _ -> Alcotest.fail "trivial cannot violate"

let test_explorer_finds_violation () =
  let module Ex = Sim.Explorer.Make (Ksa_algo.Trivial.A) in
  (* claim "consensus" about the trivial algorithm: must be refuted *)
  match
    Ex.explore ~n:2 ~inputs:(distinct 2) ~pattern:(FP.none ~n:2)
      ~check:(fun decisions ->
        let values = List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions) in
        if List.length values > 1 then Some "two values decided" else None)
      ()
  with
  | Sim.Explorer.Safe _ -> Alcotest.fail "should find a violation"
  | Sim.Explorer.Violation v ->
      Alcotest.(check string) "reason" "two values decided" v.reason

let test_explorer_rejects_fd_algorithms () =
  let module Ex = Sim.Explorer.Make (Ksa_algo.Synod.A) in
  Alcotest.(check bool) "invalid_arg" true
    (match
       Ex.explore ~n:2 ~inputs:(distinct 2) ~pattern:(FP.none ~n:2)
         ~check:(fun _ -> None)
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_explorer_rejects_late_crashes () =
  let module Ex = Sim.Explorer.Make (Ksa_algo.Trivial.A) in
  Alcotest.(check bool) "invalid_arg" true
    (match
       Ex.explore ~n:2 ~inputs:(distinct 2)
         ~pattern:(FP.of_crash_times ~n:2 [ (0, 3) ])
         ~check:(fun _ -> None)
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- crash-adversarial exploration ---------- *)

let test_crash_explorer_flp_gap () =
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module Ex = Sim.Explorer.Make (K) in
  (* budget 0: nothing can trap the protocol *)
  (match
     Ex.explore_with_crashes ~n:3 ~inputs:(distinct 3) ~crash_budget:0
       ~check:(fun _ -> None)
       ()
   with
  | Sim.Explorer.All_paths_decide stats ->
      Alcotest.(check bool) "complete" false stats.Sim.Explorer.budget_exhausted
  | Sim.Explorer.Stuck _ -> Alcotest.fail "no crash, no trap"
  | Sim.Explorer.Indeterminate _ -> Alcotest.fail "unexpected truncation"
  | Sim.Explorer.Safety_violation { reason; _ } -> Alcotest.fail reason);
  (* budget 1: the FLP trap must be found *)
  match
    Ex.explore_with_crashes ~n:3 ~inputs:(distinct 3) ~crash_budget:1
      ~check:(fun _ -> None)
      ()
  with
  | Sim.Explorer.Stuck { crashed; undecided_correct; _ } ->
      Alcotest.(check int) "one crash suffices" 1 (List.length crashed);
      Alcotest.(check bool) "someone is trapped" true (undecided_correct <> [])
  | Sim.Explorer.All_paths_decide _ -> Alcotest.fail "FLP trap missed"
  | Sim.Explorer.Indeterminate _ -> Alcotest.fail "unexpected truncation"
  | Sim.Explorer.Safety_violation { reason; _ } -> Alcotest.fail reason

let test_crash_explorer_trivial_untrappable () =
  let module Ex = Sim.Explorer.Make (Ksa_algo.Trivial.A) in
  match
    Ex.explore_with_crashes ~n:3 ~inputs:(distinct 3) ~crash_budget:2
      ~check:(fun _ -> None)
      ()
  with
  | Sim.Explorer.All_paths_decide _ -> ()
  | Sim.Explorer.Stuck _ -> Alcotest.fail "wait-free algorithms cannot be trapped"
  | Sim.Explorer.Indeterminate _ -> Alcotest.fail "unexpected truncation"
  | Sim.Explorer.Safety_violation { reason; _ } -> Alcotest.fail reason

let test_crash_explorer_safety_violation () =
  (* claiming consensus about the trivial algorithm: the crash
     explorer reports the safety violation, not a stuck state *)
  let module Ex = Sim.Explorer.Make (Ksa_algo.Trivial.A) in
  match
    Ex.explore_with_crashes ~n:2 ~inputs:(distinct 2) ~crash_budget:1
      ~check:(fun decisions ->
        let values =
          List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions)
        in
        if List.length values > 1 then Some "two values" else None)
      ()
  with
  | Sim.Explorer.Safety_violation { reason; _ } ->
      Alcotest.(check string) "reason" "two values" reason
  | Sim.Explorer.All_paths_decide _ | Sim.Explorer.Stuck _
  | Sim.Explorer.Indeterminate _ ->
      Alcotest.fail "violation expected"

let test_crash_explorer_valency () =
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module Ex = Sim.Explorer.Make (K) in
  let vals =
    Ex.reachable_decision_values ~n:3 ~inputs:(distinct 3) ~crash_budget:1 ()
  in
  Alcotest.(check bool) "multivalent under 1 crash" true (List.length vals >= 2);
  let vals0 =
    Ex.reachable_decision_values ~n:3 ~inputs:[| 7; 7; 7 |] ~crash_budget:1 ()
  in
  Alcotest.(check (list int)) "univalent with equal inputs" [ 7 ] vals0

let suites =
  [
    ( "sim.failure_pattern",
      [
        Alcotest.test_case "none" `Quick test_pattern_none;
        Alcotest.test_case "initial dead" `Quick test_pattern_initial_dead;
        Alcotest.test_case "crash times" `Quick test_pattern_crash_times;
        Alcotest.test_case "restrict" `Quick test_pattern_restrict;
        Alcotest.test_case "merge (Lemma 11.2)" `Quick test_pattern_merge;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "initially dead never step" `Quick test_initial_dead_never_step;
        Alcotest.test_case "crashed cannot step" `Quick test_invalid_step_of_crashed;
        Alcotest.test_case "invalid delivery" `Quick test_invalid_delivery;
        Alcotest.test_case "wrong addressee" `Quick test_wrong_addressee;
        Alcotest.test_case "drop needs crashed sender" `Quick test_drop_requires_crashed_sender;
        Alcotest.test_case "drop from crashed ok" `Quick test_drop_from_crashed_sender;
        Alcotest.test_case "write-once decision" `Quick test_write_once_decision;
        Alcotest.test_case "event log chronological" `Quick test_event_log_chronological;
        Alcotest.test_case "fd required" `Quick test_fd_required;
      ] );
    ( "sim.run",
      [
        Alcotest.test_case "received before decision" `Quick test_received_before_decision;
        Alcotest.test_case "receives nothing from dead" `Quick test_receives_nothing_from_until;
      ] );
    ( "sim.adversary",
      [
        Alcotest.test_case "partition withholds" `Quick test_partition_withholds;
        Alcotest.test_case "sequential solo order" `Quick test_sequential_solo_order;
        Alcotest.test_case "fair terminates (30 seeds)" `Quick test_fair_terminates_many_seeds;
        Alcotest.test_case "fair lossy terminates" `Quick test_fair_lossy_terminates;
        Alcotest.test_case "crash drops" `Quick test_crash_after_decision_drops;
      ] );
    ( "sim.replay",
      [
        Alcotest.test_case "deterministic" `Quick test_runs_deterministic;
        Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces_run;
      ] );
    ( "sim.explorer",
      [
        Alcotest.test_case "trivial safe" `Quick test_explorer_trivial_safe;
        Alcotest.test_case "finds violation" `Quick test_explorer_finds_violation;
        Alcotest.test_case "rejects fd algorithms" `Quick test_explorer_rejects_fd_algorithms;
        Alcotest.test_case "rejects late crashes" `Quick test_explorer_rejects_late_crashes;
        Alcotest.test_case "crash explorer: FLP gap" `Slow test_crash_explorer_flp_gap;
        Alcotest.test_case "crash explorer: wait-free untrappable" `Quick
          test_crash_explorer_trivial_untrappable;
        Alcotest.test_case "crash explorer: safety violation" `Quick
          test_crash_explorer_safety_violation;
        Alcotest.test_case "crash explorer: valency" `Slow test_crash_explorer_valency;
      ] );
  ]
