(* Parity between the sequential and multicore explorers, and
   soundness of the packed configuration keys.

   The parallel drivers admit every configuration against one shared
   sharded key table (Ksa_prim.Shardset) with a ticket-clamped
   admission counter, and move the frontier through work-stealing
   deques; because exploration folds delivered batches in canonical
   (sender, payload) order, the reachable key-set is a function of the
   initial configuration alone, and every search order — sequential
   DFS, or stealing workers at any domain count — must report exactly
   the same [configs_visited], [terminal_runs], and verdict whenever
   no budget truncates the search. *)

module Sim = Ksa_sim
module FP = Sim.Failure_pattern
module K2 = Ksa_algo.Kset_flp.Make (struct
  let l = 2
end)

let distinct = Sim.Value.distinct_inputs
let no_check _ = None

(* ---------- explore vs explore_par ---------- *)

let stats_of name = function
  | Sim.Explorer.Safe s -> s
  | Sim.Explorer.Violation _ -> Alcotest.fail (name ^ ": unexpected violation")

let check_stats_equal name (a : Sim.Explorer.stats) (b : Sim.Explorer.stats) =
  Alcotest.(check int)
    (name ^ ": configs_visited")
    a.Sim.Explorer.configs_visited b.Sim.Explorer.configs_visited;
  Alcotest.(check int)
    (name ^ ": terminal_runs")
    a.Sim.Explorer.terminal_runs b.Sim.Explorer.terminal_runs;
  Alcotest.(check bool)
    (name ^ ": budget_exhausted")
    a.Sim.Explorer.budget_exhausted b.Sim.Explorer.budget_exhausted

let test_parity_explore_n3 () =
  let module Ex = Sim.Explorer.Make (K2) in
  let seq =
    stats_of "seq"
      (Ex.explore ~max_depth:100_000 ~n:3 ~inputs:(distinct 3)
         ~pattern:(FP.none ~n:3) ~check:no_check ())
  in
  Alcotest.(check bool) "untruncated" false seq.Sim.Explorer.budget_exhausted;
  List.iter
    (fun domains ->
      let par =
        stats_of "par"
          (Ex.explore_par ~domains ~max_depth:100_000 ~n:3
             ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) ~check:no_check ())
      in
      check_stats_equal (Printf.sprintf "n3 domains=%d" domains) seq par)
    [ 1; 2; 4; 8 ]

let test_parity_explore_n4 () =
  (* Per-sender delivery on n=4 is a multi-minute search; the
     empty-or-all policy keeps the parity check exhaustive yet quick *)
  let module Ex = Sim.Explorer.Make (K2) in
  let policy = Sim.Explorer.Empty_or_all in
  let seq =
    stats_of "seq"
      (Ex.explore ~max_depth:100_000 ~policy ~n:4 ~inputs:(distinct 4)
         ~pattern:(FP.none ~n:4) ~check:no_check ())
  in
  Alcotest.(check bool) "untruncated" false seq.Sim.Explorer.budget_exhausted;
  let par =
    stats_of "par"
      (Ex.explore_par ~domains:3 ~max_depth:100_000 ~policy ~n:4
         ~inputs:(distinct 4) ~pattern:(FP.none ~n:4) ~check:no_check ())
  in
  check_stats_equal "n4 empty-or-all" seq par

let test_parity_terminal_sets () =
  (* beyond the counts: the parallel driver must surface exactly the
     sequential terminal decision sets through [on_terminal].
     Decision timestamps are path-dependent (terminal configurations
     are deduplicated on content, not on the route taken), so only
     the (pid, value) sets are compared. *)
  let module Ex = Sim.Explorer.Make (K2) in
  let collect f =
    let acc = ref [] in
    (match f (fun ds -> acc := List.map (fun (p, v, _) -> (p, v)) ds :: !acc) with
    | Sim.Explorer.Safe _ -> ()
    | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation");
    List.sort_uniq compare !acc
  in
  let seq =
    collect (fun on_terminal ->
        Ex.explore ~on_terminal ~max_depth:100_000 ~n:3 ~inputs:(distinct 3)
          ~pattern:(FP.none ~n:3) ~check:no_check ())
  in
  let par =
    collect (fun on_terminal ->
        Ex.explore_par ~domains:2 ~on_terminal ~max_depth:100_000 ~n:3
          ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) ~check:no_check ())
  in
  Alcotest.(check bool) "same terminal decision sets" true (seq = par)

let test_parity_violation () =
  (* a false claim about the trivial algorithm: every driver must
     refute it (no lost violations) *)
  let module Ex = Sim.Explorer.Make (Ksa_algo.Trivial.A) in
  let consensus_check decisions =
    let values =
      List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions)
    in
    if List.length values > 1 then Some "two values decided" else None
  in
  (match
     Ex.explore ~n:2 ~inputs:(distinct 2) ~pattern:(FP.none ~n:2)
       ~check:consensus_check ()
   with
  | Sim.Explorer.Violation v ->
      Alcotest.(check string) "seq reason" "two values decided" v.reason
  | Sim.Explorer.Safe _ -> Alcotest.fail "sequential driver lost the violation");
  match
    Ex.explore_par ~domains:2 ~n:2 ~inputs:(distinct 2)
      ~pattern:(FP.none ~n:2) ~check:consensus_check ()
  with
  | Sim.Explorer.Violation v ->
      Alcotest.(check string) "par reason" "two values decided" v.reason
  | Sim.Explorer.Safe _ -> Alcotest.fail "parallel driver lost the violation"

(* ---------- explore_with_crashes vs explore_with_crashes_par ---------- *)

let r_stats = function
  | Sim.Explorer.All_paths_decide s -> ("all_paths_decide", [], [], s)
  | Sim.Explorer.Stuck { crashed; undecided_correct; stats } ->
      ("stuck", crashed, undecided_correct, stats)
  | Sim.Explorer.Indeterminate _ ->
      Alcotest.fail "unexpected budget truncation"
  | Sim.Explorer.Safety_violation _ ->
      Alcotest.fail "unexpected safety violation"

let check_resilient_equal name a b =
  let va, ca, ua, sa = r_stats a and vb, cb, ub, sb = r_stats b in
  Alcotest.(check string) (name ^ ": verdict") va vb;
  Alcotest.(check (list int)) (name ^ ": crashed witness") ca cb;
  Alcotest.(check (list int)) (name ^ ": undecided witness") ua ub;
  check_stats_equal name sa sb

let test_parity_crashes_n3 () =
  let module Ex = Sim.Explorer.Make (K2) in
  let seq =
    Ex.explore_with_crashes ~n:3 ~inputs:(distinct 3) ~crash_budget:1
      ~check:no_check ()
  in
  List.iter
    (fun domains ->
      let par =
        Ex.explore_with_crashes_par ~domains ~n:3 ~inputs:(distinct 3)
          ~crash_budget:1 ~check:no_check ()
      in
      check_resilient_equal
        (Printf.sprintf "crash n3 domains=%d" domains)
        seq par)
    [ 2; 4; 8 ]

let test_parity_crashes_budget0 () =
  let module Ex = Sim.Explorer.Make (K2) in
  check_resilient_equal "crash n3 budget=0"
    (Ex.explore_with_crashes ~n:3 ~inputs:(distinct 3) ~crash_budget:0
       ~check:no_check ())
    (Ex.explore_with_crashes_par ~domains:2 ~n:3 ~inputs:(distinct 3)
       ~crash_budget:0 ~check:no_check ())

let test_parity_crashes_initially_dead () =
  (* L=3 on a 3-process system with one process already dead and one
     adversarial crash allowed: the subsystem can be trapped, and both
     drivers must exhibit the same canonical witness *)
  let module K3 = Ksa_algo.Kset_flp.Make (struct
    let l = 3
  end) in
  let module Ex = Sim.Explorer.Make (K3) in
  let seq =
    Ex.explore_with_crashes ~initially_dead:[ 0 ] ~n:3 ~inputs:(distinct 3)
      ~crash_budget:1 ~check:no_check ()
  in
  let par =
    Ex.explore_with_crashes_par ~domains:2 ~initially_dead:[ 0 ] ~n:3
      ~inputs:(distinct 3) ~crash_budget:1 ~check:no_check ()
  in
  (match seq with
  | Sim.Explorer.Stuck _ -> ()
  | _ -> Alcotest.fail "expected a stuck subsystem");
  check_resilient_equal "crash n3 initially-dead" seq par

let test_parity_reachable_values () =
  (* the valency probe: sequential and multicore drivers must report
     exactly the same reachable decision-value set *)
  let module Ex = Sim.Explorer.Make (K2) in
  let seq =
    Ex.reachable_decision_values ~n:3 ~inputs:(distinct 3) ~crash_budget:1 ()
  in
  Alcotest.(check bool) "multivalent" true (List.length seq > 1);
  List.iter
    (fun domains ->
      let par =
        Ex.reachable_decision_values_par ~domains ~n:3 ~inputs:(distinct 3)
          ~crash_budget:1 ()
      in
      Alcotest.(check (list int))
        (Printf.sprintf "reachable values domains=%d" domains)
        seq par)
    [ 1; 2; 4; 8 ]

(* ---------- budget truncation ---------- *)

let test_truncated_crashes_indeterminate () =
  (* a 10-configuration budget cannot close the n=3 crash-adversarial
     graph: the explorer must refuse to classify rather than claim
     All_paths_decide over an unexpanded frontier *)
  let module Ex = Sim.Explorer.Make (K2) in
  (match
     Ex.explore_with_crashes ~max_configs:10 ~n:3 ~inputs:(distinct 3)
       ~crash_budget:1 ~check:no_check ()
   with
  | Sim.Explorer.Indeterminate s ->
      Alcotest.(check bool)
        "seq exhausted" true s.Sim.Explorer.budget_exhausted;
      (* the admission clamp is exact: the sequential driver visits
         precisely the budget, never budget + frontier-width *)
      Alcotest.(check int)
        "seq visits exactly the budget" 10 s.Sim.Explorer.configs_visited
  | _ -> Alcotest.fail "sequential: expected Indeterminate under truncation");
  match
    Ex.explore_with_crashes_par ~domains:2 ~max_configs:10 ~n:3
      ~inputs:(distinct 3) ~crash_budget:1 ~check:no_check ()
  with
  | Sim.Explorer.Indeterminate s ->
      Alcotest.(check bool)
        "par exhausted" true s.Sim.Explorer.budget_exhausted;
      Alcotest.(check bool)
        "par stays within the budget" true
        (s.Sim.Explorer.configs_visited > 0
        && s.Sim.Explorer.configs_visited <= 10)
  | _ -> Alcotest.fail "parallel: expected Indeterminate under truncation"

let test_degenerate_budget_parity () =
  (* max_configs = 0 admits nothing, not even the root: both crash
     drivers must report Indeterminate with zero stats and never call
     [check] — the parallel driver used to expand the root before any
     budget accounting *)
  let module Ex = Sim.Explorer.Make (K2) in
  let checks = ref 0 in
  let counting _ =
    incr checks;
    None
  in
  let expect name = function
    | Sim.Explorer.Indeterminate s ->
        Alcotest.(check int)
          (name ^ ": nothing visited") 0 s.Sim.Explorer.configs_visited;
        Alcotest.(check int)
          (name ^ ": no terminals") 0 s.Sim.Explorer.terminal_runs;
        Alcotest.(check bool)
          (name ^ ": exhausted") true s.Sim.Explorer.budget_exhausted
    | _ -> Alcotest.fail (name ^ ": expected Indeterminate on a zero budget")
  in
  expect "seq"
    (Ex.explore_with_crashes ~max_configs:0 ~n:3 ~inputs:(distinct 3)
       ~crash_budget:1 ~check:counting ());
  expect "par"
    (Ex.explore_with_crashes_par ~domains:2 ~max_configs:0 ~n:3
       ~inputs:(distinct 3) ~crash_budget:1 ~check:counting ());
  Alcotest.(check int) "check never ran" 0 !checks

let test_truncated_explore_parity () =
  (* the ticketed admission clamp is fused with the shared dedup
     check, so tickets below the budget are dense and issued exactly
     once no matter how workers race: both drivers must visit exactly
     the budget, never budget + frontier-width *)
  let module Ex = Sim.Explorer.Make (K2) in
  let max_configs = 5 in
  let seq =
    stats_of "seq"
      (Ex.explore ~max_configs ~n:3 ~inputs:(distinct 3)
         ~pattern:(FP.none ~n:3) ~check:no_check ())
  in
  Alcotest.(check bool)
    "seq exhausted" true seq.Sim.Explorer.budget_exhausted;
  Alcotest.(check int)
    "seq visits exactly the budget" max_configs
    seq.Sim.Explorer.configs_visited;
  let par =
    stats_of "par"
      (Ex.explore_par ~domains:2 ~max_configs ~n:3 ~inputs:(distinct 3)
         ~pattern:(FP.none ~n:3) ~check:no_check ())
  in
  Alcotest.(check bool)
    "par exhausted" true par.Sim.Explorer.budget_exhausted;
  Alcotest.(check int)
    "par visits exactly the budget" max_configs
    par.Sim.Explorer.configs_visited

let test_exact_budget_is_not_truncation () =
  (* a budget exactly the size of the reachable space must complete
     with budget_exhausted = false: exhaustion means an unseen
     configuration was turned away, not that the budget was reached *)
  let module Ex = Sim.Explorer.Make (K2) in
  let full =
    stats_of "full"
      (Ex.explore ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
         ~check:no_check ())
  in
  let again =
    stats_of "again"
      (Ex.explore ~max_configs:full.Sim.Explorer.configs_visited ~n:3
         ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) ~check:no_check ())
  in
  Alcotest.(check int)
    "same space" full.Sim.Explorer.configs_visited
    again.Sim.Explorer.configs_visited;
  Alcotest.(check bool)
    "exact budget completes" false again.Sim.Explorer.budget_exhausted

(* ---------- crash-mask arithmetic ---------- *)

module Mask = Sim.Explorer.Mask

let naive_popcount m =
  let rec go i acc =
    if i >= Sys.int_size then acc else go (i + 1) (acc + ((m lsr i) land 1))
  in
  go 0 0

let test_mask_edges () =
  Alcotest.(check int) "popcount 0" 0 (Mask.popcount 0);
  Alcotest.(check int) "popcount 1" 1 (Mask.popcount 1);
  Alcotest.(check int)
    "popcount max_int" (Sys.int_size - 1)
    (Mask.popcount max_int);
  Alcotest.(check int) "popcount -1" Sys.int_size (Mask.popcount (-1));
  Alcotest.(check int) "popcount min_int" 1 (Mask.popcount min_int);
  Alcotest.(check (list int))
    "to_list" [ 0; 2 ]
    (Mask.to_list ~n:3 (Mask.add (Mask.add 0 2) 0));
  Alcotest.(check bool) "mem empty" false (Mask.mem 0 0)

let prop_popcount_matches_naive =
  QCheck.Test.make ~name:"Mask.popcount = naive bit fold" ~count:500 QCheck.int
    (fun m -> Mask.popcount m = naive_popcount m)

let prop_mask_add_mem =
  QCheck.Test.make ~name:"add/mem/popcount agree" ~count:200
    QCheck.(pair int (int_range 0 (Sys.int_size - 2)))
    (fun (m, p) ->
      let m' = Mask.add m p in
      Mask.mem m' p
      && Mask.popcount m'
         = Mask.popcount m + (if Mask.mem m p then 0 else 1)
      && Mask.add m' p = m')

let prop_mask_to_list_sound =
  QCheck.Test.make ~name:"to_list = members below n" ~count:200
    QCheck.(pair (int_range 0 255) (int_range 0 8))
    (fun (m, n) ->
      Mask.to_list ~n m
      = List.filter (fun p -> Mask.mem m p) (List.init n Fun.id))

(* ---------- key soundness ---------- *)

module E2 = Sim.Engine.Make (K2)

let step c pid deliver =
  match
    E2.apply ~pattern:(FP.none ~n:3) c (Sim.Adversary.Step { pid; deliver })
  with
  | Some c' -> c'
  | None -> Alcotest.fail "step refused"

let test_key_ignores_send_interleaving () =
  (* the same pending multiset assembled under two different send
     interleavings (hence different message ids) must collide *)
  let init () = E2.init_explore ~n:3 ~inputs:(distinct 3) () in
  let c01 = step (step (init ()) 0 []) 1 [] in
  let c10 = step (step (init ()) 1 []) 0 [] in
  Alcotest.(check bool) "keys collide" true
    (E2.key_equal (E2.key c01) (E2.key c10));
  Alcotest.(check bool) "orbit keys collide" true
    (E2.key_equal
       (E2.key ~reduction:Sim.Canon.Symmetry c01)
       (E2.key ~reduction:Sim.Canon.Symmetry c10))

let test_key_separates_distinct_configs () =
  let init = E2.init_explore ~n:3 ~inputs:(distinct 3) () in
  let c0 = step init 0 [] in
  let c1 = step init 1 [] in
  Alcotest.(check bool) "initial vs stepped" false
    (E2.key_equal (E2.key init) (E2.key c0));
  Alcotest.(check bool) "different steppers" false
    (E2.key_equal (E2.key c0) (E2.key c1));
  (* delivering a message changes the pending multiset and the state *)
  let c01 = step (step init 0 []) 1 [] in
  let inbox2 = List.map fst (E2.inbox c01 2) in
  Alcotest.(check bool) "inbox non-empty" true (inbox2 <> []);
  let delivered = step c01 2 inbox2 in
  let undelivered = step c01 2 [] in
  Alcotest.(check bool) "delivery distinguishes" false
    (E2.key_equal (E2.key delivered) (E2.key undelivered))

let test_key_extra_discriminates () =
  (* the crash explorers fold the crashed-set mask into the key *)
  let c = E2.init_explore ~n:3 ~inputs:(distinct 3) () in
  Alcotest.(check bool) "masks separate" false
    (E2.key_equal (E2.key ~crashed:0 c) (E2.key ~crashed:1 c));
  Alcotest.(check bool) "same mask collides" true
    (E2.key_equal (E2.key ~crashed:5 c) (E2.key ~crashed:5 c))

let test_key_exploration_agnostic () =
  (* the interning fallback for recorded configurations produces the
     same key as the incremental exploration path *)
  let ce = E2.init_explore ~n:3 ~inputs:(distinct 3) () in
  let cr = E2.init ~n:3 ~inputs:(distinct 3) in
  Alcotest.(check bool) "init keys agree" true
    (E2.key_equal (E2.key ce) (E2.key cr));
  let ce' = step ce 0 [] in
  let cr' = step cr 0 [] in
  Alcotest.(check bool) "stepped keys agree" true
    (E2.key_equal (E2.key ce') (E2.key cr'))

let suites =
  [
    ( "explore.parity",
      [
        Alcotest.test_case "n3 per-sender, 1/2/4/8 domains" `Quick
          test_parity_explore_n3;
        Alcotest.test_case "n4 empty-or-all" `Slow test_parity_explore_n4;
        Alcotest.test_case "terminal decision sets" `Quick
          test_parity_terminal_sets;
        Alcotest.test_case "violations are never lost" `Quick
          test_parity_violation;
        Alcotest.test_case "crash explorer, budget 1" `Slow
          test_parity_crashes_n3;
        Alcotest.test_case "crash explorer, budget 0" `Quick
          test_parity_crashes_budget0;
        Alcotest.test_case "crash explorer, initially dead" `Quick
          test_parity_crashes_initially_dead;
        Alcotest.test_case "reachable decision values" `Quick
          test_parity_reachable_values;
      ] );
    ( "explore.truncation",
      [
        Alcotest.test_case "crash explorer is indeterminate" `Quick
          test_truncated_crashes_indeterminate;
        Alcotest.test_case "zero budget admits nothing" `Quick
          test_degenerate_budget_parity;
        Alcotest.test_case "seq/par clamp parity" `Quick
          test_truncated_explore_parity;
        Alcotest.test_case "exact budget completes" `Quick
          test_exact_budget_is_not_truncation;
      ] );
    ( "explore.mask",
      [ Alcotest.test_case "edge cases" `Quick test_mask_edges ] );
    Test_util.qsuite "explore.mask.properties"
      [
        prop_popcount_matches_naive;
        prop_mask_add_mem;
        prop_mask_to_list_sound;
      ];
    ( "explore.keys",
      [
        Alcotest.test_case "send interleaving collides" `Quick
          test_key_ignores_send_interleaving;
        Alcotest.test_case "distinct configs separate" `Quick
          test_key_separates_distinct_configs;
        Alcotest.test_case "crash mask discriminates" `Quick
          test_key_extra_discriminates;
        Alcotest.test_case "recorded and exploration keys agree" `Quick
          test_key_exploration_agnostic;
      ] );
  ]
