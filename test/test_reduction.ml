(* Soundness of the reduction layer (Ksa_sim.Canon + the reduced
   explorers).

   Two independent lines of evidence:

   - unit/qcheck properties of the canonicalization itself: the
     witness permutation really maps a configuration onto its
     serialized representative (idempotence), relabelling movable
     processes never changes the orbit key (invariance), relabelling
     live processes does (no over-collapse), and delivery actions
     commute exactly when their steppers differ;

   - differential runs: for every n=3 subject the reduced explorers
     must report the same verdict, the same stuck witness, the same
     terminal decision sets and the same reachable decision values as
     the unreduced ones, sequentially and in parallel.  Only the
     configuration counts may differ — that is what the reduction is
     for. *)

module Sim = Ksa_sim
module Canon = Sim.Canon
module FP = Sim.Failure_pattern

module K2 = Ksa_algo.Kset_flp.Make (struct
  let l = 2
end)

module N2 = Ksa_algo.Naive_min.Make (struct
  let wait_for = 2
end)

let distinct = Sim.Value.distinct_inputs
let no_check _ = None
let reduced_modes = [ Canon.Symmetry; Canon.Symmetry_por ]
let mode_name = Canon.reduction_to_string

(* ---------- rows generator ---------- *)

(* Arbitrary well-formed interned rows: a handful of processes, any
   crashed subset, small fake state/payload ids, and pending triples
   over valid pids.  The canonicalization is pure integer arithmetic,
   so nothing here needs a real engine. *)
let rows_gen =
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    int_range 0 ((1 lsl n) - 1) >>= fun crashed ->
    array_size (return n) (int_range 0 50) >>= fun state_ids ->
    array_size (return n) (opt (int_range 0 3)) >>= fun decided ->
    list_size (int_range 0 12)
      (int_range 0 (n - 1) >>= fun src ->
       int_range 0 (n - 1) >>= fun dst ->
       int_range 0 100 >>= fun payload ->
       return (Canon.pack_triple src dst payload))
    >>= fun triples ->
    return { Canon.n; crashed; state_ids; decided; triples = Array.of_list triples })

let pp_rows (r : Canon.rows) =
  Printf.sprintf "n=%d crashed=%#x states=[%s] decided=[%s] triples=[%s]" r.n
    r.crashed
    (String.concat ";" (Array.to_list (Array.map string_of_int r.state_ids)))
    (String.concat ";"
       (Array.to_list
          (Array.map
             (function None -> "-" | Some v -> string_of_int v)
             r.decided)))
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun t ->
               Printf.sprintf "%d>%d:%d" (Canon.triple_src t)
                 (Canon.triple_dst t) (Canon.triple_payload t))
             r.triples)))

let arb_rows = QCheck.make ~print:pp_rows rows_gen

let orbit_key (rows : Canon.rows) =
  Canon.serialize ~crashed:rows.crashed (Canon.canonicalize rows)

(* ---------- canonicalization properties ---------- *)

let prop_witness_idempotent =
  QCheck.Test.make ~name:"canon: witness perm reaches a fixpoint" ~count:500
    arb_rows (fun rows ->
      let c = Canon.canonicalize rows in
      let rows' = Canon.permute_rows c.Canon.perm rows in
      let c' = Canon.canonicalize rows' in
      (* the permuted configuration IS the representative: same key,
         and re-canonicalizing it moves nothing *)
      orbit_key rows = orbit_key rows'
      && Canon.canonical_equal c c'
      && Array.to_list c'.Canon.perm = List.init rows.Canon.n Fun.id)

(* a random permutation of the movable set, identity elsewhere *)
let movable_shuffle_gen (rows : Canon.rows) =
  QCheck.Gen.(
    let movable = Canon.movable rows in
    shuffle_l movable >>= fun shuffled ->
    let perm = Array.init rows.Canon.n Fun.id in
    List.iter2 (fun p q -> perm.(p) <- q) movable shuffled;
    return perm)

let prop_orbit_invariance =
  QCheck.Test.make ~name:"canon: movable relabelling preserves the key"
    ~count:500
    (QCheck.make
       ~print:(fun (r, p) ->
         pp_rows r ^ " perm=["
         ^ String.concat ";" (Array.to_list (Array.map string_of_int p))
         ^ "]")
       QCheck.Gen.(rows_gen >>= fun r -> pair (return r) (movable_shuffle_gen r)))
    (fun (rows, perm) ->
      orbit_key rows = orbit_key (Canon.permute_rows perm rows))

let test_live_swap_separates () =
  (* relabelling LIVE processes must not collapse: the orbit relation
     is restricted to movable (crashed, unobservable) pids *)
  let rows =
    {
      Canon.n = 3;
      crashed = 0;
      state_ids = [| 10; 20; 30 |];
      decided = [| None; None; None |];
      triples = [||];
    }
  in
  let swap01 = [| 1; 0; 2 |] in
  Alcotest.(check bool)
    "live swap changes the key" false
    (orbit_key rows = orbit_key (Canon.permute_rows swap01 rows))

let test_crashed_state_elided () =
  (* two configurations differing only in a movable process's frozen
     local state (and its undeliverable inbox) share an orbit key *)
  let base state0 inbound0 =
    {
      Canon.n = 3;
      crashed = 1;
      (* p0 crashed *)
      state_ids = [| state0; 20; 30 |];
      decided = [| None; Some 1; None |];
      triples =
        [| Canon.pack_triple 1 2 7; Canon.pack_triple 1 0 inbound0 |];
    }
  in
  Alcotest.(check bool)
    "frozen state + dead-destination message elided" true
    (orbit_key (base 10 40) = orbit_key (base 11 41));
  (* but the live-destination traffic is retained *)
  let live state0 payload =
    {
      (base state0 40) with
      Canon.triples = [| Canon.pack_triple 1 2 payload |];
    }
  in
  Alcotest.(check bool)
    "live-destination payload retained" false
    (orbit_key (live 10 7) = orbit_key (live 10 8))

let test_movable_decided_multiset () =
  (* crashed-after-deciding processes are interchangeable: only the
     multiset of their outputs survives *)
  let rows d0 d1 =
    {
      Canon.n = 4;
      crashed = 0b0011;
      state_ids = [| 1; 2; 30; 40 |];
      decided = [| d0; d1; None; None |];
      triples = [||];
    }
  in
  Alcotest.(check bool)
    "decided multiset, not assignment" true
    (orbit_key (rows (Some 5) (Some 7)) = orbit_key (rows (Some 7) (Some 5)));
  Alcotest.(check bool)
    "different multisets separate" false
    (orbit_key (rows (Some 5) (Some 5)) = orbit_key (rows (Some 7) (Some 5)))

(* ---------- delivery actions ---------- *)

let act ?(sends = 0) pid deliveries = Canon.Action.make ~pid ~deliveries ~sends

let prop_independent_iff_disjoint =
  QCheck.Test.make
    ~name:"actions: independent iff distinct steppers and no cross-send"
    ~count:500
    QCheck.(
      pair
        (triple (int_range 0 7) (small_list small_nat) (int_range 0 255))
        (triple (int_range 0 7) (small_list small_nat) (int_range 0 255)))
    (fun ((p, ds, sp), (q, es, sq)) ->
      let expected =
        p <> q && sp land (1 lsl q) = 0 && sq land (1 lsl p) = 0
      in
      Canon.Action.independent (act ~sends:sp p ds) (act ~sends:sq q es)
      = expected
      && Ksa_core.Independence.actions_commute (act ~sends:sp p ds)
           (act ~sends:sq q es)
         = expected)

let test_send_breaks_independence () =
  (* the reviewer's counterexample shape: distinct steppers are NOT
     enough once one of them sends to the other — under the bucket
     policies the send replaces the receiver's offered batches, so
     the covering interleaving does not exist *)
  let a = act ~sends:(1 lsl 2) 0 [] in
  let b = act 2 [ 5 ] in
  Alcotest.(check bool)
    "send to the other's stepper is dependent" false
    (Canon.Action.independent a b);
  Alcotest.(check bool)
    "dependence is symmetric in the send direction" false
    (Canon.Action.independent b a);
  Alcotest.(check bool)
    "identity ignores the send mask" true
    (Canon.Action.equal a (act 0 []))

let prop_digest_order_insensitive =
  QCheck.Test.make ~name:"actions: digest ignores sleep-set order" ~count:200
    QCheck.(small_list (pair (int_range 0 7) (small_list small_nat)))
    (fun specs ->
      let acts = List.map (fun (p, ds) -> act p ds) specs in
      Canon.Action.digest acts
      = Canon.Action.digest (List.rev acts)
      && Canon.Action.digest acts = Canon.Action.digest (acts @ acts))

let test_digest_separates () =
  Alcotest.(check bool)
    "different sets, different digests" false
    (Canon.Action.digest [ act 0 [ 1 ] ] = Canon.Action.digest [ act 0 [ 2 ] ]);
  Alcotest.(check bool)
    "pid matters" false
    (Canon.Action.digest [ act 0 [ 1 ] ] = Canon.Action.digest [ act 1 [ 1 ] ]);
  Alcotest.(check bool)
    "empty vs singleton" false
    (Canon.Action.digest [] = Canon.Action.digest [ act 0 [] ])

(* ---------- engine-level commutation ---------- *)

module E2 = Sim.Engine.Make (K2)

let estep c pid deliver =
  match
    E2.apply ~pattern:(FP.none ~n:3) c (Sim.Adversary.Step { pid; deliver })
  with
  | Some c' -> c'
  | None -> Alcotest.fail "step refused"

let test_independent_steps_commute () =
  (* the DPOR soundness premise, checked on the real engine: two
     delivery actions of distinct steppers reach the same
     configuration key in either order — including when one of them
     delivers a batch *)
  let init () = E2.init_explore ~reduction:Canon.Symmetry ~n:3 ~inputs:(distinct 3) () in
  let c = estep (estep (init ()) 0 []) 1 [] in
  let inbox2 = List.map fst (E2.inbox c 2) in
  Alcotest.(check bool) "inbox non-empty" true (inbox2 <> []);
  List.iter
    (fun reduction ->
      let ab = estep (estep c 0 []) 2 inbox2 in
      let ba = estep (estep c 2 inbox2) 0 [] in
      Alcotest.(check bool)
        (mode_name reduction ^ ": step/deliver commute")
        true
        (E2.key_equal (E2.key ~reduction ab) (E2.key ~reduction ba)))
    Canon.all_reductions;
  (* same stepper, different batches: dependent (keys differ) *)
  let all = estep c 2 inbox2 in
  let none = estep c 2 [] in
  Alcotest.(check bool)
    "same-pid actions are dependent" false
    (E2.key_equal (E2.key all) (E2.key none))

let test_sends_recorded_and_dependent () =
  (* kset_flp(l=2)'s first step broadcasts Hello, and a step that
     delivers a Hello enters stage 2 and broadcasts a Report: both
     must surface in the engine's send mask, and a broadcasting
     action must be dependent on every other pid's actions — this is
     the exact shape for which pid-distinctness alone was unsound *)
  let c0 =
    E2.init_explore ~reduction:Canon.Symmetry_por ~n:3 ~inputs:(distinct 3) ()
  in
  let c1 = estep c0 0 [] in
  let hello = E2.sends_between c0 c1 in
  Alcotest.(check bool)
    "first step broadcasts to pid 1" true
    (hello land (1 lsl 1) <> 0);
  Alcotest.(check bool)
    "first step broadcasts to pid 2" true
    (hello land (1 lsl 2) <> 0);
  let a = act ~sends:hello 0 [] in
  Alcotest.(check bool)
    "broadcasting step depends on a receiver's action" false
    (Canon.Action.independent a (act 1 []));
  (* an empty re-step of a started stage-1 process sends nothing and
     commutes with other steppers *)
  let c2 = estep c1 0 [] in
  Alcotest.(check int) "silent step has an empty mask" 0
    (E2.sends_between c1 c2);
  Alcotest.(check bool)
    "silent steps of distinct pids commute" true
    (Canon.Action.independent (act 0 []) (act 1 []));
  (* delivering pid 0's Hello tips pid 2 into stage 2: the delivery
     itself sends (the Report broadcast) *)
  let inbox2 = List.map fst (E2.inbox c2 2) in
  Alcotest.(check bool) "pid 2 has pending Hello" true (inbox2 <> []);
  let c3 = estep c2 2 inbox2 in
  let report = E2.sends_between c2 c3 in
  Alcotest.(check bool)
    "delivery-triggered broadcast names pid 0" true
    (report land (1 lsl 0) <> 0)

(* ---------- differential runs: reduced vs unreduced ---------- *)

let subjects =
  [
    ("kset_flp(l=2)", (module K2 : Sim.Algorithm.S));
    ("trivial", (module Ksa_algo.Trivial.A : Sim.Algorithm.S));
    ("naive_min(wait=2)", (module N2 : Sim.Algorithm.S));
  ]

let crash_verdict_token (o : Sim.Explorer.resilient_outcome) =
  match o with
  | Sim.Explorer.All_paths_decide _ -> "all-paths-decide"
  | Sim.Explorer.Safety_violation { reason; _ } -> "violation:" ^ reason
  | Sim.Explorer.Stuck { crashed; undecided_correct; _ } ->
      Printf.sprintf "stuck:{%s}/{%s}"
        (String.concat "," (List.map string_of_int crashed))
        (String.concat "," (List.map string_of_int undecided_correct))
  | Sim.Explorer.Indeterminate _ -> "indeterminate"

let test_differential_crash_verdicts () =
  List.iter
    (fun (name, (module A : Sim.Algorithm.S)) ->
      let module Ex = Sim.Explorer.Make (A) in
      let run ?reduction ?domains () =
        let o =
          match domains with
          | None ->
              Ex.explore_with_crashes ?reduction ~n:3 ~inputs:(distinct 3)
                ~crash_budget:1 ~check:no_check ()
          | Some d ->
              Ex.explore_with_crashes_par ?reduction ~domains:d ~n:3
                ~inputs:(distinct 3) ~crash_budget:1 ~check:no_check ()
        in
        crash_verdict_token o
      in
      let baseline = run () in
      Alcotest.(check bool)
        (name ^ ": baseline classified") true
        (baseline <> "indeterminate");
      List.iter
        (fun reduction ->
          Alcotest.(check string)
            (Printf.sprintf "%s: seq %s" name (mode_name reduction))
            baseline
            (run ~reduction ());
          Alcotest.(check string)
            (Printf.sprintf "%s: par %s" name (mode_name reduction))
            baseline
            (run ~reduction ~domains:2 ()))
        reduced_modes)
    subjects

let test_differential_decision_values () =
  List.iter
    (fun (name, (module A : Sim.Algorithm.S)) ->
      let module Ex = Sim.Explorer.Make (A) in
      let sorted = List.sort Sim.Value.compare in
      let baseline =
        sorted
          (Ex.reachable_decision_values ~n:3 ~inputs:(distinct 3)
             ~crash_budget:1 ())
      in
      Alcotest.(check bool) (name ^ ": some value reachable") true (baseline <> []);
      List.iter
        (fun reduction ->
          let seq =
            sorted
              (Ex.reachable_decision_values ~reduction ~n:3
                 ~inputs:(distinct 3) ~crash_budget:1 ())
          in
          let par =
            sorted
              (Ex.reachable_decision_values_par ~reduction ~domains:2 ~n:3
                 ~inputs:(distinct 3) ~crash_budget:1 ())
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: values seq %s" name (mode_name reduction))
            true (baseline = seq);
          Alcotest.(check bool)
            (Printf.sprintf "%s: values par %s" name (mode_name reduction))
            true (baseline = par))
        reduced_modes)
    subjects

let policies =
  [
    ("per-sender", Sim.Explorer.Per_sender);
    ("empty-or-all", Sim.Explorer.Empty_or_all);
  ]

let test_differential_terminal_sets () =
  (* crash-free exploration under sym+por must surface exactly the
     unreduced terminal decision sets: sleep sets prune alternate
     interleavings, never the states they lead to.  Run under both
     bucket-granular delivery policies — kset_flp broadcasts on
     delivery (stage-2 entry), so with asymmetric inputs this is the
     shape where a pid-distinctness independence relation pruned
     interleavings whose covering permutation does not exist. *)
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun (name, (module A : Sim.Algorithm.S)) ->
          let module Ex = Sim.Explorer.Make (A) in
          let label = name ^ "/" ^ pname in
          let collect ?reduction ?domains () =
            let acc = ref [] in
            let on_terminal ds =
              acc := List.map (fun (p, v, _) -> (p, v)) ds :: !acc
            in
            (match
               match domains with
               | None ->
                   Ex.explore ?reduction ~policy ~on_terminal ~n:3
                     ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
                     ~check:no_check ()
               | Some d ->
                   Ex.explore_par ?reduction ~domains:d ~policy ~on_terminal
                     ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
                     ~check:no_check ()
             with
            | Sim.Explorer.Safe s ->
                Alcotest.(check bool)
                  (label ^ ": untruncated") false
                  s.Sim.Explorer.budget_exhausted
            | Sim.Explorer.Violation _ -> Alcotest.fail (label ^ ": violation"));
            List.sort_uniq compare !acc
          in
          let baseline = collect () in
          List.iter
            (fun reduction ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: terminals seq %s" label
                   (mode_name reduction))
                true
                (baseline = collect ~reduction ());
              Alcotest.(check bool)
                (Printf.sprintf "%s: terminals par %s" label
                   (mode_name reduction))
                true
                (baseline = collect ~reduction ~domains:2 ()))
            reduced_modes)
        subjects)
    policies

let test_terminal_count_parity () =
  (* terminal_runs — and the number of on_terminal firings — count
     distinct terminal configuration keys, so they must agree between
     sym and sym+por even though sym+por re-admits configurations once
     per sleep digest *)
  let module Ex = Sim.Explorer.Make (K2) in
  List.iter
    (fun (pname, policy) ->
      let count ?domains reduction =
        let fired = ref 0 in
        let on_terminal _ = incr fired in
        match
          match domains with
          | None ->
              Ex.explore ~reduction ~policy ~on_terminal ~n:3
                ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) ~check:no_check ()
          | Some d ->
              Ex.explore_par ~reduction ~domains:d ~policy ~on_terminal ~n:3
                ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) ~check:no_check ()
        with
        | Sim.Explorer.Safe s -> (s.Sim.Explorer.terminal_runs, !fired)
        | Sim.Explorer.Violation _ -> Alcotest.fail (pname ^ ": violation")
      in
      let runs_sym, fired_sym = count Canon.Symmetry in
      Alcotest.(check bool)
        (pname ^ ": some terminal reached") true (runs_sym > 0);
      Alcotest.(check int)
        (pname ^ ": sym fires once per terminal") runs_sym fired_sym;
      List.iter
        (fun domains ->
          let runs_por, fired_por = count ?domains Canon.Symmetry_por in
          let tag = match domains with None -> "seq" | Some d ->
            Printf.sprintf "par(%d)" d in
          Alcotest.(check int)
            (Printf.sprintf "%s: terminal_runs sym = sym+por (%s)" pname tag)
            runs_sym runs_por;
          Alcotest.(check int)
            (Printf.sprintf "%s: on_terminal firings sym = sym+por (%s)" pname
               tag)
            runs_por fired_por)
        [ None; Some 2 ])
    policies

let test_reduction_reduces () =
  (* not a soundness property, but the reason the layer exists: on the
     kset_flp crash space the reduced admission count must be strictly
     smaller — if this starts failing the canon hooks have quietly
     stopped firing *)
  let module Ex = Sim.Explorer.Make (K2) in
  let visited reduction =
    match
      Ex.explore_with_crashes ~reduction ~n:3 ~inputs:(distinct 3)
        ~crash_budget:1 ~check:no_check ()
    with
    | Sim.Explorer.Stuck { stats; _ } -> stats.Sim.Explorer.configs_visited
    | o -> Alcotest.fail ("expected Stuck, got " ^ crash_verdict_token o)
  in
  let full = visited Canon.No_reduction in
  let reduced = visited Canon.Symmetry in
  Alcotest.(check bool)
    (Printf.sprintf "sym admits fewer configs (%d < %d)" reduced full)
    true (reduced < full)

let qcheck = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "reduction.canon",
      [
        qcheck prop_witness_idempotent;
        qcheck prop_orbit_invariance;
        Alcotest.test_case "live relabelling separates" `Quick
          test_live_swap_separates;
        Alcotest.test_case "crashed state + dead traffic elided" `Quick
          test_crashed_state_elided;
        Alcotest.test_case "movable decided multiset" `Quick
          test_movable_decided_multiset;
        qcheck prop_independent_iff_disjoint;
        Alcotest.test_case "cross-send breaks independence" `Quick
          test_send_breaks_independence;
        qcheck prop_digest_order_insensitive;
        Alcotest.test_case "digest separates distinct sets" `Quick
          test_digest_separates;
        Alcotest.test_case "independent engine steps commute" `Quick
          test_independent_steps_commute;
        Alcotest.test_case "send masks recorded and dependence-inducing" `Quick
          test_sends_recorded_and_dependent;
      ] );
    ( "reduction.differential",
      [
        Alcotest.test_case "crash verdicts agree across modes" `Quick
          test_differential_crash_verdicts;
        Alcotest.test_case "reachable decision values agree" `Quick
          test_differential_decision_values;
        Alcotest.test_case "terminal decision sets agree" `Quick
          test_differential_terminal_sets;
        Alcotest.test_case "terminal counts agree sym vs sym+por" `Quick
          test_terminal_count_parity;
        Alcotest.test_case "symmetry actually reduces" `Quick
          test_reduction_reduces;
      ] );
  ]
