(* Shared helpers for the test suite. *)

module Sim = Ksa_sim
module Rng = Ksa_prim.Rng

(* A tiny echo algorithm used to observe the engine's message
   plumbing: every process broadcasts one Ping, replies Pong to every
   Ping, and decides its own input once it has received at least one
   message of any kind (or immediately if [eager]). *)
module Echo = struct
  type message = Ping | Pong

  type state = {
    n : int;
    me : Sim.Pid.t;
    input : Sim.Value.t;
    started : bool;
    got : (Sim.Pid.t * message) list;
    decided : bool;
  }

  let name = "echo"
  let uses_fd = false

  let init ~n ~me ~input =
    { n; me; input; started = false; got = []; decided = false }

  let step st ~received ~fd =
    ignore fd;
    let st = { st with got = st.got @ received } in
    let pings =
      List.filter_map
        (fun (src, m) -> match m with Ping -> Some (src, Pong) | Pong -> None)
        received
    in
    let st, hello =
      if st.started then (st, [])
      else
        ( { st with started = true },
          List.filter_map
            (fun q -> if q = st.me then None else Some (q, Ping))
            (List.init st.n Fun.id) )
    in
    if (not st.decided) && st.got <> [] then
      ({ st with decided = true }, hello @ pings, Some st.input)
    else (st, hello @ pings, None)

  let canon (st : state) = st
  let canon_message (m : message) = m
  let forge_pool ~n:_ ~values:_ = [ Ping; Pong ]

  let pp_message ppf = function
    | Ping -> Format.pp_print_string ppf "ping"
    | Pong -> Format.pp_print_string ppf "pong"

  let pp_state ppf st = Format.fprintf ppf "{%a}" Sim.Pid.pp st.me
end

module Echo_engine = Sim.Engine.Make (Echo)

let check_ok what = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

let check_err what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error _ -> ()

let qsuite name props =
  (name, List.map QCheck_alcotest.to_alcotest props)
