(* Crash-safe campaigns: Durable framing and corruption detection,
   the monotonic clock, and — the load-bearing invariant — that a
   campaign interrupted mid-run and resumed from its checkpoint
   reports exactly the verdict and stats of an uninterrupted run, for
   every driver (explore / explore_with_crashes / fuzz, sequential
   and parallel), and that a worker-domain failure is supervised
   rather than fatal. *)

module Prim = Ksa_prim
module Durable = Prim.Durable
module Clock = Prim.Clock
module Metrics = Prim.Metrics
module Sim = Ksa_sim
module Checkpoint = Sim.Checkpoint
module FP = Sim.Failure_pattern
module K2 = Ksa_algo.Kset_flp.Make (struct
  let l = 2
end)

let distinct = Sim.Value.distinct_inputs
let no_check _ = None

let tmp_path suffix =
  let path = Filename.temp_file "ksa_ckpt" suffix in
  Sys.remove path;
  path

let with_tmp suffix f =
  let path = tmp_path suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let expect_error name = function
  | Ok _ -> Alcotest.fail (name ^ ": expected Error, got Ok")
  | Error e -> e

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_contains name ~sub e =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S mentions %S" name e sub)
    true (contains ~sub e)

(* ---------- Durable: atomic writes and framing ---------- *)

let test_atomic_roundtrip () =
  with_tmp ".bin" (fun path ->
      let data = String.init 1033 (fun i -> Char.chr (i * 7 mod 256)) in
      ok_or_fail (Durable.write_atomic ~path data);
      Alcotest.(check string) "roundtrip" data (ok_or_fail (Durable.read_file ~path));
      (* replacement is atomic: a second write fully supersedes *)
      ok_or_fail (Durable.write_atomic ~path "second");
      Alcotest.(check string) "replaced" "second"
        (ok_or_fail (Durable.read_file ~path)))

let test_atomic_write_error () =
  let path = "/nonexistent-dir-ksa/x.bin" in
  let e = expect_error "write" (Durable.write_atomic ~path "data") in
  check_contains "write error" ~sub:path e

let test_framed_roundtrip () =
  with_tmp ".rec" (fun path ->
      let payload = String.init 4096 (fun i -> Char.chr (i mod 251)) in
      ok_or_fail (Durable.write_framed ~path ~magic:"KSATEST1" ~version:3 payload);
      let version, back =
        ok_or_fail (Durable.read_framed ~path ~magic:"KSATEST1")
      in
      Alcotest.(check int) "version" 3 version;
      Alcotest.(check string) "payload" payload back)

let test_framed_truncated () =
  with_tmp ".rec" (fun path ->
      ok_or_fail
        (Durable.write_framed ~path ~magic:"KSATEST1" ~version:1
           (String.make 500 'x'));
      let whole = ok_or_fail (Durable.read_file ~path) in
      (* chop mid-payload, as a crash mid-write of a non-atomic file
         would: the frame must notice, not misparse *)
      ok_or_fail (Durable.write_atomic ~path (String.sub whole 0 100));
      let e =
        expect_error "truncated" (Durable.read_framed ~path ~magic:"KSATEST1")
      in
      check_contains "truncated" ~sub:"truncated" e;
      (* chop inside the 24-byte header too *)
      ok_or_fail (Durable.write_atomic ~path (String.sub whole 0 10));
      let e =
        expect_error "short header"
          (Durable.read_framed ~path ~magic:"KSATEST1")
      in
      check_contains "short header" ~sub:path e)

let test_framed_bitflip () =
  with_tmp ".rec" (fun path ->
      ok_or_fail
        (Durable.write_framed ~path ~magic:"KSATEST1" ~version:1
           (String.make 500 'x'));
      let whole = Bytes.of_string (ok_or_fail (Durable.read_file ~path)) in
      (* flip one bit in the middle of the payload *)
      let i = 24 + 250 in
      Bytes.set whole i (Char.chr (Char.code (Bytes.get whole i) lxor 0x10));
      ok_or_fail (Durable.write_atomic ~path (Bytes.to_string whole));
      let e =
        expect_error "bitflip" (Durable.read_framed ~path ~magic:"KSATEST1")
      in
      check_contains "bitflip" ~sub:"CRC mismatch" e)

let test_framed_bad_magic () =
  with_tmp ".rec" (fun path ->
      ok_or_fail (Durable.write_framed ~path ~magic:"KSATEST1" ~version:1 "p");
      let e =
        expect_error "magic" (Durable.read_framed ~path ~magic:"KSAOTHER")
      in
      check_contains "magic" ~sub:"magic" e)

let test_crc32_vector () =
  (* the standard check value of CRC-32/IEEE *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926 (Durable.crc32 "123456789");
  Alcotest.(check int) "chained = whole"
    (Durable.crc32 "123456789")
    (Durable.crc32 ~init:(Durable.crc32 "12345") "6789")

(* ---------- Clock ---------- *)

let test_clock_monotonic () =
  let last = ref (Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_ns () in
    if t < !last then Alcotest.fail "monotonic clock went backwards";
    last := t
  done;
  let since = Clock.now_ns () in
  Unix.sleepf 0.02;
  let e = Clock.elapsed_s ~since in
  Alcotest.(check bool)
    (Printf.sprintf "elapsed_s %.4f sane" e)
    true
    (e >= 0.015 && e < 5.0)

(* ---------- Checkpoint.load on damaged files ---------- *)

let test_load_missing () =
  let e =
    expect_error "missing" (Checkpoint.load ~path:"/tmp/ksa-no-such.ckpt")
  in
  check_contains "missing" ~sub:"ksa-no-such.ckpt" e

let test_load_wrong_version () =
  with_tmp ".ckpt" (fun path ->
      ok_or_fail (Durable.write_framed ~path ~magic:"KSACKPT1" ~version:99 "x");
      let e = expect_error "version" (Checkpoint.load ~path) in
      check_contains "version" ~sub:"version" e)

let test_load_garbage_body () =
  with_tmp ".ckpt" (fun path ->
      ok_or_fail
        (Durable.write_framed ~path ~magic:"KSACKPT1" ~version:4
           "not a marshalled tuple");
      let e = expect_error "garbage" (Checkpoint.load ~path) in
      check_contains "garbage" ~sub:"undecodable" e)

(* ---------- interrupted campaigns resume to identical verdicts ----------

   The interrupt closures below fire after a fixed number of polls, so
   each test cuts its campaign mid-run deterministically (sequential
   drivers poll once per loop iteration).  The assertions do not
   depend on where the cut lands: any cut must resume to the
   uninterrupted verdict. *)

let poll_interrupt n =
  let polls = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add polls 1 >= n

let sink ~path ~kind =
  (* default 5s cadence: only the final interrupt flush writes, so
     the file's content is exactly the mid-run cut *)
  {
    Checkpoint.path;
    kind;
    fingerprint = "test";
    policy = Checkpoint.default_policy;
  }

let load_restored path =
  let t = ok_or_fail (Checkpoint.load ~path) in
  ok_or_fail (Checkpoint.restore_interners t);
  t

let check_stats name (a : Sim.Explorer.stats) (b : Sim.Explorer.stats) =
  Alcotest.(check int)
    (name ^ ": configs_visited")
    a.Sim.Explorer.configs_visited b.Sim.Explorer.configs_visited;
  Alcotest.(check int)
    (name ^ ": terminal_runs")
    a.Sim.Explorer.terminal_runs b.Sim.Explorer.terminal_runs;
  Alcotest.(check bool)
    (name ^ ": budget_exhausted")
    a.Sim.Explorer.budget_exhausted b.Sim.Explorer.budget_exhausted

let test_explore_seq_resume () =
  let module Ex = Sim.Explorer.Make (K2) in
  let go ?ckpt ?resume () =
    Ex.explore ?ckpt ?resume ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
      ~check:no_check ()
  in
  let baseline =
    match go () with
    | Sim.Explorer.Safe s -> s
    | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation"
  in
  Alcotest.(check bool) "baseline untruncated" false
    baseline.Sim.Explorer.budget_exhausted;
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"explore")
          ~interrupt:(poll_interrupt 40) ()
      in
      (match go ~ckpt () with
      | Sim.Explorer.Safe s ->
          Alcotest.(check bool) "interrupted run is truncated" true
            s.Sim.Explorer.budget_exhausted
      | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation");
      let t = load_restored path in
      Alcotest.(check string) "kind" "explore" (Checkpoint.kind t);
      match go ~resume:(Checkpoint.payload t) () with
      | Sim.Explorer.Safe s -> check_stats "explore resume" baseline s
      | Sim.Explorer.Violation _ -> Alcotest.fail "resume lost the verdict")

let crash_baseline () =
  let module Ex = Sim.Explorer.Make (K2) in
  match
    Ex.explore_with_crashes ~n:3 ~inputs:(distinct 3) ~crash_budget:1
      ~check:no_check ()
  with
  | Sim.Explorer.Stuck { crashed; undecided_correct; stats } ->
      (crashed, undecided_correct, stats)
  | _ -> Alcotest.fail "baseline: expected Stuck"

let check_stuck name (crashed, undecided, stats) outcome =
  match outcome with
  | Sim.Explorer.Stuck b ->
      Alcotest.(check (list int)) (name ^ ": crashed") crashed b.crashed;
      Alcotest.(check (list int))
        (name ^ ": undecided")
        undecided b.undecided_correct;
      check_stats name stats b.stats
  | _ -> Alcotest.fail (name ^ ": expected Stuck after resume")

let test_explore_crash_seq_resume () =
  let module Ex = Sim.Explorer.Make (K2) in
  let baseline = crash_baseline () in
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"explore-crash")
          ~interrupt:(poll_interrupt 2000) ()
      in
      (match
         Ex.explore_with_crashes ~ckpt ~n:3 ~inputs:(distinct 3)
           ~crash_budget:1 ~check:no_check ()
       with
      | Sim.Explorer.Indeterminate _ -> ()
      | _ -> Alcotest.fail "interrupted run should be Indeterminate");
      let t = load_restored path in
      check_stuck "crash seq resume" baseline
        (Ex.explore_with_crashes ~resume:(Checkpoint.payload t) ~n:3
           ~inputs:(distinct 3) ~crash_budget:1 ~check:no_check ()))

let test_explore_crash_par_resume () =
  (* pause-the-world cut of the parallel driver, resumed sequentially
     (par checkpoints are merged into sequential format at write
     time).  The interrupt is always-on: the coordinator's first tick
     parks the workers wherever they are and flushes that cut.  Run
     the kill/resume leg at every supported domain count — the merge
     reads the shared table, the node store, parked stacks and pools,
     none of which may lose items however the workers were racing. *)
  let module Ex = Sim.Explorer.Make (K2) in
  let baseline = crash_baseline () in
  List.iter
    (fun domains ->
      with_tmp ".ckpt" (fun path ->
          let ckpt =
            Checkpoint.ctl ~sink:(sink ~path ~kind:"explore-crash")
              ~interrupt:(fun () -> true)
              ()
          in
          (match
             Ex.explore_with_crashes_par ~domains ~ckpt ~n:3
               ~inputs:(distinct 3) ~crash_budget:1 ~check:no_check ()
           with
          | Sim.Explorer.Indeterminate _ -> ()
          | _ -> Alcotest.fail "interrupted par run should be Indeterminate");
          let t = load_restored path in
          check_stuck
            (Printf.sprintf "crash par resume d=%d" domains)
            baseline
            (Ex.explore_with_crashes ~resume:(Checkpoint.payload t) ~n:3
               ~inputs:(distinct 3) ~crash_budget:1 ~check:no_check ())))
    [ 2; 4; 8 ]

let test_explore_par_resume () =
  let module Ex = Sim.Explorer.Make (K2) in
  let baseline =
    match
      Ex.explore ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
        ~check:no_check ()
    with
    | Sim.Explorer.Safe s -> s
    | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation"
  in
  List.iter
    (fun domains ->
      with_tmp ".ckpt" (fun path ->
          let ckpt =
            Checkpoint.ctl ~sink:(sink ~path ~kind:"explore")
              ~interrupt:(fun () -> true)
              ()
          in
          (match
             Ex.explore_par ~domains ~ckpt ~n:3 ~inputs:(distinct 3)
               ~pattern:(FP.none ~n:3) ~check:no_check ()
           with
          | Sim.Explorer.Safe s ->
              Alcotest.(check bool) "interrupted par run is truncated" true
                s.Sim.Explorer.budget_exhausted
          | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation");
          let t = load_restored path in
          match
            Ex.explore ~resume:(Checkpoint.payload t) ~n:3
              ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) ~check:no_check ()
          with
          | Sim.Explorer.Safe s ->
              check_stats
                (Printf.sprintf "explore par resume d=%d" domains)
                baseline s
          | Sim.Explorer.Violation _ -> Alcotest.fail "resume lost the verdict"))
    [ 2; 4; 8 ]

(* ---------- resume under reduction ---------- *)

let test_explore_resume_reduced () =
  (* kill/resume parity under sym+por: the sleep sets ride inside the
     checkpointed work items (and survive the parallel merge), so a
     cut-and-resumed reduced campaign must report stats bit-identical
     to an uninterrupted reduced run — at every domain count *)
  let module Ex = Sim.Explorer.Make (K2) in
  let reduction = Sim.Canon.Symmetry_por in
  let go ?ckpt ?resume () =
    Ex.explore ~reduction ?ckpt ?resume ~n:3 ~inputs:(distinct 3)
      ~pattern:(FP.none ~n:3) ~check:no_check ()
  in
  let baseline =
    match go () with
    | Sim.Explorer.Safe s -> s
    | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation"
  in
  Alcotest.(check bool) "reduced baseline untruncated" false
    baseline.Sim.Explorer.budget_exhausted;
  (* sequential cut *)
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"explore")
          ~interrupt:(poll_interrupt 40) ()
      in
      (match go ~ckpt () with
      | Sim.Explorer.Safe s ->
          Alcotest.(check bool) "interrupted reduced run is truncated" true
            s.Sim.Explorer.budget_exhausted
      | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation");
      let t = load_restored path in
      match go ~resume:(Checkpoint.payload t) () with
      | Sim.Explorer.Safe s -> check_stats "reduced seq resume" baseline s
      | Sim.Explorer.Violation _ -> Alcotest.fail "resume lost the verdict");
  (* pause-the-world cuts of the parallel driver *)
  List.iter
    (fun domains ->
      with_tmp ".ckpt" (fun path ->
          let ckpt =
            Checkpoint.ctl ~sink:(sink ~path ~kind:"explore")
              ~interrupt:(fun () -> true)
              ()
          in
          (match
             Ex.explore_par ~reduction ~domains ~ckpt ~n:3
               ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) ~check:no_check ()
           with
          | Sim.Explorer.Safe s ->
              Alcotest.(check bool) "interrupted par run is truncated" true
                s.Sim.Explorer.budget_exhausted
          | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation");
          let t = load_restored path in
          match go ~resume:(Checkpoint.payload t) () with
          | Sim.Explorer.Safe s ->
              check_stats
                (Printf.sprintf "reduced par resume d=%d" domains)
                baseline s
          | Sim.Explorer.Violation _ -> Alcotest.fail "resume lost the verdict"))
    [ 2; 4; 8 ]

let test_explore_crash_resume_reduced () =
  (* the crash drivers under reduction: orbit-keyed node graph through
     a parallel pause-the-world cut, resumed sequentially *)
  let module Ex = Sim.Explorer.Make (K2) in
  let reduction = Sim.Canon.Symmetry_por in
  let baseline =
    match
      Ex.explore_with_crashes ~reduction ~n:3 ~inputs:(distinct 3)
        ~crash_budget:1 ~check:no_check ()
    with
    | Sim.Explorer.Stuck { crashed; undecided_correct; stats } ->
        (crashed, undecided_correct, stats)
    | _ -> Alcotest.fail "reduced baseline: expected Stuck"
  in
  List.iter
    (fun domains ->
      with_tmp ".ckpt" (fun path ->
          let ckpt =
            Checkpoint.ctl ~sink:(sink ~path ~kind:"explore-crash")
              ~interrupt:(fun () -> true)
              ()
          in
          (match
             Ex.explore_with_crashes_par ~reduction ~domains ~ckpt ~n:3
               ~inputs:(distinct 3) ~crash_budget:1 ~check:no_check ()
           with
          | Sim.Explorer.Indeterminate _ -> ()
          | _ -> Alcotest.fail "interrupted par run should be Indeterminate");
          let t = load_restored path in
          check_stuck
            (Printf.sprintf "reduced crash par resume d=%d" domains)
            baseline
            (Ex.explore_with_crashes ~reduction
               ~resume:(Checkpoint.payload t) ~n:3 ~inputs:(distinct 3)
               ~crash_budget:1 ~check:no_check ())))
    [ 2; 4; 8 ]

let test_resume_reduction_mismatch () =
  (* a checkpoint written under one reduction mode describes a
     different search: resuming it under another mode must warn and
     start fresh — landing on the full reduced baseline, not on a
     hybrid of the two searches *)
  let module Ex = Sim.Explorer.Make (K2) in
  let reduced_baseline =
    match
      Ex.explore ~reduction:Sim.Canon.Symmetry ~n:3 ~inputs:(distinct 3)
        ~pattern:(FP.none ~n:3) ~check:no_check ()
    with
    | Sim.Explorer.Safe s -> s
    | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation"
  in
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"explore")
          ~interrupt:(poll_interrupt 40) ()
      in
      (* cut an UNREDUCED campaign... *)
      (match
         Ex.explore ~ckpt ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
           ~check:no_check ()
       with
      | Sim.Explorer.Safe _ -> ()
      | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation");
      let t = load_restored path in
      (* ...and resume it under Symmetry *)
      match
        Ex.explore ~reduction:Sim.Canon.Symmetry
          ~resume:(Checkpoint.payload t) ~n:3 ~inputs:(distinct 3)
          ~pattern:(FP.none ~n:3) ~check:no_check ()
      with
      | Sim.Explorer.Safe s -> check_stats "mismatch restarts" reduced_baseline s
      | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation")

(* ---------- worker supervision ---------- *)

let test_explore_par_supervision () =
  (* a check that raises deep inside exactly one worker domain: the
     dying worker spills its frontier back to the shared pool, the
     survivors (or the post-join rescue worker) drain it, and the
     campaign must still report the baseline verdict and record the
     failure in the ledger *)
  let module Ex = Sim.Explorer.Make (K2) in
  let baseline = crash_baseline () in
  let calls = Atomic.make 0 in
  let bomb _ =
    if Atomic.fetch_and_add calls 1 = 1000 then failwith "injected fault";
    None
  in
  let ckpt = Checkpoint.ctl () in
  let failures_before =
    Metrics.value (Metrics.counter "campaign.worker.failures")
  in
  check_stuck "supervised par" baseline
    (Ex.explore_with_crashes_par ~domains:2 ~ckpt ~n:3 ~inputs:(distinct 3)
       ~crash_budget:1 ~check:bomb ());
  Alcotest.(check bool) "fault was actually injected" true
    (Atomic.get calls > 1000);
  Alcotest.(check bool) "ledger records the failure" true
    (List.length (Checkpoint.ledger_of ckpt) >= 1);
  Alcotest.(check bool) "campaign.worker.failures bumped" true
    (Metrics.value (Metrics.counter "campaign.worker.failures")
    > failures_before)

let test_explore_par_plain_supervision () =
  (* fault injection against [explore_par], where admission and
     expansion are fused: the dying worker's in-flight configuration
     is already in the shared dedup table when it goes back to the
     pool, so without the orphan protocol its re-processor drops it
     as a duplicate and the whole subtree below it is silently lost
     while the run still reports Safe.  The first bomb fires on the
     root — the one configuration whose subtree is reachable through
     nothing else, so a dropped orphan deterministically collapses
     the run to configs_visited = 1.  The second bomb fires mid-run
     in the surviving worker, killing it too: the post-join rescue
     worker must then drain the pool and re-expand that second
     orphan.  Full stats parity with the sequential baseline is
     required throughout. *)
  let module Ex = Sim.Explorer.Make (K2) in
  let baseline =
    match
      Ex.explore ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
        ~check:no_check ()
    with
    | Sim.Explorer.Safe s -> s
    | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation"
  in
  Alcotest.(check bool) "baseline large enough to arm both bombs" true
    (baseline.Sim.Explorer.configs_visited > 1000);
  let calls = Atomic.make 0 in
  let bomb _ =
    let c = Atomic.fetch_and_add calls 1 in
    if c = 0 || c = 1000 then failwith "injected fault";
    None
  in
  let ckpt = Checkpoint.ctl () in
  (match
     Ex.explore_par ~domains:2 ~ckpt ~n:3 ~inputs:(distinct 3)
       ~pattern:(FP.none ~n:3) ~check:bomb ()
   with
  | Sim.Explorer.Safe s -> check_stats "supervised explore par" baseline s
  | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation");
  Alcotest.(check bool) "both faults were actually injected" true
    (Atomic.get calls > 1000);
  Alcotest.(check bool) "ledger records the failures" true
    (List.length (Checkpoint.ledger_of ckpt) >= 2)

(* ---------- fuzz campaigns ---------- *)

module FK2 = Sim.Fuzz.Make (K2)
module FN = Sim.Fuzz.Make (Ksa_algo.Naive_min.Make (struct
  let wait_for = 2
end))

let fuzz_cfg_clean =
  {
    (Sim.Fuzz.default_config ~k:1 ~n:3 ()) with
    Sim.Fuzz.max_crashes = 1;
  }

let fuzz_cfg_violating =
  (* naive-min with a random crash violates 1-agreement within a few
     trials (seed 2: trial 3) — late enough that a resume from an
     earlier watermark is a real continuation *)
  {
    (Sim.Fuzz.default_config ~k:1 ~n:3 ()) with
    Sim.Fuzz.max_crashes = 1;
  }

let check_fuzz_equal name a b =
  match (a, b) with
  | Sim.Fuzz.Clean { trials = ta }, Sim.Fuzz.Clean { trials = tb } ->
      Alcotest.(check int) (name ^ ": clean trials") ta tb
  | Sim.Fuzz.Violation_found va, Sim.Fuzz.Violation_found vb ->
      Alcotest.(check int) (name ^ ": trial") va.Sim.Fuzz.trial vb.Sim.Fuzz.trial;
      Alcotest.(check string)
        (name ^ ": property")
        va.Sim.Fuzz.property vb.Sim.Fuzz.property;
      Alcotest.(check string) (name ^ ": reason") va.Sim.Fuzz.reason vb.Sim.Fuzz.reason;
      Alcotest.(check bool)
        (name ^ ": shrunk schedule")
        true
        (va.Sim.Fuzz.shrunk = vb.Sim.Fuzz.shrunk)
  | _ -> Alcotest.fail (name ^ ": outcomes differ in kind")

let test_fuzz_seq_resume () =
  let trials = 600 in
  let baseline = FK2.run fuzz_cfg_clean ~seed:7 ~trials in
  (match baseline with
  | Sim.Fuzz.Clean _ -> ()
  | _ -> Alcotest.fail "expected a clean baseline");
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"fuzz")
          ~interrupt:(poll_interrupt 150) ()
      in
      (match FK2.run ~ckpt fuzz_cfg_clean ~seed:7 ~trials with
      | Sim.Fuzz.Budget_exhausted { trials = t } ->
          Alcotest.(check bool) "cut mid-campaign" true (t > 0 && t < trials)
      | _ -> Alcotest.fail "interrupted fuzz should be Budget_exhausted");
      let t = load_restored path in
      let resume_from = FK2.resume_trial (Checkpoint.payload t) in
      Alcotest.(check bool) "watermark mid-campaign" true
        (resume_from > 0 && resume_from < trials);
      check_fuzz_equal "fuzz seq resume" baseline
        (FK2.run ~resume_from fuzz_cfg_clean ~seed:7 ~trials))

let test_fuzz_par_resume () =
  let trials = 600 in
  let baseline = FK2.run fuzz_cfg_clean ~seed:7 ~trials in
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"fuzz")
          ~interrupt:(poll_interrupt 100) ()
      in
      (match FK2.run_par ~domains:2 ~ckpt fuzz_cfg_clean ~seed:7 ~trials with
      | Sim.Fuzz.Budget_exhausted _ -> ()
      | _ -> Alcotest.fail "interrupted par fuzz should be Budget_exhausted");
      let t = load_restored path in
      let resume_from = FK2.resume_trial (Checkpoint.payload t) in
      (* resume on both drivers: same clean verdict *)
      check_fuzz_equal "fuzz par->seq resume" baseline
        (FK2.run ~resume_from fuzz_cfg_clean ~seed:7 ~trials);
      check_fuzz_equal "fuzz par->par resume" baseline
        (FK2.run_par ~domains:2 ~resume_from fuzz_cfg_clean ~seed:7 ~trials))

let test_fuzz_violation_resume () =
  let trials = 50 in
  let baseline = FN.run fuzz_cfg_violating ~seed:2 ~trials in
  let vtrial =
    match baseline with
    | Sim.Fuzz.Violation_found v -> v.Sim.Fuzz.trial
    | _ -> Alcotest.fail "expected a violating baseline"
  in
  Alcotest.(check bool) "violation late enough to resume before it" true
    (vtrial >= 1);
  (* resuming from any watermark at or below the violating trial must
     rediscover the identical violation, shrink included *)
  check_fuzz_equal "violation resume (seq)" baseline
    (FN.run ~resume_from:(vtrial / 2) fuzz_cfg_violating ~seed:2 ~trials);
  check_fuzz_equal "violation resume (par)" baseline
    (FN.run_par ~domains:2 ~resume_from:(vtrial / 2) fuzz_cfg_violating
       ~seed:2 ~trials)

let test_fuzz_par_supervision () =
  let trials = 300 in
  let baseline = FK2.run fuzz_cfg_clean ~seed:7 ~trials in
  let armed = Atomic.make true in
  let bomb _run =
    if Atomic.compare_and_set armed true false then failwith "injected fault";
    None
  in
  let cfg =
    {
      fuzz_cfg_clean with
      Sim.Fuzz.properties =
        fuzz_cfg_clean.Sim.Fuzz.properties
        @ [ Sim.Fuzz.Custom ("bomb", bomb) ];
    }
  in
  let ckpt = Checkpoint.ctl () in
  let outcome = FK2.run_par ~domains:2 ~ckpt cfg ~seed:7 ~trials in
  check_fuzz_equal "supervised fuzz" baseline outcome;
  Alcotest.(check bool) "fault was actually injected" true
    (not (Atomic.get armed));
  Alcotest.(check bool) "ledger records the failure" true
    (List.length (Checkpoint.ledger_of ckpt) >= 1)

(* ---------- stop (wall-clock budget) expiry flushes ----------

   cfg.stop ending a campaign must flush a final checkpoint exactly
   like an interrupt: previously the drivers returned
   Budget_exhausted without writing, so a --max-seconds expiry lost
   the whole campaign's watermark. *)

let test_fuzz_seq_stop_flush () =
  let trials = 600 in
  let baseline = FK2.run fuzz_cfg_clean ~seed:7 ~trials in
  with_tmp ".ckpt" (fun path ->
      let ckpt = Checkpoint.ctl ~sink:(sink ~path ~kind:"fuzz") () in
      let cfg =
        { fuzz_cfg_clean with Sim.Fuzz.stop = Some (poll_interrupt 150) }
      in
      (match FK2.run ~ckpt cfg ~seed:7 ~trials with
      | Sim.Fuzz.Budget_exhausted { trials = t } ->
          (* one stop poll per trial boundary: the count is exact *)
          Alcotest.(check int) "stopped at the poll budget" 150 t
      | _ -> Alcotest.fail "stopped fuzz should be Budget_exhausted");
      Alcotest.(check bool) "stop expiry flushed a checkpoint" true
        (Sys.file_exists path);
      let t = load_restored path in
      Alcotest.(check int) "flushed watermark = reported trials" 150
        (FK2.resume_trial (Checkpoint.payload t));
      check_fuzz_equal "fuzz seq stop resume" baseline
        (FK2.run
           ~resume_payload:(Checkpoint.payload t)
           fuzz_cfg_clean ~seed:7 ~trials))

let test_fuzz_par_stop_flush () =
  let trials = 600 in
  let baseline = FK2.run fuzz_cfg_clean ~seed:7 ~trials in
  with_tmp ".ckpt" (fun path ->
      let ckpt = Checkpoint.ctl ~sink:(sink ~path ~kind:"fuzz") () in
      let cfg =
        { fuzz_cfg_clean with Sim.Fuzz.stop = Some (poll_interrupt 100) }
      in
      let reported =
        match FK2.run_par ~domains:2 ~ckpt cfg ~seed:7 ~trials with
        | Sim.Fuzz.Budget_exhausted { trials = t } -> t
        | _ -> Alcotest.fail "stopped par fuzz should be Budget_exhausted"
      in
      Alcotest.(check bool) "stop expiry flushed a checkpoint" true
        (Sys.file_exists path);
      let t = load_restored path in
      (* which trials ran is timing-dependent, but the reported count
         must be exactly the flushed clean-trial watermark — not a
         racy ticket count that can claim unfinished work *)
      Alcotest.(check int) "reported trials = flushed watermark" reported
        (FK2.resume_trial (Checkpoint.payload t));
      check_fuzz_equal "fuzz par stop resume (seq)" baseline
        (FK2.run
           ~resume_payload:(Checkpoint.payload t)
           fuzz_cfg_clean ~seed:7 ~trials);
      check_fuzz_equal "fuzz par stop resume (par)" baseline
        (FK2.run_par ~domains:2
           ~resume_payload:(Checkpoint.payload t)
           fuzz_cfg_clean ~seed:7 ~trials))

(* ---------- coverage (greybox) campaigns ---------- *)

let fuzz_cfg_cov = { fuzz_cfg_clean with Sim.Fuzz.coverage = true }

(* kset-flp with L=2 at n=4 violates 1-agreement only on rare
   near-partition schedules; under coverage guidance seed 3 reaches
   one within a few thousand trials *)
let fuzz_cfg_cov_violating =
  { (Sim.Fuzz.default_config ~k:1 ~n:4 ()) with Sim.Fuzz.coverage = true }

let test_fuzz_cov_resume () =
  let trials = 5000 in
  let baseline = FK2.run fuzz_cfg_cov_violating ~seed:3 ~trials in
  let vtrial =
    match baseline with
    | Sim.Fuzz.Violation_found v -> v.Sim.Fuzz.trial
    | _ -> Alcotest.fail "expected a violating coverage baseline"
  in
  Alcotest.(check bool) "violation late enough to cut before it" true
    (vtrial > 500);
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl ~sink:(sink ~path ~kind:"fuzz")
          ~interrupt:(poll_interrupt 500) ()
      in
      (match FK2.run ~ckpt fuzz_cfg_cov_violating ~seed:3 ~trials with
      | Sim.Fuzz.Budget_exhausted { trials = t } ->
          Alcotest.(check bool) "cut mid-campaign" true (t > 0 && t < vtrial)
      | _ -> Alcotest.fail "interrupted coverage fuzz should be Budget_exhausted");
      let t = load_restored path in
      let payload = Checkpoint.payload t in
      Alcotest.(check bool) "payload carries a corpus" true
        (Sim.Fuzz.coverage_of_payload payload <> None);
      (* the resumed campaign regrows the identical corpus and finds
         the identical violation, shrink included, on either driver *)
      check_fuzz_equal "coverage resume (seq)" baseline
        (FK2.run ~resume_payload:payload fuzz_cfg_cov_violating ~seed:3 ~trials);
      check_fuzz_equal "coverage resume (par)" baseline
        (FK2.run_par ~domains:2 ~resume_payload:payload fuzz_cfg_cov_violating
           ~seed:3 ~trials))

let test_fuzz_cov_corpus_identical () =
  (* two campaigns flushed at the same watermark — one uninterrupted,
     one killed at trial 120 and resumed — must hold bit-identical
     coverage state: same id/pair counts, same corpus entries in the
     same admission order *)
  let cfg stop_after =
    { fuzz_cfg_cov with Sim.Fuzz.stop = Some (poll_interrupt stop_after) }
  in
  let summary p =
    match Sim.Fuzz.coverage_of_payload p with
    | Some s -> s
    | None -> Alcotest.fail "expected a coverage payload"
  in
  with_tmp ".ckpt" (fun path_a ->
      with_tmp ".ckpt" (fun path_b ->
          let ckpt_a =
            Checkpoint.ctl ~sink:(sink ~path:path_a ~kind:"fuzz") ()
          in
          (match FK2.run ~ckpt:ckpt_a (cfg 200) ~seed:7 ~trials:600 with
          | Sim.Fuzz.Budget_exhausted { trials = t } ->
              Alcotest.(check int) "A stopped at 200" 200 t
          | _ -> Alcotest.fail "campaign A should stop");
          let pa = Checkpoint.payload (load_restored path_a) in
          let ckpt_b =
            Checkpoint.ctl ~sink:(sink ~path:path_b ~kind:"fuzz") ()
          in
          (match FK2.run ~ckpt:ckpt_b (cfg 120) ~seed:7 ~trials:600 with
          | Sim.Fuzz.Budget_exhausted { trials = t } ->
              Alcotest.(check int) "B stopped at 120" 120 t
          | _ -> Alcotest.fail "campaign B should stop");
          let pb_cut = Checkpoint.payload (load_restored path_b) in
          let ckpt_b' =
            Checkpoint.ctl ~sink:(sink ~path:path_b ~kind:"fuzz") ()
          in
          (match
             FK2.run ~ckpt:ckpt_b' ~resume_payload:pb_cut (cfg 80) ~seed:7
               ~trials:600
           with
          | Sim.Fuzz.Budget_exhausted { trials = t } ->
              Alcotest.(check int) "B resumed and stopped at 200" 200 t
          | _ -> Alcotest.fail "campaign B resume should stop");
          let pb = Checkpoint.payload (load_restored path_b) in
          let sa = summary pa and sb = summary pb in
          Alcotest.(check int) "watermark" sa.Sim.Fuzz.cov_trials
            sb.Sim.Fuzz.cov_trials;
          Alcotest.(check int) "distinct ids" sa.Sim.Fuzz.cov_ids
            sb.Sim.Fuzz.cov_ids;
          Alcotest.(check int) "distinct pairs" sa.Sim.Fuzz.cov_pairs
            sb.Sim.Fuzz.cov_pairs;
          Alcotest.(check bool) "corpus nonempty" true
            (sa.Sim.Fuzz.cov_corpus <> []);
          Alcotest.(check int) "corpus size"
            (List.length sa.Sim.Fuzz.cov_corpus)
            (List.length sb.Sim.Fuzz.cov_corpus);
          List.iter2
            (fun (fpa, scha) (fpb, schb) ->
              Alcotest.(check bool) "corpus pattern" true (FP.equal fpa fpb);
              Alcotest.(check bool) "corpus schedule" true (scha = schb))
            sa.Sim.Fuzz.cov_corpus sb.Sim.Fuzz.cov_corpus))

(* ---------- periodic item-based checkpoints ---------- *)

let test_periodic_item_checkpoints () =
  (* an items cadence writes along the way even without interruption,
     and the last write is still a valid resume point *)
  let module Ex = Sim.Explorer.Make (K2) in
  let baseline = crash_baseline () in
  with_tmp ".ckpt" (fun path ->
      let ckpt =
        Checkpoint.ctl
          ~sink:
            {
              Checkpoint.path;
              kind = "explore-crash";
              fingerprint = "test";
              policy =
                { Checkpoint.every_items = 500; every_seconds = infinity };
            }
          ()
      in
      (match
         Ex.explore_with_crashes ~ckpt ~n:3 ~inputs:(distinct 3)
           ~crash_budget:1 ~check:no_check ()
       with
      | Sim.Explorer.Stuck _ -> ()
      | _ -> Alcotest.fail "expected Stuck");
      Alcotest.(check bool) "periodic checkpoint written" true
        (Sys.file_exists path);
      let t = load_restored path in
      check_stuck "resume from periodic checkpoint" baseline
        (Ex.explore_with_crashes ~resume:(Checkpoint.payload t) ~n:3
           ~inputs:(distinct 3) ~crash_budget:1 ~check:no_check ()))

(* ---------- Faultsim: a crash at every write-path instant ---------- *)

module Faultsim = Prim.Faultsim

let outcome_name = function
  | Faultsim.Crash -> "crash"
  | Faultsim.Errno e -> "errno:" ^ Unix.error_message e
  | Faultsim.Torn n -> Printf.sprintf "torn:%d" n

(* positions in a trace, as (point, nth-hit-of-that-point) pairs — the
   coordinates [Faultsim.arm] addresses *)
let trace_positions trace =
  let seen = Hashtbl.create 8 in
  List.map
    (fun p ->
      let n = 1 + (Option.value ~default:0 (Hashtbl.find_opt seen p)) in
      Hashtbl.replace seen p n;
      (p, n))
    trace

let test_faultsim_durable_sweep () =
  (* the atomicity claim is over "a crash at any instant": enumerate
     every instrumented instant of one framed write and crash (or
     fail, or tear) at each — the file must always read back as the
     old payload or the new payload, complete, never torn *)
  with_tmp ".rec" (fun path ->
      Fun.protect ~finally:Faultsim.reset (fun () ->
          let magic = "KSATEST1" in
          let old_payload = String.make 400 'a' in
          let new_payload =
            String.init 700 (fun i -> Char.chr (33 + (i mod 90)))
          in
          let write p = Durable.write_framed ~path ~magic ~version:1 p in
          ok_or_fail (write old_payload);
          Faultsim.record ();
          ok_or_fail (write new_payload);
          let trace = Faultsim.trace () in
          Faultsim.reset ();
          List.iter
            (fun p ->
              Alcotest.(check bool) (p ^ " traced") true (List.mem p trace))
            [
              "durable.open"; "durable.write"; "durable.fsync";
              "durable.rename"; "durable.after-rename";
            ];
          List.iter
            (fun (point, nth) ->
              List.iter
                (fun outcome ->
                  let name =
                    Printf.sprintf "%s#%d %s" point nth (outcome_name outcome)
                  in
                  ok_or_fail (write old_payload);
                  Faultsim.arm ~point ~nth outcome;
                  let fired =
                    match write new_payload with
                    | exception Faultsim.Crashed _ -> true
                    | Error _ -> true (* errno surfaced as Durable's Error *)
                    | Ok () -> false
                  in
                  Faultsim.reset ();
                  Alcotest.(check bool) (name ^ ": fault fired") true fired;
                  match Durable.read_framed ~path ~magic with
                  | Error e ->
                      Alcotest.fail
                        (Printf.sprintf "%s: unreadable after fault: %s" name
                           e)
                  | Ok (_, back) ->
                      Alcotest.(check bool)
                        (name ^ ": old- or new-complete")
                        true
                        (back = old_payload || back = new_payload))
                [ Faultsim.Crash; Faultsim.Errno Unix.ENOSPC; Faultsim.Torn 7 ])
            (trace_positions trace);
          (* stale tmp siblings left by the simulated deaths must not
             stop the next clean write *)
          ok_or_fail (write new_payload);
          try Sys.remove (path ^ ".tmp") with Sys_error _ -> ()))

let test_faultsim_checkpoint_sweep () =
  (* the same sweep one layer up: crash a campaign at every instant of
     its periodic checkpoint flush.  Whatever survives on disk must
     load as a valid checkpoint and resume to the bit-identical
     verdict — and an errno-failed flush must not abort the campaign *)
  let module Ex = Sim.Explorer.Make (K2) in
  let go ?ckpt ?resume () =
    Ex.explore ?ckpt ?resume ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
      ~check:no_check ()
  in
  let baseline =
    match go () with
    | Sim.Explorer.Safe s -> s
    | Sim.Explorer.Violation _ -> Alcotest.fail "unexpected violation"
  in
  let run_campaign ~path () =
    let ckpt =
      Checkpoint.ctl
        ~sink:
          {
            Checkpoint.path;
            kind = "explore";
            fingerprint = "test";
            policy = { Checkpoint.every_items = 50; every_seconds = infinity };
          }
        ()
    in
    go ~ckpt ()
  in
  with_tmp ".ckpt" (fun path ->
      Fun.protect ~finally:Faultsim.reset (fun () ->
          (* seed the old-complete state and learn the flush trace *)
          (match run_campaign ~path () with
          | Sim.Explorer.Safe _ -> ()
          | _ -> Alcotest.fail "expected Safe");
          Faultsim.record ();
          ok_or_fail (Durable.write_atomic ~path:(path ^ ".probe") "x");
          let write_trace = Faultsim.trace () in
          Faultsim.reset ();
          (try Sys.remove (path ^ ".probe") with Sys_error _ -> ());
          List.iter
            (fun (point, nth) ->
              List.iter
                (fun outcome ->
                  let name =
                    Printf.sprintf "flush %s#%d %s" point nth
                      (outcome_name outcome)
                  in
                  Faultsim.arm ~point ~nth outcome;
                  let crashed =
                    match run_campaign ~path () with
                    | Sim.Explorer.Safe _ -> false
                    | _ -> Alcotest.fail (name ^ ": verdict changed")
                    | exception Faultsim.Crashed _ -> true
                  in
                  Faultsim.reset ();
                  (* ENOSPC on a flush is survivable by design: the
                     campaign warns and finishes *)
                  (match outcome with
                  | Faultsim.Errno _ ->
                      Alcotest.(check bool)
                        (name ^ ": campaign survives errno")
                        false crashed
                  | Faultsim.Crash | Faultsim.Torn _ ->
                      Alcotest.(check bool) (name ^ ": campaign died") true
                        crashed);
                  (* whatever the crash left behind resumes to the
                     same verdict and stats *)
                  let t = load_restored path in
                  match go ~resume:(Checkpoint.payload t) () with
                  | Sim.Explorer.Safe s ->
                      check_stats (name ^ ": resume parity") baseline s
                  | Sim.Explorer.Violation _ ->
                      Alcotest.fail (name ^ ": resume lost the verdict"))
                [ Faultsim.Crash; Faultsim.Errno Unix.ENOSPC; Faultsim.Torn 3 ])
            (trace_positions write_trace)))

let suites =
  [
    ( "checkpoint",
      [
        Alcotest.test_case "durable: atomic write roundtrip" `Quick
          test_atomic_roundtrip;
        Alcotest.test_case "durable: write error names path" `Quick
          test_atomic_write_error;
        Alcotest.test_case "durable: framed roundtrip" `Quick
          test_framed_roundtrip;
        Alcotest.test_case "durable: truncated record detected" `Quick
          test_framed_truncated;
        Alcotest.test_case "durable: bit flip detected (CRC)" `Quick
          test_framed_bitflip;
        Alcotest.test_case "durable: wrong magic detected" `Quick
          test_framed_bad_magic;
        Alcotest.test_case "durable: crc32 test vector" `Quick test_crc32_vector;
        Alcotest.test_case "clock: monotonic and sane" `Quick
          test_clock_monotonic;
        Alcotest.test_case "load: missing file is Error" `Quick
          test_load_missing;
        Alcotest.test_case "load: unsupported version is Error" `Quick
          test_load_wrong_version;
        Alcotest.test_case "load: garbage body is Error" `Quick
          test_load_garbage_body;
        Alcotest.test_case "explore: kill/resume parity (seq)" `Quick
          test_explore_seq_resume;
        Alcotest.test_case "explore-crash: kill/resume parity (seq)" `Quick
          test_explore_crash_seq_resume;
        Alcotest.test_case "explore-crash: kill/resume parity (par)" `Quick
          test_explore_crash_par_resume;
        Alcotest.test_case "explore: kill/resume parity (par)" `Quick
          test_explore_par_resume;
        Alcotest.test_case "explore: kill/resume parity under sym+por" `Quick
          test_explore_resume_reduced;
        Alcotest.test_case "explore-crash: kill/resume parity under sym+por"
          `Quick test_explore_crash_resume_reduced;
        Alcotest.test_case "resume: reduction-mode mismatch starts fresh"
          `Quick test_resume_reduction_mismatch;
        Alcotest.test_case "explore: worker fault supervised" `Quick
          test_explore_par_supervision;
        Alcotest.test_case "explore: worker fault supervised (plain par)"
          `Quick test_explore_par_plain_supervision;
        Alcotest.test_case "fuzz: kill/resume parity (seq)" `Quick
          test_fuzz_seq_resume;
        Alcotest.test_case "fuzz: kill/resume parity (par)" `Quick
          test_fuzz_par_resume;
        Alcotest.test_case "fuzz: violation survives resume" `Quick
          test_fuzz_violation_resume;
        Alcotest.test_case "fuzz: worker fault supervised" `Quick
          test_fuzz_par_supervision;
        Alcotest.test_case "fuzz: stop expiry flushes (seq)" `Quick
          test_fuzz_seq_stop_flush;
        Alcotest.test_case "fuzz: stop expiry flushes (par)" `Quick
          test_fuzz_par_stop_flush;
        Alcotest.test_case "fuzz: coverage kill/resume parity" `Quick
          test_fuzz_cov_resume;
        Alcotest.test_case "fuzz: coverage corpus survives kill/resume" `Quick
          test_fuzz_cov_corpus_identical;
        Alcotest.test_case "periodic item checkpoints resume" `Quick
          test_periodic_item_checkpoints;
        Alcotest.test_case "faultsim: durable write crash-point sweep" `Quick
          test_faultsim_durable_sweep;
        Alcotest.test_case "faultsim: checkpoint flush crash-point sweep"
          `Quick test_faultsim_checkpoint_sweep;
      ] );
  ]
