module Ho = Ksa_ho
module Sim = Ksa_sim
module Rng = Ksa_prim.Rng

let distinct = Sim.Value.distinct_inputs

module MF1 = Ho.Min_flood.Make (struct
  let rounds = 1
end)

module MF4 = Ho.Min_flood.Make (struct
  let rounds = 4
end)

module EMF1 = Ho.Engine.Make (MF1)
module EMF4 = Ho.Engine.Make (MF4)
module EUV = Ho.Engine.Make (Ho.Uniform_voting.A)
module ELV = Ho.Engine.Make (Ho.Last_voting.A)

(* ---------- assignments and predicates ---------- *)

let test_complete_predicates () =
  let a = Ho.Assignment.complete ~n:5 in
  Alcotest.(check bool) "self in" true (Ho.Assignment.self_in a ~horizon:5);
  Alcotest.(check bool) "nonempty" true (Ho.Assignment.nonempty a ~horizon:5);
  Alcotest.(check bool) "no split" true (Ho.Assignment.no_split a ~horizon:5);
  Alcotest.(check bool) "majority" true (Ho.Assignment.majority a ~horizon:5);
  Alcotest.(check bool) "uniform" true (Ho.Assignment.uniform_round a ~round:1);
  Alcotest.(check (list int)) "kernel = all" [ 0; 1; 2; 3; 4 ]
    (Ho.Assignment.kernel a ~round:3)

let test_partitioned_predicates () =
  let groups = [ [ 0; 1 ]; [ 2; 3; 4 ] ] in
  let a = Ho.Assignment.partitioned ~n:5 ~groups () in
  Alcotest.(check bool) "confined" true
    (Ho.Assignment.confined_to a ~groups ~horizon:6);
  Alcotest.(check bool) "split across groups" false
    (Ho.Assignment.no_split a ~horizon:6);
  Alcotest.(check (list int)) "empty kernel" [] (Ho.Assignment.kernel a ~round:1);
  (* with release, the suffix is complete *)
  let a = Ho.Assignment.partitioned ~n:5 ~groups ~until:3 () in
  Alcotest.(check (list int)) "kernel after release" [ 0; 1; 2; 3; 4 ]
    (Ho.Assignment.kernel a ~round:4)

let test_crash_like () =
  let a = Ho.Assignment.crash_like ~n:4 ~silent_from:[ (2, 3) ] in
  Alcotest.(check bool) "heard before" true
    (List.mem 2 (a.Ho.Assignment.ho ~round:2 ~me:0));
  Alcotest.(check bool) "silent after" false
    (List.mem 2 (a.Ho.Assignment.ho ~round:3 ~me:0))

let test_random_majority_no_split () =
  for seed = 1 to 20 do
    let rng = Rng.create ~seed in
    let a = Ho.Assignment.random ~rng ~n:5 ~min_size:3 () in
    if not (Ho.Assignment.no_split a ~horizon:8) then
      Alcotest.failf "seed %d: majorities must pairwise intersect" seed
  done

(* ---------- min-flood ---------- *)

let test_min_flood_complete_one_round () =
  let o =
    EMF1.run ~n:5 ~inputs:[| 7; 3; 9; 5; 4 |]
      ~assignment:(Ho.Assignment.complete ~n:5) ~rounds:1 ()
  in
  Alcotest.(check bool) "all decided" true (EMF1.all_decided o);
  Alcotest.(check (list int)) "global min" [ 3 ] (EMF1.decided_values o)

let test_min_flood_crash_like_consensus () =
  (* one disappearance: f+1 = 2 rounds suffice; run 4 for slack *)
  let a = Ho.Assignment.crash_like ~n:5 ~silent_from:[ (0, 2) ] in
  let o = EMF4.run ~n:5 ~inputs:(distinct 5) ~assignment:a ~rounds:4 () in
  Alcotest.(check bool) "all decided" true (EMF4.all_decided o);
  Alcotest.(check int) "consensus" 1 (EMF4.distinct_decisions o)

let test_min_flood_partitioned_k_decisions () =
  let groups = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let a = Ho.Assignment.partitioned ~n:6 ~groups () in
  let o = EMF4.run ~n:6 ~inputs:(distinct 6) ~assignment:a ~rounds:4 () in
  Alcotest.(check (list int)) "group minima" [ 0; 2; 4 ] (EMF4.decided_values o)

let prop_min_flood_validity_and_termination =
  QCheck.Test.make ~name:"min-flood: validity + round-R termination" ~count:60
    QCheck.(pair small_int (int_range 2 7))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let a = Ho.Assignment.random ~rng ~n ~min_size:1 () in
      let inputs = distinct n in
      let o = EMF4.run ~n ~inputs ~assignment:a ~rounds:4 () in
      EMF4.all_decided o
      && List.for_all
           (fun v -> Array.exists (Int.equal v) inputs)
           (EMF4.decided_values o))

let prop_min_flood_estimates_monotone =
  QCheck.Test.make ~name:"min-flood: decisions bounded by own input" ~count:60
    QCheck.(pair small_int (int_range 2 7))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let a = Ho.Assignment.random ~rng ~n ~min_size:1 () in
      let o = EMF4.run ~n ~inputs:(distinct n) ~assignment:a ~rounds:4 () in
      (* with self in HO, a decision can only be <= the proposer's input *)
      List.for_all (fun (p, v, _) -> v <= p) o.EMF4.decisions)

(* ---------- uniform voting ---------- *)

let test_uv_complete_consensus () =
  let o =
    EUV.run ~n:5 ~inputs:[| 4; 2; 9; 6; 5 |]
      ~assignment:(Ho.Assignment.complete ~n:5) ~rounds:6 ()
  in
  Alcotest.(check bool) "all decided" true (EUV.all_decided o);
  Alcotest.(check (list int)) "global min" [ 2 ] (EUV.decided_values o)

let test_uv_partitioned_k_decisions () =
  let groups = [ [ 0; 1 ]; [ 2; 3; 4 ] ] in
  let a = Ho.Assignment.partitioned ~n:5 ~groups () in
  let o = EUV.run ~n:5 ~inputs:(distinct 5) ~assignment:a ~rounds:8 () in
  Alcotest.(check (list int)) "one value per group" [ 0; 2 ]
    (EUV.decided_values o);
  Alcotest.(check bool) "all decided" true (EUV.all_decided o)

let test_uv_crash_like () =
  let a = Ho.Assignment.crash_like ~n:4 ~silent_from:[ (1, 2); (3, 5) ] in
  let o = EUV.run ~n:4 ~inputs:(distinct 4) ~assignment:a ~rounds:10 () in
  Alcotest.(check bool) "agreement" true (EUV.distinct_decisions o <= 1)

let prop_uv_safe_under_no_split =
  QCheck.Test.make
    ~name:"uniform-voting: agreement under random majority assignments"
    ~count:80
    QCheck.(pair small_int (int_range 2 7))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let maj = (n / 2) + 1 in
      let a = Ho.Assignment.random ~rng ~n ~min_size:maj () in
      let o = EUV.run ~n ~inputs:(distinct n) ~assignment:a ~rounds:12 () in
      EUV.distinct_decisions o <= 1
      && List.for_all (fun (_, v, _) -> v >= 0 && v < n) o.EUV.decisions)

let prop_uv_live_after_stabilization =
  QCheck.Test.make
    ~name:"uniform-voting: termination once rounds become complete" ~count:60
    QCheck.(pair small_int (int_range 2 7))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let maj = (n / 2) + 1 in
      let noisy = Ho.Assignment.random ~rng ~n ~min_size:maj () in
      let a =
        Ho.Assignment.make ~n (fun ~round ~me ->
            if round <= 5 then noisy.Ho.Assignment.ho ~round ~me
            else Sim.Pid.universe n)
      in
      let o = EUV.run ~n ~inputs:(distinct n) ~assignment:a ~rounds:12 () in
      EUV.all_decided o && EUV.distinct_decisions o = 1)

let test_uv_group_indistinguishability () =
  (* Theorem-1 flavour in HO: group {0,1} behaves identically whether
     the other processes exist (partitioned run) or the system is just
     that group (restricted run of the same size with the others'
     HO sets empty) *)
  let groups = [ [ 0; 1 ]; [ 2; 3; 4 ] ] in
  let part = Ho.Assignment.partitioned ~n:5 ~groups () in
  let solo =
    Ho.Assignment.make ~n:5 (fun ~round ~me ->
        if List.mem me [ 0; 1 ] then part.Ho.Assignment.ho ~round ~me else [])
  in
  let inputs = distinct 5 in
  let o1 = EUV.run ~n:5 ~inputs ~assignment:part ~rounds:8 () in
  let o2 = EUV.run ~n:5 ~inputs ~assignment:solo ~rounds:8 () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d same states" p)
        true
        (EUV.states_equal_until_decision o1 o2 p))
    [ 0; 1 ]

(* ---------- last voting (HO Paxos) ---------- *)

let test_lv_complete_consensus () =
  let o =
    ELV.run ~n:5 ~inputs:[| 6; 3; 8; 1; 9 |]
      ~assignment:(Ho.Assignment.complete ~n:5) ~rounds:8 ()
  in
  Alcotest.(check bool) "all decided" true (ELV.all_decided o);
  Alcotest.(check int) "consensus" 1 (ELV.distinct_decisions o)

let test_lv_partition_blocks_small_groups () =
  (* the Sigma-style contrast: quorums are majorities, so a partition
     into minorities produces NO decisions instead of k decisions *)
  let groups = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let a = Ho.Assignment.partitioned ~n:6 ~groups () in
  let o = ELV.run ~n:6 ~inputs:(distinct 6) ~assignment:a ~rounds:24 () in
  Alcotest.(check int) "nobody decides" 0 (List.length o.ELV.decisions)

let test_lv_majority_group_decides_alone () =
  let big = [ 0; 1; 2; 3 ] and small = [ 4; 5 ] in
  let a = Ho.Assignment.partitioned ~n:6 ~groups:[ big; small ] () in
  let o = ELV.run ~n:6 ~inputs:(distinct 6) ~assignment:a ~rounds:24 () in
  Alcotest.(check bool) "some decisions" true (o.ELV.decisions <> []);
  Alcotest.(check int) "one value" 1 (ELV.distinct_decisions o);
  List.iter
    (fun (p, _, _) ->
      Alcotest.(check bool) "only the majority group decides" true (List.mem p big))
    o.ELV.decisions

let test_lv_crash_like_consensus () =
  let a = Ho.Assignment.crash_like ~n:5 ~silent_from:[ (0, 4); (3, 9) ] in
  let o = ELV.run ~n:5 ~inputs:(distinct 5) ~assignment:a ~rounds:30 () in
  Alcotest.(check bool) "survivors decide" true (List.length o.ELV.decisions >= 3);
  Alcotest.(check int) "consensus" 1 (ELV.distinct_decisions o)

let prop_lv_unconditionally_safe =
  QCheck.Test.make
    ~name:"last-voting: agreement under ARBITRARY assignments" ~count:120
    QCheck.(triple small_int (int_range 2 7) (int_range 1 4))
    (fun (seed, n, min_size) ->
      QCheck.assume (min_size <= n);
      let rng = Rng.create ~seed in
      let a = Ho.Assignment.random ~rng ~n ~min_size ~self_in:false () in
      let o = ELV.run ~n ~inputs:(distinct n) ~assignment:a ~rounds:20 () in
      ELV.distinct_decisions o <= 1
      && List.for_all (fun (_, v, _) -> v >= 0 && v < n) o.ELV.decisions)

let prop_lv_live_after_stabilization =
  QCheck.Test.make ~name:"last-voting: termination after complete suffix"
    ~count:40
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let noisy = Ho.Assignment.random ~rng ~n ~min_size:1 () in
      let a =
        Ho.Assignment.make ~n (fun ~round ~me ->
            if round <= 7 then noisy.Ho.Assignment.ho ~round ~me
            else Sim.Pid.universe n)
      in
      (* a full phase of complete rounds fits within rounds 8..19 *)
      let o = ELV.run ~n ~inputs:(distinct n) ~assignment:a ~rounds:19 () in
      ELV.all_decided o && ELV.distinct_decisions o = 1)

let suites =
  [
    ( "ho.assignment",
      [
        Alcotest.test_case "complete predicates" `Quick test_complete_predicates;
        Alcotest.test_case "partitioned predicates" `Quick test_partitioned_predicates;
        Alcotest.test_case "crash-like" `Quick test_crash_like;
        Alcotest.test_case "majority implies no-split" `Quick
          test_random_majority_no_split;
      ] );
    ( "ho.min_flood",
      [
        Alcotest.test_case "complete, one round" `Quick test_min_flood_complete_one_round;
        Alcotest.test_case "crash-like consensus" `Quick test_min_flood_crash_like_consensus;
        Alcotest.test_case "partitioned k decisions" `Quick
          test_min_flood_partitioned_k_decisions;
      ] );
    ( "ho.last_voting",
      [
        Alcotest.test_case "complete consensus" `Quick test_lv_complete_consensus;
        Alcotest.test_case "partition blocks minorities" `Quick
          test_lv_partition_blocks_small_groups;
        Alcotest.test_case "majority group decides alone" `Quick
          test_lv_majority_group_decides_alone;
        Alcotest.test_case "crash-like consensus" `Quick test_lv_crash_like_consensus;
      ] );
    ( "ho.uniform_voting",
      [
        Alcotest.test_case "complete consensus" `Quick test_uv_complete_consensus;
        Alcotest.test_case "partitioned k decisions" `Quick test_uv_partitioned_k_decisions;
        Alcotest.test_case "crash-like" `Quick test_uv_crash_like;
        Alcotest.test_case "group indistinguishability" `Quick
          test_uv_group_indistinguishability;
      ] );
    Test_util.qsuite "ho.properties"
      [
        prop_min_flood_validity_and_termination;
        prop_min_flood_estimates_monotone;
        prop_uv_safe_under_no_split;
        prop_uv_live_after_stabilization;
        prop_lv_unconditionally_safe;
        prop_lv_live_after_stabilization;
      ];
  ]
