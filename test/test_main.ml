let () =
  Alcotest.run "ksa"
    (Test_prim.suites @ Test_shardset.suites @ Test_dgraph.suites @ Test_sim.suites @ Test_fd.suites @ Test_algo.suites @ Test_core.suites @ Test_model.suites @ Test_impl.suites @ Test_ho.suites @ Test_engine_props.suites @ Test_trace.suites @ Test_trace_io.suites @ Test_fuzz.suites @ Test_misc.suites @ Test_sm.suites @ Test_smoke.suites @ Test_explore.suites @ Test_reduction.suites @ Test_checkpoint.suites @ Test_byzantine.suites @ Test_svc.suites)
