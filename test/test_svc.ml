(* The campaign service: JSON codec, retry backoff, the durable job
   store (including crash-mid-transition sweeps), task specs with
   their historical checkpoint fingerprints, and the daemon loop
   end-to-end — retry-until-done, retry-until-dead, deadline and
   drain requeues, cancellation, and strict resume rejection. *)

module Prim = Ksa_prim
module Backoff = Prim.Backoff
module Faultsim = Prim.Faultsim
module Rng = Prim.Rng
module Metrics = Prim.Metrics
module Sim = Ksa_sim
module Checkpoint = Sim.Checkpoint
module Svc = Ksa_svc
module Json = Svc.Json
module Task = Svc.Task
module Jobstore = Svc.Jobstore
module Daemon = Svc.Daemon
module Http = Svc.Http

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let expect_error name = function
  | Ok _ -> Alcotest.fail (name ^ ": expected Error, got Ok")
  | Error e -> e

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_contains name ~sub e =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S mentions %S" name e sub)
    true (contains ~sub e)

let tmp_dir () =
  let path = Filename.temp_file "ksa_svc" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> go (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

let with_tmp_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---------- Json ---------- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.Int (-42));
      ("big", Json.Int max_int);
      ("float", Json.Float 3.25);
      ("text", Json.Str "a \"quoted\" line\nwith\ttabs and \\ slashes");
      ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.Bool false ]);
      ("nest", Json.Obj [ ("inner", Json.List [ Json.Obj [] ]) ]);
    ]

let test_json_roundtrip () =
  let s = Json.to_string sample_json in
  Alcotest.(check bool) "roundtrip" true (Json.parse s = Ok sample_json);
  (* and the reprint is a fixpoint *)
  let again = ok_or_fail (Json.parse s) in
  Alcotest.(check string) "fixpoint" s (Json.to_string again)

let test_json_int_float_split () =
  Alcotest.(check bool) "int" true (Json.parse "7" = Ok (Json.Int 7));
  Alcotest.(check bool) "neg" true (Json.parse "-7" = Ok (Json.Int (-7)));
  Alcotest.(check bool) "frac" true (Json.parse "7.5" = Ok (Json.Float 7.5));
  Alcotest.(check bool) "exp" true (Json.parse "1e3" = Ok (Json.Float 1000.));
  (* get_float widens ints so "deadline": 2 works *)
  Alcotest.(check bool) "widen" true (Json.get_float (Json.Int 2) = Some 2.)

let test_json_unicode () =
  Alcotest.(check bool) "bmp escape" true
    (Json.parse {|"A"|} = Ok (Json.Str "A"));
  (* a surrogate pair decodes to one 4-byte UTF-8 scalar *)
  match Json.parse {|"😀"|} with
  | Ok (Json.Str s) -> Alcotest.(check int) "pair is 4 bytes" 4 (String.length s)
  | _ -> Alcotest.fail "surrogate pair did not parse"

let test_json_errors () =
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "parsed %S" bad)
      | Error e -> check_contains "offset named" ~sub:"byte" e)
    [
      "{";
      "[1,]";
      "\"unterminated";
      "{\"a\":1,}";
      "1 2";
      "nul";
      "\"bad \\x escape\"";
      "{\"a\" 1}";
    ]

(* ---------- Backoff ---------- *)

let test_backoff_growth () =
  let p = { Backoff.base = 0.5; cap = 30.0; multiplier = 2.0; jitter = 0.0 } in
  List.iteri
    (fun attempt expect ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "attempt %d" attempt)
        expect
        (Backoff.delay p ~attempt))
    [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 30.0; 30.0; 30.0 ]

let test_backoff_jitter () =
  let p = Backoff.default_retry in
  let delays seed =
    let rng = Rng.create ~seed in
    List.init 6 (fun attempt -> Backoff.delay ~rng p ~attempt)
  in
  Alcotest.(check bool) "deterministic" true (delays 42 = delays 42);
  List.iteri
    (fun attempt d ->
      let full = Backoff.delay { p with jitter = 0.0 } ~attempt in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [%.3f, %.3f]" attempt
           (full *. (1. -. p.Backoff.jitter))
           full)
        true
        (d <= full && d >= full *. (1. -. p.Backoff.jitter)))
    (delays 42)

let test_backoff_invalid () =
  let p = Backoff.default_retry in
  (try
     ignore (Backoff.delay p ~attempt:(-1));
     Alcotest.fail "negative attempt accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Backoff.delay { p with Backoff.base = 0.0 } ~attempt:0);
    Alcotest.fail "zero base accepted"
  with Invalid_argument _ -> ()

(* ---------- Faultsim mechanics ---------- *)

let test_faultsim_arm_nth () =
  Fun.protect ~finally:Faultsim.reset (fun () ->
      Faultsim.arm ~point:"p" ~nth:2 Faultsim.Crash;
      Faultsim.point "p";
      Faultsim.point "other";
      (* only the named point's second hit fires *)
      (match Faultsim.point "p" with
      | () -> Alcotest.fail "second hit did not crash"
      | exception Faultsim.Crashed _ -> ());
      (* a fired plan is spent *)
      Faultsim.point "p";
      Faultsim.arm ~nth:1 (Faultsim.Errno Unix.ENOSPC);
      match Faultsim.point "any" with
      | () -> Alcotest.fail "errno did not fire"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ())

(* ---------- Task specs ---------- *)

let explore_spec =
  Task.Explore
    {
      Task.e_algo = "kset-flp";
      e_n = 4;
      e_k = 2;
      e_l = None;
      e_wait = 2;
      e_dead = [];
      e_crash_budget = 0;
      e_model = Sim.Fault_model.Crash;
      e_policy = "per-sender";
      e_reduction = Sim.Canon.No_reduction;
      e_max_configs = None;
      e_drop = false;
    }

(* small enough to exhaust in well under a second — the spec the
   run-the-campaign tests use *)
let small_explore =
  match explore_spec with
  | Task.Explore e -> Task.Explore { e with Task.e_n = 3 }
  | _ -> assert false

let fuzz_spec =
  Task.Fuzz
    {
      Task.f_algo = "kset-flp";
      f_n = 5;
      f_k = 2;
      f_l = None;
      f_wait = 2;
      f_dead = [ 0 ];
      f_seed = 9;
      f_trials = 50;
      f_max_steps = 120;
      f_max_crashes = 1;
      f_weights = "mixed";
      f_termination = false;
      f_coverage = false;
      f_model = Sim.Fault_model.Crash;
    }

let test_task_fingerprints () =
  (* byte-identical to what bin/ksa.ml has always written: an old
     checkpoint file must keep resuming under the Task layer *)
  Alcotest.(check string) "explore kind" "explore" (Task.kind explore_spec);
  Alcotest.(check string) "explore fingerprint"
    "algo=kset-flp n=4 k=2 l=3 wait=2 dead= crash-budget=0 policy=per-sender \
     max-configs=- drop=false reduction=none"
    (Task.fingerprint explore_spec);
  Alcotest.(check string) "fuzz kind" "fuzz" (Task.kind fuzz_spec);
  Alcotest.(check string) "fuzz fingerprint"
    "algo=kset-flp n=5 k=2 l=4 wait=2 dead=0 seed=9 trials=50 max-steps=120 \
     max-crashes=1 weights=mixed termination=false coverage=false"
    (Task.fingerprint fuzz_spec);
  (* the crash-budget flips the kind, like the CLI *)
  let crashy =
    match explore_spec with
    | Task.Explore e -> Task.Explore { e with Task.e_crash_budget = 1 }
    | _ -> assert false
  in
  Alcotest.(check string) "explore-crash kind" "explore-crash"
    (Task.kind crashy)

let test_task_spec_json_roundtrip () =
  List.iter
    (fun spec ->
      match Task.spec_of_json (Task.spec_to_json spec) with
      | Ok back ->
          Alcotest.(check string) "roundtrip fingerprint"
            (Task.fingerprint spec) (Task.fingerprint back)
      | Error e -> Alcotest.fail e)
    [ explore_spec; fuzz_spec; Task.Probe { Task.p_fail = 2; p_spin = 0.5 } ]

let test_task_spec_validation () =
  let bad json = expect_error "spec" (Task.spec_of_json json) in
  check_contains "algo" ~sub:"unknown algorithm"
    (bad (Json.Obj [ ("task", Json.Str "explore"); ("algo", Json.Str "nope") ]));
  check_contains "task" ~sub:"unknown task"
    (bad (Json.Obj [ ("task", Json.Str "bake") ]));
  check_contains "weights" ~sub:"unknown weights"
    (bad
       (Json.Obj [ ("task", Json.Str "fuzz"); ("weights", Json.Str "loaded") ]))

let test_task_probe () =
  (* fails while attempt < fail, then succeeds: the daemon's retry
     fixture *)
  (match Task.run ~attempt:0 (Task.Probe { Task.p_fail = 2; p_spin = 0. }) with
  | exception Failure m -> check_contains "injected" ~sub:"injected" m
  | _ -> Alcotest.fail "attempt 0 should raise");
  match Task.run ~attempt:2 (Task.Probe { Task.p_fail = 2; p_spin = 0. }) with
  | Ok (Task.Probed { attempt }) -> Alcotest.(check int) "attempt" 2 attempt
  | _ -> Alcotest.fail "attempt 2 should succeed"

let test_task_load_resume_errors () =
  check_contains "missing" ~sub:"cannot resume"
    (expect_error "missing"
       (Task.load_resume ~path:"/nonexistent-ksa/x.ckpt" ~kind:"explore"
          ~fingerprint:"f"))

let test_task_explore_runs () =
  match Task.run small_explore with
  | Ok (Task.Explored (Sim.Explorer.Safe _) as o) ->
      let s = Task.summarize o in
      Alcotest.(check string) "verdict" "safe" s.Task.verdict;
      Alcotest.(check int) "exit" 0 s.Task.exit_code;
      let back = ok_or_fail (Task.summary_of_json (Task.summary_to_json s)) in
      Alcotest.(check bool) "summary roundtrip" true (back = s)
  | Ok _ -> Alcotest.fail "expected Safe"
  | Error e -> Alcotest.fail e

(* ---------- Jobstore ---------- *)

let test_jobstore_roundtrip () =
  with_tmp_dir (fun dir ->
      let t = ok_or_fail (Jobstore.open_dir ~dir) in
      let j1 = ok_or_fail (Jobstore.submit t explore_spec) in
      let j2 =
        ok_or_fail (Jobstore.submit t ~deadline:1.5 ~retry_max:7 fuzz_spec)
      in
      Alcotest.(check (list int)) "ids" [ 1; 2 ]
        (List.map (fun (j : Jobstore.job) -> j.Jobstore.id) (Jobstore.list t));
      ok_or_fail
        (Jobstore.update t
           { j1 with Jobstore.state = Jobstore.Done; attempts = 1 });
      (* a fresh open rereads everything from disk *)
      let t' = ok_or_fail (Jobstore.open_dir ~dir) in
      (match Jobstore.get t' 1 with
      | Some j ->
          Alcotest.(check bool) "done survived" true
            (j.Jobstore.state = Jobstore.Done && j.Jobstore.attempts = 1)
      | None -> Alcotest.fail "job 1 lost");
      (match Jobstore.get t' 2 with
      | Some j ->
          Alcotest.(check bool) "deadline survived" true
            (j.Jobstore.deadline = Some 1.5 && j.Jobstore.retry_max = 7);
          Alcotest.(check string) "spec survived" (Task.fingerprint fuzz_spec)
            (Task.fingerprint j.Jobstore.spec)
      | None -> Alcotest.fail "job 2 lost");
      ignore j2;
      (* ids keep ascending across reopens *)
      let j3 = ok_or_fail (Jobstore.submit t' explore_spec) in
      Alcotest.(check int) "next id" 3 j3.Jobstore.id)

let test_jobstore_adopts_orphans () =
  with_tmp_dir (fun dir ->
      let t = ok_or_fail (Jobstore.open_dir ~dir) in
      let j = ok_or_fail (Jobstore.submit t explore_spec) in
      ok_or_fail (Jobstore.update t { j with Jobstore.state = Jobstore.Running });
      (* a new daemon finds the Running orphan of the dead one *)
      let t' = ok_or_fail (Jobstore.open_dir ~dir) in
      (match Jobstore.get t' j.Jobstore.id with
      | Some j' ->
          Alcotest.(check bool) "adopted" true
            (j'.Jobstore.state = Jobstore.Queued && j'.Jobstore.resumable)
      | None -> Alcotest.fail "orphan lost");
      (* and the adoption was persisted: a third open sees Queued
         directly, not another adoption *)
      let t'' = ok_or_fail (Jobstore.open_dir ~dir) in
      match Jobstore.get t'' j.Jobstore.id with
      | Some j'' ->
          Alcotest.(check bool) "adoption durable" true
            (j''.Jobstore.state = Jobstore.Queued)
      | None -> Alcotest.fail "orphan lost after adoption")

let test_jobstore_crash_sweep () =
  (* crash at every instant of a state-transition write: the reopened
     store must see the old state or the new state, never lose the
     job, and never block on the leftover temp file *)
  with_tmp_dir (fun dir ->
      Fun.protect ~finally:Faultsim.reset (fun () ->
          let t = ok_or_fail (Jobstore.open_dir ~dir) in
          let j = ok_or_fail (Jobstore.submit t explore_spec) in
          Faultsim.record ();
          ok_or_fail
            (Jobstore.update t { j with Jobstore.state = Jobstore.Running });
          let trace = Faultsim.trace () in
          Faultsim.reset ();
          Alcotest.(check bool) "trace nonempty" true (trace <> []);
          let seen = Hashtbl.create 8 in
          List.iter
            (fun point ->
              let nth =
                1 + Option.value ~default:0 (Hashtbl.find_opt seen point)
              in
              Hashtbl.replace seen point nth;
              (* reset to the old state, then crash mid-transition *)
              ok_or_fail
                (Jobstore.update t
                   { j with Jobstore.state = Jobstore.Failed 1 });
              Faultsim.arm ~point ~nth Faultsim.Crash;
              (match
                 Jobstore.update t { j with Jobstore.state = Jobstore.Done }
               with
              | exception Faultsim.Crashed _ -> ()
              | Ok () -> ()
              | Error e -> Alcotest.fail e);
              Faultsim.reset ();
              let t' = ok_or_fail (Jobstore.open_dir ~dir) in
              match Jobstore.get t' j.Jobstore.id with
              | None ->
                  Alcotest.fail
                    (Printf.sprintf "%s#%d: job lost to the crash" point nth)
              | Some j' ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s#%d: old or new state" point nth)
                    true
                    (j'.Jobstore.state = Jobstore.Failed 1
                    || j'.Jobstore.state = Jobstore.Done))
            trace))

(* ---------- Daemon ---------- *)

let batch_cfg ~dir =
  {
    (Daemon.default_cfg ~dir) with
    Daemon.exit_when_idle = true;
    (* fast, deterministic-schedule retries for tests *)
    retry =
      { Backoff.base = 0.001; cap = 0.002; multiplier = 2.0; jitter = 0.0 };
  }

let probe ?(fail = 0) ?(spin = 0.) () =
  Task.Probe { Task.p_fail = fail; p_spin = spin }

let test_daemon_retry_until_done () =
  with_tmp_dir (fun dir ->
      let t = ok_or_fail (Jobstore.open_dir ~dir) in
      let j = ok_or_fail (Jobstore.submit t ~retry_max:3 (probe ~fail:2 ())) in
      let retried_before = Metrics.value (Metrics.counter "svc.jobs.retried") in
      Alcotest.(check int) "daemon exits clean" 0
        (Daemon.serve (batch_cfg ~dir));
      let t' = ok_or_fail (Jobstore.open_dir ~dir) in
      (match Jobstore.get t' j.Jobstore.id with
      | Some j' ->
          Alcotest.(check bool) "done" true (j'.Jobstore.state = Jobstore.Done);
          (* two injected failures, then success *)
          Alcotest.(check int) "attempts" 3 j'.Jobstore.attempts;
          (match j'.Jobstore.result with
          | Some s -> Alcotest.(check string) "verdict" "ok" s.Task.verdict
          | None -> Alcotest.fail "no result");
          Alcotest.(check bool) "error cleared" true (j'.Jobstore.error = None)
      | None -> Alcotest.fail "job lost");
      Alcotest.(check int) "two retries scheduled" (retried_before + 2)
        (Metrics.value (Metrics.counter "svc.jobs.retried")))

let test_daemon_retry_until_dead () =
  with_tmp_dir (fun dir ->
      let t = ok_or_fail (Jobstore.open_dir ~dir) in
      let j = ok_or_fail (Jobstore.submit t ~retry_max:1 (probe ~fail:99 ())) in
      Alcotest.(check int) "daemon exits clean" 0
        (Daemon.serve (batch_cfg ~dir));
      let t' = ok_or_fail (Jobstore.open_dir ~dir) in
      match Jobstore.get t' j.Jobstore.id with
      | Some j' ->
          Alcotest.(check bool) "dead" true (j'.Jobstore.state = Jobstore.Dead);
          (* the original attempt plus one retry *)
          Alcotest.(check int) "attempts" 2 j'.Jobstore.attempts;
          (match j'.Jobstore.error with
          | Some e -> check_contains "error recorded" ~sub:"injected" e
          | None -> Alcotest.fail "no error recorded")
      | None -> Alcotest.fail "job lost")

let test_daemon_runs_campaigns () =
  (* a real explore job through the daemon reports exactly the
     summary a direct Task.run reports *)
  with_tmp_dir (fun dir ->
      let t = ok_or_fail (Jobstore.open_dir ~dir) in
      let j = ok_or_fail (Jobstore.submit t small_explore) in
      Alcotest.(check int) "daemon exits clean" 0
        (Daemon.serve (batch_cfg ~dir));
      let direct = Task.summarize (ok_or_fail (Task.run small_explore)) in
      let t' = ok_or_fail (Jobstore.open_dir ~dir) in
      match Jobstore.get t' j.Jobstore.id with
      | Some { Jobstore.state = Jobstore.Done; result = Some s; _ } ->
          Alcotest.(check bool) "summary identical" true (s = direct)
      | _ -> Alcotest.fail "explore job not done")

let test_daemon_strict_resume_rejection () =
  (* a resumable job with a mismatched checkpoint: the daemon refuses
     the checkpoint (counted), then reruns the attempt fresh *)
  with_tmp_dir (fun dir ->
      let t = ok_or_fail (Jobstore.open_dir ~dir) in
      let j = ok_or_fail (Jobstore.submit t small_explore) in
      ok_or_fail (Jobstore.update t { j with Jobstore.resumable = true });
      (* a valid frame of the wrong kind/fingerprint would also do;
         garbage exercises the same strict path *)
      Out_channel.with_open_bin
        (Jobstore.ckpt_path ~dir j.Jobstore.id)
        (fun oc -> Out_channel.output_string oc "not a checkpoint");
      let rejected_before =
        Metrics.value (Metrics.counter "svc.resume.rejected")
      in
      Alcotest.(check int) "daemon exits clean" 0
        (Daemon.serve (batch_cfg ~dir));
      Alcotest.(check int) "rejection counted" (rejected_before + 1)
        (Metrics.value (Metrics.counter "svc.resume.rejected"));
      let t' = ok_or_fail (Jobstore.open_dir ~dir) in
      match Jobstore.get t' j.Jobstore.id with
      | Some { Jobstore.state = Jobstore.Done; result = Some s; _ } ->
          Alcotest.(check string) "fresh rerun converges" "safe" s.Task.verdict
      | _ -> Alcotest.fail "job not done after rejected resume")

(* one HTTP daemon session exercises submit/status/cancel/deadline/
   drain against a live event loop *)
let test_daemon_http_session () =
  with_tmp_dir (fun dir ->
      let addr = "unix:" ^ Filename.concat dir "sock" in
      let cfg =
        { (Daemon.default_cfg ~dir) with Daemon.addr = Some addr }
      in
      let daemon = Domain.spawn (fun () -> Daemon.serve cfg) in
      let req ?body meth path =
        let rec retry n =
          match Http.request ~addr ~meth ~path ?body () with
          | Ok r -> r
          | Error e ->
              if n = 0 then Alcotest.fail ("http: " ^ e)
              else begin
                (* the listener may not be up yet *)
                Unix.sleepf 0.05;
                retry (n - 1)
              end
        in
        retry 40
      in
      let get_job body =
        match Result.bind (Json.parse body) Jobstore.job_of_json with
        | Ok j -> j
        | Error e -> Alcotest.fail ("bad job json: " ^ e)
      in
      let submit ?deadline spec =
        let body =
          Json.to_string
            (Json.Obj
               ([ ("spec", Task.spec_to_json spec) ]
               @
               match deadline with
               | None -> []
               | Some d -> [ ("deadline", Json.Float d) ]))
        in
        match req ~body "POST" "/jobs" with
        | 201, reply -> (get_job reply).Jobstore.id
        | st, reply ->
            Alcotest.fail (Printf.sprintf "submit: %d %s" st reply)
      in
      let status id =
        match req "GET" (Printf.sprintf "/jobs/%d" id) with
        | 200, reply -> get_job reply
        | st, reply ->
            Alcotest.fail (Printf.sprintf "status: %d %s" st reply)
      in
      let rec await ?(tries = 200) id pred =
        let j = status id in
        if pred j then j
        else if tries = 0 then
          Alcotest.fail (Printf.sprintf "job %d never reached state" id)
        else begin
          Unix.sleepf 0.05;
          await ~tries:(tries - 1) id pred
        end
      in
      (* health before any job *)
      (match req "GET" "/health" with
      | 200, body -> check_contains "health" ~sub:"\"ok\":true" body
      | st, _ -> Alcotest.fail (Printf.sprintf "health: %d" st));
      (* deadline: a long probe is cut, requeued with its progress
         counter bumped, and rescheduled *)
      let slow = submit ~deadline:0.2 (probe ~spin:30. ()) in
      let j =
        await slow (fun j -> j.Jobstore.requeues >= 1)
      in
      Alcotest.(check bool) "deadline did not kill it" true
        (j.Jobstore.state <> Jobstore.Dead);
      (* cancel it (running or queued, whichever the race gives) *)
      (match req "DELETE" (Printf.sprintf "/jobs/%d" slow) with
      | (200 | 202), _ -> ()
      | st, reply -> Alcotest.fail (Printf.sprintf "cancel: %d %s" st reply));
      let j = await slow (fun j -> j.Jobstore.state = Jobstore.Dead) in
      (match j.Jobstore.error with
      | Some e -> check_contains "cancelled" ~sub:"cancelled" e
      | None -> Alcotest.fail "no cancellation reason");
      (* an unknown id is a 404, not a hang *)
      (match req "GET" "/jobs/999" with
      | 404, _ -> ()
      | st, _ -> Alcotest.fail (Printf.sprintf "missing job: %d" st));
      (* drain with a job mid-run: requeued resumable, daemon exits 0 *)
      let draining = submit (probe ~spin:30. ()) in
      ignore (await draining (fun j -> j.Jobstore.state = Jobstore.Running));
      (match req "POST" "/drain" with
      | 202, _ -> ()
      | st, _ -> Alcotest.fail (Printf.sprintf "drain: %d" st));
      Alcotest.(check int) "drained daemon exits 0" 0 (Domain.join daemon);
      (* the drained job survived as queued work for the next daemon *)
      let t = ok_or_fail (Jobstore.open_dir ~dir) in
      match Jobstore.get t draining with
      | Some j ->
          Alcotest.(check bool) "requeued" true
            (j.Jobstore.state = Jobstore.Queued && j.Jobstore.requeues = 1)
      | None -> Alcotest.fail "drained job lost")

let suites =
  [
    ( "svc json",
      [
        Alcotest.test_case "roundtrip and fixpoint" `Quick test_json_roundtrip;
        Alcotest.test_case "int/float split" `Quick test_json_int_float_split;
        Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
        Alcotest.test_case "malformed inputs are located errors" `Quick
          test_json_errors;
      ] );
    ( "svc backoff",
      [
        Alcotest.test_case "capped exponential growth" `Quick
          test_backoff_growth;
        Alcotest.test_case "jitter is bounded and deterministic" `Quick
          test_backoff_jitter;
        Alcotest.test_case "invalid arguments rejected" `Quick
          test_backoff_invalid;
        Alcotest.test_case "faultsim: nth-hit arming" `Quick
          test_faultsim_arm_nth;
      ] );
    ( "svc task",
      [
        Alcotest.test_case "fingerprints match the historical CLI" `Quick
          test_task_fingerprints;
        Alcotest.test_case "spec json roundtrip" `Quick
          test_task_spec_json_roundtrip;
        Alcotest.test_case "spec validation is eager" `Quick
          test_task_spec_validation;
        Alcotest.test_case "probe fails then succeeds" `Quick test_task_probe;
        Alcotest.test_case "load_resume names its refusal" `Quick
          test_task_load_resume_errors;
        Alcotest.test_case "explore spec runs to a summary" `Quick
          test_task_explore_runs;
      ] );
    ( "svc jobstore",
      [
        Alcotest.test_case "submit/update survive reopen" `Quick
          test_jobstore_roundtrip;
        Alcotest.test_case "running orphans adopted durably" `Quick
          test_jobstore_adopts_orphans;
        Alcotest.test_case "crash at every transition instant" `Quick
          test_jobstore_crash_sweep;
      ] );
    ( "svc daemon",
      [
        Alcotest.test_case "retry with backoff until done" `Quick
          test_daemon_retry_until_done;
        Alcotest.test_case "retries exhausted leaves a dead job" `Quick
          test_daemon_retry_until_dead;
        Alcotest.test_case "campaign summary identical to direct run" `Quick
          test_daemon_runs_campaigns;
        Alcotest.test_case "strict resume rejection reruns fresh" `Quick
          test_daemon_strict_resume_rejection;
        Alcotest.test_case "http session: deadline, cancel, drain" `Quick
          test_daemon_http_session;
      ] );
  ]
