(* The unified trace layer.

   Unit tests of the four-case Definition 2 semantics over hand-built
   traces, plus the cross-substrate theorem the layer exists for: the
   same algorithm run lock-step in the asynchronous engine and under a
   full (complete-HO) assignment in the Heard-Of engine produces
   literally identical interned traces — same init ids, same state-id
   rows, same decision marks — because both substrates intern into the
   one shared registry. *)

module Sim = Ksa_sim
module Trace = Sim.Trace

let distinct = Sim.Value.distinct_inputs

(* ---------- Definition 2 semantics over hand-built traces ---------- *)

let mk ~init rows =
  Trace.make ~init_ids:(Array.of_list init)
    ~steps:
      (Array.of_list
         (List.map
            (fun row ->
              List.map
                (fun (state_id, decision) -> { Trace.state_id; decision })
                row)
            rows))

let test_both_decided () =
  let a = mk ~init:[ 7 ] [ [ (1, None); (2, Some 0); (3, None) ] ] in
  let b = mk ~init:[ 7 ] [ [ (1, None); (2, Some 0) ] ] in
  (* equal prefixes up to and including the deciding step; the tail
     beyond the decision is irrelevant *)
  Alcotest.(check bool) "same deciding prefix" true
    (Trace.indistinguishable_for a b 0);
  let c = mk ~init:[ 7 ] [ [ (1, None); (9, Some 0) ] ] in
  Alcotest.(check bool) "different deciding state" false
    (Trace.indistinguishable_for a c 0);
  let d = mk ~init:[ 7 ] [ [ (1, None); (2, None); (3, Some 0) ] ] in
  (* both decided but at different step counts: distinguishable even
     though the state sequences agree on the common prefix *)
  Alcotest.(check bool) "different deciding step" false
    (Trace.indistinguishable_for a d 0)

let test_one_decided () =
  let dec = mk ~init:[ 7 ] [ [ (1, None); (2, Some 0) ] ] in
  let longer = mk ~init:[ 7 ] [ [ (1, None); (2, None); (5, None) ] ] in
  (* the decided prefix must be a prefix of the undecided trace *)
  Alcotest.(check bool) "decided vs longer undecided" true
    (Trace.indistinguishable_for dec longer 0);
  Alcotest.(check bool) "symmetric" true
    (Trace.indistinguishable_for longer dec 0);
  let shorter = mk ~init:[ 7 ] [ [ (1, None) ] ] in
  (* the undecided trace is too short to contain the deciding prefix *)
  Alcotest.(check bool) "decided vs shorter undecided" false
    (Trace.indistinguishable_for dec shorter 0)

let test_neither_decided () =
  let a = mk ~init:[ 7 ] [ [ (1, None); (2, None) ] ] in
  let b = mk ~init:[ 7 ] [ [ (1, None); (2, None); (3, None) ] ] in
  Alcotest.(check bool) "agree up to min length" true
    (Trace.indistinguishable_for a b 0);
  let c = mk ~init:[ 7 ] [ [ (1, None); (9, None); (3, None) ] ] in
  Alcotest.(check bool) "diverge within min length" false
    (Trace.indistinguishable_for a c 0)

let test_init_states_compared () =
  let a = mk ~init:[ 7 ] [ [ (1, None) ] ] in
  let b = mk ~init:[ 8 ] [ [ (1, None) ] ] in
  Alcotest.(check bool) "different initial states" false
    (Trace.indistinguishable_for a b 0)

let test_states_until_decision () =
  let t = mk ~init:[ 7 ] [ [ (1, None); (2, Some 0); (3, None) ] ] in
  Alcotest.(check (list int)) "cut at decision" [ 7; 1; 2 ]
    (Trace.states_until_decision t 0);
  let u = mk ~init:[ 7 ] [ [ (1, None); (2, None) ] ] in
  Alcotest.(check (list int)) "whole row when undecided" [ 7; 1; 2 ]
    (Trace.states_until_decision u 0)

(* ---------- cross-substrate lock-step equality ---------- *)

(* A deterministic R-round min-flooding agreement protocol, written
   once against shared state/message types and wrapped for both
   substrates.  Round 1 is a content-free Hello round (its messages
   are ignored), so that the asynchronous rendering — where the first
   step of a process has nothing to deliver — traverses exactly the
   HO state sequence. *)

let rounds_total = 3

type fl_state = { n : int; est : int; round : int }
type fl_msg = Hello | Est of int

let fl_init ~n ~input = { n; est = input; round = 0 }

let fl_payload st ~round = if round = 1 then Hello else Est st.est

let fl_transition st ~round ~received =
  let est =
    if round = 1 then st.est
    else
      List.fold_left
        (fun acc (_, m) -> match m with Est e -> min acc e | Hello -> acc)
        st.est received
  in
  let st' = { st with est; round } in
  let dec = if round = rounds_total then Some est else None in
  (st', dec)

module Ho_flood : Ksa_ho.Ho_algorithm.S
  with type state = fl_state and type message = fl_msg = struct
  type state = fl_state
  type message = fl_msg

  let name = "ho-min-flood"
  let init ~n ~me:_ ~input = fl_init ~n ~input
  let send st ~round = fl_payload st ~round
  let transition = fl_transition
  let pp_state ppf st = Format.fprintf ppf "est=%d@r%d" st.est st.round
  let pp_message ppf = function
    | Hello -> Format.pp_print_string ppf "hello"
    | Est e -> Format.fprintf ppf "est(%d)" e
end

module Async_flood : Sim.Algorithm.S
  with type state = fl_state and type message = fl_msg = struct
  type state = fl_state
  type message = fl_msg

  let name = "async-min-flood"
  let uses_fd = false
  let init ~n ~me:_ ~input = fl_init ~n ~input

  let step st ~received ~fd:_ =
    let round = st.round + 1 in
    let st', dec = fl_transition st ~round ~received in
    (* the round-(r+1) broadcast is computed from the post-round state,
       exactly as the HO engine computes round-(r+1) messages from the
       state after round r *)
    let sends =
      if round < rounds_total then
        List.init st.n (fun q -> (q, fl_payload st' ~round:(round + 1)))
      else []
    in
    (st', sends, dec)

  let canon (st : state) = st
  let canon_message (m : message) = m
  let forge_pool ~n:_ ~values:_ = []
  let pp_state ppf st = Format.fprintf ppf "est=%d@r%d" st.est st.round
  let pp_message ppf = function
    | Hello -> Format.pp_print_string ppf "hello"
    | Est e -> Format.fprintf ppf "est(%d)" e
end

(* Round-synchronous schedule for the asynchronous engine: in block r
   (steps (r−1)·n+1 … r·n) each process takes one step in pid order,
   delivering exactly the messages sent in earlier blocks — i.e. its
   round-r messages.  Ascending message-id order coincides with
   ascending sender order, matching the HO engine's sender-ordered
   delivery. *)
let lockstep ~n ~rounds =
  {
    Sim.Adversary.describe = "lockstep round-synchronous";
    next =
      (fun obs ->
        if obs.Sim.Adversary.time >= n * rounds then Sim.Adversary.Halt
        else
          let pid = obs.time mod n in
          let block_start = obs.time / n * n in
          let deliver =
            List.filter_map
              (fun (m : Sim.Adversary.pending) ->
                if m.dst = pid && m.sent_at <= block_start then Some m.id
                else None)
              obs.pending
          in
          Sim.Adversary.Step { pid; deliver });
  }

let test_cross_substrate_traces () =
  let n = 4 in
  let inputs = distinct n in
  let module HE = Ksa_ho.Engine.Make (Ho_flood) in
  let module AE = Sim.Engine.Make (Async_flood) in
  let ho =
    HE.run ~n ~inputs ~assignment:(Ksa_ho.Assignment.complete ~n)
      ~rounds:rounds_total ()
  in
  let async =
    AE.run ~n ~inputs
      ~pattern:(Sim.Failure_pattern.none ~n)
      (lockstep ~n ~rounds:rounds_total)
  in
  Alcotest.(check bool) "async run decision-complete" true
    (Sim.Run.all_correct_decided async);
  Alcotest.(check bool) "ho outcome decision-complete" true
    (HE.all_decided ho);
  (* the min of all inputs wins everywhere, on both substrates *)
  let lo = Array.fold_left min max_int inputs in
  Alcotest.(check (list int)) "same decisions" [ lo ] (HE.decided_values ho);
  Alcotest.(check (list int)) "async agrees" [ lo ]
    (Sim.Run.decided_values async);
  (* the payoff: literally the same trace object, interned ids and
     all, out of two different execution substrates *)
  Alcotest.(check bool) "identical interned traces" true
    (Trace.equal ho.HE.trace async.Sim.Run.trace);
  Alcotest.(check bool) "indistinguishable for every process" true
    (Trace.indistinguishable_for_all ho.HE.trace async.Sim.Run.trace
       (List.init n Fun.id))

let test_cross_substrate_divergence_detected () =
  (* sanity check that the equality above is not vacuous: a partitioned
     HO assignment diverges from the complete one, and the traces must
     differ for processes outside the largest group *)
  let n = 4 in
  let inputs = distinct n in
  let module HE = Ksa_ho.Engine.Make (Ho_flood) in
  let full =
    HE.run ~n ~inputs ~assignment:(Ksa_ho.Assignment.complete ~n)
      ~rounds:rounds_total ()
  in
  let split =
    HE.run ~n ~inputs
      ~assignment:
        (Ksa_ho.Assignment.partitioned ~n ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ())
      ~rounds:rounds_total ()
  in
  Alcotest.(check bool) "partitioned trace differs" false
    (Trace.equal full.HE.trace split.HE.trace);
  Alcotest.(check bool) "distinguishable for p3" false
    (Sim.Trace.indistinguishable_for full.HE.trace split.HE.trace 3)

(* ---------- Definition 2 property suite over random traces ---------- *)

(* A single-process trace described by plain data, so that an
   independent oracle for Definition 2 can be computed from the
   description without going through the library.  [dec] is the index
   of the deciding step, if any (at most one decision per row, which
   is all the engines ever produce). *)
type raw = { init : int; ids : int list; dec : int option }

let take n xs = List.filteri (fun i _ -> i < n) xs

let raw_to_trace r =
  mk ~init:[ r.init ]
    [ List.mapi (fun i id -> (id, if r.dec = Some i then Some 0 else None)) r.ids ]

let truncate_raw r m =
  {
    r with
    ids = take m r.ids;
    dec = (match r.dec with Some i when i < m -> Some i | _ -> None);
  }

(* the four cases of Definition 2, written directly over the decided
   state prefixes — an independent formulation the library must agree
   with on every generated pair *)
let ref_indistinguishable a b =
  let states r =
    let cut = match r.dec with Some i -> i + 1 | None -> List.length r.ids in
    r.init :: take cut r.ids
  in
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && is_prefix xs ys
  in
  let sa = states a and sb = states b in
  match (a.dec <> None, b.dec <> None) with
  | true, true -> sa = sb
  | true, false -> is_prefix sa sb
  | false, true -> is_prefix sb sa
  | false, false ->
      let m = min (List.length sa) (List.length sb) in
      take m sa = take m sb

let pp_raw r =
  Printf.sprintf "{init=%d; ids=[%s]; dec=%s}" r.init
    (String.concat ";" (List.map string_of_int r.ids))
    (match r.dec with None -> "-" | Some i -> string_of_int i)

let gen_raw =
  QCheck.Gen.(
    int_bound 3 >>= fun init ->
    list_size (int_bound 6) (int_bound 3) >>= fun ids ->
    (match ids with
    | [] -> return None
    | _ -> opt (int_bound (List.length ids - 1)))
    >>= fun dec -> return { init; ids; dec })

let arb_raw = QCheck.make ~print:pp_raw gen_raw

(* pairs that share structure often enough to exercise the [true]
   branches of all four cases, not just the easy mismatches *)
let gen_raw_pair =
  QCheck.Gen.(
    gen_raw >>= fun a ->
    oneof
      [
        return (a, a);
        (int_bound (List.length a.ids) >>= fun m -> return (a, truncate_raw a m));
        ( gen_raw >>= fun b ->
          return (a, { b with init = a.init; ids = take (List.length b.ids) (a.ids @ b.ids) }) );
        (gen_raw >>= fun b -> return (a, b));
      ])

let arb_raw_pair =
  QCheck.make
    ~print:(fun (a, b) -> pp_raw a ^ " vs " ^ pp_raw b)
    gen_raw_pair

let prop_indist_reflexive =
  QCheck.Test.make ~name:"indistinguishable_for is reflexive" ~count:200
    arb_raw (fun r ->
      let t = raw_to_trace r in
      Trace.indistinguishable_for t t 0)

let prop_indist_symmetric =
  QCheck.Test.make ~name:"indistinguishable_for is symmetric" ~count:500
    arb_raw_pair (fun (a, b) ->
      let ta = raw_to_trace a and tb = raw_to_trace b in
      Trace.indistinguishable_for ta tb 0 = Trace.indistinguishable_for tb ta 0)

let prop_indist_matches_oracle =
  QCheck.Test.make
    ~name:"indistinguishable_for matches the Definition 2 oracle" ~count:500
    arb_raw_pair (fun (a, b) ->
      Trace.indistinguishable_for (raw_to_trace a) (raw_to_trace b) 0
      = ref_indistinguishable a b)

let prop_indist_prefix_closure =
  (* truncating an UNDECIDED process's row never distinguishes (the
     runs agree up to the shorter prefix); once the row contains the
     deciding step, truncating strictly below it always does — the
     quantitative content of the one-decided case *)
  QCheck.Test.make ~name:"prefix truncation: closed iff decision survives"
    ~count:500
    (QCheck.make
       ~print:(fun (r, m) -> Printf.sprintf "%s cut at %d" (pp_raw r) m)
       QCheck.Gen.(
         gen_raw >>= fun r ->
         int_bound (List.length r.ids) >>= fun m -> return (r, m)))
    (fun (r, m) ->
      let expected =
        match r.dec with None -> true | Some i -> m >= i + 1
      in
      Trace.indistinguishable_for (raw_to_trace r)
        (raw_to_trace (truncate_raw r m))
        0
      = expected)

let suites =
  [
    Test_util.qsuite "trace.properties"
      [
        prop_indist_reflexive;
        prop_indist_symmetric;
        prop_indist_matches_oracle;
        prop_indist_prefix_closure;
      ];
    ( "trace",
      [
        Alcotest.test_case "both decided" `Quick test_both_decided;
        Alcotest.test_case "one decided" `Quick test_one_decided;
        Alcotest.test_case "neither decided" `Quick test_neither_decided;
        Alcotest.test_case "initial states compared" `Quick
          test_init_states_compared;
        Alcotest.test_case "states until decision" `Quick
          test_states_until_decision;
        Alcotest.test_case "cross-substrate lock-step equality" `Quick
          test_cross_substrate_traces;
        Alcotest.test_case "cross-substrate divergence detected" `Quick
          test_cross_substrate_divergence_detected;
      ] );
  ]
