(* The unified trace layer.

   Unit tests of the four-case Definition 2 semantics over hand-built
   traces, plus the cross-substrate theorem the layer exists for: the
   same algorithm run lock-step in the asynchronous engine and under a
   full (complete-HO) assignment in the Heard-Of engine produces
   literally identical interned traces — same init ids, same state-id
   rows, same decision marks — because both substrates intern into the
   one shared registry. *)

module Sim = Ksa_sim
module Trace = Sim.Trace

let distinct = Sim.Value.distinct_inputs

(* ---------- Definition 2 semantics over hand-built traces ---------- *)

let mk ~init rows =
  Trace.make ~init_ids:(Array.of_list init)
    ~steps:
      (Array.of_list
         (List.map
            (fun row ->
              List.map
                (fun (state_id, decision) -> { Trace.state_id; decision })
                row)
            rows))

let test_both_decided () =
  let a = mk ~init:[ 7 ] [ [ (1, None); (2, Some 0); (3, None) ] ] in
  let b = mk ~init:[ 7 ] [ [ (1, None); (2, Some 0) ] ] in
  (* equal prefixes up to and including the deciding step; the tail
     beyond the decision is irrelevant *)
  Alcotest.(check bool) "same deciding prefix" true
    (Trace.indistinguishable_for a b 0);
  let c = mk ~init:[ 7 ] [ [ (1, None); (9, Some 0) ] ] in
  Alcotest.(check bool) "different deciding state" false
    (Trace.indistinguishable_for a c 0);
  let d = mk ~init:[ 7 ] [ [ (1, None); (2, None); (3, Some 0) ] ] in
  (* both decided but at different step counts: distinguishable even
     though the state sequences agree on the common prefix *)
  Alcotest.(check bool) "different deciding step" false
    (Trace.indistinguishable_for a d 0)

let test_one_decided () =
  let dec = mk ~init:[ 7 ] [ [ (1, None); (2, Some 0) ] ] in
  let longer = mk ~init:[ 7 ] [ [ (1, None); (2, None); (5, None) ] ] in
  (* the decided prefix must be a prefix of the undecided trace *)
  Alcotest.(check bool) "decided vs longer undecided" true
    (Trace.indistinguishable_for dec longer 0);
  Alcotest.(check bool) "symmetric" true
    (Trace.indistinguishable_for longer dec 0);
  let shorter = mk ~init:[ 7 ] [ [ (1, None) ] ] in
  (* the undecided trace is too short to contain the deciding prefix *)
  Alcotest.(check bool) "decided vs shorter undecided" false
    (Trace.indistinguishable_for dec shorter 0)

let test_neither_decided () =
  let a = mk ~init:[ 7 ] [ [ (1, None); (2, None) ] ] in
  let b = mk ~init:[ 7 ] [ [ (1, None); (2, None); (3, None) ] ] in
  Alcotest.(check bool) "agree up to min length" true
    (Trace.indistinguishable_for a b 0);
  let c = mk ~init:[ 7 ] [ [ (1, None); (9, None); (3, None) ] ] in
  Alcotest.(check bool) "diverge within min length" false
    (Trace.indistinguishable_for a c 0)

let test_init_states_compared () =
  let a = mk ~init:[ 7 ] [ [ (1, None) ] ] in
  let b = mk ~init:[ 8 ] [ [ (1, None) ] ] in
  Alcotest.(check bool) "different initial states" false
    (Trace.indistinguishable_for a b 0)

let test_states_until_decision () =
  let t = mk ~init:[ 7 ] [ [ (1, None); (2, Some 0); (3, None) ] ] in
  Alcotest.(check (list int)) "cut at decision" [ 7; 1; 2 ]
    (Trace.states_until_decision t 0);
  let u = mk ~init:[ 7 ] [ [ (1, None); (2, None) ] ] in
  Alcotest.(check (list int)) "whole row when undecided" [ 7; 1; 2 ]
    (Trace.states_until_decision u 0)

(* ---------- cross-substrate lock-step equality ---------- *)

(* A deterministic R-round min-flooding agreement protocol, written
   once against shared state/message types and wrapped for both
   substrates.  Round 1 is a content-free Hello round (its messages
   are ignored), so that the asynchronous rendering — where the first
   step of a process has nothing to deliver — traverses exactly the
   HO state sequence. *)

let rounds_total = 3

type fl_state = { n : int; est : int; round : int }
type fl_msg = Hello | Est of int

let fl_init ~n ~input = { n; est = input; round = 0 }

let fl_payload st ~round = if round = 1 then Hello else Est st.est

let fl_transition st ~round ~received =
  let est =
    if round = 1 then st.est
    else
      List.fold_left
        (fun acc (_, m) -> match m with Est e -> min acc e | Hello -> acc)
        st.est received
  in
  let st' = { st with est; round } in
  let dec = if round = rounds_total then Some est else None in
  (st', dec)

module Ho_flood : Ksa_ho.Ho_algorithm.S
  with type state = fl_state and type message = fl_msg = struct
  type state = fl_state
  type message = fl_msg

  let name = "ho-min-flood"
  let init ~n ~me:_ ~input = fl_init ~n ~input
  let send st ~round = fl_payload st ~round
  let transition = fl_transition
  let pp_state ppf st = Format.fprintf ppf "est=%d@r%d" st.est st.round
  let pp_message ppf = function
    | Hello -> Format.pp_print_string ppf "hello"
    | Est e -> Format.fprintf ppf "est(%d)" e
end

module Async_flood : Sim.Algorithm.S
  with type state = fl_state and type message = fl_msg = struct
  type state = fl_state
  type message = fl_msg

  let name = "async-min-flood"
  let uses_fd = false
  let init ~n ~me:_ ~input = fl_init ~n ~input

  let step st ~received ~fd:_ =
    let round = st.round + 1 in
    let st', dec = fl_transition st ~round ~received in
    (* the round-(r+1) broadcast is computed from the post-round state,
       exactly as the HO engine computes round-(r+1) messages from the
       state after round r *)
    let sends =
      if round < rounds_total then
        List.init st.n (fun q -> (q, fl_payload st' ~round:(round + 1)))
      else []
    in
    (st', sends, dec)

  let pp_state ppf st = Format.fprintf ppf "est=%d@r%d" st.est st.round
  let pp_message ppf = function
    | Hello -> Format.pp_print_string ppf "hello"
    | Est e -> Format.fprintf ppf "est(%d)" e
end

(* Round-synchronous schedule for the asynchronous engine: in block r
   (steps (r−1)·n+1 … r·n) each process takes one step in pid order,
   delivering exactly the messages sent in earlier blocks — i.e. its
   round-r messages.  Ascending message-id order coincides with
   ascending sender order, matching the HO engine's sender-ordered
   delivery. *)
let lockstep ~n ~rounds =
  {
    Sim.Adversary.describe = "lockstep round-synchronous";
    next =
      (fun obs ->
        if obs.Sim.Adversary.time >= n * rounds then Sim.Adversary.Halt
        else
          let pid = obs.time mod n in
          let block_start = obs.time / n * n in
          let deliver =
            List.filter_map
              (fun (m : Sim.Adversary.pending) ->
                if m.dst = pid && m.sent_at <= block_start then Some m.id
                else None)
              obs.pending
          in
          Sim.Adversary.Step { pid; deliver });
  }

let test_cross_substrate_traces () =
  let n = 4 in
  let inputs = distinct n in
  let module HE = Ksa_ho.Engine.Make (Ho_flood) in
  let module AE = Sim.Engine.Make (Async_flood) in
  let ho =
    HE.run ~n ~inputs ~assignment:(Ksa_ho.Assignment.complete ~n)
      ~rounds:rounds_total
  in
  let async =
    AE.run ~n ~inputs
      ~pattern:(Sim.Failure_pattern.none ~n)
      (lockstep ~n ~rounds:rounds_total)
  in
  Alcotest.(check bool) "async run decision-complete" true
    (Sim.Run.all_correct_decided async);
  Alcotest.(check bool) "ho outcome decision-complete" true
    (HE.all_decided ho);
  (* the min of all inputs wins everywhere, on both substrates *)
  let lo = Array.fold_left min max_int inputs in
  Alcotest.(check (list int)) "same decisions" [ lo ] (HE.decided_values ho);
  Alcotest.(check (list int)) "async agrees" [ lo ]
    (Sim.Run.decided_values async);
  (* the payoff: literally the same trace object, interned ids and
     all, out of two different execution substrates *)
  Alcotest.(check bool) "identical interned traces" true
    (Trace.equal ho.HE.trace async.Sim.Run.trace);
  Alcotest.(check bool) "indistinguishable for every process" true
    (Trace.indistinguishable_for_all ho.HE.trace async.Sim.Run.trace
       (List.init n Fun.id))

let test_cross_substrate_divergence_detected () =
  (* sanity check that the equality above is not vacuous: a partitioned
     HO assignment diverges from the complete one, and the traces must
     differ for processes outside the largest group *)
  let n = 4 in
  let inputs = distinct n in
  let module HE = Ksa_ho.Engine.Make (Ho_flood) in
  let full =
    HE.run ~n ~inputs ~assignment:(Ksa_ho.Assignment.complete ~n)
      ~rounds:rounds_total
  in
  let split =
    HE.run ~n ~inputs
      ~assignment:
        (Ksa_ho.Assignment.partitioned ~n ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ())
      ~rounds:rounds_total
  in
  Alcotest.(check bool) "partitioned trace differs" false
    (Trace.equal full.HE.trace split.HE.trace);
  Alcotest.(check bool) "distinguishable for p3" false
    (Sim.Trace.indistinguishable_for full.HE.trace split.HE.trace 3)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "both decided" `Quick test_both_decided;
        Alcotest.test_case "one decided" `Quick test_one_decided;
        Alcotest.test_case "neither decided" `Quick test_neither_decided;
        Alcotest.test_case "initial states compared" `Quick
          test_init_states_compared;
        Alcotest.test_case "states until decision" `Quick
          test_states_until_decision;
        Alcotest.test_case "cross-substrate lock-step equality" `Quick
          test_cross_substrate_traces;
        Alcotest.test_case "cross-substrate divergence detected" `Quick
          test_cross_substrate_divergence_detected;
      ] );
  ]
