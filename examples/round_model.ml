(* The partitioning argument in a round model (the paper's Discussion
   conjectures Theorem 1 applies to Heard-Of-style models; the ksa_ho
   substrate makes it concrete).

   UniformVoting is a consensus algorithm that is safe whenever any
   two heard-of sets of a round intersect (no-split).  A partitioned
   HO assignment - each group only ever hears itself - satisfies
   no-split WITHIN each group, so each group runs a correct little
   consensus... on its own value.  Three groups, three decisions:
   exactly the (dec-D) situation of Theorem 1, with "communication
   predicate" playing the role of "asynchrony + failures".

     dune exec examples/round_model.exe *)

module Ho = Ksa_ho
module EUV = Ho.Engine.Make (Ho.Uniform_voting.A)

let show name o =
  Format.printf "%-34s rounds=%d decisions={%s} distinct=%d@." name
    o.EUV.rounds_run
    (String.concat ", "
       (List.map
          (fun (p, v, r) -> Printf.sprintf "p%d=%d@r%d" p v r)
          o.EUV.decisions))
    (EUV.distinct_decisions o)

let () =
  let n = 6 in
  let inputs = Ksa_sim.Value.distinct_inputs n in
  let groups = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in

  Format.printf "--- UniformVoting under different communication predicates ---@.";
  let complete = Ho.Assignment.complete ~n in
  show "complete (lossless rounds)" (EUV.run ~n ~inputs ~assignment:complete ~rounds:8 ());

  let part = Ho.Assignment.partitioned ~n ~groups () in
  let o = EUV.run ~n ~inputs ~assignment:part ~rounds:8 () in
  show "partitioned into 3 groups" o;
  Format.printf "  no-split globally: %b; confined to groups: %b@."
    (Ho.Assignment.no_split part ~horizon:8)
    (Ho.Assignment.confined_to part ~groups ~horizon:8);

  (* each group cannot tell this run from one where it is alone *)
  let solo_of group =
    Ho.Assignment.make ~n (fun ~round ~me ->
        if List.mem me group then part.Ho.Assignment.ho ~round ~me else [])
  in
  List.iter
    (fun group ->
      let solo = EUV.run ~n ~inputs ~assignment:(solo_of group) ~rounds:8 () in
      Format.printf "  group {%s} indistinguishable from its solo run: %b@."
        (String.concat " " (List.map string_of_int group))
        (List.for_all (fun p -> EUV.states_equal_until_decision o solo p) group))
    groups;

  (* crash-like HO: a process falls silent mid-execution *)
  let crashy = Ho.Assignment.crash_like ~n ~silent_from:[ (0, 3); (4, 5) ] in
  show "crash-like (p0, p4 fall silent)" (EUV.run ~n ~inputs ~assignment:crashy ~rounds:10 ());

  (* noisy majorities: safety holds even though liveness may not *)
  let rng = Ksa_prim.Rng.create ~seed:17 in
  let noisy = Ho.Assignment.random ~rng ~n ~min_size:4 () in
  show "random majority HO sets" (EUV.run ~n ~inputs ~assignment:noisy ~rounds:12 ());

  (* ... and releasing the partition later does NOT help: decisions
     are irrevocable, so the three group values stand - the reason the
     reduction to consensus-in-a-subsystem is deadly *)
  let released = Ho.Assignment.partitioned ~n ~groups ~until:4 () in
  show "partitioned, released at round 4" (EUV.run ~n ~inputs ~assignment:released ~rounds:12 ())
