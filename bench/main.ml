(* Benchmark & reproduction harness.

   Running this executable does two things:

   1. regenerates every experiment table of the paper reproduction
      (E1-E9, see DESIGN.md and EXPERIMENTS.md) and prints the
      REPRODUCED / MISMATCH verdict per claim;

   2. times the building blocks with bechamel (one Test.make per
      experiment, plus ablation benches for the engine, the explorer
      and the graph substrate).

     dune exec bench/main.exe            # tables + benches
     dune exec bench/main.exe -- tables  # tables only
     dune exec bench/main.exe -- bench   # benches only *)

open Bechamel
open Toolkit
module Sim = Ksa_sim
module Core = Ksa_core
module Algo = Ksa_algo
module Fd = Ksa_fd
module Rng = Ksa_prim.Rng
module Metrics = Ksa_prim.Metrics

(* ------------------------------------------------------------------ *)
(* benchmark subjects: one per experiment                              *)
(* ------------------------------------------------------------------ *)

module K2 = Algo.Kset_flp.Make (struct
  let l = 2
end)

module K16 = Algo.Kset_flp.Make (struct
  let l = 16
end)

module EK16 = Sim.Engine.Make (K16)
module ExK2 = Sim.Explorer.Make (K2)

module Naive2 = Algo.Naive_min.Make (struct
  let wait_for = 2
end)

let bench_e1_screening () =
  (* E1: Theorem-1 screening at n=6, f=4, k=2 *)
  let partition = Option.get (Core.Partitioning.theorem2 ~n:6 ~f:4 ~k:2) in
  ignore (Core.Theorem1.screen (module K2) ~partition)

let bench_e2_protocol_run () =
  (* E2: one solvable-regime run, n=8, f=3, L=5 *)
  let module K5 = Algo.Kset_flp.Make (struct
    let l = 5
  end) in
  let module E = Sim.Engine.Make (K5) in
  let rng = Rng.create ~seed:11 in
  let pattern = Sim.Failure_pattern.initial_dead ~n:8 ~dead:[ 1; 4; 6 ] in
  ignore
    (E.run ~n:8 ~inputs:(Sim.Value.distinct_inputs 8) ~pattern
       (Sim.Adversary.fair ~rng))

let bench_e2_border_pasting () =
  (* E2 border: k+1-way pasted run at n=6, k=2 *)
  ignore (Core.Pasting.lemma12 (module K2) ~groups:[ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ])

let bench_e3_scale_n24 () =
  (* E3: protocol at n=24, f=8, L=16 *)
  let rng = Rng.create ~seed:3 in
  let pattern =
    Sim.Failure_pattern.initial_dead ~n:24 ~dead:[ 0; 3; 6; 9; 12; 15; 18; 21 ]
  in
  ignore
    (EK16.run ~n:24 ~inputs:(Sim.Value.distinct_inputs 24) ~pattern
       (Sim.Adversary.fair ~rng))

let bench_e4_source_components () =
  (* E4: Lemma 6/7 computation on a random 400-vertex digraph *)
  let rng = Rng.create ~seed:5 in
  let g = Ksa_dgraph.Gen.min_in_degree rng ~n:400 ~delta:3 in
  ignore (Ksa_dgraph.Source.source_components g)

let bench_e5_lemma12_synod () =
  (* E5: the Theorem-10 construction at n=5, k=3 *)
  ignore
    (Core.Pasting.lemma12 (module Algo.Synod.A)
       ~groups:[ [ 0 ]; [ 1 ]; [ 2; 3; 4 ] ])

let bench_e6_coverage () =
  (* E6: border sweep to n=64 *)
  let t = ref 0 in
  for n = 4 to 64 do
    for k = 2 to n - 2 do
      if Core.Border.theorem10_impossible ~n ~k then incr t;
      if Core.Border.bouzid_travers_impossible ~n ~k then decr t
    done
  done;
  ignore !t

let bench_e7_history_validation () =
  (* E7: generate + validate one partition history (n=6, k=3) *)
  let pattern = Sim.Failure_pattern.initial_dead ~n:6 ~dead:[ 5 ] in
  let spec =
    {
      Fd.Partition_fd.groups = [ [ 0 ]; [ 1 ]; [ 2; 3; 4; 5 ] ];
      leaders = [ 0; 1; 2 ];
      tgst = 4;
      stab = 3;
    }
  in
  let h = Fd.Partition_fd.gen spec ~pattern ~horizon:10 in
  ignore (Fd.Partition_fd.validate_partition_property spec ~pattern h);
  ignore (Fd.Partition_fd.lemma9_check ~k:3 ~pattern h)

let bench_e8_screen_naive () =
  let partition = Core.Partitioning.make ~n:5 ~groups:[ [ 0; 1 ] ] in
  ignore (Core.Theorem1.screen (module Naive2) ~partition)

let bench_e9_independence () =
  let module K3 = Algo.Kset_flp.Make (struct
    let l = 3
  end) in
  ignore
    (Core.Independence.satisfies
       (module K3)
       ~n:5
       ~family:(Core.Independence.f_resilient_family ~n:5 ~f:2))

(* ablations *)

let bench_ablation_explorer_n3 () =
  ignore
    (ExK2.explore ~n:3
       ~inputs:(Sim.Value.distinct_inputs 3)
       ~pattern:(Sim.Failure_pattern.none ~n:3)
       ~check:(fun _ -> None)
       ())

let bench_ablation_engine_throughput () =
  (* raw step cost: message-free protocol, round-robin, n=32 *)
  let module T = Sim.Engine.Make (Algo.Trivial.A) in
  ignore
    (T.run ~n:32
       ~inputs:(Sim.Value.distinct_inputs 32)
       ~pattern:(Sim.Failure_pattern.none ~n:32)
       (Sim.Adversary.round_robin ()))

let bench_ablation_scc_50k () =
  let n = 50_000 in
  let g =
    Ksa_dgraph.Digraph.create ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))
  in
  ignore (Ksa_dgraph.Scc.compute g)

let bench_e10_ho_uniform_voting () =
  (* E10: UniformVoting over a partitioned then released HO assignment *)
  let module EUV = Ksa_ho.Engine.Make (Ksa_ho.Uniform_voting.A) in
  let a =
    Ksa_ho.Assignment.partitioned ~n:8
      ~groups:[ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7 ] ]
      ~until:6 ()
  in
  ignore
    (EUV.run ~n:8 ~inputs:(Sim.Value.distinct_inputs 8) ~assignment:a ~rounds:12 ())

let bench_e12_crash_explorer () =
  (* E12: exhaustive crash-adversarial classification at n=3 *)
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore_with_crashes ~n:3
       ~inputs:(Sim.Value.distinct_inputs 3)
       ~crash_budget:1
       ~check:(fun _ -> None)
       ())

let bench_e12_crash_explorer_checkpointed () =
  (* the e12:crash-explorer-n3 space with a live checkpoint sink at
     the default 5s cadence: measures the steady-state overhead of
     the interrupt polls and due-checks (the campaign finishes before
     a periodic write fires, so this is the common-case tax a
     --checkpoint flag adds — target: within 5% of the bare run) *)
  let module Ex = Sim.Explorer.Make (K2) in
  let path = Filename.temp_file "ksa_bench" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let ckpt =
        Sim.Checkpoint.ctl
          ~sink:
            {
              Sim.Checkpoint.path;
              kind = "explore-crash";
              fingerprint = "bench";
              policy = Sim.Checkpoint.default_policy;
            }
          ~interrupt:(fun () -> false)
          ()
      in
      ignore
        (Ex.explore_with_crashes ~ckpt ~n:3
           ~inputs:(Sim.Value.distinct_inputs 3)
           ~crash_budget:1
           ~check:(fun _ -> None)
           ()))

let bench_e12_crash_explorer_par () =
  (* multicore crash explorer, same space as e12:crash-explorer-n3 *)
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore_with_crashes_par ~domains:4 ~n:3
       ~inputs:(Sim.Value.distinct_inputs 3)
       ~crash_budget:1
       ~check:(fun _ -> None)
       ())

let bench_byzantine_explorer () =
  (* the Byzantine model on the e12 space: same n=3 subject, budget-1
     corruption instead of budget-1 crashing — measures what the forge
     successors cost over plain crash exploration (the search runs the
     full graph: the [check] never trips, matching the crash subject) *)
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore_with_crashes ~model:(Sim.Fault_model.Byzantine 1) ~n:3
       ~inputs:(Sim.Value.distinct_inputs 3)
       ~crash_budget:1
       ~check:(fun _ -> None)
       ())

let bench_mobile_explorer () =
  (* the mobile model on the same space: per-round transient omission
     successors instead of crash successors *)
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore_with_crashes ~model:(Sim.Fault_model.Mobile 1) ~n:3
       ~inputs:(Sim.Value.distinct_inputs 3)
       ~crash_budget:1
       ~check:(fun _ -> None)
       ())

let bench_crash_explorer_scaling domains () =
  (* scaling family: the e12:crash-explorer-n3 space at fixed worker
     counts over the shared sharded dedup table.  Every member admits
     the same 12 832 configurations (dedup is global, tickets are
     dense), so ns_per_run differences are pure scheduling +
     synchronisation cost; the JSON writer derives speedup_vs_seq
     against the sequential e12 subject *)
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore_with_crashes_par ~domains ~n:3
       ~inputs:(Sim.Value.distinct_inputs 3)
       ~crash_budget:1
       ~check:(fun _ -> None)
       ())

(* reduction family: the same crash spaces under orbit-key admission.
   The n=3 pair shares its space with e12:crash-explorer-n3, so the
   JSON writer can emit reduction_ratio (unreduced admitted over
   reduced admitted) from the two subjects' counter deltas.  The n=4
   subject is the scale-up the reduction exists for: under the coarse
   delivery policy the unreduced space blows past the default
   300k-config budget (the checkpoint-smoke CI leg pins that), while
   the orbit-keyed search closes it outright — its ratio is therefore
   a lower bound computed against the budget. *)

let bench_reduction_crash_n3 reduction () =
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore_with_crashes ~reduction ~n:3
       ~inputs:(Sim.Value.distinct_inputs 3)
       ~crash_budget:1
       ~check:(fun _ -> None)
       ())

let bench_reduction_crash_n4 () =
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore_with_crashes ~reduction:Sim.Canon.Symmetry_por
       ~policy:Sim.Explorer.Empty_or_all ~n:4
       ~inputs:(Sim.Value.distinct_inputs 4)
       ~crash_budget:1
       ~check:(fun _ -> None)
       ())

let bench_ablation_explorer_n4 () =
  (* n=4 exhaustive under the coarse delivery policy (full space,
     fewer delivery choices — Per_sender at n=4 is ~27 s/run) *)
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore ~policy:Sim.Explorer.Empty_or_all ~n:4
       ~inputs:(Sim.Value.distinct_inputs 4)
       ~pattern:(Sim.Failure_pattern.none ~n:4)
       ~check:(fun _ -> None)
       ())

let bench_ablation_explorer_par_n4 () =
  (* the same n=4 space fanned over 4 domains *)
  let module Ex = Sim.Explorer.Make (K2) in
  ignore
    (Ex.explore_par ~domains:4 ~policy:Sim.Explorer.Empty_or_all ~n:4
       ~inputs:(Sim.Value.distinct_inputs 4)
       ~pattern:(Sim.Failure_pattern.none ~n:4)
       ~check:(fun _ -> None)
       ())

let bench_theorem2_demonstrate () =
  ignore (Core.Theorem2.demonstrate ~n:6 ~f:4 ~k:2 ())

let bench_e13_abd_torture () =
  (* E13: one ABD torture run at n=4 with a crash *)
  let module Torture = Ksa_sm.Abd.Make (struct
    let script = Ksa_sm.Abd.write_then_read_all
    let write_back = true
  end) in
  let module E = Sim.Engine.Make (Torture) in
  let rng = Rng.create ~seed:7 in
  let pattern = Sim.Failure_pattern.initial_dead ~n:4 ~dead:[ 3 ] in
  let run, config =
    E.run_full ~max_steps:80_000 ~n:4
      ~inputs:(Sim.Value.distinct_inputs 4)
      ~pattern (Sim.Adversary.fair ~rng)
  in
  let ops = Torture.ops_of run ~state_of:(E.state_of config) in
  ignore (Ksa_sm.Register.check_atomic ops)

let bench_ablation_replay () =
  (* record + replay a run *)
  let rng = Rng.create ~seed:13 in
  let pattern = Sim.Failure_pattern.none ~n:6 in
  let module K4 = Algo.Kset_flp.Make (struct
    let l = 4
  end) in
  let module E = Sim.Engine.Make (K4) in
  let orig =
    E.run ~n:6 ~inputs:(Sim.Value.distinct_inputs 6) ~pattern
      (Sim.Adversary.fair ~rng)
  in
  let stream = Sim.Replay.project ~keep:(fun _ -> true) orig in
  ignore
    (E.run ~n:6 ~inputs:(Sim.Value.distinct_inputs 6) ~pattern
       (Sim.Replay.sequential [ stream ]))

(* trace-layer subjects: the Theorem-1 screen is dominated by recorded
   runs (every step used to Marshal+MD5 the stepped state; now one
   interned id, memoized per (state, received) pair), and the Indist
   comparisons are exact integer-sequence equalities over traces *)

let bench_screen_section6_n4 () =
  let partition = Core.Partitioning.make ~n:4 ~groups:[ [ 0; 1 ] ] in
  ignore (Core.Theorem1.screen (module K2) ~partition)

let indist_runs =
  (* precomputed outside the staged closure: the subject is the
     Definition 2/3 comparison itself, not run recording *)
  lazy
    (let module K4 = Algo.Kset_flp.Make (struct
       let l = 4
     end) in
    let module E = Sim.Engine.Make (K4) in
    let go seed =
      let rng = Rng.create ~seed in
      E.run ~n:6
        ~inputs:(Sim.Value.distinct_inputs 6)
        ~pattern:(Sim.Failure_pattern.none ~n:6)
        (Sim.Adversary.fair ~rng)
    in
    (go 21, go 22))

let bench_indist_for_all_n6 () =
  let ra, rb = Lazy.force indist_runs in
  ignore (Core.Indist.for_all ra rb [ 0; 1; 2; 3; 4; 5 ]);
  ignore (Core.Indist.for_all ra ra [ 0; 1; 2; 3; 4; 5 ])

(* fuzz-layer subjects: one campaign that finds a violation and shrinks
   it (trivial decides its own input, so any two steps by distinct pids
   break 1-agreement), and one clean campaign over the Section VI
   protocol where the decision bound keeps every trial within k *)

module FuzzTrivial = Sim.Fuzz.Make (Algo.Trivial.A)
module FuzzK2 = Sim.Fuzz.Make (K2)

let bench_fuzz_trivial_shrink () =
  let cfg = Sim.Fuzz.default_config ~k:1 ~n:3 () in
  ignore (FuzzTrivial.run cfg ~seed:7 ~trials:50)

let bench_fuzz_kset_clean () =
  let cfg =
    { (Sim.Fuzz.default_config ~k:1 ~n:3 ()) with Sim.Fuzz.max_crashes = 1 }
  in
  ignore (FuzzK2.run cfg ~seed:7 ~trials:25)

(* greybox-vs-blind family: the same trial budget on the clean
   kset-flp n=3 subject, once blind and once coverage-guided.  Each
   thunk records how many distinct interned state ids the campaign
   visited in a gauge, so the JSON writer can derive
   distinct_states_per_sec = ids / (ns_per_run / 1e9) for both modes
   — the figure the greybox mode exists to improve. *)
let g_fuzz_distinct = Metrics.gauge "fuzz.bench.distinct_ids"

let bench_fuzz_kset_modes coverage () =
  let cfg =
    {
      (Sim.Fuzz.default_config ~k:1 ~n:3 ()) with
      Sim.Fuzz.max_crashes = 1;
      coverage;
    }
  in
  let seen = Hashtbl.create 4096 in
  let note (tr : Sim.Trace.t) =
    Array.iter (fun id -> Hashtbl.replace seen id ()) tr.Sim.Trace.init_ids;
    Array.iter
      (Array.iter (fun (s : Sim.Trace.step) ->
           Hashtbl.replace seen s.Sim.Trace.state_id ()))
      tr.Sim.Trace.steps
  in
  ignore
    (FuzzK2.run
       ~on_trial:(fun _ run -> note run.Sim.Run.trace)
       cfg ~seed:7 ~trials:400);
  Metrics.gauge_set g_fuzz_distinct (Hashtbl.length seen)

(* time-to-violation pair: kset-flp at n=4, L=2 breaks 1-agreement
   only on near-partition schedules, so the subject's ns_per_run IS
   the wall-clock cost of finding one violation — blind search needs
   trial 37 950 on this seed where the greybox campaign reaches trial
   2 742 (the margin CI pins in trial counts; this pair prices it in
   seconds, shrinking included) *)
let bench_fuzz_violation coverage () =
  let cfg =
    { (Sim.Fuzz.default_config ~k:1 ~n:4 ()) with Sim.Fuzz.coverage = coverage }
  in
  match FuzzK2.run cfg ~seed:3 ~trials:50_000 with
  | Sim.Fuzz.Violation_found _ -> ()
  | _ -> failwith "bench: kset-flp n=4 violation subject stayed clean"

(* campaign-daemon subject: a fresh campaign directory per run holding
   a small batch of probe jobs, two of which fail once and retry, run
   to completion by Daemon.serve in exit-when-idle mode.  Every state
   transition is a Durable atomic rewrite, so ns_per_run prices the
   whole queue contract — submit, worker spawn, backoff, finalize —
   fsync'd durability included.  The JSON writer derives jobs_per_sec
   from the svc.jobs.done delta; svc.jobs.retried rides along in the
   counters as the retry count. *)

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let bench_serve_throughput () =
  let dir = Filename.temp_file "ksa_bench_serve" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store =
        match Ksa_svc.Jobstore.open_dir ~dir with
        | Ok t -> t
        | Error e -> failwith ("bench: " ^ e)
      in
      for i = 1 to 8 do
        let fail = if i mod 4 = 0 then 1 else 0 in
        match
          Ksa_svc.Jobstore.submit store
            (Ksa_svc.Task.Probe { Ksa_svc.Task.p_fail = fail; p_spin = 0. })
        with
        | Ok _ -> ()
        | Error e -> failwith ("bench: " ^ e)
      done;
      let cfg =
        {
          (Ksa_svc.Daemon.default_cfg ~dir) with
          Ksa_svc.Daemon.exit_when_idle = true;
          retry =
            {
              Ksa_prim.Backoff.base = 0.0005;
              cap = 0.001;
              multiplier = 2.0;
              jitter = 0.0;
            };
        }
      in
      if Ksa_svc.Daemon.serve cfg <> 0 then
        failwith "bench: serve exited non-zero")

(* One (name, thunk) pair per subject: bechamel times the thunk, and
   in [--json] mode a single extra invocation between two
   Metrics.snapshot calls yields the per-run counter deltas that go
   into BENCH_*.json next to the timing. *)
let subjects =
  [
    ("e1:theorem2-screening", bench_e1_screening);
    ("e2:protocol-run-n8", bench_e2_protocol_run);
    ("e2:border-pasting-n6", bench_e2_border_pasting);
    ("e3:protocol-run-n24", bench_e3_scale_n24);
    ("e4:source-components-n400", bench_e4_source_components);
    ("e5:lemma12-synod-n5", bench_e5_lemma12_synod);
    ("e6:coverage-sweep-n64", bench_e6_coverage);
    ("e7:history-validation", bench_e7_history_validation);
    ("e8:screen-naive-min", bench_e8_screen_naive);
    ("e9:independence-check", bench_e9_independence);
    ("e10:ho-uniform-voting-n8", bench_e10_ho_uniform_voting);
    ("e12:crash-explorer-n3", bench_e12_crash_explorer);
    ("explore:crash-n3-checkpointed", bench_e12_crash_explorer_checkpointed);
    ("e12:crash-explorer-par-n3", bench_e12_crash_explorer_par);
    ("model:byzantine-explorer-n3", bench_byzantine_explorer);
    ("model:mobile-explorer-n3", bench_mobile_explorer);
    ("scaling:crash-explorer-n3-d1", bench_crash_explorer_scaling 1);
    ("scaling:crash-explorer-n3-d2", bench_crash_explorer_scaling 2);
    ("scaling:crash-explorer-n3-d4", bench_crash_explorer_scaling 4);
    ("scaling:crash-explorer-n3-d8", bench_crash_explorer_scaling 8);
    ("reduction:crash-n3-none", bench_reduction_crash_n3 Sim.Canon.No_reduction);
    ("reduction:crash-n3-sym", bench_reduction_crash_n3 Sim.Canon.Symmetry);
    ("reduction:crash-n4-sym+por", bench_reduction_crash_n4);
    ("e13:abd-torture-n4", bench_e13_abd_torture);
    ("theorem2:end-to-end-n6", bench_theorem2_demonstrate);
    ("ablation:explorer-exhaustive-n3", bench_ablation_explorer_n3);
    ("ablation:explorer-exhaustive-n4", bench_ablation_explorer_n4);
    ("ablation:explorer-par-n4", bench_ablation_explorer_par_n4);
    ("ablation:engine-throughput-n32", bench_ablation_engine_throughput);
    ("ablation:scc-path-50k", bench_ablation_scc_50k);
    ("ablation:record-replay-n6", bench_ablation_replay);
    ("fuzz:trivial-shrink-n3", bench_fuzz_trivial_shrink);
    ("fuzz:kset-flp-clean-n3", bench_fuzz_kset_clean);
    ("fuzz:blind-kset-flp-n3", bench_fuzz_kset_modes false);
    ("fuzz:coverage-kset-flp-n3", bench_fuzz_kset_modes true);
    ("fuzz:blind-violation-n4", bench_fuzz_violation false);
    ("fuzz:coverage-violation-n4", bench_fuzz_violation true);
    ("serve:throughput-smoke", bench_serve_throughput);
    ("screen:section6-n4", bench_screen_section6_n4);
    ("indist:for-all-n6", bench_indist_for_all_n6);
  ]

let tests =
  Test.make_grouped ~name:"ksa" ~fmt:"%s/%s"
    (List.map
       (fun (name, fn) -> Test.make ~name (Staged.stage fn))
       subjects)

(* One extra run per subject, bracketed by metric snapshots: the
   non-zero deltas are what one invocation of the subject costs in
   events (configs admitted, memo hits, sim steps, ...).  The registry
   is reset immediately before each subject's bracketed run — gauges
   like explore.configs_visited are {e set}, not accumulated, so a
   stale value left by an earlier subject would otherwise leak into
   [before] and emit a nonsensical negative delta.  After the reset
   every delta is a cost and must be non-negative; a violation is a
   harness bug, so it fails the bench run loudly. *)
let counter_deltas () =
  List.map
    (fun (name, fn) ->
      Metrics.reset ();
      let before = Metrics.snapshot () in
      fn ();
      let after = Metrics.snapshot () in
      let delta =
        List.filter (fun (_, v) -> v <> 0) (Metrics.delta ~before ~after)
      in
      List.iter
        (fun (k, v) ->
          if v < 0 then (
            Format.eprintf "bench: negative counter delta %s = %d for %s@." k v
              name;
            exit 1))
        delta;
      ("ksa/" ^ name, delta))
    subjects

(* Machine-readable perf trajectory: benchmark name -> ns/run plus
   the counter deltas of one run, one JSON object, written next to
   the cwd so successive PRs can diff it.  scaling:* rows also carry
   speedup_vs_seq, the sequential e12 subject's ns/run over theirs,
   reduction:* rows carry reduction_ratio, unreduced configs admitted
   over theirs, the fuzz blind/coverage pair carries
   distinct_states_per_sec, the campaign's distinct interned state
   ids over its wall-clock seconds, and serve:* rows carry
   jobs_per_sec, the daemon batch's completed jobs over its
   wall-clock seconds. *)
let write_bench_json ~path rows =
  let oc = open_out path in
  output_string oc "{\n";
  let total = List.length rows in
  List.iteri
    (fun i (name, ns, counters, speedup, ratio, dsps, jps) ->
      Printf.fprintf oc "  %S: {\n    \"ns_per_run\": %s" name
        (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns);
      (match speedup with
      | Some s when not (Float.is_nan s) ->
          Printf.fprintf oc ",\n    \"speedup_vs_seq\": %.3f" s
      | _ -> ());
      (match ratio with
      | Some r when not (Float.is_nan r) ->
          Printf.fprintf oc ",\n    \"reduction_ratio\": %.3f" r
      | _ -> ());
      (match dsps with
      | Some d when not (Float.is_nan d) ->
          Printf.fprintf oc ",\n    \"distinct_states_per_sec\": %.1f" d
      | _ -> ());
      (match jps with
      | Some j when not (Float.is_nan j) ->
          Printf.fprintf oc ",\n    \"jobs_per_sec\": %.1f" j
      | _ -> ());
      (match counters with
      | [] -> ()
      | counters ->
          output_string oc ",\n    \"counters\": {";
          let nc = List.length counters in
          List.iteri
            (fun j (k, v) ->
              Printf.fprintf oc "\n      %S: %d%s" k v
                (if j = nc - 1 then "" else ","))
            counters;
          output_string oc "\n    }");
      Printf.fprintf oc "\n  }%s\n" (if i = total - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc;
  Format.printf "wrote %s (%d subjects)@." path total

let run_benchmarks ~json () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@.%-44s %16s@." "benchmark" "time/run";
  Format.printf "%s@." (String.make 62 '-');
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Format.printf "%-44s %16s@." name pretty)
    rows;
  if json then begin
    let deltas = counter_deltas () in
    let has name sub =
      let ls = String.length sub and ln = String.length name in
      let rec at i = i + ls <= ln && (String.sub name i ls = sub || at (i + 1)) in
      at 0
    in
    let seq_ns =
      Option.value ~default:nan
        (List.assoc_opt "ksa/e12:crash-explorer-n3" rows)
    in
    let admitted_of name =
      Option.bind (List.assoc_opt name deltas)
        (List.assoc_opt "explore.admitted")
    in
    (* reduction_ratio = unreduced admitted / reduced admitted on the
       same space.  The n=3 baseline comes from the family's own
       unreduced subject; the unreduced n=4 space exceeds the default
       300k-config budget (it is never run to completion anywhere), so
       its ratio is the lower bound budget/admitted. *)
    let reduction_ratio name =
      if not (has name "reduction:") then None
      else
        match admitted_of name with
        | None | Some 0 -> None
        | Some own ->
            let baseline =
              if has name "crash-n3" then
                Option.map float_of_int
                  (admitted_of "ksa/reduction:crash-n3-none")
              else if has name "crash-n4" then Some 300_000.
              else None
            in
            Option.map (fun b -> b /. float_of_int own) baseline
    in
    let distinct_per_sec name ns =
      if not (has name "fuzz:blind-" || has name "fuzz:coverage-") then None
      else
        match
          Option.bind (List.assoc_opt name deltas)
            (List.assoc_opt "fuzz.bench.distinct_ids")
        with
        | None | Some 0 -> None
        | Some ids ->
            if Float.is_nan ns then None
            else Some (float_of_int ids /. (ns /. 1e9))
    in
    let jobs_per_sec name ns =
      if not (has name "serve:") then None
      else
        match
          Option.bind (List.assoc_opt name deltas)
            (List.assoc_opt "svc.jobs.done")
        with
        | None | Some 0 -> None
        | Some jobs ->
            if Float.is_nan ns then None
            else Some (float_of_int jobs /. (ns /. 1e9))
    in
    let rows =
      List.map
        (fun (name, ns) ->
          let counters =
            Option.value ~default:[] (List.assoc_opt name deltas)
          in
          let speedup =
            if has name "scaling:" then Some (seq_ns /. ns) else None
          in
          ( name,
            ns,
            counters,
            speedup,
            reduction_ratio name,
            distinct_per_sec name ns,
            jobs_per_sec name ns ))
        rows
    in
    let is_trace_subject (name, _, _, _, _, _, _) =
      has name "screen:" || has name "indist:"
    in
    let screen_rows, explore_rows = List.partition is_trace_subject rows in
    write_bench_json ~path:"BENCH_explore.json" explore_rows;
    write_bench_json ~path:"BENCH_screen.json" screen_rows
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let mode =
    match List.filter (fun a -> a <> "--json" && a <> "--") args with
    | [] -> "all"
    | [ ("tables" | "bench" | "all") as m ] -> m
    | m :: _ ->
        Format.eprintf "usage: main.exe [tables|bench|all] [--json]@.";
        Format.eprintf "unknown mode %S@." m;
        exit 2
  in
  if mode = "tables" || mode = "all" then begin
    let verdicts = Core.Experiments.all Format.std_formatter in
    let bad = List.filter (fun v -> not v.Core.Experiments.holds) verdicts in
    if bad <> [] then begin
      Format.printf "@.%d claim(s) failed to reproduce!@." (List.length bad);
      exit 1
    end
  end;
  if mode = "bench" || mode = "all" then run_benchmarks ~json ()
