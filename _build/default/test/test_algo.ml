module Sim = Ksa_sim
module Fd = Ksa_fd
module Algo = Ksa_algo
module FP = Sim.Failure_pattern
module Adv = Sim.Adversary
module Rng = Ksa_prim.Rng
module Listx = Ksa_prim.Listx

let distinct = Sim.Value.distinct_inputs

(* ---------- Kset_flp parameters ---------- *)

let test_parameters () =
  Alcotest.(check int) "kset L" 3 (Algo.Kset_flp.kset_l ~n:5 ~f:2);
  Alcotest.(check int) "consensus L n=5" 3 (Algo.Kset_flp.consensus_l ~n:5);
  Alcotest.(check int) "consensus L n=4" 3 (Algo.Kset_flp.consensus_l ~n:4);
  Alcotest.(check int) "bound" 2 (Algo.Kset_flp.decisions_bound ~n:5 ~l:2);
  Alcotest.(check bool) "solvable 5,2,2" true (Algo.Kset_flp.solvable ~n:5 ~f:2 ~k:2);
  Alcotest.(check bool) "border 6,3,1" false (Algo.Kset_flp.solvable ~n:6 ~f:3 ~k:1)

let test_l_bounds_checked () =
  let module K0 = Algo.Kset_flp.Make (struct
    let l = 0
  end) in
  Alcotest.(check bool) "L=0 rejected" true
    (match K0.init ~n:3 ~me:0 ~input:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* L=1 degenerates to wait-freedom: under the delay-everything
     adversary every process decides its own value solo (n-set) *)
  let module K1 = Algo.Kset_flp.Make (struct
    let l = 1
  end) in
  let module E1 = Sim.Engine.Make (K1) in
  let run =
    E1.run ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3)
      (Adv.sequential_solo ~groups:[ [ 0 ]; [ 1 ]; [ 2 ] ])
  in
  Alcotest.(check int) "n distinct decisions solo" 3 (Sim.Run.distinct_decisions run);
  (* ... and converges under a communicative schedule *)
  let run2 =
    E1.run ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) (Adv.round_robin ())
  in
  Alcotest.(check int) "1 decision round-robin" 1 (Sim.Run.distinct_decisions run2)

(* ---------- Kset_flp: exhaustive model checking (small n) ---------- *)

let explore_kset ~l ~n ~dead ~k =
  let module K = Algo.Kset_flp.Make (struct
    let l = l
  end) in
  let module Ex = Sim.Explorer.Make (K) in
  let pattern = FP.initial_dead ~n ~dead in
  Ex.explore ~max_depth:60 ~max_configs:400_000 ~policy:Sim.Explorer.Per_sender
    ~n ~inputs:(distinct n) ~pattern
    ~check:(fun decisions ->
      let values =
        List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions)
      in
      if List.length values > k then
        Some (Printf.sprintf "%d distinct decisions" (List.length values))
      else if
        List.exists (fun v -> v < 0 || v >= n) values
      then Some "invalid value"
      else None)
    ()

let test_exhaustive_consensus_n3 () =
  (* n=3, L=2: at most floor(3/2)=1 decision over ALL schedules *)
  match explore_kset ~l:2 ~n:3 ~dead:[] ~k:1 with
  | Sim.Explorer.Safe stats ->
      Alcotest.(check bool) "explored completely" false stats.budget_exhausted
  | Sim.Explorer.Violation v -> Alcotest.failf "violated: %s" v.reason

let test_exhaustive_consensus_n3_one_dead () =
  List.iter
    (fun dead ->
      match explore_kset ~l:2 ~n:3 ~dead:[ dead ] ~k:1 with
      | Sim.Explorer.Safe _ -> ()
      | Sim.Explorer.Violation v ->
          Alcotest.failf "dead=%d violated: %s" dead v.reason)
    [ 0; 1; 2 ]

let test_exhaustive_2set_n4 () =
  (* n=4, L=2 (f=2): at most floor(4/2)=2 decisions; check every
     initially-dead pair as well as the failure-free case *)
  let cases = [ [] ; [ 0 ]; [ 3 ]; [ 0; 1 ]; [ 1; 3 ] ] in
  List.iter
    (fun dead ->
      match explore_kset ~l:2 ~n:4 ~dead ~k:2 with
      | Sim.Explorer.Safe _ -> ()
      | Sim.Explorer.Violation v ->
          Alcotest.failf "dead=%s violated: %s"
            (String.concat "," (List.map string_of_int dead))
            v.reason)
    cases

(* ---------- Kset_flp: randomized sweeps ---------- *)

let run_kset ~seed ~n ~f ~dead =
  let l = Algo.Kset_flp.kset_l ~n ~f in
  let module K = Algo.Kset_flp.Make (struct
    let l = l
  end) in
  let module E = Sim.Engine.Make (K) in
  let pattern = FP.initial_dead ~n ~dead in
  let rng = Rng.create ~seed in
  (E.run ~n ~inputs:(distinct n) ~pattern (Adv.fair ~rng), n / l)

let test_randomized_grid () =
  let cases =
    [ (4, 1); (5, 2); (6, 2); (6, 3); (7, 3); (8, 5); (9, 4); (10, 7) ]
  in
  List.iter
    (fun (n, f) ->
      for seed = 1 to 12 do
        let rng = Rng.create ~seed:(seed * 1000) in
        let dead = Rng.sample rng f (List.init n Fun.id) in
        let run, bound = run_kset ~seed ~n ~f ~dead in
        (match Ksa_core.Kset_spec.check ~k:bound run with
        | Ok () -> ()
        | Error e -> Alcotest.failf "n=%d f=%d seed=%d: %s" n f seed e);
        ()
      done)
    cases

let test_kset_under_lossy_delivery () =
  for seed = 1 to 10 do
    let module K = Algo.Kset_flp.Make (struct
      let l = 3
    end) in
    let module E = Sim.Engine.Make (K) in
    let rng = Rng.create ~seed in
    let run =
      E.run ~n:5 ~inputs:(distinct 5)
        ~pattern:(FP.initial_dead ~n:5 ~dead:[ 2; 4 ])
        (Adv.fair_lossy ~rng ~p_defer:0.6)
    in
    match Ksa_core.Kset_spec.check ~k:1 run with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_ablation_decisions_bound_per_l () =
  (* sweeping L shows the floor(n/L) knob of Section VI *)
  let n = 8 in
  List.iter
    (fun l ->
      let module K = Algo.Kset_flp.Make (struct
        let l = l
      end) in
      let module E = Sim.Engine.Make (K) in
      let bound = Algo.Kset_flp.decisions_bound ~n ~l in
      for seed = 1 to 8 do
        let rng = Rng.create ~seed in
        (* adversarial grouping: partition into blocks of size l *)
        let groups = Listx.chunks l (List.init n Fun.id) in
        let groups = List.filter (fun g -> List.length g >= l) groups in
        let adv =
          if seed mod 2 = 0 then Adv.fair ~rng
          else Adv.partition ~groups ()
        in
        let run = E.run ~n ~inputs:(distinct n) ~pattern:(FP.none ~n) adv in
        if Sim.Run.distinct_decisions run > bound then
          Alcotest.failf "L=%d seed=%d: %d > bound %d" l seed
            (Sim.Run.distinct_decisions run)
            bound
      done)
    [ 2; 3; 4; 5; 8 ]

let test_partition_realizes_bound () =
  (* with L = 2 and 4 processes split into two pairs, the partition
     adversary must actually produce 2 distinct decisions *)
  let module K = Algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module E = Sim.Engine.Make (K) in
  let run =
    E.run ~n:4 ~inputs:(distinct 4) ~pattern:(FP.none ~n:4)
      (Adv.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ())
  in
  Alcotest.(check int) "exactly 2" 2 (Sim.Run.distinct_decisions run)

(* ---------- oracle-free stacked consensus ---------- *)

module Hb12 = Algo.Stack.Heartbeat_fd (struct
  let window = 12
end)

module Stacked = Algo.Stack.Make (Hb12) (Algo.Synod.A)
module ES = Sim.Engine.Make (Stacked)

let test_stacked_consensus_partial_synchrony () =
  (* consensus with NO oracle: the detector is implemented in-protocol
     and the only assumption is eventual lockstep *)
  List.iter
    (fun (n, dead) ->
      for seed = 1 to 8 do
        let pattern = FP.initial_dead ~n ~dead in
        let rng = Rng.create ~seed in
        let run =
          ES.run ~max_steps:60_000 ~n ~inputs:(distinct n) ~pattern
            (Adv.eventually_lockstep ~rng ~gst:40 ~p_defer:0.5)
        in
        match Ksa_core.Kset_spec.check ~k:1 run with
        | Ok () -> ()
        | Error e ->
            Alcotest.failf "n=%d dead=%s seed=%d: %s" n
              (String.concat "," (List.map string_of_int dead))
              seed e
      done)
    [ (4, []); (4, [ 3 ]); (5, [ 0 ]) ]

let test_stacked_safe_under_asynchrony () =
  (* under a partition the home-made detector lies about leadership
     and freshness, so termination may be lost — but agreement cannot
     be: quorum outputs are majorities or Π, which always intersect *)
  let n = 4 in
  let pattern = FP.none ~n in
  let release (obs : Adv.obs) = obs.Adv.time > 2_000 in
  let adv = Adv.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ~release () in
  let run =
    ES.run ~max_steps:3_000 ~n ~inputs:(distinct n) ~pattern adv
  in
  Alcotest.(check bool) "agreement under partition" true
    (Sim.Run.distinct_decisions run <= 1)

let test_heartbeat_fd_view_shape () =
  let module H = Algo.Stack.Heartbeat_fd (struct
    let window = 3
  end) in
  let st = H.init ~n:5 ~me:2 in
  (* never heard anyone: quorum must fall back to the whole system *)
  let st, _ = H.on_step st ~received:[] in
  (match Sim.Fd_view.quorum (H.view st) with
  | Some q -> Alcotest.(check (list int)) "fallback to Pi" [ 0; 1; 2; 3; 4 ] q
  | None -> Alcotest.fail "no quorum component");
  (match Sim.Fd_view.leaders (H.view st) with
  | Some l -> Alcotest.(check (list int)) "self leader" [ 2 ] l
  | None -> Alcotest.fail "no leader component")

(* ---------- Flp_consensus convenience instance ---------- *)

let test_flp_consensus_instance () =
  Alcotest.(check int) "tolerance n=5" 2 (Algo.Flp_consensus.max_initial_crashes ~n:5);
  Alcotest.(check int) "tolerance n=4" 1 (Algo.Flp_consensus.max_initial_crashes ~n:4);
  let module C5 = Algo.Flp_consensus.For (struct
    let n = 5
  end) in
  let module E = Sim.Engine.Make (C5) in
  (* wrong system size rejected *)
  Alcotest.(check bool) "size mismatch" true
    (match E.init ~n:4 ~inputs:(distinct 4) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  for seed = 1 to 10 do
    let rng = Rng.create ~seed in
    let dead = Rng.sample rng 2 (List.init 5 Fun.id) in
    let run =
      E.run ~n:5 ~inputs:(distinct 5)
        ~pattern:(FP.initial_dead ~n:5 ~dead)
        (Adv.fair ~rng)
    in
    match Ksa_core.Kset_spec.check ~k:1 run with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_flp_consensus_exhaustive_n4 () =
  (* n=4, L=3, one initial crash: uniform consensus over ALL schedules *)
  let module C4 = Algo.Flp_consensus.For (struct
    let n = 4
  end) in
  let module Ex = Sim.Explorer.Make (C4) in
  List.iter
    (fun dead ->
      match
        Ex.explore ~max_configs:600_000 ~n:4 ~inputs:(distinct 4)
          ~pattern:(FP.initial_dead ~n:4 ~dead)
          ~check:(fun decisions ->
            let values =
              List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions)
            in
            if List.length values > 1 then Some "two decisions" else None)
          ()
      with
      | Sim.Explorer.Safe _ -> ()
      | Sim.Explorer.Violation v ->
          Alcotest.failf "dead=%s: %s"
            (String.concat "," (List.map string_of_int dead))
            v.reason)
    [ [ 0 ]; [ 2 ] ]

(* ---------- Trivial ---------- *)

let test_trivial_decides_own () =
  let module E = Sim.Engine.Make (Algo.Trivial.A) in
  let run =
    E.run ~n:3 ~inputs:[| 7; 8; 9 |] ~pattern:(FP.none ~n:3) (Adv.round_robin ())
  in
  Alcotest.(check (list int)) "everyone own value" [ 7; 8; 9 ]
    (Sim.Run.decided_values run);
  Alcotest.(check int) "no messages" 0 (Sim.Run.message_count run)

(* ---------- Naive_min is flawed ---------- *)

let test_naive_min_violates_under_partition () =
  let module N = Algo.Naive_min.Make (struct
    let wait_for = 2
  end) in
  let module E = Sim.Engine.Make (N) in
  (* claim: 2-set agreement for n=6... partition into 3 pairs refutes
     even 2-set *)
  let run =
    E.run ~n:6 ~inputs:(distinct 6) ~pattern:(FP.none ~n:6)
      (Adv.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] ())
  in
  Alcotest.(check int) "3 distinct" 3 (Sim.Run.distinct_decisions run)

let test_naive_min_fine_under_fair () =
  (* the flaw is invisible under friendly schedules: that is the point
     of screening *)
  let module N = Algo.Naive_min.Make (struct
    let wait_for = 6
  end) in
  let module E = Sim.Engine.Make (N) in
  for seed = 1 to 10 do
    let rng = Rng.create ~seed in
    let run =
      E.run ~n:6 ~inputs:(distinct 6) ~pattern:(FP.none ~n:6) (Adv.fair ~rng)
    in
    Alcotest.(check int) "consensus-looking" 1 (Sim.Run.distinct_decisions run)
  done

(* ---------- Synod ---------- *)

let synod_fd ~pattern ~leader ~rng ~tgst ~horizon =
  let sigma = Fd.Sigma.blocks ~k:1 ~pattern ~stab:tgst ~horizon () in
  let omega =
    Fd.Omega.gen
      ~chaos:(Fd.Omega.random_chaos ~rng ~n:(FP.n pattern) ~k:1)
      ~k:1 ~pattern ~leaders:[ leader ] ~tgst ~horizon ()
  in
  Fd.History.oracle (Fd.History.combine sigma omega)

let run_synod ~seed ~n ~dead =
  let module E = Sim.Engine.Make (Algo.Synod.A) in
  let pattern = FP.initial_dead ~n ~dead in
  let rng = Rng.create ~seed in
  let leader = List.hd (FP.correct pattern) in
  let fd = synod_fd ~pattern ~leader ~rng:(Rng.split rng) ~tgst:6 ~horizon:40 in
  E.run ~max_steps:50_000 ~fd ~n ~inputs:(distinct n) ~pattern (Adv.fair ~rng)

let test_synod_consensus_failure_free () =
  for seed = 1 to 15 do
    let run = run_synod ~seed ~n:4 ~dead:[] in
    match Ksa_core.Kset_spec.check ~k:1 run with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s (%a)" seed e Sim.Run.pp_summary run
  done

let test_synod_consensus_with_crashes () =
  List.iter
    (fun (n, dead) ->
      for seed = 1 to 10 do
        let run = run_synod ~seed ~n ~dead in
        match Ksa_core.Kset_spec.check ~k:1 run with
        | Ok () -> ()
        | Error e ->
            Alcotest.failf "n=%d dead=%s seed=%d: %s" n
              (String.concat "," (List.map string_of_int dead))
              seed e
      done)
    [ (3, [ 0 ]); (4, [ 1; 3 ]); (5, [ 0; 1; 2; 3 ]); (5, [ 4 ]) ]

let test_synod_under_lossy () =
  for seed = 1 to 8 do
    let module E = Sim.Engine.Make (Algo.Synod.A) in
    let pattern = FP.initial_dead ~n:4 ~dead:[ 2 ] in
    let rng = Rng.create ~seed in
    let fd = synod_fd ~pattern ~leader:0 ~rng:(Rng.split rng) ~tgst:8 ~horizon:60 in
    let run =
      E.run ~max_steps:50_000 ~fd ~n:4 ~inputs:(distinct 4) ~pattern
        (Adv.fair_lossy ~rng ~p_defer:0.4)
    in
    match Ksa_core.Kset_spec.check ~k:1 run with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_synod_safe_while_partitioned () =
  (* while a partition adversary withholds cross messages and quorums
     span the system, nobody can decide wrongly: agreement continues
     to hold in every prefix *)
  let module E = Sim.Engine.Make (Algo.Synod.A) in
  let pattern = FP.none ~n:4 in
  let rng = Rng.create ~seed:5 in
  let fd = synod_fd ~pattern ~leader:0 ~rng ~tgst:4 ~horizon:60 in
  let release obs = obs.Adv.time > 120 in
  let adv = Adv.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ~release () in
  let run =
    E.run ~max_steps:4_000 ~fd ~n:4 ~inputs:(distinct 4) ~pattern adv
  in
  Alcotest.(check bool) "at most one value" true
    (Sim.Run.distinct_decisions run <= 1)

let test_synod_safe_with_heterogeneous_quorums () =
  (* Σ only guarantees pairwise intersection, not equality: drive
     Synod with per-process, per-time rotating majorities plus lossy
     delivery and assert agreement still holds *)
  let n = 5 in
  let majority = (n / 2) + 1 in
  for seed = 1 to 12 do
    let pattern = FP.initial_dead ~n ~dead:[ seed mod n ] in
    let correct = FP.correct pattern in
    let stab = 25 in
    let quorums =
      Fd.History.make ~n ~horizon:60 (fun ~time ~me ->
          if time >= stab then Sim.Fd_view.Quorum correct
          else
            Sim.Fd_view.Quorum
              (List.init majority (fun i -> (me + time + i) mod n)))
    in
    let leaders =
      Fd.Omega.gen ~k:1 ~pattern ~leaders:[ List.hd correct ] ~tgst:stab
        ~horizon:60 ()
    in
    let h = Fd.History.combine quorums leaders in
    (* sanity: the hand-rolled history really is a Σ history *)
    (match Fd.Sigma.validate ~k:1 ~pattern h with
    | Ok () -> ()
    | Error e -> Alcotest.failf "history invalid: %s" e);
    let module E = Sim.Engine.Make (Algo.Synod.A) in
    let rng = Rng.create ~seed in
    let run =
      E.run ~max_steps:60_000 ~fd:(Fd.History.oracle h) ~n
        ~inputs:(distinct n) ~pattern
        (Adv.fair_lossy ~rng ~p_defer:0.3)
    in
    match Ksa_core.Kset_spec.check ~k:1 run with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_synod_validity () =
  let run = run_synod ~seed:3 ~n:5 ~dead:[ 1 ] in
  List.iter
    (fun v ->
      Alcotest.(check bool) "decided value was proposed" true (v >= 0 && v < 5))
    (Sim.Run.decided_values run)

let suites =
  [
    ( "algo.kset_flp",
      [
        Alcotest.test_case "parameters" `Quick test_parameters;
        Alcotest.test_case "L bounds" `Quick test_l_bounds_checked;
        Alcotest.test_case "exhaustive n=3 consensus" `Slow test_exhaustive_consensus_n3;
        Alcotest.test_case "exhaustive n=3 one dead" `Slow test_exhaustive_consensus_n3_one_dead;
        Alcotest.test_case "exhaustive n=4 2-set" `Slow test_exhaustive_2set_n4;
        Alcotest.test_case "randomized grid" `Quick test_randomized_grid;
        Alcotest.test_case "lossy delivery" `Quick test_kset_under_lossy_delivery;
        Alcotest.test_case "ablation: bound per L" `Quick test_ablation_decisions_bound_per_l;
        Alcotest.test_case "partition realizes bound" `Quick test_partition_realizes_bound;
      ] );
    ( "algo.stack",
      [
        Alcotest.test_case "oracle-free consensus" `Quick
          test_stacked_consensus_partial_synchrony;
        Alcotest.test_case "safe under asynchrony" `Quick
          test_stacked_safe_under_asynchrony;
        Alcotest.test_case "heartbeat fd view" `Quick test_heartbeat_fd_view_shape;
      ] );
    ( "algo.flp_consensus",
      [
        Alcotest.test_case "instance" `Quick test_flp_consensus_instance;
        Alcotest.test_case "exhaustive n=4" `Slow test_flp_consensus_exhaustive_n4;
      ] );
    ( "algo.trivial",
      [ Alcotest.test_case "decides own" `Quick test_trivial_decides_own ] );
    ( "algo.naive_min",
      [
        Alcotest.test_case "violates under partition" `Quick test_naive_min_violates_under_partition;
        Alcotest.test_case "looks fine under fair" `Quick test_naive_min_fine_under_fair;
      ] );
    ( "algo.synod",
      [
        Alcotest.test_case "consensus failure-free" `Quick test_synod_consensus_failure_free;
        Alcotest.test_case "consensus with crashes" `Quick test_synod_consensus_with_crashes;
        Alcotest.test_case "lossy" `Quick test_synod_under_lossy;
        Alcotest.test_case "safe while partitioned" `Quick test_synod_safe_while_partitioned;
        Alcotest.test_case "heterogeneous quorums" `Quick
          test_synod_safe_with_heterogeneous_quorums;
        Alcotest.test_case "validity" `Quick test_synod_validity;
      ] );
  ]
